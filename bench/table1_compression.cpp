// Table I — the matrix suite and the compression ratios.
//
// For every suite matrix: rows, non-zeros, CSR size in MiB, the compression
// ratio achieved by CSX-Sym, the maximum possible symmetric compression
// ratio (values + diagonal only, no indexing information), and the SSS
// ratio (~50%) for reference.  Ratios are relative to CSR (Eq. 1), exactly
// as in the paper; reduction-phase working sets are excluded.
#include <iostream>

#include "bench/common.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/csr.hpp"
#include "matrix/sss.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    std::cout << "Table I: matrix suite and compression ratios (scale=" << env.scale << ")\n\n";
    bench::TablePrinter table(std::cout, {14, 9, 11, 10, 10, 10, 10, 11}, env.csv_sink);
    table.header({"Matrix", "Rows", "Nonzeros", "Size MiB", "C.R. SSS", "C.R. CSXS", "C.R. Max",
                  "Problem"});

    for (const auto& entry : env.entries) {
        // One bundle per matrix: CSR and SSS are derived from the same COO
        // exactly once each.
        const engine::MatrixBundle bundle(env.load(entry));
        const Coo& full = bundle.coo();
        const Csr& csr = bundle.csr();
        const Sss& sss = bundle.sss();
        const csx::CsxSymMatrix csxsym(sss, csx::CsxConfig{}, env.max_threads());

        const double csr_bytes = static_cast<double>(csr.size_bytes());
        const auto ratio = [&](double bytes) { return 1.0 - bytes / csr_bytes; };
        // Maximum symmetric compression: 8 bytes per stored non-zero
        // (triangular values + dense diagonal), zero metadata.
        const double max_bytes = 8.0 * static_cast<double>(sss.stored_nnz());

        table.row({entry.name, std::to_string(full.rows()), std::to_string(full.nnz()),
                   bench::TablePrinter::fmt(csr_bytes / (1024.0 * 1024.0), 2),
                   bench::TablePrinter::pct(ratio(static_cast<double>(sss.size_bytes()))),
                   bench::TablePrinter::pct(ratio(static_cast<double>(csxsym.size_bytes()))),
                   bench::TablePrinter::pct(ratio(max_bytes)), entry.problem});
    }
    std::cout << "\nPaper reference (full-scale UF matrices): CSX-Sym C.R. 49.6%-65.1%, "
                 "max 62.4%-66.6%, SSS <= 50%.\n";
    return 0;
}
