// Ablation — symmetric-SpM×V parallelization strategies (§III.A, §VI).
//
// Puts the paper's local-vectors-indexing kernel (SSS-idx) next to every
// alternative the paper discusses but does not measure:
//   SSS-atomic  — atomic adds on the output vector ("prohibitive cost")
//   SSS-color   — Batista's conflict-coloring method [7]
//   CSB / CSB-Sym — Buluç's blocked formats [8], [27]
//   BCSR        — register blocking with autotuned shape [22]-[26]
// For CSB-Sym the atomic-update count is reported (the predicted failure
// mode on high-bandwidth matrices), and for SSS-color the number of colors
// (the lost parallelism).
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "csb/csb_kernels.hpp"
#include "matrix/sss.hpp"
#include "spmv/alt_kernels.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);
    const std::vector<KernelKind> kinds = {
        KernelKind::kCsr,     KernelKind::kSssIndexing, KernelKind::kSssAtomic,
        KernelKind::kSssColor, KernelKind::kCsb,        KernelKind::kCsbSym,
        KernelKind::kBcsr,
    };

    std::cout << "Ablation: symmetric SpM×V parallelization strategies at " << threads
              << " threads (scale=" << env.scale << ", iters=" << env.iterations << ")\n\n";

    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < kinds.size(); ++i) widths.push_back(11);
    widths.push_back(9);
    widths.push_back(7);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (KernelKind k : kinds) head.emplace_back(std::string(to_string(k)) + " GF");
    head.emplace_back("atomics%");  // CSB-Sym atomic transposed writes / stored nnz
    head.emplace_back("colors");    // SSS-color sequential depth
    table.header(head);

    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const engine::KernelFactory factory(bundle, ctx);
        std::vector<std::string> row = {entry.name};
        std::string atomics_pct = "-";
        std::string colors = "-";
        for (KernelKind kind : kinds) {
            const KernelPtr kernel = factory.make(kind);
            const auto meas = bench::measure(*kernel, bench::measure_options(env));
            row.push_back(bench::TablePrinter::fmt(meas.gflops, 2));
            if (kind == KernelKind::kCsbSym) {
                const auto* sym = dynamic_cast<const csb::CsbSymKernel*>(kernel.get());
                atomics_pct = bench::TablePrinter::pct(
                    static_cast<double>(sym->atomic_updates_per_spmv()) /
                    static_cast<double>(sym->matrix().stored_nnz()));
            } else if (kind == KernelKind::kSssColor) {
                const auto* color = dynamic_cast<const SssColorKernel*>(kernel.get());
                colors = std::to_string(color->plan().colors());
            }
        }
        row.push_back(atomics_pct);
        row.push_back(colors);
        table.row(row);
    }
    std::cout << "\nExpected shape (paper §III.A + §VI): SSS-idx leads; SSS-atomic pays one\n"
                 "atomic per stored element; SSS-color loses parallelism to color count on\n"
                 "banded matrices; CSB-Sym degrades where the atomics%% column is high.\n";
    return 0;
}
