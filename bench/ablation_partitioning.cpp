// Ablation — row-partitioning policy and thread pinning (§V.A, Fig. 3a).
//
// The paper assigns rows "ensuring an approximately equal number of
// non-zero elements per partition" and binds threads to logical CPUs.
// This bench quantifies both choices: the non-zero imbalance of equal-rows
// vs equal-nnz partitioning per suite matrix, the resulting CSR SpM×V
// times, and (with --pin) the effect of CPU pinning.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "core/partition.hpp"
#include "matrix/csr.hpp"

using namespace symspmv;

namespace {

/// max/mean non-zeros across partitions (1.0 = perfectly balanced).
double imbalance(const Csr& csr, std::span<const RowRange> parts) {
    std::int64_t max_nnz = 0;
    for (const RowRange& part : parts) {
        const std::int64_t nnz = csr.rowptr()[static_cast<std::size_t>(part.end)] -
                                 csr.rowptr()[static_cast<std::size_t>(part.begin)];
        max_nnz = std::max(max_nnz, nnz);
    }
    const double mean = static_cast<double>(csr.nnz()) / static_cast<double>(parts.size());
    return mean == 0.0 ? 1.0 : static_cast<double>(max_nnz) / mean;
}

/// CSR kernel with an injectable partitioning (the ablation subject).
class PolicyCsrKernel final : public SpmvKernel {
   public:
    PolicyCsrKernel(const Csr& csr, ThreadPool& pool, std::vector<RowRange> parts)
        : csr_(csr), pool_(pool), parts_(std::move(parts)) {}

    [[nodiscard]] std::string_view name() const override { return "CSR-policy"; }
    [[nodiscard]] index_t rows() const override { return csr_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return csr_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return csr_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override {
        pool_.run([&](int tid) {
            const RowRange part = parts_[static_cast<std::size_t>(tid)];
            csr_.spmv_rows(part.begin, part.end, x, y);
        });
    }

   private:
    const Csr& csr_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
};

}  // namespace

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);

    std::cout << "Ablation: row partitioning policy at " << threads << " threads"
              << (env.pin_threads ? " (pinned)" : "") << " (scale=" << env.scale << ")\n"
              << "imb = max/mean partition nnz; us = median SpM×V time\n\n";
    bench::TablePrinter table(std::cout, {14, 10, 10, 10, 10}, env.csv_sink);
    table.header({"Matrix", "even imb", "even us", "nnz imb", "nnz us"});

    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const Csr& csr = bundle.csr();
        const auto even = split_even(csr.rows(), threads);
        const auto by_nnz = split_by_nnz(csr.rowptr(), threads);
        PolicyCsrKernel even_kernel(csr, ctx, even);
        PolicyCsrKernel nnz_kernel(csr, ctx, by_nnz);
        const auto even_meas = bench::measure(even_kernel, bench::measure_options(env));
        const auto nnz_meas = bench::measure(nnz_kernel, bench::measure_options(env));
        table.row({entry.name, bench::TablePrinter::fmt(imbalance(csr, even), 2),
                   bench::TablePrinter::fmt(even_meas.seconds_per_op * 1e6, 1),
                   bench::TablePrinter::fmt(imbalance(csr, by_nnz), 2),
                   bench::TablePrinter::fmt(nnz_meas.seconds_per_op * 1e6, 1)});
    }
    std::cout << "\nExpected shape: equal-nnz stays near imb=1.00 everywhere; equal-rows\n"
                 "degrades on matrices with skewed row lengths (power-law, dense rows),\n"
                 "which is why the paper partitions by non-zero count (Fig. 3a).\n";
    return 0;
}
