// §V.E — preprocessing cost of CSX-Sym, in units of serial CSR SpM×V
// operations, for the plain and the RCM-reordered suite; plus the DESIGN.md
// ablations: statistics sampling fraction and minimum pattern length.
//
// Paper reference: 49 (Dunnington, 24t) and 94 (Gainestown, 16t) serial CSR
// SpM×V equivalents on average; 59 and 115 for the reordered matrices.
#include <iostream>

#include "bench/common.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/csr.hpp"
#include "matrix/sss.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "spmv/csr_kernels.hpp"

using namespace symspmv;

namespace {

double csr_serial_seconds(const Coo& full, const bench::BenchEnv& env) {
    CsrSerialKernel serial((Csr(full)));
    auto opts = bench::measure_options(env);
    return bench::measure(serial, opts).seconds_per_op;
}

double prep_in_spmv_units(const Coo& full, const csx::CsxConfig& cfg, int parts,
                          double serial_s) {
    const Sss sss(full);
    const csx::CsxSymMatrix csxsym(sss, cfg, parts);
    return csxsym.preprocess_seconds() / serial_s;
}

}  // namespace

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv, /*default_iterations=*/16);
    const int parts = env.max_threads();

    std::cout << "Section V.E: CSX-Sym preprocessing cost in serial CSR SpM×V units\n"
              << "(scale=" << env.scale << ", " << parts << " partitions)\n\n";
    bench::TablePrinter table(std::cout, {14, 12, 12}, env.csv_sink);
    table.header({"Matrix", "plain", "RCM"});

    double avg_plain = 0.0, avg_rcm = 0.0;
    for (const auto& entry : env.entries) {
        const Coo plain = env.load(entry);
        const Coo reordered = permute_symmetric(plain, rcm_permutation(plain));
        const double plain_units =
            prep_in_spmv_units(plain, csx::CsxConfig{}, parts, csr_serial_seconds(plain, env));
        const double rcm_units = prep_in_spmv_units(reordered, csx::CsxConfig{}, parts,
                                                    csr_serial_seconds(reordered, env));
        avg_plain += plain_units;
        avg_rcm += rcm_units;
        table.row({entry.name, bench::TablePrinter::fmt(plain_units, 1),
                   bench::TablePrinter::fmt(rcm_units, 1)});
    }
    table.rule();
    table.row({"average", bench::TablePrinter::fmt(avg_plain / env.entries.size(), 1),
               bench::TablePrinter::fmt(avg_rcm / env.entries.size(), 1)});
    std::cout << "\nPaper reference: 49/94 serial SpM×Vs (SMP/NUMA), 59/115 after RCM.\n";

    // Ablation: statistics sampling fraction (CSX's matrix sampling) and
    // minimum pattern length, on the largest requested matrix.
    const Coo probe = env.load(env.entries.back());
    const double serial_s = csr_serial_seconds(probe, env);
    std::cout << "\nAblation on " << env.entries.back().name
              << ": preprocessing cost vs sampling and run-length knobs\n\n";
    bench::TablePrinter ab(std::cout, {26, 12, 14}, env.csv_sink);
    ab.header({"Config", "prep units", "CSXS bytes/nnz"});
    auto report = [&](const std::string& name, const csx::CsxConfig& cfg) {
        const Sss sss(probe);
        const csx::CsxSymMatrix m(sss, cfg, parts);
        ab.row({name, bench::TablePrinter::fmt(m.preprocess_seconds() / serial_s, 1),
                bench::TablePrinter::fmt(
                    static_cast<double>(m.size_bytes()) / static_cast<double>(m.nnz()), 2)});
    };
    csx::CsxConfig cfg;
    report("default", cfg);
    for (double f : {0.5, 0.25, 0.1}) {
        csx::CsxConfig c = cfg;
        c.sample_fraction = f;
        report("sample_fraction=" + bench::TablePrinter::fmt(f, 2), c);
    }
    for (int len : {2, 8, 16}) {
        csx::CsxConfig c = cfg;
        c.min_pattern_length = len;
        report("min_pattern_length=" + std::to_string(len), c);
    }
    {
        csx::CsxConfig c = cfg;
        c.blocks = false;
        report("blocks=off", c);
    }
    {
        csx::CsxConfig c = cfg;
        c.vertical = c.diagonal = c.antidiagonal = c.blocks = false;
        report("horizontal-only", c);
    }
    return 0;
}
