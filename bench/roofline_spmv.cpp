// Roofline placement of every SpM×V kernel (§I of the paper, model [5]).
//
// Probes the host's compute and bandwidth ceilings, then reports each
// format's operational intensity, the roofline-attainable Gflop/s at that
// intensity, the measured Gflop/s and the attained fraction.  The paper's
// narrative reads straight off the table: every kernel's intensity sits
// far left of the ridge point (memory-bound), and the compressed formats
// move right — that is the entire mechanism of CSX-Sym's speedup.
#include <iostream>

#include "bench/common.hpp"
#include "bench/roofline.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);
    const bench::RooflineModel model = bench::probe_roofline(ctx);

    std::cout << "Roofline placement of the SpM×V kernels at " << threads
              << " threads (scale=" << env.scale << ")\n"
              << "peak " << bench::TablePrinter::fmt(model.peak_gflops, 1) << " Gflop/s, "
              << "bandwidth " << bench::TablePrinter::fmt(model.bandwidth_gbs, 1) << " GB/s, "
              << "ridge at " << bench::TablePrinter::fmt(model.ridge_intensity(), 2)
              << " flops/byte\n\n";

    const std::vector<KernelKind> kinds = {
        KernelKind::kCsr,     KernelKind::kSssIndexing,
        KernelKind::kCsx,     KernelKind::kCsxSym,
        KernelKind::kCsb,     KernelKind::kBcsr,
    };
    bench::TablePrinter table(std::cout, {14, 11, 12, 12, 12, 10}, env.csv_sink);
    table.header({"Matrix", "Kernel", "flops/byte", "attain GF", "meas GF", "attained"});

    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const engine::KernelFactory factory(bundle, ctx);
        for (KernelKind kind : kinds) {
            const KernelPtr kernel = factory.make(kind);
            const double intensity = bench::operational_intensity(*kernel);
            const double attainable = model.attainable_gflops(intensity);
            const auto meas = bench::measure(*kernel, bench::measure_options(env));
            table.row({entry.name, std::string(to_string(kind)),
                       bench::TablePrinter::fmt(intensity, 3),
                       bench::TablePrinter::fmt(attainable, 2),
                       bench::TablePrinter::fmt(meas.gflops, 2),
                       bench::TablePrinter::pct(meas.gflops / attainable)});
        }
        table.rule();
    }
    std::cout << "\nExpected shape: intensities cluster at 0.10-0.25 flops/byte — far below\n"
                 "the ridge — so SpM×V is memory-bound everywhere (§I); the symmetric and\n"
                 "CSX formats raise intensity by up to 2x, which is exactly their speedup\n"
                 "mechanism when bandwidth is the binding ceiling.\n";
    return 0;
}
