// Fig. 5 — working-set overhead of the reduction phase (relative to the
// serial SSS matrix size) for the three local-vector methods.
//
// The paper shows the naive and effective-ranges overheads growing linearly
// with the thread count while the indexing scheme stabilizes (~15% at 24
// threads on Dunnington).
#include <iostream>

#include "bench/common.hpp"
#include "core/partition.hpp"
#include "matrix/sss.hpp"
#include "spmv/reduction.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    auto env = bench::parse_env(argc, argv);
    const std::vector<int> threads = {2, 4, 8, 16, 24, 32, 64};

    std::cout << "Fig. 5: reduction working-set overhead over the serial SSS matrix size\n"
              << "(suite average, scale=" << env.scale << ")\n\n";
    bench::TablePrinter table(std::cout, {8, 12, 12, 12, 10}, env.csv_sink);
    table.header({"p", "naive", "eff.ranges", "indexing", "density"});

    // One bundle per matrix: COO->SSS runs once for the whole thread sweep.
    std::vector<engine::MatrixBundle> bundles;
    for (const auto& entry : env.entries) bundles.emplace_back(env.load(entry));

    for (int t : threads) {
        double naive = 0.0, eff = 0.0, idx = 0.0, dens = 0.0;
        for (const engine::MatrixBundle& bundle : bundles) {
            const Sss& sss = bundle.sss();
            const auto parts = split_by_nnz(sss.rowptr(), t);
            const ReductionWorkingSet ws = reduction_working_set(sss, parts);
            const double base = static_cast<double>(sss.size_bytes());
            naive += static_cast<double>(ws.naive) / base;
            eff += static_cast<double>(ws.effective) / base;
            idx += static_cast<double>(ws.indexing) / base;
            dens += ws.density;
        }
        const double n = static_cast<double>(env.entries.size());
        table.row({std::to_string(t), bench::TablePrinter::pct(naive / n),
                   bench::TablePrinter::pct(eff / n), bench::TablePrinter::pct(idx / n),
                   bench::TablePrinter::pct(dens / n)});
    }
    std::cout << "\nModel (paper Eqs. 3-6): naive = 8pN, eff = 4(p-1)N, idx ~= 8(p-1)Nd.\n"
              << "Expected shape: naive/eff grow linearly with p; indexing flattens.\n";
    return 0;
}
