// Ablation — preconditioned CG (extension of §V.F).
//
// The paper's CG is non-preconditioned and calls preconditioning
// "orthogonal" to the SpM×V optimization.  This bench checks that claim:
// the SSS-idx kernel is held fixed while the preconditioner varies (none /
// Jacobi / SSOR), reporting iterations to convergence and the time split
// between SpM×V, vector ops and the preconditioner.
#include <iostream>

#include "bench/common.hpp"
#include "matrix/sss.hpp"
#include "solver/pcg.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);
    const std::vector<std::string> precs = {"none", "jacobi", "ssor"};

    std::cout << "Ablation: preconditioned CG with the SSS-idx kernel at " << threads
              << " threads (scale=" << env.scale << ", tol=1e-8)\n\n";
    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < precs.size(); ++i) {
        widths.push_back(9);
        widths.push_back(10);
    }
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (const std::string& p : precs) {
        head.push_back(p + " it");
        head.push_back(p + " ms");
    }
    table.header(head);

    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const engine::KernelFactory factory(bundle, ctx);
        auto kernel = factory.make(KernelKind::kSssIndexing);
        const std::vector<value_t> b =
            bench::random_vector(static_cast<std::size_t>(bundle.coo().rows()));

        cg::Options opts;
        opts.max_iterations = 4000;
        opts.tolerance = 1e-8;
        std::vector<std::string> row = {entry.name};
        for (const std::string& p : precs) {
            auto pc = cg::make_preconditioner(p, bundle.sss(), ctx);
            const cg::PcgResult res = cg::pcg_solve(*kernel, *pc, ctx, b, opts);
            row.push_back(std::to_string(res.base.iterations) +
                          (res.base.converged ? "" : "*"));
            row.push_back(bench::TablePrinter::fmt(res.total_seconds() * 1e3, 1));
        }
        table.row(row);
    }
    std::cout << "\n(* = hit the iteration cap before the 1e-8 tolerance)\n"
              << "Expected shape: SSOR cuts iterations the most but its triangular solves\n"
                 "are serial; Jacobi helps on matrices with wide diagonal ranges.  The\n"
                 "SpM×V share of each iteration is unchanged — preconditioning is indeed\n"
                 "orthogonal to the paper's kernel optimization.\n";
    return 0;
}
