// sync_cost: microbenchmark of the synchronization primitives behind the
// multicore-scaling fix (§III.A of the paper; DESIGN.md §13).
//
// Three dispatch paths are timed with an empty job, isolating pure
// synchronization overhead:
//
//   cv-pool run      the pre-fix dispatcher: mutex + condition_variable
//                    sleep/wake per job (replicated below verbatim in
//                    miniature, since the production pool no longer has it)
//   pool run         the hot-dispatch fast path: spin-then-park on an atomic
//                    generation word, one region per call
//   pool run_many    N iterations inside ONE persistent region — the per-
//                    iteration cost the bench loop and every CG iteration
//                    actually pays after the fix
//
// plus the barrier-crossing cost of the mutex+cv PoisonableBarrier vs the
// hybrid SpinBarrier under the same thread count.  The headline number is
// the cv-run / run_many ratio: the fix's acceptance target is >= 5x.
//
//   sync_cost [--threads N] [--dispatches N] [--batch N] [--crossings N]
#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/barrier.hpp"
#include "core/options.hpp"
#include "core/spin_barrier.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

using namespace symspmv;

namespace {

/// The pre-fix dispatcher in miniature: every run() takes the mutex, bumps a
/// generation under it, and wakes the workers through a condition variable;
/// workers sleep on the cv between jobs and the last one out signals a
/// second cv.  Two scheduler round trips per dispatch — the cost the
/// committed BENCH_symspmv.md showed dominating every parallel cell.
class CvPool {
   public:
    explicit CvPool(int threads) {
        workers_.reserve(static_cast<std::size_t>(threads));
        for (int tid = 0; tid < threads; ++tid) {
            workers_.emplace_back([this, tid] { loop(tid); });
        }
    }

    ~CvPool() {
        {
            std::lock_guard lock(mu_);
            stop_ = true;
            ++generation_;
        }
        cv_job_.notify_all();
    }

    void run(const std::function<void(int)>& job) {
        std::unique_lock lock(mu_);
        job_ = &job;
        remaining_ = static_cast<int>(workers_.size());
        ++generation_;
        cv_job_.notify_all();
        cv_done_.wait(lock, [this] { return remaining_ == 0; });
        job_ = nullptr;
    }

   private:
    void loop(int tid) {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(int)>* job = nullptr;
            {
                std::unique_lock lock(mu_);
                cv_job_.wait(lock, [&] { return generation_ != seen; });
                seen = generation_;
                if (stop_) return;
                job = job_;
            }
            (*job)(tid);
            {
                std::lock_guard lock(mu_);
                if (--remaining_ == 0) cv_done_.notify_one();
            }
        }
    }

    std::mutex mu_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    const std::function<void(int)>* job_ = nullptr;
    std::uint64_t generation_ = 0;
    int remaining_ = 0;
    bool stop_ = false;
    std::vector<std::jthread> workers_;  // last: joins before the state dies
};

double ns_per(double seconds, std::int64_t ops) {
    return ops > 0 ? seconds / static_cast<double>(ops) * 1e9 : 0.0;
}

/// Seconds for @p crew_size threads to cross @p barrier @p crossings times.
template <typename Barrier>
double time_crossings(Barrier& barrier, int crew_size, int crossings) {
    std::vector<std::jthread> crew;
    crew.reserve(static_cast<std::size_t>(crew_size));
    Timer t;
    for (int i = 0; i < crew_size; ++i) {
        crew.emplace_back([&] {
            for (int c = 0; c < crossings; ++c) barrier.arrive_and_wait();
        });
    }
    crew.clear();  // join
    return t.seconds();
}

void print_row(const char* what, double ns, double baseline_ns) {
    std::cout << "  " << std::left << std::setw(34) << what << std::right << std::setw(12)
              << std::fixed << std::setprecision(0) << ns << " ns";
    if (baseline_ns > 0.0 && ns > 0.0) {
        std::cout << "   (" << std::setprecision(1) << baseline_ns / ns << "x vs cv)";
    }
    std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const unsigned hw = std::thread::hardware_concurrency();
    const int default_threads = std::clamp(static_cast<int>(hw == 0 ? 2 : hw), 2, 4);
    const int threads = static_cast<int>(opts.get_int("--threads", default_threads));
    const int dispatches = static_cast<int>(opts.get_int("--dispatches", 20000));
    const int batch = static_cast<int>(opts.get_int("--batch", 512));
    const int crossings = static_cast<int>(opts.get_int("--crossings", 20000));

    std::cout << "sync_cost: p=" << threads << ", " << dispatches << " dispatches, batch="
              << batch << ", " << crossings << " barrier crossings ("
              << (hw == 0 ? 0u : hw) << " CPUs online)\n\n";

    const auto noop = [](int) {};
    const auto noop_iter = [](int, int) {};

    // --- dispatch cost ----------------------------------------------------
    double cv_seconds = 0.0;
    {
        CvPool pool(threads);
        for (int i = 0; i < 64; ++i) pool.run(noop);  // warmup
        Timer t;
        for (int i = 0; i < dispatches; ++i) pool.run(noop);
        cv_seconds = t.seconds();
    }
    const double cv_ns = ns_per(cv_seconds, dispatches);

    double run_seconds = 0.0;
    double run_many_seconds = 0.0;
    std::int64_t run_many_iters = 0;
    {
        ThreadPool pool(threads);
        for (int i = 0; i < 64; ++i) pool.run(noop);  // warmup
        Timer t;
        for (int i = 0; i < dispatches; ++i) pool.run(noop);
        run_seconds = t.seconds();

        const int regions = std::max(1, dispatches / batch);
        pool.run_many(batch, noop_iter);  // warmup
        Timer t2;
        for (int r = 0; r < regions; ++r) pool.run_many(batch, noop_iter);
        run_many_seconds = t2.seconds();
        run_many_iters = static_cast<std::int64_t>(regions) * batch;
    }
    const double run_ns = ns_per(run_seconds, dispatches);
    const double run_many_ns = ns_per(run_many_seconds, run_many_iters);

    std::cout << "dispatch overhead (empty job, per iteration):\n";
    print_row("cv-pool run (pre-fix dispatcher)", cv_ns, 0.0);
    print_row("pool run (hot dispatch)", run_ns, cv_ns);
    print_row("pool run_many (persistent region)", run_many_ns, cv_ns);

    // --- barrier crossing cost --------------------------------------------
    double cv_barrier_ns = 0.0;
    double spin_barrier_ns = 0.0;
    {
        PoisonableBarrier barrier(threads);
        cv_barrier_ns = ns_per(time_crossings(barrier, threads, crossings), crossings);
    }
    {
        SpinBarrier barrier(threads);
        spin_barrier_ns = ns_per(time_crossings(barrier, threads, crossings), crossings);
    }
    std::cout << "\nbarrier crossing (per generation, " << threads << " threads):\n";
    std::cout << "  " << std::left << std::setw(34) << "PoisonableBarrier (mutex+cv)"
              << std::right << std::setw(12) << std::fixed << std::setprecision(0)
              << cv_barrier_ns << " ns\n";
    std::cout << "  " << std::left << std::setw(34) << "SpinBarrier (hybrid)" << std::right
              << std::setw(12) << std::fixed << std::setprecision(0) << spin_barrier_ns
              << " ns   (" << std::setprecision(1)
              << (spin_barrier_ns > 0.0 ? cv_barrier_ns / spin_barrier_ns : 0.0) << "x)\n";

    const double ratio = run_many_ns > 0.0 ? cv_ns / run_many_ns : 0.0;
    std::cout << "\nper-iteration dispatch: run_many is " << std::setprecision(1) << ratio
              << "x cheaper than the cv dispatcher (acceptance target: >= 5x)\n";
    return 0;
}
