// Ablation — reordering algorithm choice (§V.D uses RCM; [18]-[20] span a
// family).  Compares RCM, King and Sloan on bandwidth, profile, the
// §III.C conflict-index size they induce, and the SSS-idx SpM×V time.
//
// Like table3_reordering, the generated analogs are scrambled first to
// emulate the UF matrices' natural application ordering.
#include <algorithm>
#include <iostream>
#include <random>

#include "bench/common.hpp"
#include "matrix/csr.hpp"
#include "matrix/properties.hpp"
#include "matrix/sss.hpp"
#include "reorder/orderings.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "spmv/comm_volume.hpp"
#include "spmv/sss_kernels.hpp"

using namespace symspmv;

namespace {

Coo scramble(const Coo& a, std::uint64_t seed) {
    std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<index_t>(i);
    std::mt19937_64 rng(seed);
    std::ranges::shuffle(perm, rng);
    return permute_symmetric(a, perm);
}

struct OrderingResult {
    index_t bw = 0;
    std::int64_t prof = 0;
    std::size_t index_bytes = 0;
    std::int64_t comm = 0;
    double us = 0.0;
};

OrderingResult evaluate(const Coo& a, ThreadPool& pool, const bench::MeasureOptions& mopts) {
    OrderingResult out;
    out.bw = bandwidth(a);
    out.prof = profile(a);
    const Csr csr(a);
    out.comm = communication_volume(csr, split_by_nnz(csr.rowptr(), pool.size()));
    SssMtKernel kernel(Sss(a), pool, ReductionMethod::kIndexing);
    out.index_bytes = kernel.reduction_index().bytes();
    out.us = bench::measure(kernel, mopts).seconds_per_op * 1e6;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);
    const auto mopts = bench::measure_options(env);

    std::cout << "Ablation: reordering algorithms at " << threads
              << " threads (scale=" << env.scale << ", scrambled start)\n"
              << "bw = bandwidth, prof = profile/1000, idx = conflict-index KiB, "
                 "us = SSS-idx SpM×V\n\n";
    bench::TablePrinter table(std::cout, {14, 9, 22, 22, 22, 22}, env.csv_sink);
    table.header({"Matrix", "", "scrambled", "RCM", "King", "Sloan"});

    for (const auto& entry : env.entries) {
        const Coo base = scramble(env.load(entry), 2013);
        const std::vector<std::pair<std::string, Coo>> variants = {
            {"scrambled", base},
            {"RCM", permute_symmetric(base, rcm_permutation(base))},
            {"King", permute_symmetric(base, king_permutation(base))},
            {"Sloan", permute_symmetric(base, sloan_permutation(base))},
        };
        std::vector<std::string> bw_row = {entry.name, "bw"};
        std::vector<std::string> prof_row = {"", "prof/k"};
        std::vector<std::string> idx_row = {"", "idx KiB"};
        std::vector<std::string> comm_row = {"", "comm"};
        std::vector<std::string> us_row = {"", "us"};
        for (const auto& [name, matrix] : variants) {
            const OrderingResult r = evaluate(matrix, ctx, mopts);
            bw_row.push_back(std::to_string(r.bw));
            prof_row.push_back(bench::TablePrinter::fmt(static_cast<double>(r.prof) / 1e3, 1));
            idx_row.push_back(
                bench::TablePrinter::fmt(static_cast<double>(r.index_bytes) / 1024.0, 1));
            comm_row.push_back(std::to_string(r.comm));
            us_row.push_back(bench::TablePrinter::fmt(r.us, 1));
        }
        table.row(bw_row);
        table.row(prof_row);
        table.row(idx_row);
        table.row(comm_row);
        table.row(us_row);
        table.rule();
    }
    std::cout << "\nExpected shape: every ordering collapses the scrambled profile and\n"
                 "shrinks the conflict index with it (§V.D reason 2); the wavefront\n"
                 "minimizers (King/Sloan) tend to the best profile and index size, RCM\n"
                 "to the best worst-case bandwidth.\n";
    return 0;
}
