// Google-benchmark microbenchmarks of the individual kernels and of the
// CSX preprocessing pipeline stages.  Complements the table/figure benches
// with statistically robust per-kernel numbers.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "csx/csx_sym.hpp"
#include "csx/detect.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/sss.hpp"
#include "reorder/rcm.hpp"
#include "spmv/reduction.hpp"

namespace {

using namespace symspmv;

// A mid-sized block-FEM matrix (bmw-like) reused across benchmarks.
const Coo& bench_matrix() {
    static const Coo m = gen::block_fem(900, 6, 8.0, 0.05, 2013);
    return m;
}

// A high-bandwidth matrix (offshore-like corner case).
const Coo& scattered_matrix() {
    static const Coo m = gen::banded_random(6000, 100, 16.0, 7, 0.6);
    return m;
}

// Shared bundles: the COO->CSR/SSS conversions run once across every
// registered benchmark instead of once per (kind x thread-count) case.
engine::MatrixBundle& bench_bundle() {
    static engine::MatrixBundle b = engine::MatrixBundle::view(bench_matrix());
    return b;
}

engine::MatrixBundle& scattered_bundle() {
    static engine::MatrixBundle b = engine::MatrixBundle::view(scattered_matrix());
    return b;
}

void bm_spmv(benchmark::State& state, KernelKind kind, const engine::MatrixBundle& bundle) {
    engine::ExecutionContext ctx(static_cast<int>(state.range(0)));
    const KernelPtr kernel = engine::KernelFactory(bundle, ctx).make(kind);
    const auto n = static_cast<std::size_t>(bundle.coo().rows());
    auto x = bench::random_vector(n, 17);
    std::vector<value_t> y(n);
    for (auto _ : state) {
        kernel->spmv(x, y);
        benchmark::DoNotOptimize(y.data());
        std::swap(x, y);
    }
    state.counters["Gflop/s"] = benchmark::Counter(
        static_cast<double>(kernel->flops()) * static_cast<double>(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
}

void register_spmv_benches() {
    for (KernelKind kind : all_kernel_kinds()) {
        const std::string name = "spmv/" + std::string(to_string(kind)) + "/blockfem";
        auto* bench = benchmark::RegisterBenchmark(
            name.c_str(), [kind](benchmark::State& s) { bm_spmv(s, kind, bench_bundle()); });
        bench->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond)->UseRealTime();
    }
    for (KernelKind kind : figure_kernel_kinds()) {
        const std::string name = "spmv/" + std::string(to_string(kind)) + "/scattered";
        auto* bench = benchmark::RegisterBenchmark(
            name.c_str(), [kind](benchmark::State& s) { bm_spmv(s, kind, scattered_bundle()); });
        bench->Arg(4)->Unit(benchmark::kMicrosecond)->UseRealTime();
    }
}

void bm_reduction_index_build(benchmark::State& state) {
    const Sss sss(scattered_matrix());
    const auto parts = split_by_nnz(sss.rowptr(), static_cast<int>(state.range(0)));
    for (auto _ : state) {
        const ReductionIndex index(sss, parts);
        benchmark::DoNotOptimize(index.entries().data());
    }
}
BENCHMARK(bm_reduction_index_build)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond)->UseRealTime();

void bm_csx_detection(benchmark::State& state) {
    const Coo& m = bench_matrix();
    const std::vector<Triplet> elems(m.entries().begin(), m.entries().end());
    csx::CsxConfig cfg;
    cfg.sample_fraction = static_cast<double>(state.range(0)) / 100.0;
    for (auto _ : state) {
        const csx::Detector d(elems, cfg);
        benchmark::DoNotOptimize(d.collect_stats().size());
    }
}
BENCHMARK(bm_csx_detection)->Arg(100)->Arg(25)->Unit(benchmark::kMillisecond);

void bm_csx_sym_build(benchmark::State& state) {
    const Sss sss(bench_matrix());
    for (auto _ : state) {
        const csx::CsxSymMatrix m(sss, csx::CsxConfig{}, 4);
        benchmark::DoNotOptimize(m.size_bytes());
    }
}
BENCHMARK(bm_csx_sym_build)->Unit(benchmark::kMillisecond);

void bm_rcm(benchmark::State& state) {
    const Coo& m = scattered_matrix();
    for (auto _ : state) {
        benchmark::DoNotOptimize(rcm_permutation(m).size());
    }
}
BENCHMARK(bm_rcm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    register_spmv_benches();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
