// Fig. 9 — symmetric SpM×V speedup (over serial CSR) with the different
// local-vector reduction methods, across thread counts.
//
// Paper shape: naive and effective-ranges stop scaling (and fall below CSR)
// as threads saturate the memory bus; the indexing scheme scales at CSR's
// rate while keeping the symmetric-format advantage (>2x over CSR on the
// SMP system).  NOTE: on a single-core host the thread sweep measures
// overhead shape, not true parallel speedup (DESIGN.md §5).
#include <iostream>

#include "bench/common.hpp"
#include "matrix/csr.hpp"
#include "spmv/csr_kernels.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const std::vector<KernelKind> kinds = {KernelKind::kCsr, KernelKind::kSssNaive,
                                           KernelKind::kSssEffective, KernelKind::kSssIndexing};

    std::cout << "Fig. 9: symmetric SpM×V speedup over serial CSR, per reduction method\n"
              << "(suite average, scale=" << env.scale << ", iters=" << env.iterations << ")\n\n";
    std::vector<int> widths = {10};
    for (std::size_t i = 0; i < kinds.size(); ++i) widths.push_back(11);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"p"};
    for (KernelKind k : kinds) head.emplace_back(to_string(k));
    table.header(head);

    // Serial CSR reference time per matrix.  One bundle per matrix amortizes
    // every COO->CSR/SSS conversion across the whole (p x kind) sweep.
    std::vector<double> serial_seconds;
    std::vector<engine::MatrixBundle> bundles;
    for (const auto& entry : env.entries) {
        bundles.emplace_back(env.load(entry));
        CsrSerialKernel serial(bundles.back().csr());
        serial_seconds.push_back(bench::measure(serial, bench::measure_options(env)).seconds_per_op);
    }

    for (int t : env.thread_counts) {
        auto ctx = env.make_context(t);
        std::vector<std::string> row = {std::to_string(t)};
        for (KernelKind kind : kinds) {
            double sum_speedup = 0.0;
            for (std::size_t m = 0; m < bundles.size(); ++m) {
                const engine::KernelFactory factory(bundles[m], ctx);
                const KernelPtr kernel = factory.make(kind);
                const auto meas = bench::measure(*kernel, bench::measure_options(env));
                sum_speedup += serial_seconds[m] / meas.seconds_per_op;
            }
            row.push_back(bench::TablePrinter::fmt(sum_speedup / bundles.size(), 2));
        }
        table.row(row);
    }
    std::cout << "\nPaper reference shape: SSS-naive/SSS-eff collapse toward (or below) CSR at\n"
                 "high thread counts; SSS-idx stays >= 2x CSR on the SMP system and scales.\n";
    return 0;
}
