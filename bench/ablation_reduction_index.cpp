// Ablation — reduction-index layout (§III.C, DESIGN.md §6).
//
// The paper stores (vid, idx) pairs with a "generously" 4-byte vid and
// notes 1-2 bytes suffice.  This bench quantifies the claim: index bytes
// and SpM×V time for the 4/2/1-byte vid streams and for the CSC-like
// grouped layout, per suite matrix at the maximum thread count.
#include <iostream>

#include "bench/common.hpp"
#include "matrix/sss.hpp"
#include "spmv/reduction_compact.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);
    const std::vector<IndexLayout> layouts = {IndexLayout::kPairs4, IndexLayout::kPairs2,
                                              IndexLayout::kPairs1, IndexLayout::kGrouped};

    std::cout << "Ablation: reduction-index layout at " << threads
              << " threads (scale=" << env.scale << ")\n"
              << "KiB = bytes of the conflict index; us = median SpM×V time\n\n";

    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < layouts.size(); ++i) {
        widths.push_back(10);
        widths.push_back(9);
    }
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (IndexLayout l : layouts) {
        const std::string base(to_string(l).substr(8));  // strip "SSS-idx-"
        head.push_back(base + " KiB");
        head.push_back(base + " us");
    }
    table.header(head);

    for (const auto& entry : env.entries) {
        // One bundle per matrix: COO->SSS runs once, each layout copies it.
        const engine::MatrixBundle bundle(env.load(entry));
        std::vector<std::string> row = {entry.name};
        for (IndexLayout layout : layouts) {
            SssCompactIdxKernel kernel(bundle.sss(), ctx, layout);
            const auto meas = bench::measure(kernel, bench::measure_options(env));
            row.push_back(
                bench::TablePrinter::fmt(static_cast<double>(kernel.index_bytes()) / 1024.0, 1));
            row.push_back(bench::TablePrinter::fmt(meas.seconds_per_op * 1e6, 1));
        }
        table.row(row);
    }
    std::cout << "\nExpected shape: the narrow-vid streams cut index bytes by 25-37% at\n"
                 "identical results; the grouped layout wins additionally when several\n"
                 "threads conflict on the same output rows (low-bandwidth matrices).\n";
    return 0;
}
