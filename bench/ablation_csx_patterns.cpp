// Ablation — CSX pattern set and detection sampling (DESIGN.md §6).
//
// Three sweeps per suite matrix:
//   1. Pattern families: full set vs leave-one-out vs delta-only (CSR-DU).
//      Reported: CSX-Sym compression ratio vs CSR.
//   2. Statistics sampling fraction: preprocessing seconds vs the
//      compression the sampled statistics still achieve (§V.E's "advanced
//      matrix sampling techniques").
//   3. Minimum pattern length.
#include <iostream>

#include "bench/common.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/csr.hpp"
#include "matrix/sss.hpp"

using namespace symspmv;

namespace {

struct Variant {
    std::string name;
    csx::CsxConfig cfg;
};

std::vector<Variant> pattern_variants() {
    std::vector<Variant> out;
    out.push_back({"full", csx::CsxConfig{}});
    const auto drop = [](auto mutate, std::string name) {
        csx::CsxConfig cfg;
        mutate(cfg);
        return Variant{std::move(name), cfg};
    };
    out.push_back(drop([](auto& c) { c.horizontal = false; }, "-horiz"));
    out.push_back(drop([](auto& c) { c.vertical = false; }, "-vert"));
    out.push_back(drop([](auto& c) { c.diagonal = c.antidiagonal = false; }, "-diag"));
    out.push_back(drop([](auto& c) { c.blocks = false; }, "-blocks"));
    out.push_back({"delta-only", csx::delta_only_config()});
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int parts = env.max_threads();
    const auto variants = pattern_variants();

    // One bundle per matrix, shared by all three sweeps below: each
    // COO->CSR/SSS conversion happens exactly once per matrix, not once per
    // sweep.
    std::vector<engine::MatrixBundle> bundles;
    for (const auto& entry : env.entries) bundles.emplace_back(env.load(entry));

    std::cout << "Ablation: CSX-Sym pattern families (compression ratio vs CSR; scale="
              << env.scale << ", " << parts << " partitions)\n\n";
    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < variants.size(); ++i) widths.push_back(11);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (const Variant& v : variants) head.push_back(v.name);
    table.header(head);

    for (std::size_t i = 0; i < env.entries.size(); ++i) {
        const engine::MatrixBundle& bundle = bundles[i];
        const double csr_bytes = static_cast<double>(bundle.csr().size_bytes());
        std::vector<std::string> row = {env.entries[i].name};
        for (const Variant& v : variants) {
            const csx::CsxSymMatrix m(bundle.sss(), v.cfg, parts);
            row.push_back(
                bench::TablePrinter::pct(1.0 - static_cast<double>(m.size_bytes()) / csr_bytes));
        }
        table.row(row);
    }

    std::cout << "\nAblation: statistics sampling fraction (preprocess seconds -> C.R.)\n\n";
    const std::vector<double> fractions = {1.0, 0.5, 0.25, 0.1};
    std::vector<int> w2 = {14};
    for (std::size_t i = 0; i < fractions.size(); ++i) w2.push_back(16);
    bench::TablePrinter table2(std::cout, w2, env.csv_sink);
    std::vector<std::string> head2 = {"Matrix"};
    for (double f : fractions) head2.push_back("sample " + bench::TablePrinter::fmt(f, 2));
    table2.header(head2);

    for (std::size_t i = 0; i < env.entries.size(); ++i) {
        const engine::MatrixBundle& bundle = bundles[i];
        const double csr_bytes = static_cast<double>(bundle.csr().size_bytes());
        std::vector<std::string> row = {env.entries[i].name};
        for (double f : fractions) {
            csx::CsxConfig cfg;
            cfg.sample_fraction = f;
            const csx::CsxSymMatrix m(bundle.sss(), cfg, parts);
            row.push_back(
                bench::TablePrinter::fmt(m.preprocess_seconds() * 1e3, 1) + "ms/" +
                bench::TablePrinter::pct(1.0 - static_cast<double>(m.size_bytes()) / csr_bytes));
        }
        table2.row(row);
    }

    std::cout << "\nAblation: minimum pattern length (C.R.)\n\n";
    const std::vector<int> min_lengths = {2, 4, 8, 16};
    std::vector<int> w3 = {14};
    for (std::size_t i = 0; i < min_lengths.size(); ++i) w3.push_back(10);
    bench::TablePrinter table3(std::cout, w3, env.csv_sink);
    std::vector<std::string> head3 = {"Matrix"};
    for (int l : min_lengths) head3.push_back("len>=" + std::to_string(l));
    table3.header(head3);

    for (std::size_t i = 0; i < env.entries.size(); ++i) {
        const engine::MatrixBundle& bundle = bundles[i];
        const double csr_bytes = static_cast<double>(bundle.csr().size_bytes());
        std::vector<std::string> row = {env.entries[i].name};
        for (int l : min_lengths) {
            csx::CsxConfig cfg;
            cfg.min_pattern_length = l;
            const csx::CsxSymMatrix m(bundle.sss(), cfg, parts);
            row.push_back(
                bench::TablePrinter::pct(1.0 - static_cast<double>(m.size_bytes()) / csr_bytes));
        }
        table3.row(row);
    }

    std::cout << "\nExpected shape: block-structured matrices lose the most compression when\n"
                 "blocks are disabled; stencils when horizontal/diagonal are; sampling keeps\n"
                 "nearly full compression at a fraction of the preprocessing time.\n";
    return 0;
}
