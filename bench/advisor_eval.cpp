// Format-advisor evaluation: advice vs measurement across the suite.
//
// For every suite matrix the advisor predicts a format from structure
// alone; this bench then measures the candidate set and reports where the
// advice landed.  On the paper's hardware the structural rules match the
// measured winners (that is what §V.B/§V.D establish); on other hosts the
// table documents how far structure-only advice carries.
#include <iostream>

#include "bench/advisor.hpp"
#include "bench/common.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    auto ctx = env.make_context(threads);
    const std::vector<KernelKind> candidates = {
        KernelKind::kCsr, KernelKind::kSssIndexing, KernelKind::kCsxSym, KernelKind::kBcsr};

    std::cout << "Format advisor vs measurement at " << threads
              << " threads (scale=" << env.scale << ")\n\n";
    bench::TablePrinter table(std::cout, {14, 12, 12, 10, 10}, env.csv_sink);
    table.header({"Matrix", "advised", "best", "adv GF", "best GF"});

    int hits = 0;
    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const engine::KernelFactory factory(bundle, ctx);
        const bench::Advice advice = bench::advise(bundle.coo());
        double best_gf = 0.0;
        double advised_gf = 0.0;
        std::string best_name;
        for (KernelKind kind : candidates) {
            const KernelPtr kernel = factory.make(kind);
            const double gf = bench::measure(*kernel, bench::measure_options(env)).gflops;
            if (gf > best_gf) {
                best_gf = gf;
                best_name = std::string(to_string(kind));
            }
            if (kind == advice.kernel) advised_gf = gf;
        }
        if (best_name == to_string(advice.kernel)) ++hits;
        table.row({entry.name, std::string(to_string(advice.kernel)), best_name,
                   bench::TablePrinter::fmt(advised_gf, 2), bench::TablePrinter::fmt(best_gf, 2)});
    }
    table.rule();
    std::cout << "advice matched the measured winner on " << hits << "/" << env.entries.size()
              << " matrices\n"
              << "\nExpected shape (paper hardware): corner cases -> CSR, block FEM ->\n"
                 "CSX-Sym, sparse stencils -> SSS-idx; single-core hosts skew measured\n"
                 "winners toward CSR because bandwidth is never contended.\n";
    return 0;
}
