// Table III — average SpM×V performance improvement from RCM reordering
// for CSR, CSX, SSS (idx) and CSX-Sym at the maximum thread count.
//
// Paper (Dunnington, 24 threads): CSR +22.0%, CSX +63.0%, SSS +92.2%,
// CSX-Sym +106.8%; attenuated on NUMA (Gainestown, 16 threads): +11.1%,
// +14.0%, +43.6%, +48.5%.  The ordering CSX-Sym > SSS > CSX > CSR is the
// shape to reproduce: symmetric kernels gain the most because reordering
// also shrinks their conflict index.
//
// Fidelity note: the UF matrices arrive in their applications' natural
// (bandwidth-unoptimized) ordering, which is what RCM improves.  The
// synthetic analogs are *generated* band-concentrated, so by default the
// "before" matrix is a seeded random symmetric permutation of the analog —
// the honest stand-in for an application ordering.  Pass --no-scramble to
// measure RCM against the generated ordering instead (real .mtx inputs via
// --matrices are never scrambled).
#include <algorithm>
#include <iostream>
#include <random>

#include "bench/common.hpp"
#include "matrix/properties.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

using namespace symspmv;

namespace {

Coo scramble(const Coo& a, std::uint64_t seed) {
    std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<index_t>(i);
    std::mt19937_64 rng(seed);
    std::ranges::shuffle(perm, rng);
    return permute_symmetric(a, perm);
}

}  // namespace

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const Options opts(argc, argv);
    const bool scramble_first = !opts.has("--no-scramble") && env.matrices_dir.empty();
    const int threads = env.max_threads();
    const auto& kinds = figure_kernel_kinds();
    auto ctx = env.make_context(threads);

    std::cout << "Table III: SpM×V improvement due to RCM reordering at " << threads
              << " threads (scale=" << env.scale << ", iters=" << env.iterations
              << (scramble_first ? ", natural-order emulation: scrambled" : "") << ")\n\n";
    bench::TablePrinter table(std::cout, {10, 14, 14}, env.csv_sink);
    table.header({"Format", "improvement", "(suite avg)"});

    std::vector<double> gains(kinds.size(), 0.0);
    double bw_before = 0.0;
    double bw_after = 0.0;
    for (const auto& entry : env.entries) {
        Coo plain = env.load(entry);
        if (scramble_first) plain = scramble(plain, 2013);
        Coo reordered = permute_symmetric(plain, rcm_permutation(plain));
        bw_before += static_cast<double>(bandwidth(plain)) / env.entries.size();
        bw_after += static_cast<double>(bandwidth(reordered)) / env.entries.size();
        // Two bundles per matrix: the plain and reordered conversions each
        // run once for the whole kind sweep.
        const engine::MatrixBundle bundle_before(std::move(plain));
        const engine::MatrixBundle bundle_after(std::move(reordered));
        const engine::KernelFactory factory_before(bundle_before, ctx);
        const engine::KernelFactory factory_after(bundle_after, ctx);
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const KernelPtr before = factory_before.make(kinds[k]);
            const KernelPtr after = factory_after.make(kinds[k]);
            const double t_before =
                bench::measure(*before, bench::measure_options(env)).seconds_per_op;
            const double t_after =
                bench::measure(*after, bench::measure_options(env)).seconds_per_op;
            gains[k] += t_before / t_after - 1.0;
        }
    }
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        table.row({std::string(to_string(kinds[k])),
                   bench::TablePrinter::pct(gains[k] / env.entries.size()), ""});
    }
    std::cout << "\nAverage matrix bandwidth: " << static_cast<long>(bw_before) << " -> "
              << static_cast<long>(bw_after) << " after RCM.\n"
              << "Paper reference: Dunnington 24t: CSR +22.0%, CSX +63.0%, SSS +92.2%,\n"
                 "CSX-Sym +106.8%; Gainestown 16t: +11.1%, +14.0%, +43.6%, +48.5%.\n";
    return 0;
}
