// Fig. 11 — symmetric SpM×V speedup with the CSX-Sym format: CSR, CSX,
// SSS-idx and CSX-Sym across thread counts (all symmetric formats use the
// optimized local-vectors indexing).
//
// Paper shape: CSX-Sym on top (+43.4% over SSS-idx on the bandwidth-starved
// SMP, +10% on NUMA), SSS-idx second, unsymmetric CSX third, CSR last.
#include <iostream>

#include "bench/common.hpp"
#include "matrix/csr.hpp"
#include "spmv/csr_kernels.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const auto& kinds = figure_kernel_kinds();  // CSR, CSX, SSS-idx, CSX-Sym

    std::cout << "Fig. 11: SpM×V speedup over serial CSR with CSX-Sym\n"
              << "(suite average, scale=" << env.scale << ", iters=" << env.iterations << ")\n\n";
    std::vector<int> widths = {10};
    for (std::size_t i = 0; i < kinds.size(); ++i) widths.push_back(11);
    bench::TablePrinter table(std::cout, widths);
    std::vector<std::string> head = {"p"};
    for (KernelKind k : kinds) head.emplace_back(to_string(k));
    table.header(head);

    std::vector<double> serial_seconds;
    std::vector<Coo> matrices;
    for (const auto& entry : env.entries) {
        matrices.push_back(env.load(entry));
        CsrSerialKernel serial((Csr(matrices.back())));
        serial_seconds.push_back(
            bench::measure(serial, bench::measure_options(env)).seconds_per_op);
    }

    for (int t : env.thread_counts) {
        ThreadPool pool(t);
        std::vector<std::string> row = {std::to_string(t)};
        for (KernelKind kind : kinds) {
            double sum_speedup = 0.0;
            for (std::size_t m = 0; m < matrices.size(); ++m) {
                const KernelPtr kernel = make_kernel(kind, matrices[m], pool);
                const auto meas = bench::measure(*kernel, bench::measure_options(env));
                sum_speedup += serial_seconds[m] / meas.seconds_per_op;
            }
            row.push_back(bench::TablePrinter::fmt(sum_speedup / matrices.size(), 2));
        }
        table.row(row);
    }
    std::cout << "\nPaper reference shape (multithreaded): CSX-Sym > SSS-idx > CSX > CSR;\n"
                 "the symmetric formats' margin is largest where bandwidth is scarce.\n";
    return 0;
}
