// Fig. 11 — symmetric SpM×V speedup with the CSX-Sym format: CSR, CSX,
// SSS-idx and CSX-Sym across thread counts (all symmetric formats use the
// optimized local-vectors indexing).
//
// Paper shape: CSX-Sym on top (+43.4% over SSS-idx on the bandwidth-starved
// SMP, +10% on NUMA), SSS-idx second, unsymmetric CSX third, CSR last.
#include <iostream>

#include "bench/common.hpp"
#include "matrix/csr.hpp"
#include "spmv/csr_kernels.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const auto& kinds = figure_kernel_kinds();  // CSR, CSX, SSS-idx, CSX-Sym

    std::cout << "Fig. 11: SpM×V speedup over serial CSR with CSX-Sym\n"
              << "(suite average, scale=" << env.scale << ", iters=" << env.iterations << ")\n\n";
    std::vector<int> widths = {10};
    for (std::size_t i = 0; i < kinds.size(); ++i) widths.push_back(11);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"p"};
    for (KernelKind k : kinds) head.emplace_back(to_string(k));
    table.header(head);

    // One bundle per matrix: the COO->CSR/SSS conversions run once for the
    // whole (p x kind) sweep instead of once per kernel build.
    std::vector<double> serial_seconds;
    std::vector<engine::MatrixBundle> bundles;
    for (const auto& entry : env.entries) {
        bundles.emplace_back(env.load(entry));
        CsrSerialKernel serial(bundles.back().csr());
        serial_seconds.push_back(
            bench::measure(serial, bench::measure_options(env)).seconds_per_op);
    }

    for (int t : env.thread_counts) {
        auto ctx = env.make_context(t);
        std::vector<std::string> row = {std::to_string(t)};
        for (KernelKind kind : kinds) {
            double sum_speedup = 0.0;
            for (std::size_t m = 0; m < bundles.size(); ++m) {
                const engine::KernelFactory factory(bundles[m], ctx);
                const KernelPtr kernel = factory.make(kind);
                const auto meas = bench::measure(*kernel, bench::measure_options(env));
                sum_speedup += serial_seconds[m] / meas.seconds_per_op;
            }
            row.push_back(bench::TablePrinter::fmt(sum_speedup / bundles.size(), 2));
        }
        table.row(row);
    }
    std::cout << "\nPaper reference shape (multithreaded): CSX-Sym > SSS-idx > CSX > CSR;\n"
                 "the symmetric formats' margin is largest where bandwidth is scarce.\n";
    return 0;
}
