// Fig. 13 — per-matrix SpM×V performance on the RCM-reordered matrices.
//
// Paper shape (Gainestown, 16 threads): the four former corner cases are
// considerably improved though still below the regular matrices (their high
// sparsity leaves short rows and loop overhead); CSX-Sym stays on top for
// the majority, surpassing 12 Gflop/s on the large structural matrices.
#include <iostream>

#include "bench/common.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    const auto& kinds = figure_kernel_kinds();
    auto ctx = env.make_context(threads);

    std::cout << "Fig. 13: per-matrix SpM×V performance on RCM-reordered matrices at "
              << threads << " threads (scale=" << env.scale << ")\n\n";
    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < kinds.size(); ++i) widths.push_back(11);
    widths.push_back(10);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (KernelKind k : kinds) head.emplace_back(std::string(to_string(k)) + " GF");
    head.emplace_back("best");
    table.header(head);

    for (const auto& entry : env.entries) {
        const Coo plain = env.load(entry);
        const engine::MatrixBundle bundle(permute_symmetric(plain, rcm_permutation(plain)));
        const engine::KernelFactory factory(bundle, ctx);
        std::vector<std::string> row = {entry.name};
        double best = 0.0;
        std::string best_name;
        for (KernelKind kind : kinds) {
            const KernelPtr kernel = factory.make(kind);
            const auto meas = bench::measure(*kernel, bench::measure_options(env));
            row.push_back(bench::TablePrinter::fmt(meas.gflops, 2));
            if (meas.gflops > best) {
                best = meas.gflops;
                best_name = std::string(to_string(kind));
            }
        }
        row.push_back(best_name);
        table.row(row);
    }
    std::cout << "\nPaper reference shape: former corner cases improve markedly but stay\n"
                 "below the regular matrices; CSX-Sym leads on most of the suite.\n";
    return 0;
}
