// Shared plumbing for the per-table/per-figure bench binaries.
//
// Every bench accepts:
//   --scale F        suite scale factor (1.0 = the paper's sizes; default is
//                    laptop-sized so the full bench sweep finishes quickly)
//   --matrices DIR   directory of real .mtx files (overrides the generators)
//   --matrix NAME    restrict to a single suite matrix
//   --iterations N   SpM×V iterations per measurement (paper: 128)
//   --threads LIST   comma-separated thread counts for sweeps
//   --csv FILE       mirror every printed table to FILE as CSV
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "bench/registry.hpp"
#include "core/options.hpp"
#include "matrix/suite.hpp"

namespace symspmv::bench {

struct BenchEnv {
    double scale = 0.008;
    std::string matrices_dir;
    int iterations = 24;
    std::vector<int> thread_counts = {1, 2, 4, 8, 16};
    std::vector<gen::SuiteEntry> entries;

    [[nodiscard]] Coo load(const gen::SuiteEntry& entry) const {
        return gen::load_or_generate(entry.name, scale, matrices_dir);
    }

    [[nodiscard]] int max_threads() const { return thread_counts.back(); }
};

inline std::vector<int> parse_thread_list(const std::string& list) {
    std::vector<int> out;
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (!tok.empty()) out.push_back(std::stoi(tok));
    }
    return out;
}

inline BenchEnv parse_env(int argc, const char* const* argv, int default_iterations = 24) {
    const Options opts(argc, argv);
    BenchEnv env;
    env.scale = opts.get_double("--scale", env.scale);
    env.matrices_dir = opts.get_string("--matrices", "");
    env.iterations = static_cast<int>(opts.get_int("--iterations", default_iterations));
    const std::string threads = opts.get_string("--threads", "");
    if (!threads.empty()) env.thread_counts = parse_thread_list(threads);
    const std::string csv_path = opts.get_string("--csv", "");
    if (!csv_path.empty()) {
        static std::ofstream csv_file;  // outlives every TablePrinter
        csv_file.open(csv_path);
        if (!csv_file) {
            std::cerr << "cannot open --csv file '" << csv_path << "'\n";
            std::exit(2);
        }
        TablePrinter::set_csv_sink(&csv_file);
    }
    const std::string only = opts.get_string("--matrix", "");
    for (const gen::SuiteEntry& e : gen::suite_entries()) {
        if (only.empty() || e.name == only) env.entries.push_back(e);
    }
    if (env.entries.empty()) {
        std::cerr << "no suite matrix named '" << only << "'\n";
        std::exit(2);
    }
    return env;
}

inline MeasureOptions measure_options(const BenchEnv& env) {
    MeasureOptions m;
    m.iterations = env.iterations;
    return m;
}

}  // namespace symspmv::bench
