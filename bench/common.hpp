// Shared plumbing for the per-table/per-figure bench binaries.
//
// Every bench accepts:
//   --scale F        suite scale factor (1.0 = the paper's sizes; default is
//                    laptop-sized so the full bench sweep finishes quickly)
//   --matrices DIR   directory of real .mtx files (overrides the generators)
//   --matrix NAME    restrict to a single suite matrix
//   --iterations N   SpM×V iterations per measurement (paper: 128)
//   --threads LIST   comma-separated thread counts for sweeps
//   --pin            pin worker threads to logical CPUs (§V.A)
//   --pin-strategy S topology-aware layout: none|compact|scatter|per-socket
//                    (implies pinning; overrides --pin's compact default)
//   --cache DIR      binary .smx cache for generated suite matrices (the
//                    full-scale tier generates each matrix once per machine)
//   --csv FILE       mirror every printed table to FILE as CSV
//   --plan-cache DIR persistent autotune plan cache (benches that tune)
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/options.hpp"
#include "core/topology.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/suite.hpp"

namespace symspmv::bench {

struct BenchEnv {
    double scale = 0.008;
    std::string matrices_dir;
    std::string cache_dir;   // .smx cache for generated matrices ("" = off)
    std::string plan_cache;  // autotune plan-cache directory ("" = in-memory)
    int iterations = 24;
    bool pin_threads = false;
    /// Topology-aware layout (--pin-strategy); kNone defers to pin_threads,
    /// which maps to the compact layout (engine::effective_pin_strategy).
    PinStrategy pin_strategy = PinStrategy::kNone;
    std::vector<int> thread_counts = {1, 2, 4, 8, 16};
    std::vector<gen::SuiteEntry> entries;

    // The --csv stream (if any); csv_sink is what TablePrinter takes, so a
    // bench without --csv simply passes nullptr.  Instance-scoped: two
    // BenchEnvs never share a sink.
    std::shared_ptr<std::ofstream> csv_file;
    std::ostream* csv_sink = nullptr;

    [[nodiscard]] Coo load(const gen::SuiteEntry& entry) const {
        return gen::load_or_generate(entry.name, scale, matrices_dir, cache_dir);
    }

    [[nodiscard]] int max_threads() const { return thread_counts.back(); }

    /// An ExecutionContext with @p threads workers and the bench's pinning
    /// configuration — the one object handed to factories, solvers and
    /// probes.  Contexts draw their worker pools from the process-wide
    /// ContextPool, so repeated make_context(p) calls across a sweep reuse
    /// one warm pool per (p, strategy).
    [[nodiscard]] engine::ExecutionContext make_context(int threads) const {
        return engine::ExecutionContext(engine::ContextOptions{.threads = threads,
                                                               .pin_threads = pin_threads,
                                                               .pin_strategy = pin_strategy});
    }
};

/// Drops sweep entries above @p logical_cpus — the default {1,2,4,8,16}
/// sweep on a 4-CPU container would otherwise spend most of its wall-clock
/// measuring scheduler contention instead of the kernel.  Only *default*
/// sweeps are clamped (an explicit --threads list is the user asking for
/// exactly those counts, oversubscribed or not; the record's
/// exec.oversubscribed flag tags such rows).  Keeps at least {1};
/// @p logical_cpus <= 0 (topology unknown) leaves the list untouched.
inline std::vector<int> clamp_thread_counts(std::vector<int> counts, int logical_cpus) {
    if (logical_cpus <= 0) return counts;
    std::erase_if(counts, [logical_cpus](int c) { return c > logical_cpus; });
    if (counts.empty()) counts.push_back(1);
    return counts;
}

inline std::vector<int> parse_thread_list(const std::string& list) {
    std::vector<int> out;
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (!tok.empty()) out.push_back(std::stoi(tok));
    }
    return out;
}

inline BenchEnv parse_env(int argc, const char* const* argv, int default_iterations = 24) {
    const Options opts(argc, argv);
    BenchEnv env;
    env.scale = opts.get_double("--scale", env.scale);
    env.matrices_dir = opts.get_string("--matrices", "");
    env.cache_dir = opts.get_string("--cache", "");
    env.plan_cache = opts.get_string("--plan-cache", "");
    env.iterations = static_cast<int>(opts.get_int("--iterations", default_iterations));
    env.pin_threads = opts.has("--pin");
    const std::string strategy = opts.get_string("--pin-strategy", "");
    if (!strategy.empty()) {
        try {
            env.pin_strategy = parse_pin_strategy(strategy);
        } catch (const std::exception& e) {
            std::cerr << e.what() << "\n";
            std::exit(2);
        }
    }
    const std::string threads = opts.get_string("--threads", "");
    if (!threads.empty()) {
        env.thread_counts = parse_thread_list(threads);
    } else {
        env.thread_counts =
            clamp_thread_counts(std::move(env.thread_counts), local_topology().logical_cpus());
    }
    const std::string csv_path = opts.get_string("--csv", "");
    if (!csv_path.empty()) {
        env.csv_file = std::make_shared<std::ofstream>(csv_path);
        if (!*env.csv_file) {
            std::cerr << "cannot open --csv file '" << csv_path << "'\n";
            std::exit(2);
        }
        env.csv_sink = env.csv_file.get();
    }
    const std::string only = opts.get_string("--matrix", "");
    for (const gen::SuiteEntry& e : gen::suite_entries()) {
        if (only.empty() || e.name == only) env.entries.push_back(e);
    }
    if (env.entries.empty()) {
        std::cerr << "no suite matrix named '" << only << "'\n";
        std::exit(2);
    }
    return env;
}

inline MeasureOptions measure_options(const BenchEnv& env) {
    MeasureOptions m;
    m.iterations = env.iterations;
    return m;
}

/// Deterministic uniform(-1, 1) vector — the shared input generator for
/// every bench that needs a right-hand side or an x vector.
inline std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed = 2013) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> v(n);
    for (auto& x : v) x = dist(rng);
    return v;
}

}  // namespace symspmv::bench
