// §V.B cache-interference study (machine-independent).
//
// The paper explains the indexing method's *multiply-phase* win as reduced
// cache pollution: "the high working set overhead of the alternative
// methods ... is likely to spill out useful data from the cache, incurring
// an increased overhead to the multiplication phase of the next
// iteration".  This bench replays the multiply -> reduce -> multiply
// address streams of all three reduction methods through LRU models of the
// paper's own cache hierarchies (Table II) and reports the second
// multiply's miss count — the pollution damage — plus each reduction's own
// misses.
#include <iostream>

#include "bench/common.hpp"
#include "cachesim/cache.hpp"
#include "cachesim/spmv_trace.hpp"
#include "matrix/sss.hpp"

using namespace symspmv;
using namespace symspmv::cachesim;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const Options opts(argc, argv);
    const int threads = env.max_threads();
    const std::string level = opts.get_string("--cache", "dunnington_l3");
    CacheConfig cfg = dunnington_l3();
    if (level == "dunnington_l2") cfg = dunnington_l2();
    if (level == "gainestown_l2") cfg = gainestown_l2();
    if (level == "gainestown_l3") cfg = gainestown_l3();

    const std::vector<ReductionMethod> methods = {
        ReductionMethod::kNaive, ReductionMethod::kEffectiveRanges, ReductionMethod::kIndexing};

    std::cout << "Cache interference of the reduction phase (§V.B) — " << level << " ("
              << cfg.size_bytes / 1024 << " KiB, " << cfg.ways << "-way), " << threads
              << " simulated threads, scale=" << env.scale << "\n"
              << "Kmiss = misses/1000: mult1 (cold), reduce, mult2 (after pollution)\n\n";

    std::vector<int> widths = {14, 9};
    for (std::size_t i = 0; i < methods.size(); ++i) {
        widths.push_back(10);
        widths.push_back(10);
    }
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix", "mult1"};
    for (ReductionMethod m : methods) {
        const std::string base(to_string(m).substr(4));
        head.push_back(base + " red");
        head.push_back(base + " m2");
    }
    table.header(head);

    const auto kmiss = [](std::int64_t misses) {
        return bench::TablePrinter::fmt(static_cast<double>(misses) / 1e3, 1);
    };
    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const Sss& sss = bundle.sss();
        const auto parts = split_by_nnz(sss.rowptr(), threads);
        const SpmvTrace trace(sss, parts);
        std::vector<std::string> row = {entry.name};
        bool first = true;
        for (ReductionMethod m : methods) {
            Cache cache(cfg);
            const InterferenceResult r = trace.run_interference(cache, m);
            if (first) {
                row.push_back(kmiss(r.first_multiply));
                first = false;
            }
            row.push_back(kmiss(r.reduction));
            row.push_back(kmiss(r.second_multiply));
        }
        table.row(row);
    }
    std::cout << "\nExpected shape: the indexed reduction both misses least itself and\n"
                 "leaves the next multiply's working set intact (lowest m2 column) —\n"
                 "the machine-independent version of the paper's Fig. 10 explanation.\n";
    return 0;
}
