// Fig. 10 — execution-time breakdown of the symmetric SpM×V at the maximum
// thread count: multiplication phase vs reduction phase, per reduction
// method and per matrix.
//
// Paper shape: the shaded (reduction) share dominates for naive/effective
// ranges at 24 threads and is minimal for the indexing scheme, which also
// shortens the multiply phase via reduced cache interference.
#include <iostream>

#include "bench/common.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    const std::vector<KernelKind> kinds = {KernelKind::kSssNaive, KernelKind::kSssEffective,
                                           KernelKind::kSssIndexing};
    ThreadPool pool(threads);

    std::cout << "Fig. 10: symmetric SpM×V time breakdown at " << threads
              << " threads (scale=" << env.scale << ", iters=" << env.iterations << ")\n\n";
    bench::TablePrinter table(std::cout, {14, 11, 11, 11, 11});
    table.header({"Matrix", "Method", "mult us", "reduce us", "reduce %"});

    for (const auto& entry : env.entries) {
        const Coo full = env.load(entry);
        for (KernelKind kind : kinds) {
            const KernelPtr kernel = make_kernel(kind, full, pool);
            const auto meas = bench::measure(*kernel, bench::measure_options(env));
            const double mult = meas.phase_totals.multiply_seconds / env.iterations;
            const double red = meas.phase_totals.reduction_seconds / env.iterations;
            table.row({entry.name, std::string(to_string(kind)),
                       bench::TablePrinter::fmt(mult * 1e6, 1),
                       bench::TablePrinter::fmt(red * 1e6, 1),
                       bench::TablePrinter::pct(red / (mult + red))});
        }
        table.rule();
    }
    std::cout << "\nPaper reference shape: reduction dominates naive/eff at high thread\n"
                 "counts; indexing keeps it minimal and also shrinks the multiply phase.\n";
    return 0;
}
