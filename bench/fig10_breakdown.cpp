// Fig. 10 — execution-time breakdown of the symmetric SpM×V at the maximum
// thread count: multiplication phase vs reduction phase, per reduction
// method and per matrix.
//
// Paper shape: the shaded (reduction) share dominates for naive/effective
// ranges at 24 threads and is minimal for the indexing scheme, which also
// shortens the multiply phase via reduced cache interference.
//
// The per-thread phase profiler adds the column the scalar split cannot
// show: the multiply-phase load imbalance (slowest thread over mean - 1),
// i.e. how long the fast threads idle at the phase barrier.
#include <iostream>

#include "bench/common.hpp"
#include "engine/profiler.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    const std::vector<KernelKind> kinds = {KernelKind::kSssNaive, KernelKind::kSssEffective,
                                           KernelKind::kSssIndexing};
    auto ctx = env.make_context(threads);

    std::cout << "Fig. 10: symmetric SpM×V time breakdown at " << threads
              << " threads (scale=" << env.scale << ", iters=" << env.iterations << ")\n\n";
    bench::TablePrinter table(std::cout, {14, 11, 11, 11, 11, 9}, env.csv_sink);
    table.header({"Matrix", "Method", "mult us", "reduce us", "reduce %", "imb %"});

    engine::PhaseProfiler profiler(threads);
    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));
        const engine::KernelFactory factory(bundle, ctx);
        for (KernelKind kind : kinds) {
            const KernelPtr kernel = factory.make(kind);
            auto opts = bench::measure_options(env);
            opts.profiler = &profiler;
            const auto meas = bench::measure(*kernel, opts);
            const double mult = meas.phase_totals.multiply_seconds / env.iterations;
            const double red = meas.phase_totals.reduction_seconds / env.iterations;
            const double imbalance = profiler.stats(engine::Phase::kMultiply).imbalance;
            table.row({entry.name, std::string(to_string(kind)),
                       bench::TablePrinter::fmt(mult * 1e6, 1),
                       bench::TablePrinter::fmt(red * 1e6, 1),
                       bench::TablePrinter::pct(red / (mult + red)),
                       bench::TablePrinter::pct(imbalance)});
        }
        table.rule();
    }
    std::cout << "\nPaper reference shape: reduction dominates naive/eff at high thread\n"
                 "counts; indexing keeps it minimal and also shrinks the multiply phase.\n";
    return 0;
}
