// Fig. 14 — CG execution-time breakdown on the RCM-reordered suite:
// SpM×V multiply, SpM×V reduction, vector operations, and CSX/CSX-Sym
// preprocessing, for CSR, CSX, SSS-idx and CSX-Sym.
//
// Paper shape (24 threads, 2048 iterations): vector ops dominate the small
// sparse matrices (parabolic_fem, offshore); symmetric formats cut total CG
// time by >50% on large matrices; CSX-Sym amortizes its preprocessing only
// on the larger matrices, where it beats SSS-idx.
#include <iostream>

#include "bench/common.hpp"
#include "core/timer.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "solver/cg.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const Options raw(argc, argv);
    const int iterations = static_cast<int>(raw.get_int("--cg-iterations", 64));
    const int threads = env.max_threads();
    const auto& kinds = figure_kernel_kinds();
    auto ctx = env.make_context(threads);

    std::cout << "Fig. 14: CG execution-time breakdown on RCM-reordered matrices\n"
              << "(" << threads << " threads, " << iterations << " CG iterations, scale="
              << env.scale << ")\n\n";
    bench::TablePrinter table(std::cout, {14, 9, 10, 10, 10, 10, 10}, env.csv_sink);
    table.header({"Matrix", "Format", "spmv ms", "reduce ms", "vecops ms", "prep ms",
                  "total ms"});

    for (const auto& entry : env.entries) {
        const Coo plain = env.load(entry);
        const engine::MatrixBundle bundle(permute_symmetric(plain, rcm_permutation(plain)));
        const engine::KernelFactory factory(bundle, ctx);
        // Force the shared conversions now so the per-kind prep timer below
        // charges only the format's own encoding, as in the paper (CSR/SSS
        // construction is the common baseline cost).
        bundle.csr();
        bundle.sss();
        std::vector<value_t> b(static_cast<std::size_t>(bundle.coo().rows()), 1.0);
        for (KernelKind kind : kinds) {
            Timer prep;
            const KernelPtr kernel = factory.make(kind);
            // Preprocessing is only charged to the compressed formats.
            const bool compressed = kind == KernelKind::kCsx || kind == KernelKind::kCsxSym;
            const double prep_s = compressed ? prep.seconds() : 0.0;

            cg::Options opts;
            opts.max_iterations = iterations;
            opts.tolerance = 0.0;  // run the full iteration budget, like the paper's 2048
            const cg::Result res = cg::solve(*kernel, ctx, b, opts);

            const auto ms = [](double s) { return bench::TablePrinter::fmt(s * 1e3, 1); };
            table.row({entry.name, std::string(to_string(kind)),
                       ms(res.breakdown.spmv_multiply_seconds),
                       ms(res.breakdown.spmv_reduction_seconds),
                       ms(res.breakdown.vector_ops_seconds), ms(prep_s),
                       ms(res.breakdown.total() + prep_s)});
        }
        table.rule();
    }
    std::cout << "\nPaper reference shape: vector ops dominate the small sparse matrices;\n"
                 "symmetric formats cut CG time >50% on large ones; CSX-Sym must amortize\n"
                 "its preprocessing and wins only on the larger matrices.\n";
    return 0;
}
