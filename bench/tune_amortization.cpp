// Tuning amortization (the §V.C argument applied to the autotuner): the
// one-time cost of the empirical plan search against the per-iteration gain
// of the tuned plan over the multithreaded CSR baseline, reported as the
// break-even SpM×V iteration count per suite matrix.
//
// Also the quality check of the tuned plan: its measured time is printed
// next to the best kernel of an exhaustive registry sweep at the same
// thread count, so any gap the pruned search leaves is visible.  A second
// tune() per matrix asserts the warm-cache property (zero timed trials).
//
// Extra flags beyond bench/common.hpp: --plan-cache DIR persists plans, so
// a re-run of this bench demonstrates the cross-process warm path.
#include <iostream>
#include <string>

#include "autotune/store.hpp"
#include "autotune/tuner.hpp"
#include "bench/common.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv, /*default_iterations=*/16);
    const int threads = env.max_threads();

    autotune::PlanStore store(env.plan_cache);
    autotune::TuneOptions tune_opts;
    tune_opts.pin_threads = env.pin_threads;
    tune_opts.refine_iterations = env.iterations;
    autotune::Tuner tuner(store, tune_opts);

    std::cout << "Autotune amortization: search cost vs per-iteration gain over CSR\n"
              << "(scale=" << env.scale << ", " << threads << " threads"
              << (store.persistent() ? ", plan cache " + store.directory() : "") << ")\n\n";
    bench::TablePrinter table(std::cout, {14, 22, 7, 8, 10, 10, 10, 10, 10}, env.csv_sink);
    table.header({"Matrix", "plan", "trials", "tune(s)", "tuned(ms)", "best(ms)", "best-kind",
                  "CSR(ms)", "brk-even"});

    bool warm_ok = true;
    for (const auto& entry : env.entries) {
        const engine::MatrixBundle bundle(env.load(entry));

        const autotune::TuneReport cold = tuner.tune(bundle, threads);
        const autotune::TuneReport warm = tuner.tune(bundle, threads);
        warm_ok = warm_ok && warm.trials == 0 &&
                  autotune::same_decision(warm.plan, cold.plan);

        // Re-measure the winner and the exhaustive registry sweep under the
        // same harness settings, so the comparison is apples-to-apples.
        engine::ExecutionContext ctx = env.make_context(threads);
        const engine::KernelFactory factory(bundle, ctx);
        auto opts = bench::measure_options(env);
        const KernelPtr tuned = autotune::build_plan(cold.plan, bundle, ctx.pool());
        const double tuned_s = bench::measure(*tuned, opts).seconds_per_op;

        double best_s = 0.0, csr_s = 0.0;
        std::string best_kind;
        for (KernelKind kind : autotune::default_tuning_kinds()) {
            const KernelPtr kernel = factory.make(kind);
            const double s = bench::measure(*kernel, opts).seconds_per_op;
            if (kind == KernelKind::kCsr) csr_s = s;
            if (best_kind.empty() || s < best_s) {
                best_s = s;
                best_kind = std::string(to_string(kind));
            }
        }

        // Break-even: SpM×V iterations after which the one-time search has
        // paid for itself through the per-iteration gain over CSR.
        const double gain = csr_s - tuned_s;
        const std::string break_even =
            gain > 0.0 ? bench::TablePrinter::fmt(cold.tune_seconds / gain, 0) : "never";
        table.row({entry.name, autotune::to_string(cold.plan), std::to_string(cold.trials),
                   bench::TablePrinter::fmt(cold.tune_seconds, 2),
                   bench::TablePrinter::fmt(tuned_s * 1e3, 3),
                   bench::TablePrinter::fmt(best_s * 1e3, 3), best_kind,
                   bench::TablePrinter::fmt(csr_s * 1e3, 3), break_even});
    }

    std::cout << "\nplan store: " << store.counters().hits << " hits ("
              << store.counters().disk_hits << " from disk), " << store.counters().misses
              << " misses, " << store.counters().saves << " saves; " << tuner.trials_total()
              << " timed trials total\n";
    if (!warm_ok) {
        std::cout << "WARM-CACHE PROPERTY VIOLATED: a repeated tune() ran timed trials or "
                     "changed its plan\n";
        return 1;
    }
    std::cout << "warm-cache property held: repeated tune() used 0 trials per matrix\n";
    return 0;
}
