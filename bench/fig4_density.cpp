// Fig. 4 — density of the effective regions of the local vectors vs thread
// count.  The paper reports the suite average falling from ~100% at 2
// threads to 10.7% at 24 threads and 2.6% at 256 threads.
#include <iostream>

#include "bench/common.hpp"
#include "core/partition.hpp"
#include "matrix/sss.hpp"
#include "spmv/reduction.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    auto env = bench::parse_env(argc, argv);
    const std::vector<int> threads = {2, 4, 8, 16, 24, 32, 64, 128, 256};

    std::cout << "Fig. 4: effective-region density vs thread count (scale=" << env.scale
              << ")\n\n";
    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < threads.size(); ++i) widths.push_back(8);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (int t : threads) head.push_back("p=" + std::to_string(t));
    table.header(head);

    std::vector<double> avg(threads.size(), 0.0);
    for (const auto& entry : env.entries) {
        const Sss sss(env.load(entry));
        std::vector<std::string> row = {entry.name};
        for (std::size_t i = 0; i < threads.size(); ++i) {
            const auto parts = split_by_nnz(sss.rowptr(), threads[i]);
            const ReductionIndex index(sss, parts);
            const double d = index.density();
            avg[i] += d;
            row.push_back(bench::TablePrinter::pct(d));
        }
        table.row(row);
    }
    table.rule();
    std::vector<std::string> row = {"average"};
    for (double a : avg) row.push_back(bench::TablePrinter::pct(a / env.entries.size()));
    table.row(row);
    std::cout << "\nPaper reference: average 10.7% at 24 threads, 2.6% at 256 threads;\n"
                 "density decreases monotonically as threads are added.\n";
    return 0;
}
