// Fig. 12 — per-matrix SpM×V performance (Gflop/s) at the maximum thread
// count for CSR, CSX, SSS-idx and CSX-Sym, plus the sustained-bandwidth
// context of Table II via the built-in STREAM-like probe.
//
// Paper shape (16 threads, Gainestown): CSX-Sym best on the 8 regular
// matrices (>10 Gflop/s); the 4 high-bandwidth corner cases
// (parabolic_fem, offshore, G3_circuit, thermal2) stay near CSR.
#include <iostream>

#include "bench/common.hpp"
#include "bench/streamprobe.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const auto env = bench::parse_env(argc, argv);
    const int threads = env.max_threads();
    const auto& kinds = figure_kernel_kinds();
    auto ctx = env.make_context(threads);

    const bench::StreamResult stream = bench::stream_probe(ctx);
    std::cout << "Fig. 12: per-matrix SpM×V performance at " << threads
              << " threads (scale=" << env.scale << ", iters=" << env.iterations << ")\n"
              << "Sustained bandwidth (triad probe): "
              << bench::TablePrinter::fmt(stream.triad_gbs, 2) << " GB/s\n\n";

    std::vector<int> widths = {14};
    for (std::size_t i = 0; i < kinds.size(); ++i) widths.push_back(11);
    widths.push_back(10);
    bench::TablePrinter table(std::cout, widths, env.csv_sink);
    std::vector<std::string> head = {"Matrix"};
    for (KernelKind k : kinds) head.emplace_back(std::string(to_string(k)) + " GF");
    head.emplace_back("best");
    table.header(head);

    for (const auto& entry : env.entries) {
        // One bundle per matrix: COO->CSR and COO->SSS run once here, not
        // once per kernel kind.
        const engine::MatrixBundle bundle(env.load(entry));
        const engine::KernelFactory factory(bundle, ctx);
        std::vector<std::string> row = {entry.name};
        double best = 0.0;
        std::string best_name;
        for (KernelKind kind : kinds) {
            const KernelPtr kernel = factory.make(kind);
            const auto meas = bench::measure(*kernel, bench::measure_options(env));
            row.push_back(bench::TablePrinter::fmt(meas.gflops, 2));
            if (meas.gflops > best) {
                best = meas.gflops;
                best_name = std::string(to_string(kind));
            }
        }
        row.push_back(best_name);
        table.row(row);
    }
    std::cout << "\nPaper reference shape: CSX-Sym wins on the regular (block-structured)\n"
                 "matrices; the four high-bandwidth corner cases stay near CSR.\n";
    return 0;
}
