// Additional bandwidth/profile-reduction orderings beside RCM (§V.D).
//
// The reordering literature the paper draws on ([18]-[20]) contains more
// than Cuthill-McKee; these two classics let the ordering ablation compare
// what RCM actually buys:
//
//  - King (1970): like Cuthill-McKee, but at every step the candidate that
//    adds the fewest *new* frontier vertices is numbered next — a greedy
//    wavefront (profile) minimizer.
//  - Sloan (1986): priority-queue ordering balancing the distance to a
//    pseudo-peripheral end vertex against the current degree; typically
//    better *profile* (sum of row bandwidths) than RCM at slightly worse
//    maximum bandwidth.
//
// Both return perm[old] = new, compose with permute_symmetric(), and
// handle disconnected graphs by restarting per component.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

/// King ordering: perm[old] = new.
std::vector<index_t> king_permutation(const Coo& a);

/// Sloan ordering: perm[old] = new.  @p w1 weights the global distance
/// term, @p w2 the local degree term (Sloan's recommended 2:1 default).
std::vector<index_t> sloan_permutation(const Coo& a, int w1 = 2, int w2 = 1);

/// Profile of a symmetric matrix: sum over rows of (i - min column in row i)
/// for the lower triangle — the quantity King/Sloan minimize (bandwidth()
/// in matrix/properties.hpp is the max).
std::int64_t profile(const Coo& a);

}  // namespace symspmv
