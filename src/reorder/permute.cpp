#include "reorder/permute.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv {

bool is_permutation(std::span<const index_t> perm) {
    const auto n = static_cast<index_t>(perm.size());
    std::vector<bool> seen(perm.size(), false);
    for (index_t p : perm) {
        if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
        seen[static_cast<std::size_t>(p)] = true;
    }
    return true;
}

std::vector<index_t> invert_permutation(std::span<const index_t> perm) {
    SYMSPMV_CHECK_MSG(is_permutation(perm), "invert_permutation: not a permutation");
    std::vector<index_t> inv(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
    }
    return inv;
}

Coo permute_symmetric(const Coo& a, std::span<const index_t> perm) {
    SYMSPMV_CHECK_MSG(a.rows() == a.cols(), "permute_symmetric: matrix must be square");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(perm.size()) == a.rows(),
                      "permute_symmetric: permutation size mismatch");
    SYMSPMV_CHECK_MSG(is_permutation(perm), "permute_symmetric: not a permutation");
    Coo out(a.rows(), a.cols());
    for (const Triplet& t : a.entries()) {
        out.add(perm[static_cast<std::size_t>(t.row)], perm[static_cast<std::size_t>(t.col)],
                t.val);
    }
    out.canonicalize();
    return out;
}

std::vector<value_t> permute_vector(std::span<const value_t> v, std::span<const index_t> perm) {
    SYMSPMV_CHECK_MSG(v.size() == perm.size(), "permute_vector: size mismatch");
    std::vector<value_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[static_cast<std::size_t>(perm[i])] = v[i];
    return out;
}

std::vector<value_t> unpermute_vector(std::span<const value_t> v, std::span<const index_t> perm) {
    SYMSPMV_CHECK_MSG(v.size() == perm.size(), "unpermute_vector: size mismatch");
    std::vector<value_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[static_cast<std::size_t>(perm[i])];
    return out;
}

}  // namespace symspmv
