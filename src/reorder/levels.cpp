#include "reorder/levels.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace symspmv {

index_t LevelSets::width() const {
    index_t w = 0;
    for (index_t l = 0; l < levels(); ++l) {
        w = std::max(w, static_cast<index_t>(level(l).size()));
    }
    return w;
}

LevelSets build_level_sets(const AdjacencyGraph& g) {
    const index_t n = g.vertices();
    LevelSets ls;
    if (n == 0) {
        ls.level_ptr = {0};
        return ls;
    }
    // Component-by-component BFS from a pseudo-peripheral root; level_of
    // merges the per-component structures by level index.
    std::vector<index_t> level_of(static_cast<std::size_t>(n), -1);
    index_t n_levels = 0;
    for (index_t seed = 0; seed < n; ++seed) {
        if (level_of[static_cast<std::size_t>(seed)] >= 0) continue;
        const index_t root = pseudo_peripheral_vertex(g, seed);
        const LevelStructure comp = bfs_levels(g, root);
        for (index_t l = 0; l < comp.depth(); ++l) {
            for (index_t i = comp.level_ptr[static_cast<std::size_t>(l)];
                 i < comp.level_ptr[static_cast<std::size_t>(l) + 1]; ++i) {
                level_of[static_cast<std::size_t>(comp.order[static_cast<std::size_t>(i)])] = l;
            }
        }
        n_levels = std::max(n_levels, comp.depth());
    }

    // Bucket rows by level; ascending row id within a level keeps the
    // structure deterministic (and diffable) regardless of BFS tie-breaks.
    ls.level_ptr.assign(static_cast<std::size_t>(n_levels) + 1, 0);
    for (index_t r = 0; r < n; ++r) {
        SYMSPMV_CHECK_MSG(level_of[static_cast<std::size_t>(r)] >= 0,
                          "build_level_sets: unvisited vertex");
        ++ls.level_ptr[static_cast<std::size_t>(level_of[static_cast<std::size_t>(r)]) + 1];
    }
    for (std::size_t l = 1; l < ls.level_ptr.size(); ++l) {
        ls.level_ptr[l] += ls.level_ptr[l - 1];
    }
    ls.rows.resize(static_cast<std::size_t>(n));
    std::vector<index_t> cursor(ls.level_ptr.begin(), ls.level_ptr.end() - 1);
    for (index_t r = 0; r < n; ++r) {
        ls.rows[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(level_of[static_cast<std::size_t>(r)])]++)] = r;
    }
    return ls;
}

LevelSets build_level_sets(const Coo& a) { return build_level_sets(AdjacencyGraph(a)); }

std::vector<index_t> level_permutation(const LevelSets& ls) {
    std::vector<index_t> perm(ls.rows.size(), -1);
    for (std::size_t pos = 0; pos < ls.rows.size(); ++pos) {
        perm[static_cast<std::size_t>(ls.rows[pos])] = static_cast<index_t>(pos);
    }
    return perm;
}

namespace {

/// Emits [begin, end) of level @p lvl as blocks: whole when light enough,
/// otherwise split at the weight midpoint and recurse on both halves.
void emit_blocks(const LevelSets& ls, std::span<const std::int64_t> row_weight,
                 std::int64_t target, std::size_t begin, std::size_t end, index_t lvl,
                 LevelBlocks& out) {
    std::int64_t weight = 0;
    for (std::size_t i = begin; i < end; ++i) {
        weight += row_weight[static_cast<std::size_t>(ls.rows[i])];
    }
    if (weight <= target || end - begin <= 1) {
        for (std::size_t i = begin; i < end; ++i) out.rows.push_back(ls.rows[i]);
        out.block_ptr.push_back(out.rows.size());
        out.level_of.push_back(lvl);
        return;
    }
    // Balanced split: first position where the prefix weight reaches half,
    // clamped so both halves are non-empty.
    std::size_t mid = begin;
    std::int64_t prefix = 0;
    while (mid < end - 1 && prefix * 2 < weight) {
        prefix += row_weight[static_cast<std::size_t>(ls.rows[mid])];
        ++mid;
    }
    mid = std::max(mid, begin + 1);
    emit_blocks(ls, row_weight, target, begin, mid, lvl, out);
    emit_blocks(ls, row_weight, target, mid, end, lvl, out);
}

}  // namespace

LevelBlocks subdivide_levels(const LevelSets& ls, std::span<const std::int64_t> row_weight,
                             std::int64_t target_weight) {
    SYMSPMV_CHECK_MSG(row_weight.size() == ls.rows.size(),
                      "subdivide_levels: one weight per row");
    const std::int64_t target = std::max<std::int64_t>(1, target_weight);
    LevelBlocks out;
    out.rows.reserve(ls.rows.size());
    out.block_ptr.push_back(0);
    for (index_t l = 0; l < ls.levels(); ++l) {
        const std::size_t begin = static_cast<std::size_t>(ls.level_ptr[static_cast<std::size_t>(l)]);
        const std::size_t end = static_cast<std::size_t>(ls.level_ptr[static_cast<std::size_t>(l) + 1]);
        if (begin == end) continue;  // empty merged level (component mismatch)
        emit_blocks(ls, row_weight, target, begin, end, l, out);
    }
    return out;
}

}  // namespace symspmv
