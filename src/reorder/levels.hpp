// Whole-graph BFS level sets and their recursive subdivision into
// load-balanced row blocks — the scheduling substrate of the RACE-style
// reduction-free symmetric kernel (Alappat et al., "A Recursive Algebraic
// Coloring Technique for Hardware-Efficient Symmetric Sparse Matrix-Vector
// Multiplication"; see PAPERS.md and DESIGN.md §14).
//
// bfs_levels() (rcm.hpp) builds the level structure of ONE component rooted
// at one vertex; build_level_sets() extends it to the whole graph by rooting
// a BFS at a pseudo-peripheral vertex of every component and merging the
// per-component structures BY LEVEL INDEX.  The merge is sound for
// scheduling because vertices of different components share no edges: rows
// listed under the same merged level never conflict, and the level-distance
// guarantee below holds within each component separately.
//
// The property everything downstream rests on: an edge of the (symmetrized)
// matrix graph connects vertices whose levels differ by AT MOST ONE.  The
// symmetric SpM×V write set of a stored SSS row r — {r} plus its stored
// (lower-triangle) neighbors — is therefore contained in levels
// [level(r)-1, level(r)+1], so rows whose levels differ by three or more
// can never write the same y element.  subdivide_levels() keeps that
// argument usable for load balancing: it splits wide levels recursively
// into blocks of bounded non-zero weight without ever mixing levels inside
// one block, so a block inherits its level's distance guarantee.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "matrix/coo.hpp"
#include "reorder/rcm.hpp"

namespace symspmv {

/// BFS level structure of the whole graph: every vertex appears exactly
/// once; disconnected components are merged by level index.
struct LevelSets {
    std::vector<index_t> level_ptr;  // levels()+1 offsets into `rows`
    std::vector<index_t> rows;       // all vertices, grouped by level,
                                     // ascending row id within a level

    [[nodiscard]] index_t levels() const {
        return level_ptr.empty() ? 0 : static_cast<index_t>(level_ptr.size()) - 1;
    }

    /// Rows of level @p l.
    [[nodiscard]] std::span<const index_t> level(index_t l) const {
        return {rows.data() + level_ptr[static_cast<std::size_t>(l)],
                static_cast<std::size_t>(level_ptr[static_cast<std::size_t>(l) + 1] -
                                         level_ptr[static_cast<std::size_t>(l)])};
    }

    /// Largest level size (the parallelism ceiling of level scheduling).
    [[nodiscard]] index_t width() const;
};

/// Level sets over the adjacency of @p g, each component rooted at a
/// George-Liu pseudo-peripheral vertex (deep, narrow levels — more stages
/// of independent work).  An empty graph yields zero levels.
[[nodiscard]] LevelSets build_level_sets(const AdjacencyGraph& g);

/// Convenience overload: builds the AdjacencyGraph from canonical COO.
[[nodiscard]] LevelSets build_level_sets(const Coo& a);

/// The permutation induced by the level order: perm[old] = new position of
/// the row in LevelSets::rows.  Composes with permute_symmetric(); levels
/// become contiguous row ranges of the permuted matrix.
[[nodiscard]] std::vector<index_t> level_permutation(const LevelSets& ls);

/// Level blocks: the rows of each level, recursively subdivided into blocks
/// whose non-zero weight is bounded — the unit of work the RACE-style
/// kernel colors and schedules.  Blocks never span levels.
struct LevelBlocks {
    std::vector<index_t> rows;            // all vertices, grouped by block
    std::vector<std::size_t> block_ptr;   // blocks()+1 offsets into `rows`
    std::vector<index_t> level_of;        // BFS level each block came from

    [[nodiscard]] int blocks() const {
        return block_ptr.empty() ? 0 : static_cast<int>(block_ptr.size()) - 1;
    }

    [[nodiscard]] std::span<const index_t> block(int b) const {
        return {rows.data() + block_ptr[static_cast<std::size_t>(b)],
                block_ptr[static_cast<std::size_t>(b) + 1] -
                    block_ptr[static_cast<std::size_t>(b)]};
    }
};

/// Recursively halves every level of @p ls (split point balanced by row
/// weight) until each block weighs at most @p target_weight or is a single
/// row.  @p row_weight gives the per-row work estimate — the RACE kernel
/// passes 1 + stored non-zeros of the row, so blocks carry roughly equal
/// multiply work regardless of how skewed the rows are.  @p target_weight
/// < 1 is clamped to 1.
[[nodiscard]] LevelBlocks subdivide_levels(const LevelSets& ls,
                                           std::span<const std::int64_t> row_weight,
                                           std::int64_t target_weight);

}  // namespace symspmv
