// Permutation utilities: validation, inversion, and the symmetric
// permutation P*A*P^T used by the bandwidth-reduction study (§V.D).
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

/// True iff @p perm is a bijection of {0, ..., perm.size()-1}.
bool is_permutation(std::span<const index_t> perm);

/// Returns inv with inv[perm[i]] = i.
std::vector<index_t> invert_permutation(std::span<const index_t> perm);

/// Applies the symmetric permutation: out(perm[i], perm[j]) = a(i, j).
/// Preserves symmetry and spectrum; @p perm maps old index -> new index.
Coo permute_symmetric(const Coo& a, std::span<const index_t> perm);

/// Permutes a vector: out[perm[i]] = v[i].
std::vector<value_t> permute_vector(std::span<const value_t> v, std::span<const index_t> perm);

/// Applies the inverse: out[i] = v[perm[i]] (maps a permuted solution back).
std::vector<value_t> unpermute_vector(std::span<const value_t> v, std::span<const index_t> perm);

}  // namespace symspmv
