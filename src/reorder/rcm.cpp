#include "reorder/rcm.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace symspmv {

AdjacencyGraph::AdjacencyGraph(const Coo& a) : n_(a.rows()) {
    SYMSPMV_CHECK_MSG(a.rows() == a.cols(), "AdjacencyGraph: matrix must be square");
    SYMSPMV_CHECK_MSG(a.is_canonical(), "AdjacencyGraph: COO input must be canonical");
    // Symmetrize the pattern: every off-diagonal (i,j) contributes both
    // directions; duplicates are removed below.
    std::vector<std::pair<index_t, index_t>> edges;
    edges.reserve(static_cast<std::size_t>(a.nnz()) * 2);
    for (const Triplet& t : a.entries()) {
        if (t.row == t.col) continue;
        edges.emplace_back(t.row, t.col);
        edges.emplace_back(t.col, t.row);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    xadj_.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (const auto& [u, v] : edges) ++xadj_[static_cast<std::size_t>(u) + 1];
    for (index_t v = 0; v < n_; ++v) {
        xadj_[static_cast<std::size_t>(v) + 1] += xadj_[static_cast<std::size_t>(v)];
    }
    adj_.resize(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) adj_[e] = edges[e].second;
}

index_t LevelStructure::width() const {
    index_t w = 0;
    for (std::size_t l = 0; l + 1 < level_ptr.size(); ++l) {
        w = std::max(w, level_ptr[l + 1] - level_ptr[l]);
    }
    return w;
}

LevelStructure bfs_levels(const AdjacencyGraph& g, index_t root) {
    SYMSPMV_CHECK_MSG(root >= 0 && root < g.vertices(), "bfs_levels: root out of range");
    LevelStructure ls;
    std::vector<bool> visited(static_cast<std::size_t>(g.vertices()), false);
    ls.order.push_back(root);
    visited[static_cast<std::size_t>(root)] = true;
    ls.level_ptr = {0, 1};
    std::size_t frontier_begin = 0;
    while (true) {
        const std::size_t frontier_end = ls.order.size();
        for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
            for (index_t nb : g.neighbors(ls.order[i])) {
                if (!visited[static_cast<std::size_t>(nb)]) {
                    visited[static_cast<std::size_t>(nb)] = true;
                    ls.order.push_back(nb);
                }
            }
        }
        if (ls.order.size() == frontier_end) break;  // no new level
        ls.level_ptr.push_back(static_cast<index_t>(ls.order.size()));
        frontier_begin = frontier_end;
    }
    return ls;
}

index_t pseudo_peripheral_vertex(const AdjacencyGraph& g, index_t start) {
    index_t root = start;
    LevelStructure ls = bfs_levels(g, root);
    for (int iter = 0; iter < 16; ++iter) {  // converges in a handful of steps
        // Minimum-degree vertex of the last level.
        const index_t last_begin = ls.level_ptr[static_cast<std::size_t>(ls.depth()) - 1];
        const index_t last_end = ls.level_ptr[static_cast<std::size_t>(ls.depth())];
        index_t candidate = ls.order[static_cast<std::size_t>(last_begin)];
        for (index_t i = last_begin; i < last_end; ++i) {
            const index_t v = ls.order[static_cast<std::size_t>(i)];
            if (g.degree(v) < g.degree(candidate)) candidate = v;
        }
        LevelStructure cls = bfs_levels(g, candidate);
        if (cls.depth() <= ls.depth()) break;
        root = candidate;
        ls = std::move(cls);
    }
    return root;
}

std::vector<index_t> cuthill_mckee_permutation(const Coo& a) {
    const AdjacencyGraph g(a);
    const index_t n = g.vertices();
    std::vector<index_t> perm(static_cast<std::size_t>(n), -1);  // perm[old] = new
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<index_t> queue;
    queue.reserve(static_cast<std::size_t>(n));
    index_t next_label = 0;

    // Vertices sorted by degree: component restarts pick the smallest-degree
    // unvisited vertex, per the classic algorithm.
    std::vector<index_t> by_degree(static_cast<std::size_t>(n));
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](index_t u, index_t v) { return g.degree(u) < g.degree(v); });

    std::vector<index_t> scratch;
    for (index_t seed : by_degree) {
        if (visited[static_cast<std::size_t>(seed)]) continue;
        const index_t root = pseudo_peripheral_vertex(g, seed);
        queue.clear();
        queue.push_back(root);
        visited[static_cast<std::size_t>(root)] = true;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const index_t v = queue[head];
            perm[static_cast<std::size_t>(v)] = next_label++;
            // Enqueue unvisited neighbours in increasing-degree order.
            scratch.clear();
            for (index_t nb : g.neighbors(v)) {
                if (!visited[static_cast<std::size_t>(nb)]) {
                    visited[static_cast<std::size_t>(nb)] = true;
                    scratch.push_back(nb);
                }
            }
            std::stable_sort(scratch.begin(), scratch.end(), [&](index_t x, index_t y) {
                return g.degree(x) < g.degree(y);
            });
            queue.insert(queue.end(), scratch.begin(), scratch.end());
        }
    }
    SYMSPMV_CHECK_MSG(next_label == n, "cuthill_mckee: failed to label every vertex");
    return perm;
}

std::vector<index_t> rcm_permutation(const Coo& a) {
    std::vector<index_t> perm = cuthill_mckee_permutation(a);
    const auto n = static_cast<index_t>(perm.size());
    for (index_t& p : perm) p = n - 1 - p;
    return perm;
}

}  // namespace symspmv
