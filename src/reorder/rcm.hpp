// Reverse Cuthill-McKee bandwidth reduction (Cuthill & McKee 1969), the
// reordering algorithm the paper applies in §V.D (Table III, Fig. 13-14).
//
// RCM turns the high-bandwidth corner cases (parabolic_fem, offshore,
// G3_circuit, thermal2) into banded matrices, which (1) regularizes input
// vector access, (2) shrinks the local-vector conflict index, and (3) raises
// CSX substructure detection rates.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

/// Adjacency structure of the (structurally symmetric) matrix graph.
/// Diagonal entries are dropped; the pattern is symmetrized defensively.
class AdjacencyGraph {
   public:
    explicit AdjacencyGraph(const Coo& a);

    [[nodiscard]] index_t vertices() const { return n_; }
    [[nodiscard]] index_t degree(index_t v) const {
        return xadj_[static_cast<std::size_t>(v) + 1] - xadj_[static_cast<std::size_t>(v)];
    }
    [[nodiscard]] std::span<const index_t> neighbors(index_t v) const {
        return {adj_.data() + xadj_[static_cast<std::size_t>(v)],
                static_cast<std::size_t>(degree(v))};
    }

   private:
    index_t n_ = 0;
    std::vector<index_t> xadj_;
    std::vector<index_t> adj_;
};

/// BFS level structure rooted at @p root, restricted to root's component.
struct LevelStructure {
    std::vector<index_t> level_ptr;  // levels + 1 offsets into `order`
    std::vector<index_t> order;      // vertices in BFS order

    [[nodiscard]] index_t depth() const { return static_cast<index_t>(level_ptr.size()) - 1; }
    [[nodiscard]] index_t width() const;
};

LevelStructure bfs_levels(const AdjacencyGraph& g, index_t root);

/// George-Liu pseudo-peripheral vertex: repeatedly roots a BFS at a
/// minimum-degree vertex of the deepest last level until depth stops growing.
index_t pseudo_peripheral_vertex(const AdjacencyGraph& g, index_t start);

/// Cuthill-McKee ordering: perm[old] = new.  Handles disconnected graphs by
/// restarting from the next unvisited minimum-degree vertex.
std::vector<index_t> cuthill_mckee_permutation(const Coo& a);

/// Reverse Cuthill-McKee: the Cuthill-McKee order reversed (perm[old] = new).
std::vector<index_t> rcm_permutation(const Coo& a);

}  // namespace symspmv
