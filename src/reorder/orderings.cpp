#include "reorder/orderings.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/error.hpp"
#include "reorder/rcm.hpp"

namespace symspmv {

namespace {

/// Smallest-degree unvisited vertex (component restart heuristic shared by
/// both orderings).
index_t min_degree_unvisited(const AdjacencyGraph& g, const std::vector<char>& visited) {
    index_t best = -1;
    index_t best_degree = std::numeric_limits<index_t>::max();
    for (index_t v = 0; v < g.vertices(); ++v) {
        if (visited[static_cast<std::size_t>(v)] == 0 && g.degree(v) < best_degree) {
            best = v;
            best_degree = g.degree(v);
        }
    }
    return best;
}

}  // namespace

std::vector<index_t> king_permutation(const Coo& a) {
    const AdjacencyGraph g(a);
    const index_t n = g.vertices();
    std::vector<index_t> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    std::vector<char> in_front(static_cast<std::size_t>(n), 0);

    while (static_cast<index_t>(order.size()) < n) {
        const index_t root = pseudo_peripheral_vertex(g, min_degree_unvisited(g, visited));
        visited[static_cast<std::size_t>(root)] = 1;
        order.push_back(root);
        // Frontier: numbered vertices' unnumbered neighbors.
        std::vector<index_t> front;
        for (index_t u : g.neighbors(root)) {
            if (visited[static_cast<std::size_t>(u)] == 0 &&
                in_front[static_cast<std::size_t>(u)] == 0) {
                in_front[static_cast<std::size_t>(u)] = 1;
                front.push_back(u);
            }
        }
        while (!front.empty()) {
            // King's rule: pick the frontier vertex introducing the fewest
            // new frontier vertices; ties by degree then index for
            // determinism.
            std::size_t best = 0;
            index_t best_new = std::numeric_limits<index_t>::max();
            for (std::size_t i = 0; i < front.size(); ++i) {
                index_t fresh = 0;
                for (index_t u : g.neighbors(front[i])) {
                    if (visited[static_cast<std::size_t>(u)] == 0 &&
                        in_front[static_cast<std::size_t>(u)] == 0) {
                        ++fresh;
                    }
                }
                const index_t cand = front[i];
                const index_t cur = front[best];
                if (fresh < best_new ||
                    (fresh == best_new &&
                     (g.degree(cand) < g.degree(cur) ||
                      (g.degree(cand) == g.degree(cur) && cand < cur)))) {
                    best_new = fresh;
                    best = i;
                }
            }
            const index_t v = front[best];
            front.erase(front.begin() + static_cast<std::ptrdiff_t>(best));
            in_front[static_cast<std::size_t>(v)] = 0;
            visited[static_cast<std::size_t>(v)] = 1;
            order.push_back(v);
            for (index_t u : g.neighbors(v)) {
                if (visited[static_cast<std::size_t>(u)] == 0 &&
                    in_front[static_cast<std::size_t>(u)] == 0) {
                    in_front[static_cast<std::size_t>(u)] = 1;
                    front.push_back(u);
                }
            }
        }
    }

    std::vector<index_t> perm(static_cast<std::size_t>(n));
    for (index_t pos = 0; pos < n; ++pos) {
        perm[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] = pos;
    }
    return perm;
}

std::vector<index_t> sloan_permutation(const Coo& a, int w1, int w2) {
    SYMSPMV_CHECK_MSG(w1 >= 0 && w2 >= 0 && w1 + w2 > 0, "sloan: weights must be non-negative");
    const AdjacencyGraph g(a);
    const index_t n = g.vertices();
    std::vector<index_t> order;
    order.reserve(static_cast<std::size_t>(n));

    // Vertex states: 0 inactive, 1 preactive (queued), 2 active (neighbor
    // of a numbered vertex), 3 numbered (postactive).
    enum : char { kInactive = 0, kPreactive = 1, kActive = 2, kNumbered = 3 };
    std::vector<char> state(static_cast<std::size_t>(n), kInactive);
    std::vector<index_t> distance(static_cast<std::size_t>(n), 0);
    std::vector<long> priority(static_cast<std::size_t>(n), 0);

    while (static_cast<index_t>(order.size()) < n) {
        // Start/end pair: pseudo-peripheral end vertex supplies the global
        // distance term.
        index_t start = -1;
        {
            std::vector<char> numbered(static_cast<std::size_t>(n), 0);
            for (index_t v = 0; v < n; ++v) {
                numbered[static_cast<std::size_t>(v)] =
                    state[static_cast<std::size_t>(v)] == kNumbered ? 1 : 0;
            }
            start = min_degree_unvisited(g, numbered);
        }
        start = pseudo_peripheral_vertex(g, start);
        const LevelStructure from_start = bfs_levels(g, start);
        const index_t end = from_start.order.back();
        const LevelStructure from_end = bfs_levels(g, end);
        for (index_t level = 0; level < from_end.depth(); ++level) {
            for (index_t k = from_end.level_ptr[static_cast<std::size_t>(level)];
                 k < from_end.level_ptr[static_cast<std::size_t>(level) + 1]; ++k) {
                distance[static_cast<std::size_t>(
                    from_end.order[static_cast<std::size_t>(k)])] = level;
            }
        }

        // Priority: w1 * distance(v, end) - w2 * (degree(v) + 1); numbering
        // a vertex bumps its neighbors (Sloan's local degree update).
        const auto prio = [&](index_t v) {
            return static_cast<long>(w1) * distance[static_cast<std::size_t>(v)] -
                   static_cast<long>(w2) * (g.degree(v) + 1);
        };
        using Entry = std::pair<long, index_t>;  // (priority, vertex)
        std::priority_queue<Entry> queue;
        for (index_t v : from_start.order) {
            priority[static_cast<std::size_t>(v)] = prio(v);
        }
        state[static_cast<std::size_t>(start)] = kPreactive;
        queue.emplace(priority[static_cast<std::size_t>(start)], start);

        while (!queue.empty()) {
            const auto [p, v] = queue.top();
            queue.pop();
            // Lazy deletion: stale or already numbered entries are skipped.
            if (state[static_cast<std::size_t>(v)] == kNumbered ||
                p != priority[static_cast<std::size_t>(v)]) {
                continue;
            }
            if (state[static_cast<std::size_t>(v)] == kPreactive) {
                // Activating v rewards its neighbors (they will soon be
                // adjacent to the numbered set).
                for (index_t u : g.neighbors(v)) {
                    if (state[static_cast<std::size_t>(u)] == kNumbered) continue;
                    priority[static_cast<std::size_t>(u)] += w2;
                    if (state[static_cast<std::size_t>(u)] == kInactive) {
                        state[static_cast<std::size_t>(u)] = kPreactive;
                    }
                    queue.emplace(priority[static_cast<std::size_t>(u)], u);
                }
            }
            state[static_cast<std::size_t>(v)] = kNumbered;
            order.push_back(v);
            for (index_t u : g.neighbors(v)) {
                if (state[static_cast<std::size_t>(u)] == kNumbered) continue;
                if (state[static_cast<std::size_t>(u)] != kActive) {
                    state[static_cast<std::size_t>(u)] = kActive;
                    priority[static_cast<std::size_t>(u)] += w2;
                    queue.emplace(priority[static_cast<std::size_t>(u)], u);
                }
            }
        }
    }

    std::vector<index_t> perm(static_cast<std::size_t>(n));
    for (index_t pos = 0; pos < n; ++pos) {
        perm[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] = pos;
    }
    return perm;
}

std::int64_t profile(const Coo& a) {
    SYMSPMV_CHECK_MSG(a.rows() == a.cols(), "profile: matrix must be square");
    std::vector<index_t> min_col(static_cast<std::size_t>(a.rows()),
                                 std::numeric_limits<index_t>::max());
    for (const Triplet& t : a.entries()) {
        if (t.col <= t.row) {
            min_col[static_cast<std::size_t>(t.row)] =
                std::min(min_col[static_cast<std::size_t>(t.row)], t.col);
        }
    }
    std::int64_t total = 0;
    for (index_t r = 0; r < a.rows(); ++r) {
        if (min_col[static_cast<std::size_t>(r)] <= r) {
            total += r - min_col[static_cast<std::size_t>(r)];
        }
    }
    return total;
}

}  // namespace symspmv
