#include "matrix/ellpack.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace symspmv {

namespace {

/// Non-zero count per row of a canonical COO matrix.
std::vector<index_t> row_counts(const Coo& coo) {
    std::vector<index_t> counts(static_cast<std::size_t>(coo.rows()), 0);
    for (const Triplet& t : coo.entries()) ++counts[static_cast<std::size_t>(t.row)];
    return counts;
}

}  // namespace

Ellpack::Ellpack(const Coo& coo) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "Ellpack requires a canonical COO matrix");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    nnz_ = coo.nnz();
    const auto counts = row_counts(coo);
    width_ = counts.empty() ? 0 : *std::ranges::max_element(counts);

    const std::size_t slots = static_cast<std::size_t>(n_rows_) * static_cast<std::size_t>(width_);
    colind_.assign(slots, 0);
    values_.assign(slots, value_t{0});

    std::vector<index_t> cursor(static_cast<std::size_t>(n_rows_), 0);
    for (const Triplet& t : coo.entries()) {
        const index_t s = cursor[static_cast<std::size_t>(t.row)]++;
        const std::size_t at = static_cast<std::size_t>(s) * static_cast<std::size_t>(n_rows_) +
                               static_cast<std::size_t>(t.row);
        colind_[at] = t.col;
        values_[at] = t.val;
    }
    // Padding slots point at the row's last valid column (or 0 for empty
    // rows) so the kernel's gather stays in bounds without branching.
    for (index_t r = 0; r < n_rows_; ++r) {
        const index_t valid = cursor[static_cast<std::size_t>(r)];
        const index_t pad_col =
            valid == 0 ? 0
                       : colind_[static_cast<std::size_t>(valid - 1) *
                                     static_cast<std::size_t>(n_rows_) +
                                 static_cast<std::size_t>(r)];
        for (index_t s = valid; s < width_; ++s) {
            colind_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n_rows_) +
                    static_cast<std::size_t>(r)] = pad_col;
        }
    }
}

void Ellpack::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    spmv_rows(0, n_rows_, x, y);
}

void Ellpack::spmv_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                        std::span<value_t> y) const {
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (index_t r = row_begin; r < row_end; ++r) yv[r] = value_t{0};
    // Slot-major sweep: each pass streams one padded "column" of the rows.
    for (index_t s = 0; s < width_; ++s) {
        const std::size_t base = static_cast<std::size_t>(s) * static_cast<std::size_t>(n_rows_);
        const index_t* __restrict cols = colind_.data() + base;
        const value_t* __restrict vals = values_.data() + base;
        for (index_t r = row_begin; r < row_end; ++r) {
            yv[r] += vals[r] * xv[cols[r]];
        }
    }
}

Jds::Jds(const Coo& coo) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "Jds requires a canonical COO matrix");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    const auto counts = row_counts(coo);

    // Stable sort rows by descending non-zero count.
    perm_.resize(static_cast<std::size_t>(n_rows_));
    std::iota(perm_.begin(), perm_.end(), 0);
    std::ranges::stable_sort(perm_, [&](index_t a, index_t b) {
        return counts[static_cast<std::size_t>(a)] > counts[static_cast<std::size_t>(b)];
    });

    const index_t max_len = counts.empty() ? 0 : counts[static_cast<std::size_t>(perm_[0])];
    jd_ptr_.assign(static_cast<std::size_t>(max_len) + 1, 0);

    // Row start offsets in the original CSR-like order.
    std::vector<std::size_t> row_start(static_cast<std::size_t>(n_rows_) + 1, 0);
    for (index_t r = 0; r < n_rows_; ++r) {
        row_start[static_cast<std::size_t>(r) + 1] =
            row_start[static_cast<std::size_t>(r)] +
            static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
    }

    const auto entries = coo.entries();
    colind_.resize(entries.size());
    values_.resize(entries.size());
    std::size_t out = 0;
    for (index_t d = 0; d < max_len; ++d) {
        jd_ptr_[static_cast<std::size_t>(d)] = static_cast<index_t>(out);
        // Sorted rows with at least d+1 non-zeros are a prefix of perm_.
        for (index_t k = 0; k < n_rows_; ++k) {
            const index_t row = perm_[static_cast<std::size_t>(k)];
            if (counts[static_cast<std::size_t>(row)] <= d) break;
            const Triplet& t = entries[row_start[static_cast<std::size_t>(row)] +
                                       static_cast<std::size_t>(d)];
            colind_[out] = t.col;
            values_[out] = t.val;
            ++out;
        }
    }
    jd_ptr_[static_cast<std::size_t>(max_len)] = static_cast<index_t>(out);
    SYMSPMV_CHECK(out == entries.size());
}

void Jds::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    std::ranges::fill(y, value_t{0});
    for (index_t d = 0; d < diagonals(); ++d) {
        const index_t lo = jd_ptr_[static_cast<std::size_t>(d)];
        const index_t hi = jd_ptr_[static_cast<std::size_t>(d) + 1];
        // Entry k of this diagonal belongs to sorted row (k - lo).
        for (index_t k = lo; k < hi; ++k) {
            const index_t row = perm_[static_cast<std::size_t>(k - lo)];
            yv[row] += values_[static_cast<std::size_t>(k)] *
                       xv[colind_[static_cast<std::size_t>(k)]];
        }
    }
}

}  // namespace symspmv
