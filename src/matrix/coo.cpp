#include "matrix/coo.hpp"

#include <algorithm>
#include <map>

namespace symspmv {

Coo::Coo(index_t n_rows, index_t n_cols) : n_rows_(n_rows), n_cols_(n_cols) {
    SYMSPMV_CHECK_MSG(n_rows >= 0 && n_cols >= 0, "Coo: negative dimension");
}

Coo::Coo(index_t n_rows, index_t n_cols, std::vector<Triplet> entries)
    : n_rows_(n_rows), n_cols_(n_cols), entries_(std::move(entries)), canonical_(false) {
    SYMSPMV_CHECK_MSG(n_rows >= 0 && n_cols >= 0, "Coo: negative dimension");
    for (const Triplet& t : entries_) {
        SYMSPMV_CHECK_MSG(t.row >= 0 && t.row < n_rows_ && t.col >= 0 && t.col < n_cols_,
                          "Coo: entry out of bounds");
    }
    canonicalize();
}

void Coo::add(index_t row, index_t col, value_t val) {
    SYMSPMV_CHECK_MSG(row >= 0 && row < n_rows_ && col >= 0 && col < n_cols_,
                      "Coo::add: entry out of bounds");
    entries_.push_back({row, col, val});
    canonical_ = false;
}

void Coo::canonicalize() {
    if (canonical_) return;
    std::sort(entries_.begin(), entries_.end(), [](const Triplet& a, const Triplet& b) {
        return triplet_rowmajor_less(a, b);
    });
    // Sum duplicates in place.
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (out > 0 && entries_[out - 1].row == entries_[i].row &&
            entries_[out - 1].col == entries_[i].col) {
            entries_[out - 1].val += entries_[i].val;
        } else {
            entries_[out++] = entries_[i];
        }
    }
    entries_.resize(out);
    canonical_ = true;
}

bool Coo::is_canonical() const {
    if (!canonical_) return false;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const auto& a = entries_[i - 1];
        const auto& b = entries_[i];
        if (!triplet_rowmajor_less(a, b)) return false;
    }
    return true;
}

bool Coo::is_symmetric() const {
    if (n_rows_ != n_cols_) return false;
    SYMSPMV_CHECK_MSG(canonical_, "is_symmetric requires a canonical matrix");
    // Canonical order makes (i,j) lookups binary-searchable.
    auto find = [&](index_t r, index_t c) -> const Triplet* {
        const Triplet probe{r, c, 0.0};
        auto it = std::lower_bound(
            entries_.begin(), entries_.end(), probe,
            [](const Triplet& a, const Triplet& b) { return triplet_rowmajor_less(a, b); });
        if (it == entries_.end() || it->row != r || it->col != c) return nullptr;
        return &*it;
    };
    for (const Triplet& t : entries_) {
        if (t.row == t.col) continue;
        const Triplet* mirror = find(t.col, t.row);
        if (mirror == nullptr || mirror->val != t.val) return false;
    }
    return true;
}

Coo Coo::strict_lower() const {
    Coo out(n_rows_, n_cols_);
    for (const Triplet& t : entries_) {
        if (t.row > t.col) out.entries_.push_back(t);
    }
    out.canonical_ = canonical_;
    return out;
}

Coo Coo::lower() const {
    Coo out(n_rows_, n_cols_);
    for (const Triplet& t : entries_) {
        if (t.row >= t.col) out.entries_.push_back(t);
    }
    out.canonical_ = canonical_;
    return out;
}

Coo Coo::transpose() const {
    Coo out(n_cols_, n_rows_);
    out.entries_.reserve(entries_.size());
    for (const Triplet& t : entries_) out.entries_.push_back({t.col, t.row, t.val});
    out.canonical_ = false;
    out.canonicalize();
    return out;
}

Coo Coo::mirror_lower_to_full() const {
    SYMSPMV_CHECK_MSG(n_rows_ == n_cols_, "mirror_lower_to_full: matrix must be square");
    Coo out(n_rows_, n_cols_);
    out.entries_.reserve(entries_.size() * 2);
    for (const Triplet& t : entries_) {
        SYMSPMV_CHECK_MSG(t.row >= t.col, "mirror_lower_to_full: input has upper entries");
        out.entries_.push_back(t);
        if (t.row != t.col) out.entries_.push_back({t.col, t.row, t.val});
    }
    out.canonical_ = false;
    out.canonicalize();
    return out;
}

void Coo::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == n_cols_, "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == n_rows_, "spmv: y size mismatch");
    std::fill(y.begin(), y.end(), value_t{0});
    for (const Triplet& t : entries_) {
        y[static_cast<std::size_t>(t.row)] += t.val * x[static_cast<std::size_t>(t.col)];
    }
}

}  // namespace symspmv
