#include "matrix/generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/error.hpp"

namespace symspmv::gen {
namespace {

/// Mirrors a strictly-lower-triangular entry set and adds a dominant
/// diagonal, yielding a canonical SPD matrix.
Coo finalize_spd(index_t n, std::vector<Triplet> strict_lower) {
    Coo full(n, n, std::move(strict_lower));  // canonicalizes, sums duplicates
    Coo mirrored(n, n);
    for (const Triplet& t : full.entries()) {
        SYMSPMV_DCHECK(t.row > t.col);
        mirrored.add(t.row, t.col, t.val);
        mirrored.add(t.col, t.row, t.val);
    }
    mirrored.canonicalize();
    return make_spd(mirrored);
}

/// Uniform value in [0.1, 1.0] — bounded away from zero so no generated
/// entry is accidentally structural-only.
value_t random_value(std::mt19937_64& rng) {
    std::uniform_real_distribution<value_t> dist(0.1, 1.0);
    return dist(rng);
}

/// Sampling with replacement from m options keeps only distinct entries
/// after canonicalization.  To land `want` distinct entries, draw
/// k = ln(1 - d/m) / ln(1 - 1/m) times, capping the target density so the
/// formula stays finite.
double draws_for_distinct(double want, double m) {
    if (m < 1.0) return 0.0;
    const double d = std::min(want, 0.85 * m);
    if (d <= 0.0) return 0.0;
    if (m < 2.0) return d;
    return std::log(1.0 - d / m) / std::log(1.0 - 1.0 / m);
}

}  // namespace

Coo make_spd(const Coo& full) {
    SYMSPMV_CHECK_MSG(full.rows() == full.cols(), "make_spd: matrix must be square");
    SYMSPMV_CHECK_MSG(full.is_canonical(), "make_spd: input must be canonical");
    const index_t n = full.rows();
    std::vector<value_t> abs_row_sum(static_cast<std::size_t>(n), 0.0);
    for (const Triplet& t : full.entries()) {
        if (t.row != t.col) abs_row_sum[static_cast<std::size_t>(t.row)] += std::abs(t.val);
    }
    Coo out(n, n);
    for (const Triplet& t : full.entries()) {
        if (t.row != t.col) out.add(t.row, t.col, t.val);
    }
    for (index_t r = 0; r < n; ++r) {
        out.add(r, r, abs_row_sum[static_cast<std::size_t>(r)] + 1.0);
    }
    out.canonicalize();
    return out;
}

Coo poisson2d(index_t nx, index_t ny) {
    SYMSPMV_CHECK_MSG(nx >= 1 && ny >= 1, "poisson2d: grid must be non-empty");
    const index_t n = nx * ny;
    Coo out(n, n);
    auto id = [nx](index_t i, index_t j) { return i * nx + j; };
    for (index_t i = 0; i < ny; ++i) {
        for (index_t j = 0; j < nx; ++j) {
            const index_t r = id(i, j);
            out.add(r, r, 4.0);
            if (j > 0) out.add(r, id(i, j - 1), -1.0);
            if (j + 1 < nx) out.add(r, id(i, j + 1), -1.0);
            if (i > 0) out.add(r, id(i - 1, j), -1.0);
            if (i + 1 < ny) out.add(r, id(i + 1, j), -1.0);
        }
    }
    out.canonicalize();
    return out;
}

Coo poisson3d(index_t nx, index_t ny, index_t nz) {
    SYMSPMV_CHECK_MSG(nx >= 1 && ny >= 1 && nz >= 1, "poisson3d: grid must be non-empty");
    const index_t n = nx * ny * nz;
    Coo out(n, n);
    auto id = [nx, ny](index_t i, index_t j, index_t k) { return (i * ny + j) * nx + k; };
    for (index_t i = 0; i < nz; ++i) {
        for (index_t j = 0; j < ny; ++j) {
            for (index_t k = 0; k < nx; ++k) {
                const index_t r = id(i, j, k);
                out.add(r, r, 6.0);
                if (k > 0) out.add(r, id(i, j, k - 1), -1.0);
                if (k + 1 < nx) out.add(r, id(i, j, k + 1), -1.0);
                if (j > 0) out.add(r, id(i, j - 1, k), -1.0);
                if (j + 1 < ny) out.add(r, id(i, j + 1, k), -1.0);
                if (i > 0) out.add(r, id(i - 1, j, k), -1.0);
                if (i + 1 < nz) out.add(r, id(i + 1, j, k), -1.0);
            }
        }
    }
    out.canonicalize();
    return out;
}

Coo banded_random(index_t n, index_t half_band, double nnz_per_row, std::uint64_t seed,
                  double scatter_fraction) {
    SYMSPMV_CHECK_MSG(n >= 2, "banded_random: n must be >= 2");
    SYMSPMV_CHECK_MSG(half_band >= 1 && half_band < n, "banded_random: bad half_band");
    SYMSPMV_CHECK_MSG(scatter_fraction >= 0.0 && scatter_fraction <= 1.0,
                      "banded_random: scatter_fraction in [0,1]");
    std::mt19937_64 rng(seed);
    // Each row gets ~ (nnz_per_row - 1) / 2 strictly-lower entries, so the
    // mirrored matrix plus diagonal meets the nnz/row target.  Duplicate
    // draws merge during canonicalization, so the draw count is inflated by
    // the with-replacement correction against the band width.
    const double lower_per_row = std::max(0.0, (nnz_per_row - 1.0) / 2.0);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::vector<Triplet> lower;
    lower.reserve(static_cast<std::size_t>(lower_per_row * n * 1.1));
    for (index_t r = 1; r < n; ++r) {
        const double band_width = static_cast<double>(std::min(r, half_band));
        std::poisson_distribution<int> count_dist(draws_for_distinct(lower_per_row, band_width));
        const int k = count_dist(rng);
        for (int e = 0; e < k; ++e) {
            index_t c;
            if (coin(rng) < scatter_fraction) {
                std::uniform_int_distribution<index_t> col_dist(0, r - 1);
                c = col_dist(rng);
            } else {
                const index_t lo = std::max<index_t>(0, r - half_band);
                std::uniform_int_distribution<index_t> col_dist(lo, r - 1);
                c = col_dist(rng);
            }
            lower.push_back({r, c, random_value(rng)});
        }
    }
    return finalize_spd(n, std::move(lower));
}

Coo block_fem(index_t nodes, int block, double node_degree, double band_fraction,
              std::uint64_t seed) {
    SYMSPMV_CHECK_MSG(nodes >= 2 && block >= 1, "block_fem: bad size parameters");
    SYMSPMV_CHECK_MSG(band_fraction > 0.0 && band_fraction <= 1.0,
                      "block_fem: band_fraction in (0,1]");
    std::mt19937_64 rng(seed);
    const double lower_deg = node_degree / 2.0;
    // The node band must be wide enough to host the requested degree without
    // collapsing into duplicates (dense matrices like consph/crankseg_2 ask
    // for more neighbours than a thin band can provide at small scales).
    const index_t node_band =
        std::max<index_t>(static_cast<index_t>(band_fraction * nodes),
                          static_cast<index_t>(std::ceil(1.5 * lower_deg)) + 1);
    std::vector<Triplet> lower;

    auto add_block = [&](index_t u, index_t v) {
        // Dense block x block coupling between nodes u > v; only the strictly
        // lower part of the full matrix is emitted.
        for (int a = 0; a < block; ++a) {
            for (int b = 0; b < block; ++b) {
                const index_t r = u * block + a;
                const index_t c = v * block + b;
                if (r > c) lower.push_back({r, c, random_value(rng)});
            }
        }
    };

    for (index_t u = 1; u < nodes; ++u) {
        const index_t lo = std::max<index_t>(0, u - node_band);
        const double band_width = static_cast<double>(u - lo);
        std::poisson_distribution<int> deg_dist(draws_for_distinct(lower_deg, band_width));
        const int k = deg_dist(rng);
        std::uniform_int_distribution<index_t> nb_dist(lo, u - 1);
        for (int e = 0; e < k; ++e) add_block(u, nb_dist(rng));
    }
    // Dense diagonal self-coupling block for every node (strictly lower part).
    for (index_t u = 0; u < nodes; ++u) add_block(u, u);

    return finalize_spd(nodes * block, std::move(lower));
}

Coo power_law_circuit(index_t n, double avg_degree, std::uint64_t seed) {
    SYMSPMV_CHECK_MSG(n >= 4, "power_law_circuit: n must be >= 4");
    std::mt19937_64 rng(seed);
    std::vector<Triplet> lower;
    // Narrow band: every row couples to 1-2 immediate predecessors.
    for (index_t r = 1; r < n; ++r) {
        lower.push_back({r, r - 1, random_value(rng)});
        if (r >= 2 && (r % 3 == 0)) lower.push_back({r, r - 2, random_value(rng)});
    }
    // Long-range hub connections: endpoints drawn with a power-law bias
    // toward low indices (hubs = ground/supply rails in circuit matrices).
    const double base = 1.0 + (n > 1 ? 0.0 : 0.0);
    (void)base;
    const auto extra = static_cast<std::size_t>(std::max(0.0, (avg_degree - 2.7) / 2.0) * n);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (std::size_t e = 0; e < extra; ++e) {
        // Inverse-CDF sample of p(k) ~ k^-2 over [1, n).
        const double u = unit(rng);
        const auto hub = static_cast<index_t>(1.0 / (1.0 - u * (1.0 - 1.0 / n)));
        const index_t h = std::clamp<index_t>(hub - 1, 0, n - 2);
        std::uniform_int_distribution<index_t> other_dist(h + 1, n - 1);
        const index_t r = other_dist(rng);
        lower.push_back({r, h, random_value(rng)});
    }
    return finalize_spd(n, std::move(lower));
}

}  // namespace symspmv::gen
