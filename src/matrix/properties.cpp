#include "matrix/properties.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/error.hpp"

namespace symspmv {

index_t bandwidth(const Coo& coo) {
    index_t bw = 0;
    for (const Triplet& t : coo.entries()) bw = std::max(bw, std::abs(t.row - t.col));
    return bw;
}

MatrixProperties analyze(const Coo& coo) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "analyze: COO input must be canonical");
    MatrixProperties p;
    p.rows = coo.rows();
    p.cols = coo.cols();
    p.nnz = coo.nnz();

    std::vector<index_t> row_nnz(static_cast<std::size_t>(p.rows), 0);
    long long bw_sum = 0;
    for (const Triplet& t : coo.entries()) {
        const index_t d = std::abs(t.row - t.col);
        p.bandwidth = std::max(p.bandwidth, d);
        bw_sum += d;
        ++row_nnz[static_cast<std::size_t>(t.row)];
        if (t.row == t.col) ++p.diag_nnz;
    }
    if (p.nnz > 0) p.avg_bandwidth = static_cast<double>(bw_sum) / p.nnz;
    if (p.rows > 0 && p.cols > 0) {
        p.density = static_cast<double>(p.nnz) /
                    (static_cast<double>(p.rows) * static_cast<double>(p.cols));
        p.nnz_per_row = static_cast<double>(p.nnz) / p.rows;
    }
    if (!row_nnz.empty()) {
        p.max_row_nnz = *std::max_element(row_nnz.begin(), row_nnz.end());
        p.min_row_nnz = *std::min_element(row_nnz.begin(), row_nnz.end());
        p.empty_rows =
            static_cast<index_t>(std::count(row_nnz.begin(), row_nnz.end(), index_t{0}));
    }

    if (p.rows == p.cols) {
        p.numerically_symmetric = coo.is_symmetric();
        if (p.numerically_symmetric) {
            p.structurally_symmetric = true;
        } else {
            // Structure-only check: mirror the pattern and compare.
            std::vector<std::pair<index_t, index_t>> fwd, rev;
            fwd.reserve(static_cast<std::size_t>(p.nnz));
            rev.reserve(static_cast<std::size_t>(p.nnz));
            for (const Triplet& t : coo.entries()) {
                fwd.emplace_back(t.row, t.col);
                rev.emplace_back(t.col, t.row);
            }
            std::sort(rev.begin(), rev.end());
            p.structurally_symmetric = (fwd == rev);
        }
    }
    return p;
}

}  // namespace symspmv
