#include "matrix/binio.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "core/atomic_file.hpp"
#include "core/error.hpp"
#include "core/hash.hpp"

namespace symspmv {

namespace {

// SMX2 appended a trailing FNV-1a checksum over every byte after the magic,
// so any byte-level corruption — not just truncation or structural damage —
// surfaces as a ParseError instead of silently different values.  This is a
// cache format, not an interchange format: SMX1 files simply regenerate.
constexpr char kMagic[4] = {'S', 'M', 'X', '2'};

/// Stream writer/reader pair that checksums every byte it moves.
class HashingWriter {
   public:
    explicit HashingWriter(std::ostream& out) : out_(out) {}

    template <typename T>
    void write(const T& v) {
        out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
        hash_ = fnv1a64(&v, sizeof(T), hash_);
    }

    [[nodiscard]] std::uint64_t hash() const { return hash_; }

   private:
    std::ostream& out_;
    std::uint64_t hash_ = kFnvOffsetBasis;
};

class HashingReader {
   public:
    explicit HashingReader(std::istream& in) : in_(in) {}

    template <typename T>
    T read() {
        T v;
        in_.read(reinterpret_cast<char*>(&v), sizeof(T));
        if (!in_) throw ParseError("smx: truncated stream");
        hash_ = fnv1a64(&v, sizeof(T), hash_);
        return v;
    }

    /// Reads the trailing checksum without hashing it.
    std::uint64_t read_checksum() {
        std::uint64_t v = 0;
        in_.read(reinterpret_cast<char*>(&v), sizeof(v));
        if (!in_) throw ParseError("smx: truncated stream (missing checksum)");
        return v;
    }

    [[nodiscard]] std::uint64_t hash() const { return hash_; }

   private:
    std::istream& in_;
    std::uint64_t hash_ = kFnvOffsetBasis;
};

}  // namespace

void write_binary(std::ostream& out, const Coo& coo) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "smx: matrix must be canonical");
    out.write(kMagic, sizeof(kMagic));
    HashingWriter w(out);
    w.write<std::uint32_t>(0);  // flags, reserved
    w.write<std::int32_t>(coo.rows());
    w.write<std::int32_t>(coo.cols());
    w.write<std::int64_t>(static_cast<std::int64_t>(coo.nnz()));
    for (const Triplet& t : coo.entries()) {
        w.write(t.row);
        w.write(t.col);
        w.write(t.val);
    }
    const std::uint64_t sum = w.hash();
    out.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    SYMSPMV_CHECK_MSG(static_cast<bool>(out), "smx: write failed");
}

void write_binary_file(const std::string& path, const Coo& coo) {
    // Atomic (temp + rename): a crashed run never leaves a torn .smx behind.
    write_file_atomic(path, [&](std::ostream& out) { write_binary(out, coo); });
}

Coo read_binary(std::istream& in) {
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw ParseError("smx: bad magic (not an .smx stream)");
    }
    HashingReader r(in);
    const auto flags = r.read<std::uint32_t>();
    if (flags != 0) throw ParseError("smx: unsupported flags");
    const auto rows = r.read<std::int32_t>();
    const auto cols = r.read<std::int32_t>();
    const auto nnz = r.read<std::int64_t>();
    if (rows < 0 || cols < 0 || nnz < 0) throw ParseError("smx: negative dimension");
    if (nnz > static_cast<std::int64_t>(rows) * cols) {
        throw ParseError("smx: nnz exceeds matrix capacity");
    }
    std::vector<Triplet> entries;
    entries.reserve(static_cast<std::size_t>(nnz));
    for (std::int64_t k = 0; k < nnz; ++k) {
        Triplet t;
        t.row = r.read<index_t>();
        t.col = r.read<index_t>();
        t.val = r.read<value_t>();
        if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
            throw ParseError("smx: entry out of bounds");
        }
        if (!entries.empty() && !triplet_rowmajor_less(entries.back(), t)) {
            throw ParseError("smx: entries not in canonical order");
        }
        entries.push_back(t);
    }
    if (r.read_checksum() != r.hash()) {
        throw ParseError("smx: checksum mismatch (corrupted stream)");
    }
    return Coo(rows, cols, std::move(entries));
}

Coo read_binary_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw ParseError("smx: cannot open '" + path + "'");
    return read_binary(in);
}

}  // namespace symspmv
