#include "matrix/binio.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "core/atomic_file.hpp"
#include "core/error.hpp"

namespace symspmv {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'X', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
    T v;
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in) throw ParseError("smx: truncated stream");
    return v;
}

}  // namespace

void write_binary(std::ostream& out, const Coo& coo) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "smx: matrix must be canonical");
    out.write(kMagic, sizeof(kMagic));
    write_pod<std::uint32_t>(out, 0);  // flags, reserved
    write_pod<std::int32_t>(out, coo.rows());
    write_pod<std::int32_t>(out, coo.cols());
    write_pod<std::int64_t>(out, static_cast<std::int64_t>(coo.nnz()));
    for (const Triplet& t : coo.entries()) {
        write_pod(out, t.row);
        write_pod(out, t.col);
        write_pod(out, t.val);
    }
    SYMSPMV_CHECK_MSG(static_cast<bool>(out), "smx: write failed");
}

void write_binary_file(const std::string& path, const Coo& coo) {
    // Atomic (temp + rename): a crashed run never leaves a torn .smx behind.
    write_file_atomic(path, [&](std::ostream& out) { write_binary(out, coo); });
}

Coo read_binary(std::istream& in) {
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw ParseError("smx: bad magic (not an .smx stream)");
    }
    const auto flags = read_pod<std::uint32_t>(in);
    if (flags != 0) throw ParseError("smx: unsupported flags");
    const auto rows = read_pod<std::int32_t>(in);
    const auto cols = read_pod<std::int32_t>(in);
    const auto nnz = read_pod<std::int64_t>(in);
    if (rows < 0 || cols < 0 || nnz < 0) throw ParseError("smx: negative dimension");
    if (nnz > static_cast<std::int64_t>(rows) * cols) {
        throw ParseError("smx: nnz exceeds matrix capacity");
    }
    std::vector<Triplet> entries;
    entries.reserve(static_cast<std::size_t>(nnz));
    for (std::int64_t k = 0; k < nnz; ++k) {
        Triplet t;
        t.row = read_pod<index_t>(in);
        t.col = read_pod<index_t>(in);
        t.val = read_pod<value_t>(in);
        if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
            throw ParseError("smx: entry out of bounds");
        }
        if (!entries.empty() && !triplet_rowmajor_less(entries.back(), t)) {
            throw ParseError("smx: entries not in canonical order");
        }
        entries.push_back(t);
    }
    return Coo(rows, cols, std::move(entries));
}

Coo read_binary_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw ParseError("smx: cannot open '" + path + "'");
    return read_binary(in);
}

}  // namespace symspmv
