// Parametric generators of symmetric positive-definite sparse matrices.
//
// These are the offline stand-ins for the University of Florida collection
// used in the paper (Table I).  Each generator controls the structural
// features the paper's effects depend on: matrix bandwidth, non-zeros per
// row, and the presence of dense substructures (which drive CSX detection).
// All outputs are exactly symmetric and strictly diagonally dominant with a
// positive diagonal, hence symmetric positive definite — so CG applies.
#pragma once

#include <cstdint>

#include "matrix/coo.hpp"

namespace symspmv::gen {

/// 5-point Laplacian stencil on an nx x ny grid (rows = nx*ny).
/// Low, perfectly regular bandwidth (= nx); the classic C.F.D./thermal shape.
Coo poisson2d(index_t nx, index_t ny);

/// 7-point Laplacian stencil on an nx x ny x nz grid.
Coo poisson3d(index_t nx, index_t ny, index_t nz);

/// Random symmetric matrix with ~nnz_per_row non-zeros per row.
/// A fraction (1 - scatter_fraction) of the off-diagonal entries lands
/// inside a band of half-width half_band around the diagonal; the remaining
/// scatter_fraction is uniform over the whole row — this is the knob that
/// makes "high-bandwidth corner case" matrices (§V.B).
Coo banded_random(index_t n, index_t half_band, double nnz_per_row, std::uint64_t seed,
                  double scatter_fraction = 0.0);

/// Structural-FEM analog: a banded random graph over `nodes` mesh nodes,
/// where every node carries `block` degrees of freedom and every node-node
/// edge contributes a dense block x block coupling submatrix.  Produces the
/// dense 2-D substructures typical of bmw*/hood/ldoor/inline_1 that CSX
/// encodes as block units.  node_degree counts off-diagonal node neighbours.
Coo block_fem(index_t nodes, int block, double node_degree, double band_fraction,
              std::uint64_t seed);

/// Circuit-analog: a narrow diagonal band plus a few power-law "hub" nodes
/// with long-range connections — low nnz/row, very high bandwidth
/// (G3_circuit shape).
Coo power_law_circuit(index_t n, double avg_degree, std::uint64_t seed);

/// Replaces the diagonal so the matrix is strictly diagonally dominant:
/// a(i,i) = sum_j |a(i,j)| + 1.  @p full must be canonical and symmetric in
/// structure; returns the SPD result.
Coo make_spd(const Coo& full);

}  // namespace symspmv::gen
