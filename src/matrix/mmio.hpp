// Matrix Market (.mtx) I/O.
//
// The paper evaluates on matrices from the University of Florida Sparse
// Matrix Collection, which are distributed in Matrix Market coordinate
// format.  This reader/writer handles the subset those files use:
//   %%MatrixMarket matrix coordinate {real,integer,pattern} {general,symmetric}
// Symmetric files store only the lower triangle; read_matrix_market expands
// them to the full matrix (use read_matrix_market_raw to keep the triangle).
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"

namespace symspmv {

struct MatrixMarketHeader {
    bool pattern = false;     // entries have no value field (implied 1.0)
    bool symmetric = false;   // file stores the lower triangle only
    bool duplicates = false;  // the entry list repeated a coordinate (the
                              // raw reader sums them; the mirroring reader
                              // rejects symmetric files that do this, since
                              // a repeated or both-triangle entry would
                              // silently double its value)
};

/// Reads a Matrix Market stream; symmetric inputs are mirrored to full.
Coo read_matrix_market(std::istream& in);

/// Reads a Matrix Market file by path; symmetric inputs are mirrored to full.
Coo read_matrix_market_file(const std::string& path);

/// Reads without mirroring; reports what the header declared.
Coo read_matrix_market_raw(std::istream& in, MatrixMarketHeader& header);

/// Writes @p coo in coordinate/real/general layout.
/// If @p as_symmetric is true, writes only the lower triangle with the
/// symmetric qualifier (the matrix must be symmetric).
void write_matrix_market(std::ostream& out, const Coo& coo, bool as_symmetric = false);

}  // namespace symspmv
