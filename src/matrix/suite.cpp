#include "matrix/suite.hpp"

#include <charconv>
#include <cmath>
#include <filesystem>
#include <functional>

#include "core/error.hpp"
#include "matrix/binio.hpp"
#include "matrix/generators.hpp"
#include "matrix/mmio.hpp"

namespace symspmv::gen {
namespace {

/// Deterministic per-name seed so every run regenerates identical matrices.
std::uint64_t name_seed(const std::string& name) {
    return std::hash<std::string>{}(name) | 1ULL;
}

index_t scaled_rows(index_t paper_rows, double scale) {
    const auto r = static_cast<index_t>(std::llround(paper_rows * scale));
    return std::max<index_t>(512, r);
}

}  // namespace

const std::vector<SuiteEntry>& suite_entries() {
    static const std::vector<SuiteEntry> entries = {
        {"parabolic_fem", "C.F.D.", StructureClass::kStencil, 525825, 3674625},
        {"offshore", "E/M", StructureClass::kIrregular, 259789, 4242673},
        {"consph", "F.E.M.", StructureClass::kBlockFem, 83334, 6010480},
        {"bmw7st_1", "Structural", StructureClass::kBlockFem, 141347, 7339667},
        {"G3_circuit", "Circuit", StructureClass::kCircuit, 1585478, 7660826},
        {"thermal2", "Thermal", StructureClass::kStencil, 1228045, 8580313},
        {"bmwcra_1", "Structural", StructureClass::kBlockFem, 148770, 10644002},
        {"hood", "Structural", StructureClass::kBlockFem, 220542, 10768436},
        {"crankseg_2", "Structural", StructureClass::kBlockFem, 63838, 14148858},
        {"nd12k", "2D/3D", StructureClass::kDenseRows, 36000, 14220946},
        {"inline_1", "Structural", StructureClass::kBlockFem, 503712, 36816342},
        {"ldoor", "Structural", StructureClass::kBlockFem, 952203, 46522475},
    };
    return entries;
}

Coo generate_suite_matrix(const SuiteEntry& entry, double scale) {
    SYMSPMV_CHECK_MSG(scale > 0.0, "suite: scale must be positive");
    const index_t rows = scaled_rows(entry.paper_rows, scale);
    const double nnz_per_row =
        static_cast<double>(entry.paper_nnz) / static_cast<double>(entry.paper_rows);
    const std::uint64_t seed = name_seed(entry.name);

    switch (entry.cls) {
        case StructureClass::kStencil: {
            // parabolic_fem / thermal2: regular stencil with a sprinkle of
            // irregular links (parabolic_fem is the paper's most irregular
            // high-bandwidth corner case, so it gets extra scatter).
            const auto nx = static_cast<index_t>(std::lround(std::sqrt(rows)));
            Coo grid = poisson2d(nx, std::max<index_t>(1, rows / nx));
            const double scatter = entry.name == "parabolic_fem" ? 0.35 : 0.05;
            Coo noise = banded_random(grid.rows(), std::max<index_t>(2, grid.rows() / 6),
                                      std::max(1.0, nnz_per_row - 5.0), seed, scatter);
            // Merge the stencil and the noise patterns.
            Coo merged(grid.rows(), grid.cols());
            for (const Triplet& t : grid.entries())
                if (t.row != t.col) merged.add(t.row, t.col, t.val);
            for (const Triplet& t : noise.entries())
                if (t.row != t.col) merged.add(t.row, t.col, t.val);
            merged.canonicalize();
            return make_spd(merged);
        }
        case StructureClass::kIrregular:
            // offshore: moderate nnz/row, most entries far from the diagonal.
            return banded_random(rows, std::max<index_t>(2, rows / 64), nnz_per_row, seed,
                                 /*scatter_fraction=*/0.6);
        case StructureClass::kBlockFem: {
            // Structural matrices: 3 or 6 dof per node, narrow node band.
            const int block = (entry.name == "consph" || entry.name == "crankseg_2") ? 3 : 6;
            const index_t nodes = std::max<index_t>(64, rows / block);
            const double node_degree = std::max(1.0, nnz_per_row / block - 1.0);
            const double band_fraction = entry.name == "crankseg_2" ? 0.08 : 0.02;
            return block_fem(nodes, block, node_degree, band_fraction, seed);
        }
        case StructureClass::kCircuit:
            return power_law_circuit(rows, nnz_per_row, seed);
        case StructureClass::kDenseRows: {
            // nd12k: ~395 nnz/row concentrated near the diagonal.  At small
            // scales the paper's density is infeasible, so the target is
            // capped at a quarter of the row length and the band widened to
            // host it.
            const double target = std::min(nnz_per_row, rows / 4.0);
            const auto half_band = std::min<index_t>(
                rows - 1, std::max<index_t>(rows / 12, static_cast<index_t>(1.5 * target)));
            return banded_random(rows, half_band, target, seed, /*scatter_fraction=*/0.02);
        }
    }
    throw InvalidArgument("unknown structure class");
}

Coo generate_suite_matrix(const std::string& name, double scale) {
    for (const SuiteEntry& e : suite_entries()) {
        if (e.name == name) return generate_suite_matrix(e, scale);
    }
    throw InvalidArgument("unknown suite matrix: " + name);
}

Coo load_or_generate(const std::string& name, double scale, const std::string& dir) {
    return load_or_generate(name, scale, dir, "");
}

Coo load_or_generate(const std::string& name, double scale, const std::string& dir,
                     const std::string& cache_dir) {
    if (!dir.empty()) {
        const auto path = std::filesystem::path(dir) / (name + ".mtx");
        if (std::filesystem::exists(path)) return read_matrix_market_file(path.string());
    }
    if (cache_dir.empty()) return generate_suite_matrix(name, scale);

    // The scale is part of the cache identity: "consph at 0.008" and
    // "consph at 1.0" are different matrices.  to_chars renders the shortest
    // round-trip form, so equal scales always map to the same file name.
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), scale);
    SYMSPMV_CHECK_MSG(ec == std::errc{}, "suite cache: cannot format scale");
    const auto path = std::filesystem::path(cache_dir) /
                      (name + "-s" + std::string(buf, ptr) + ".smx");
    if (std::filesystem::exists(path)) {
        try {
            return read_binary_file(path.string());
        } catch (const std::exception&) {
            // Corrupt or truncated cache entry: fall through and rebuild it.
        }
    }
    Coo coo = generate_suite_matrix(name, scale);
    std::error_code fs_ec;
    std::filesystem::create_directories(cache_dir, fs_ec);
    if (!fs_ec) write_binary_file(path.string(), coo);  // atomic (core/atomic_file)
    return coo;
}

}  // namespace symspmv::gen
