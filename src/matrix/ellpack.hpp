// ELLPACK/ITPACK storage — the classic vector-machine format catalogued by
// SPARSKIT ([13] in the paper's references) and used here as a baseline.
//
// Every row is padded to the length of the longest row; column indices and
// values become dense n x width arrays (column-major here, so the kernel
// streams one "diagonal" of the padded structure at a time, the layout
// vector machines exploited).  The padding ratio makes ELLPACK great on
// regular stencils and catastrophic on matrices with a few long rows —
// exactly the structure contrast the paper's suite spans.
#pragma once

#include <span>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

class Ellpack {
   public:
    Ellpack() = default;

    /// Builds from a canonical COO matrix.
    explicit Ellpack(const Coo& coo);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return nnz_; }

    /// Padded row width (= longest row's non-zero count).
    [[nodiscard]] index_t width() const { return width_; }

    /// Stored slots / structural non-zeros (>= 1; the padding cost).
    [[nodiscard]] double padding_ratio() const {
        return nnz_ == 0 ? 1.0
                         : static_cast<double>(n_rows_) * static_cast<double>(width_) /
                               static_cast<double>(nnz_);
    }

    /// Column-major slot arrays: slot s of row r lives at s*rows + r.
    /// Padding slots repeat the row's last valid column with value 0.
    [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    [[nodiscard]] std::size_t size_bytes() const {
        return colind_.size() * kIndexBytes + values_.size() * kValueBytes;
    }

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// y = A * x restricted to rows [row_begin, row_end).
    void spmv_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                   std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    index_t width_ = 0;
    std::int64_t nnz_ = 0;
    aligned_vector<index_t> colind_;
    aligned_vector<value_t> values_;
};

/// Jagged Diagonal Storage (JDS) — SPARSKIT's format for long-vector
/// machines.  Rows are sorted by descending non-zero count; the k-th
/// non-zeros of all rows that have one form the k-th "jagged diagonal",
/// stored contiguously.  No padding, but SpM×V results come out in the
/// permuted order and are scattered back through the row permutation.
class Jds {
   public:
    Jds() = default;

    /// Builds from a canonical COO matrix.
    explicit Jds(const Coo& coo);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

    /// Number of jagged diagonals (= longest row's non-zero count).
    [[nodiscard]] index_t diagonals() const { return static_cast<index_t>(jd_ptr_.size()) - 1; }

    /// perm()[k] = original row of sorted position k.
    [[nodiscard]] std::span<const index_t> perm() const { return perm_; }
    [[nodiscard]] std::span<const index_t> jd_ptr() const { return jd_ptr_; }
    [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    [[nodiscard]] std::size_t size_bytes() const {
        return (colind_.size() + perm_.size() + jd_ptr_.size()) * kIndexBytes +
               values_.size() * kValueBytes;
    }

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    aligned_vector<index_t> perm_;
    aligned_vector<index_t> jd_ptr_;   // start of each jagged diagonal
    aligned_vector<index_t> colind_;
    aligned_vector<value_t> values_;
};

}  // namespace symspmv
