// Structural properties of sparse matrices.
//
// Matrix bandwidth drives the paper's corner-case analysis (§V.B, §V.D):
// high-bandwidth matrices defeat the symmetric formats because mirrored
// writes land far from the thread's own rows.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

struct MatrixProperties {
    index_t rows = 0;
    index_t cols = 0;
    index_t nnz = 0;
    index_t bandwidth = 0;        // max |i - j| over non-zeros
    double avg_bandwidth = 0.0;   // mean |i - j|
    double density = 0.0;         // nnz / (rows * cols)
    double nnz_per_row = 0.0;
    index_t max_row_nnz = 0;
    index_t min_row_nnz = 0;
    index_t empty_rows = 0;
    index_t diag_nnz = 0;
    bool structurally_symmetric = false;
    bool numerically_symmetric = false;
};

/// Computes all properties in one pass over a canonical COO matrix.
MatrixProperties analyze(const Coo& coo);

/// Matrix bandwidth only: max |i - j| over the non-zeros.
index_t bandwidth(const Coo& coo);

}  // namespace symspmv
