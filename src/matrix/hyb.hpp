// HYB (hybrid ELL + COO) storage.
//
// ELLPACK's padding is ruined by a few long rows (see Ellpack); HYB caps
// the ELL width at a quantile of the row-length distribution and spills
// the excess non-zeros of the long rows into a small COO tail.  The
// classic regular/irregular split completes the baseline-format family the
// related work ([12], [13]) catalogues.
#pragma once

#include <span>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"
#include "matrix/ellpack.hpp"

namespace symspmv {

class Hyb {
   public:
    Hyb() = default;

    /// Builds from a canonical COO.  @p width_quantile picks the ELL width
    /// as the smallest row length covering that fraction of rows (1.0
    /// degenerates to plain ELLPACK, 0.0 to plain COO).
    explicit Hyb(const Coo& coo, double width_quantile = 0.9);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return nnz_; }

    /// ELL slot width chosen by the quantile rule.
    [[nodiscard]] index_t ell_width() const { return width_; }

    /// Non-zeros stored in the ELL part (the rest is the COO tail).
    [[nodiscard]] std::int64_t ell_nnz() const { return ell_nnz_; }
    [[nodiscard]] std::int64_t tail_nnz() const {
        return static_cast<std::int64_t>(tail_vals_.size());
    }

    /// Stored ELL slots / ELL non-zeros (padding of the regular part).
    [[nodiscard]] double ell_padding_ratio() const {
        return ell_nnz_ == 0 ? 1.0
                             : static_cast<double>(n_rows_) * static_cast<double>(width_) /
                                   static_cast<double>(ell_nnz_);
    }

    /// Column-major ELL arrays (layout identical to Ellpack).
    [[nodiscard]] std::span<const index_t> ell_colind() const { return ell_colind_; }
    [[nodiscard]] std::span<const value_t> ell_values() const { return ell_values_; }

    /// COO tail, row-major sorted.
    [[nodiscard]] std::span<const index_t> tail_rows() const { return tail_rows_; }
    [[nodiscard]] std::span<const index_t> tail_cols() const { return tail_cols_; }
    [[nodiscard]] std::span<const value_t> tail_values() const { return tail_vals_; }

    [[nodiscard]] std::size_t size_bytes() const {
        return ell_colind_.size() * kIndexBytes + ell_values_.size() * kValueBytes +
               (tail_rows_.size() + tail_cols_.size()) * kIndexBytes +
               tail_vals_.size() * kValueBytes;
    }

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// ELL part restricted to rows [row_begin, row_end) (building block of
    /// the MT kernel; the COO tail is handled separately because its rows
    /// are not partition-aligned).
    void spmv_ell_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                       std::span<value_t> y) const;

    /// Adds tail entries [lo, hi) into y (rows are sorted, so a partition
    /// of the tail by row never splits a row between threads).
    void spmv_tail_range(std::size_t lo, std::size_t hi, std::span<const value_t> x,
                         std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    index_t width_ = 0;
    std::int64_t nnz_ = 0;
    std::int64_t ell_nnz_ = 0;
    aligned_vector<index_t> ell_colind_;
    aligned_vector<value_t> ell_values_;
    aligned_vector<index_t> tail_rows_;
    aligned_vector<index_t> tail_cols_;
    aligned_vector<value_t> tail_vals_;
};

}  // namespace symspmv
