#include "matrix/hyb.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv {

Hyb::Hyb(const Coo& coo, double width_quantile) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "Hyb requires a canonical COO matrix");
    SYMSPMV_CHECK_MSG(width_quantile >= 0.0 && width_quantile <= 1.0,
                      "Hyb: width_quantile must be in [0, 1]");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    nnz_ = coo.nnz();

    std::vector<index_t> counts(static_cast<std::size_t>(n_rows_), 0);
    for (const Triplet& t : coo.entries()) ++counts[static_cast<std::size_t>(t.row)];

    // Width = smallest k with quantile of rows having <= k non-zeros.
    std::vector<index_t> sorted(counts);
    std::ranges::sort(sorted);
    if (!sorted.empty()) {
        const auto at = static_cast<std::size_t>(
            width_quantile * static_cast<double>(sorted.size() - 1) + 0.5);
        width_ = sorted[std::min(at, sorted.size() - 1)];
    }

    const std::size_t slots = static_cast<std::size_t>(n_rows_) * static_cast<std::size_t>(width_);
    ell_colind_.assign(slots, 0);
    ell_values_.assign(slots, value_t{0});

    std::vector<index_t> cursor(static_cast<std::size_t>(n_rows_), 0);
    for (const Triplet& t : coo.entries()) {
        index_t& slot = cursor[static_cast<std::size_t>(t.row)];
        if (slot < width_) {
            const std::size_t at =
                static_cast<std::size_t>(slot) * static_cast<std::size_t>(n_rows_) +
                static_cast<std::size_t>(t.row);
            ell_colind_[at] = t.col;
            ell_values_[at] = t.val;
            ++slot;
            ++ell_nnz_;
        } else {
            tail_rows_.push_back(t.row);
            tail_cols_.push_back(t.col);
            tail_vals_.push_back(t.val);
        }
    }
    // Pad with the row's last valid column (same convention as Ellpack).
    for (index_t r = 0; r < n_rows_; ++r) {
        const index_t valid = cursor[static_cast<std::size_t>(r)];
        const index_t pad_col =
            valid == 0 ? 0
                       : ell_colind_[static_cast<std::size_t>(valid - 1) *
                                         static_cast<std::size_t>(n_rows_) +
                                     static_cast<std::size_t>(r)];
        for (index_t s = valid; s < width_; ++s) {
            ell_colind_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n_rows_) +
                        static_cast<std::size_t>(r)] = pad_col;
        }
    }
}

void Hyb::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    spmv_ell_rows(0, n_rows_, x, y);
    spmv_tail_range(0, tail_vals_.size(), x, y);
}

void Hyb::spmv_ell_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                        std::span<value_t> y) const {
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (index_t r = row_begin; r < row_end; ++r) yv[r] = value_t{0};
    for (index_t s = 0; s < width_; ++s) {
        const std::size_t base = static_cast<std::size_t>(s) * static_cast<std::size_t>(n_rows_);
        const index_t* __restrict cols = ell_colind_.data() + base;
        const value_t* __restrict vals = ell_values_.data() + base;
        for (index_t r = row_begin; r < row_end; ++r) {
            yv[r] += vals[r] * xv[cols[r]];
        }
    }
}

void Hyb::spmv_tail_range(std::size_t lo, std::size_t hi, std::span<const value_t> x,
                          std::span<value_t> y) const {
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (std::size_t k = lo; k < hi; ++k) {
        yv[tail_rows_[k]] += tail_vals_[k] * xv[tail_cols_[k]];
    }
}

}  // namespace symspmv
