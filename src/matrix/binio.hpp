// Fast binary matrix serialization.
//
// Matrix Market is the interchange format, but parsing text dominates the
// startup of full-scale bench runs (a 46M-non-zero ldoor takes far longer
// to parse than to multiply).  This little-endian binary cache round-trips
// a canonical COO exactly: 16-byte header (magic, version, flags) + rows,
// cols, nnz + packed triplets.  Intended for the bench pipeline
// (mtx -> .smx once, then mmap-speed loads), not as an interchange format.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"

namespace symspmv {

/// Writes @p coo (must be canonical) to @p out in .smx format.
void write_binary(std::ostream& out, const Coo& coo);
void write_binary_file(const std::string& path, const Coo& coo);

/// Reads an .smx stream; throws ParseError on malformed input.  The result
/// is validated (bounds) and canonical by construction order, which is
/// verified and rejected otherwise.
Coo read_binary(std::istream& in);
Coo read_binary_file(const std::string& path);

}  // namespace symspmv
