#include "matrix/sss.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/placement.hpp"

namespace symspmv {

Sss::Sss(const Coo& full) : n_(full.rows()) {
    SYMSPMV_CHECK_MSG(full.rows() == full.cols(), "Sss: matrix must be square");
    SYMSPMV_CHECK_MSG(full.is_canonical(), "Sss: COO input must be canonical");
    SYMSPMV_DCHECK(full.is_symmetric());

    dvalues_.assign(static_cast<std::size_t>(n_), value_t{0});
    rowptr_.assign(static_cast<std::size_t>(n_) + 1, 0);

    std::size_t lower_nnz = 0;
    for (const Triplet& t : full.entries()) {
        if (t.row > t.col) ++lower_nnz;
    }
    colind_.resize(lower_nnz);
    values_.resize(lower_nnz);

    // Entries are canonical (row-major sorted), so a single pass fills the
    // strict-lower CSR arrays in order.
    std::size_t k = 0;
    for (const Triplet& t : full.entries()) {
        if (t.row == t.col) {
            dvalues_[static_cast<std::size_t>(t.row)] = t.val;
            ++diag_nnz_;
        } else if (t.row > t.col) {
            ++rowptr_[static_cast<std::size_t>(t.row) + 1];
            colind_[k] = t.col;
            values_[k] = t.val;
            ++k;
        }
    }
    for (index_t r = 0; r < n_; ++r) {
        rowptr_[static_cast<std::size_t>(r) + 1] += rowptr_[static_cast<std::size_t>(r)];
    }
}

std::size_t Sss::size_bytes() const {
    return kValueBytes * dvalues_.size() + (kValueBytes + kIndexBytes) * values_.size() +
           kIndexBytes * rowptr_.size();
}

void Sss::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == n_, "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == n_, "spmv: y size mismatch");
    const index_t* __restrict rp = rowptr_.data();
    const index_t* __restrict ci = colind_.data();
    const value_t* __restrict va = values_.data();
    const value_t* __restrict dv = dvalues_.data();
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    // Alg. 2: the diagonal product seeds each row, then each stored lower
    // element contributes both its own product and the mirrored one.
    for (index_t r = 0; r < n_; ++r) yv[r] = dv[r] * xv[r];
    for (index_t r = 0; r < n_; ++r) {
        value_t acc = yv[r];
        const value_t xr = xv[r];
        for (index_t j = rp[r]; j < rp[r + 1]; ++j) {
            const index_t c = ci[j];
            acc += va[j] * xv[c];
            yv[c] += va[j] * xr;
        }
        yv[r] = acc;
    }
}

Csr Sss::to_csr() const {
    Coo full(n_, n_);
    for (index_t r = 0; r < n_; ++r) {
        if (dvalues_[static_cast<std::size_t>(r)] != value_t{0}) {
            full.add(r, r, dvalues_[static_cast<std::size_t>(r)]);
        }
        for (index_t j = rowptr_[static_cast<std::size_t>(r)];
             j < rowptr_[static_cast<std::size_t>(r) + 1]; ++j) {
            const index_t c = colind_[static_cast<std::size_t>(j)];
            const value_t v = values_[static_cast<std::size_t>(j)];
            full.add(r, c, v);
            full.add(c, r, v);
        }
    }
    full.canonicalize();
    return Csr(full);
}

void Sss::rehome(std::span<const RowRange> parts, ThreadPool& pool) {
    if (n_ == 0 || parts.empty()) return;
    const auto nnzr = nnz_ranges(rowptr_, parts);
    rehome_partitioned(dvalues_, parts, pool);
    // rowptr has n+1 entries; the closing sentinel rides with the last worker.
    std::vector<RowRange> rp(parts.begin(), parts.end());
    rp.back().end += 1;
    rehome_partitioned(rowptr_, rp, pool);
    rehome_partitioned(colind_, nnzr, pool);
    rehome_partitioned(values_, nnzr, pool);
}

}  // namespace symspmv
