#include "matrix/dia.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace symspmv {

Dia::Dia(const Coo& coo, int max_diagonals) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "Dia requires a canonical COO matrix");
    SYMSPMV_CHECK_MSG(max_diagonals >= 0, "Dia: max_diagonals must be non-negative");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    nnz_ = coo.nnz();

    // Count non-zeros per diagonal offset.
    std::map<index_t, std::int64_t> counts;
    for (const Triplet& t : coo.entries()) ++counts[t.col - t.row];

    // Keep the most populated offsets (ties toward the main diagonal for
    // determinism and cache friendliness).
    std::vector<std::pair<index_t, std::int64_t>> ranked(counts.begin(), counts.end());
    std::ranges::sort(ranked, [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return std::abs(a.first) < std::abs(b.first);
    });
    if (static_cast<int>(ranked.size()) > max_diagonals) {
        ranked.resize(static_cast<std::size_t>(max_diagonals));
    }
    offsets_.reserve(ranked.size());
    for (const auto& [offset, count] : ranked) offsets_.push_back(offset);
    std::ranges::sort(offsets_);

    data_.assign(offsets_.size() * static_cast<std::size_t>(n_rows_), value_t{0});
    for (const Triplet& t : coo.entries()) {
        const index_t offset = t.col - t.row;
        const auto it = std::ranges::lower_bound(offsets_, offset);
        if (it != offsets_.end() && *it == offset) {
            const std::size_t lane = static_cast<std::size_t>(it - offsets_.begin());
            data_[lane * static_cast<std::size_t>(n_rows_) + static_cast<std::size_t>(t.row)] =
                t.val;
            ++lane_nnz_;
        } else {
            tail_rows_.push_back(t.row);
            tail_cols_.push_back(t.col);
            tail_vals_.push_back(t.val);
        }
    }
}

void Dia::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    spmv_lanes_rows(0, n_rows_, x, y);
    spmv_tail_range(0, tail_vals_.size(), x, y);
}

void Dia::spmv_lanes_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                          std::span<value_t> y) const {
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (index_t r = row_begin; r < row_end; ++r) yv[r] = value_t{0};
    for (std::size_t lane = 0; lane < offsets_.size(); ++lane) {
        const index_t offset = offsets_[lane];
        // Row range where column r + offset is in bounds.
        const index_t lo = std::max<index_t>(row_begin, offset < 0 ? -offset : 0);
        const index_t hi = std::min<index_t>(row_end, n_cols_ - offset);
        const value_t* __restrict vals = data_.data() + lane * static_cast<std::size_t>(n_rows_);
        for (index_t r = lo; r < hi; ++r) {
            yv[r] += vals[r] * xv[r + offset];
        }
    }
}

void Dia::spmv_tail_range(std::size_t lo, std::size_t hi, std::span<const value_t> x,
                          std::span<value_t> y) const {
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (std::size_t k = lo; k < hi; ++k) {
        yv[tail_rows_[k]] += tail_vals_[k] * xv[tail_cols_[k]];
    }
}

}  // namespace symspmv
