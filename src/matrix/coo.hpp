// Coordinate (triplet) format — the exchange format of the library.
//
// Every other representation (CSR, SSS, CSX, CSX-Sym) is built from a
// canonicalized Coo: entries sorted row-major with duplicates combined.
// The generators and the Matrix Market reader both produce Coo.
#pragma once

#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace symspmv {

class Coo {
   public:
    Coo() = default;

    /// Creates an empty n_rows x n_cols matrix.
    Coo(index_t n_rows, index_t n_cols);

    /// Creates a matrix from raw triplets (canonicalizes on construction).
    Coo(index_t n_rows, index_t n_cols, std::vector<Triplet> entries);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] index_t nnz() const { return static_cast<index_t>(entries_.size()); }
    [[nodiscard]] std::span<const Triplet> entries() const { return entries_; }

    /// Appends one element; call canonicalize() before reading the matrix.
    void add(index_t row, index_t col, value_t val);

    /// Sorts entries row-major and sums duplicates in place.
    void canonicalize();

    /// True iff entries are sorted row-major without duplicates.
    [[nodiscard]] bool is_canonical() const;

    /// True iff the matrix is square and a(i,j) == a(j,i) for every entry
    /// (exact comparison; generators produce exactly symmetric values).
    [[nodiscard]] bool is_symmetric() const;

    /// Returns the strictly lower triangular part (diagonal excluded).
    [[nodiscard]] Coo strict_lower() const;

    /// Returns the lower triangular part including the diagonal.
    [[nodiscard]] Coo lower() const;

    /// Returns the transpose.
    [[nodiscard]] Coo transpose() const;

    /// For a matrix that stores only the lower triangle of a symmetric
    /// matrix: returns the full (mirrored) matrix.
    [[nodiscard]] Coo mirror_lower_to_full() const;

    /// Reference y = A * x (general, serial); used as the test oracle.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    std::vector<Triplet> entries_;
    bool canonical_ = true;
};

}  // namespace symspmv
