// Compressed Sparse Row (CSR) — the baseline format of the paper (§II.A).
//
// Three arrays: values (non-zeros row-wise), colind (column indices) and
// rowptr (row start offsets).  Size per Eq. (1): 12*NNZ + 4*(N+1) bytes with
// 4-byte indices and 8-byte values.
#pragma once

#include <span>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

class ThreadPool;

class Csr {
   public:
    Csr() = default;

    /// Builds from a canonical COO matrix.
    explicit Csr(const Coo& coo);

    /// Builds directly from raw arrays (validated).
    Csr(index_t n_rows, index_t n_cols, aligned_vector<index_t> rowptr,
        aligned_vector<index_t> colind, aligned_vector<value_t> values);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] index_t nnz() const { return static_cast<index_t>(values_.size()); }

    [[nodiscard]] std::span<const index_t> rowptr() const { return rowptr_; }
    [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    /// Storage footprint in bytes (Eq. 1 of the paper).
    [[nodiscard]] std::size_t size_bytes() const;

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// y = A * x restricted to rows [row_begin, row_end); building block of
    /// the multithreaded kernel.
    void spmv_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                   std::span<value_t> y) const;

    /// Converts back to COO (canonical).
    [[nodiscard]] Coo to_coo() const;

    /// NUMA first-touch re-home of the three arrays onto the workers owning
    /// each row range (see Sss::rehome).  Invalidates previous spans.
    void rehome(std::span<const RowRange> parts, ThreadPool& pool);

   private:
    void validate() const;

    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    aligned_vector<index_t> rowptr_;
    aligned_vector<index_t> colind_;
    aligned_vector<value_t> values_;
};

}  // namespace symspmv
