#include "matrix/vbl.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv {

Vbl::Vbl(const Coo& coo) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "Vbl requires a canonical COO matrix");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    block_rowptr_.assign(static_cast<std::size_t>(n_rows_) + 1, 0);
    values_.reserve(static_cast<std::size_t>(coo.nnz()));

    const auto entries = coo.entries();
    std::size_t pos = 0;
    for (index_t r = 0; r < n_rows_; ++r) {
        block_rowptr_[static_cast<std::size_t>(r)] = static_cast<index_t>(bcol_.size());
        while (pos < entries.size() && entries[pos].row == r) {
            // Open a block at this element and extend it while columns stay
            // consecutive (8-bit length caps a run at 255 elements).
            const index_t start = entries[pos].col;
            index_t len = 0;
            while (pos < entries.size() && entries[pos].row == r &&
                   entries[pos].col == start + len && len < kMaxBlockLength) {
                values_.push_back(entries[pos].val);
                ++len;
                ++pos;
            }
            bcol_.push_back(start);
            blen_.push_back(static_cast<std::uint8_t>(len));
        }
    }
    block_rowptr_[static_cast<std::size_t>(n_rows_)] = static_cast<index_t>(bcol_.size());
    SYMSPMV_CHECK(pos == entries.size());
}

void Vbl::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    spmv_rows(0, n_rows_, x, y);
}

std::size_t Vbl::value_offset_of_row(index_t row) const {
    std::size_t v = 0;
    for (index_t b = 0; b < block_rowptr_[static_cast<std::size_t>(row)]; ++b) {
        v += blen_[static_cast<std::size_t>(b)];
    }
    return v;
}

void Vbl::spmv_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                    std::span<value_t> y) const {
    spmv_rows_from(row_begin, row_end, value_offset_of_row(row_begin), x, y);
}

void Vbl::spmv_rows_from(index_t row_begin, index_t row_end, std::size_t value_offset,
                         std::span<const value_t> x, std::span<value_t> y) const {
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    // Values are stored in block order, which is also row-major order, so a
    // running cursor locates each row's first value.
    std::size_t v = value_offset;
    for (index_t r = row_begin; r < row_end; ++r) {
        value_t acc = value_t{0};
        for (index_t b = block_rowptr_[static_cast<std::size_t>(r)];
             b < block_rowptr_[static_cast<std::size_t>(r) + 1]; ++b) {
            const index_t col = bcol_[static_cast<std::size_t>(b)];
            const int len = blen_[static_cast<std::size_t>(b)];
            const value_t* __restrict vals = values_.data() + v;
            const value_t* __restrict xs = xv + col;
            for (int k = 0; k < len; ++k) {
                acc += vals[k] * xs[k];
            }
            v += static_cast<std::size_t>(len);
        }
        yv[r] = acc;
    }
}

}  // namespace symspmv
