// Symmetric Sparse Skyline (SSS) — §II.B of the paper.
//
// Stores the main diagonal in a dense N-element dvalues array and the
// strictly lower triangular part in CSR.  Size per Eq. (2):
//   S_SSS = 6*(NNZ + N) + 4   bytes,
// where NNZ counts the non-zeros of the *full* symmetric matrix.
#pragma once

#include <span>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace symspmv {

class ThreadPool;

class Sss {
   public:
    Sss() = default;

    /// Builds from a canonical COO holding the FULL symmetric matrix.
    /// Requires a square matrix; symmetry is the caller's contract (checked
    /// in debug builds only — it is O(nnz log nnz)).
    explicit Sss(const Coo& full);

    [[nodiscard]] index_t rows() const { return n_; }
    [[nodiscard]] index_t cols() const { return n_; }

    /// Non-zeros of the full symmetric matrix (diagonal + 2x strict lower).
    [[nodiscard]] index_t nnz() const {
        return diag_nnz_ + 2 * static_cast<index_t>(values_.size());
    }

    /// Non-zeros actually stored (diagonal array + strict lower part).
    [[nodiscard]] std::size_t stored_nnz() const {
        return static_cast<std::size_t>(n_) + values_.size();
    }

    [[nodiscard]] std::span<const value_t> dvalues() const { return dvalues_; }
    [[nodiscard]] std::span<const index_t> rowptr() const { return rowptr_; }
    [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    /// Storage footprint in bytes (Eq. 2 of the paper).
    [[nodiscard]] std::size_t size_bytes() const;

    /// Serial symmetric SpM×V (Alg. 2): y = A * x.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// Expands back to the full symmetric matrix in CSR form.
    [[nodiscard]] Csr to_csr() const;

    /// NUMA first-touch re-home: moves the pages of every format array onto
    /// the node of the worker that owns the corresponding row range (@p
    /// parts, one per worker of @p pool, tiling [0, rows)).  The COO
    /// conversion builds the arrays on one thread, so without this every
    /// page sits on that thread's node.  Contents are unchanged; previously
    /// obtained spans are invalidated (storage is reallocated).
    void rehome(std::span<const RowRange> parts, ThreadPool& pool);

   private:
    index_t n_ = 0;
    index_t diag_nnz_ = 0;  // structural non-zeros on the diagonal
    aligned_vector<value_t> dvalues_;
    aligned_vector<index_t> rowptr_;
    aligned_vector<index_t> colind_;
    aligned_vector<value_t> values_;
};

}  // namespace symspmv
