// Tiny row-major dense matrix used only as a test oracle for small inputs.
#pragma once

#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

class Dense {
   public:
    Dense(index_t n_rows, index_t n_cols)
        : n_rows_(n_rows),
          n_cols_(n_cols),
          data_(static_cast<std::size_t>(n_rows) * static_cast<std::size_t>(n_cols), 0.0) {
        SYMSPMV_CHECK_MSG(n_rows >= 0 && n_cols >= 0, "Dense: negative dimension");
    }

    explicit Dense(const Coo& coo) : Dense(coo.rows(), coo.cols()) {
        for (const Triplet& t : coo.entries()) at(t.row, t.col) += t.val;
    }

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }

    [[nodiscard]] value_t& at(index_t r, index_t c) {
        return data_[static_cast<std::size_t>(r) * n_cols_ + static_cast<std::size_t>(c)];
    }
    [[nodiscard]] value_t at(index_t r, index_t c) const {
        return data_[static_cast<std::size_t>(r) * n_cols_ + static_cast<std::size_t>(c)];
    }

    void spmv(std::span<const value_t> x, std::span<value_t> y) const {
        SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_);
        SYMSPMV_CHECK(static_cast<index_t>(y.size()) == n_rows_);
        for (index_t r = 0; r < n_rows_; ++r) {
            value_t acc = 0.0;
            for (index_t c = 0; c < n_cols_; ++c) acc += at(r, c) * x[static_cast<std::size_t>(c)];
            y[static_cast<std::size_t>(r)] = acc;
        }
    }

   private:
    index_t n_rows_;
    index_t n_cols_;
    std::vector<value_t> data_;
};

}  // namespace symspmv
