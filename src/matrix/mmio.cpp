#include "matrix/mmio.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "core/error.hpp"

namespace symspmv {
namespace {

std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

MatrixMarketHeader parse_header(const std::string& line) {
    std::istringstream is(line);
    std::string banner, object, fmt, field, symmetry;
    is >> banner >> object >> fmt >> field >> symmetry;
    if (lower(banner) != "%%matrixmarket") throw ParseError("missing %%MatrixMarket banner");
    if (lower(object) != "matrix") throw ParseError("unsupported MatrixMarket object: " + object);
    if (lower(fmt) != "coordinate") {
        throw ParseError("only coordinate MatrixMarket format is supported, got: " + fmt);
    }
    MatrixMarketHeader h;
    const std::string f = lower(field);
    if (f == "pattern") {
        h.pattern = true;
    } else if (f != "real" && f != "integer" && f != "double") {
        throw ParseError("unsupported MatrixMarket field: " + field);
    }
    const std::string s = lower(symmetry);
    if (s == "symmetric") {
        h.symmetric = true;
    } else if (s != "general") {
        throw ParseError("unsupported MatrixMarket symmetry: " + symmetry);
    }
    return h;
}

}  // namespace

Coo read_matrix_market_raw(std::istream& in, MatrixMarketHeader& header) {
    std::string line;
    if (!std::getline(in, line)) throw ParseError("empty MatrixMarket stream");
    header = parse_header(line);

    // Skip comments and blank lines up to the size line.  The loop must
    // distinguish "found a size line" from "stream ended": without the flag,
    // EOF here would leave `line` holding the last comment and produce a
    // misleading "malformed size line: %..." error for a truncated file.
    bool found_size_line = false;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') {
            found_size_line = true;
            break;
        }
    }
    if (!found_size_line) {
        throw ParseError("MatrixMarket stream ends before the size line");
    }
    std::istringstream size_line(line);
    long rows = 0, cols = 0, nnz = 0;
    if (!(size_line >> rows >> cols >> nnz) || rows < 0 || cols < 0 || nnz < 0) {
        throw ParseError("malformed MatrixMarket size line: " + line);
    }
    constexpr long kMaxIndex = std::numeric_limits<index_t>::max();
    if (rows > kMaxIndex || cols > kMaxIndex) {
        throw ParseError("MatrixMarket dimensions exceed 32-bit index range: " + line);
    }
    // rows*cols cannot overflow now (both fit in 32 bits); an nnz beyond it
    // is physically impossible and would otherwise only surface much later
    // as a truncation error (or an attempted huge allocation).
    if (nnz > rows * cols) {
        throw ParseError("MatrixMarket size line declares more entries than rows*cols: " +
                         line);
    }

    Coo coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
    for (long k = 0; k < nnz; ++k) {
        long i = 0, j = 0;
        double v = 1.0;
        if (!(in >> i >> j)) throw ParseError("truncated MatrixMarket entry list");
        if (!header.pattern && !(in >> v)) throw ParseError("missing MatrixMarket value");
        if (i < 1 || i > rows || j < 1 || j > cols) {
            throw ParseError("MatrixMarket entry out of bounds");
        }
        coo.add(static_cast<index_t>(i - 1), static_cast<index_t>(j - 1), v);
    }
    coo.canonicalize();
    header.duplicates = static_cast<long>(coo.nnz()) != nnz;  // canonicalize() summed some
    return coo;
}

Coo read_matrix_market(std::istream& in) {
    MatrixMarketHeader header;
    Coo coo = read_matrix_market_raw(in, header);
    if (!header.symmetric) return coo;
    // A repeated coordinate in a symmetric file would be summed into the
    // stored triangle and then mirrored — a silently doubled value, not a
    // recoverable input.
    if (header.duplicates) {
        throw ParseError("symmetric MatrixMarket file repeats an entry");
    }
    // Symmetric files may store either triangle; mirror every off-diagonal.
    Coo full(coo.rows(), coo.cols());
    index_t off_diagonal = 0;
    for (const Triplet& t : coo.entries()) {
        full.add(t.row, t.col, t.val);
        if (t.row != t.col) {
            full.add(t.col, t.row, t.val);
            ++off_diagonal;
        }
    }
    full.canonicalize();
    // If the file stored both (i,j) and (j,i), mirroring collides them and
    // canonicalize() sums the pair — again a silent value change.  Detect it
    // by counting: a clean single-triangle file mirrors to exactly
    // diagonal + 2*off-diagonal distinct entries.
    if (full.nnz() != coo.nnz() + off_diagonal) {
        throw ParseError("symmetric MatrixMarket file stores both triangles of an entry");
    }
    return full;
}

Coo read_matrix_market_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("cannot open matrix file: " + path);
    return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo, bool as_symmetric) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "write_matrix_market: COO input must be canonical");
    const Coo* body = &coo;
    Coo lower_part;
    if (as_symmetric) {
        SYMSPMV_CHECK_MSG(coo.is_symmetric(), "write_matrix_market: matrix is not symmetric");
        lower_part = coo.lower();
        body = &lower_part;
    }
    out << "%%MatrixMarket matrix coordinate real "
        << (as_symmetric ? "symmetric" : "general") << '\n';
    out << coo.rows() << ' ' << coo.cols() << ' ' << body->nnz() << '\n';
    out << std::setprecision(17);
    for (const Triplet& t : body->entries()) {
        out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.val << '\n';
    }
}

}  // namespace symspmv
