// Variable Block Length (VBL) storage — 1-D variable blocking in the spirit
// of Vuduc & Moon's variable block splitting ([24] in the paper).
//
// Consecutive non-zeros of a row collapse into one block described by a
// start column and an 8-bit length, so a horizontal run of L elements costs
// 5 bytes of metadata instead of 4L.  This is the "poor man's CSX": it
// captures exactly the horizontal substructures (CSX additionally encodes
// vertical/diagonal/2-D ones) and serves as the intermediate point between
// CSR and CSX in the compression ablation.
#pragma once

#include <cstdint>
#include <span>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

class Vbl {
   public:
    /// Longest run one block can describe (8-bit length field).
    static constexpr index_t kMaxBlockLength = 255;

    Vbl() = default;

    /// Builds from a canonical COO matrix.
    explicit Vbl(const Coo& coo);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }
    [[nodiscard]] std::int64_t blocks() const { return static_cast<std::int64_t>(bcol_.size()); }

    /// Mean elements per block (1.0 = fully scattered, no gain over CSR).
    [[nodiscard]] double mean_block_length() const {
        return blocks() == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(blocks());
    }

    /// Row r owns blocks [block_rowptr()[r], block_rowptr()[r+1]); block b
    /// covers columns [bcol()[b], bcol()[b] + blen()[b]) and its values are
    /// contiguous in values() (block order).
    [[nodiscard]] std::span<const index_t> block_rowptr() const { return block_rowptr_; }
    [[nodiscard]] std::span<const index_t> bcol() const { return bcol_; }
    [[nodiscard]] std::span<const std::uint8_t> blen() const { return blen_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    [[nodiscard]] std::size_t size_bytes() const {
        return values_.size() * kValueBytes + bcol_.size() * kIndexBytes + blen_.size() +
               block_rowptr_.size() * kIndexBytes;
    }

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// y = A * x restricted to rows [row_begin, row_end).  Scans the block
    /// lengths up to row_begin to find the value cursor; the MT kernel uses
    /// the offset overload instead.
    void spmv_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                   std::span<value_t> y) const;

    /// As above with the value offset of row_begin supplied by the caller
    /// (see value_offset_of_row).
    void spmv_rows_from(index_t row_begin, index_t row_end, std::size_t value_offset,
                        std::span<const value_t> x, std::span<value_t> y) const;

    /// Index into values() of the first element of @p row (O(blocks) scan).
    [[nodiscard]] std::size_t value_offset_of_row(index_t row) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    aligned_vector<index_t> block_rowptr_;
    aligned_vector<index_t> bcol_;
    aligned_vector<std::uint8_t> blen_;
    aligned_vector<value_t> values_;
};

}  // namespace symspmv
