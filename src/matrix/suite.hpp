// The 12-matrix evaluation suite of Table I, as synthetic analogs.
//
// Each entry maps one University of Florida matrix to a generator whose
// parameters reproduce its structure class: rows-to-nnz ratio, relative
// bandwidth, and dense-block content.  `scale` shrinks/grows the row count
// (1.0 reproduces the paper's sizes; the benches default to a laptop-scale
// fraction).  If a directory of real .mtx files is supplied, those are
// loaded instead, making the reproduction exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/coo.hpp"

namespace symspmv::gen {

/// Structure class of a suite matrix (drives which generator is used).
enum class StructureClass {
    kStencil,       // regular low-bandwidth FEM/CFD stencil
    kIrregular,     // high-bandwidth scattered (corner cases of §V.B)
    kBlockFem,      // structural matrices with dense dof blocks
    kCircuit,       // power-law, very high bandwidth
    kDenseRows,     // nd12k-style near-dense rows
};

struct SuiteEntry {
    std::string name;       // the paper's matrix name
    std::string problem;    // Table I "Problem" column
    StructureClass cls;
    index_t paper_rows;     // Table I rows
    std::int64_t paper_nnz; // Table I non-zeros
};

/// The 12 matrices of Table I in paper order.
const std::vector<SuiteEntry>& suite_entries();

/// Generates the synthetic analog of @p entry at the given scale
/// (scale = 1.0 targets the paper's row counts).  Deterministic per name.
Coo generate_suite_matrix(const SuiteEntry& entry, double scale);

/// Convenience: generate by matrix name (throws on unknown names).
Coo generate_suite_matrix(const std::string& name, double scale);

/// If `dir` contains "<name>.mtx", loads it; otherwise generates the analog.
Coo load_or_generate(const std::string& name, double scale, const std::string& dir);

/// Same, with a binary cache: when @p cache_dir is non-empty, a generated
/// matrix is stored there as "<name>-s<scale>.smx" (matrix/binio.hpp) and
/// later calls load the cache at mmap speed instead of regenerating — the
/// full-scale tier's matrices are built once per machine, not once per run.
/// Real .mtx files (from @p dir) are never cached; a corrupt or stale cache
/// entry is regenerated and overwritten.  Empty @p cache_dir = no caching.
Coo load_or_generate(const std::string& name, double scale, const std::string& dir,
                     const std::string& cache_dir);

}  // namespace symspmv::gen
