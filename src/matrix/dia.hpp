// DIA (diagonal) storage — the last member of the SPARSKIT baseline family
// ([13]): non-zeros are stored along matrix diagonals, so banded matrices
// need *no* column indices at all (one offset per diagonal).
//
// DIA collapses on scattered matrices (every distinct offset costs a full
// n-element lane of padding), so like Hyb the constructor keeps only the
// most-populated diagonals — up to max_diagonals or until the padding
// budget is exhausted — and spills the rest into a row-major COO tail.
// max_diagonals = unlimited + a banded matrix reproduces textbook DIA.
#pragma once

#include <span>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv {

class Dia {
   public:
    Dia() = default;

    /// Builds from a canonical COO.  Keeps the @p max_diagonals diagonals
    /// with the most non-zeros (ties toward the main diagonal); all other
    /// entries go to the tail.
    explicit Dia(const Coo& coo, int max_diagonals = 64);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return nnz_; }

    /// Diagonals actually stored as dense lanes.
    [[nodiscard]] int diagonals() const { return static_cast<int>(offsets_.size()); }
    [[nodiscard]] std::span<const index_t> offsets() const { return offsets_; }

    /// Lane d is data()[d*rows() .. (d+1)*rows()): element i of lane d is
    /// a(i, i + offsets()[d]) (zero where out of range or absent).
    [[nodiscard]] std::span<const value_t> data() const { return data_; }

    [[nodiscard]] std::int64_t lane_nnz() const { return lane_nnz_; }
    [[nodiscard]] std::int64_t tail_nnz() const {
        return static_cast<std::int64_t>(tail_vals_.size());
    }

    /// Stored lane slots / lane non-zeros.
    [[nodiscard]] double padding_ratio() const {
        return lane_nnz_ == 0 ? 1.0
                              : static_cast<double>(data_.size()) /
                                    static_cast<double>(lane_nnz_);
    }

    [[nodiscard]] std::size_t size_bytes() const {
        return data_.size() * kValueBytes + offsets_.size() * kIndexBytes +
               (tail_rows_.size() + tail_cols_.size()) * kIndexBytes +
               tail_vals_.size() * kValueBytes;
    }

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// Lane part over rows [row_begin, row_end) (MT building block).
    void spmv_lanes_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                         std::span<value_t> y) const;

    /// Tail entries [lo, hi) (rows sorted; see Hyb for the MT contract).
    void spmv_tail_range(std::size_t lo, std::size_t hi, std::span<const value_t> x,
                         std::span<value_t> y) const;

    [[nodiscard]] std::span<const index_t> tail_rows() const { return tail_rows_; }

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    std::int64_t nnz_ = 0;
    std::int64_t lane_nnz_ = 0;
    std::vector<index_t> offsets_;  // ascending diagonal offsets (col - row)
    aligned_vector<value_t> data_;
    aligned_vector<index_t> tail_rows_;
    aligned_vector<index_t> tail_cols_;
    aligned_vector<value_t> tail_vals_;
};

}  // namespace symspmv
