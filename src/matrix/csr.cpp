#include "matrix/csr.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/placement.hpp"

namespace symspmv {

Csr::Csr(const Coo& coo) : n_rows_(coo.rows()), n_cols_(coo.cols()) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "Csr: COO input must be canonical");
    const auto entries = coo.entries();
    rowptr_.assign(static_cast<std::size_t>(n_rows_) + 1, 0);
    colind_.resize(entries.size());
    values_.resize(entries.size());
    for (const Triplet& t : entries) ++rowptr_[static_cast<std::size_t>(t.row) + 1];
    for (index_t r = 0; r < n_rows_; ++r) {
        rowptr_[static_cast<std::size_t>(r) + 1] += rowptr_[static_cast<std::size_t>(r)];
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
        colind_[i] = entries[i].col;
        values_[i] = entries[i].val;
    }
}

Csr::Csr(index_t n_rows, index_t n_cols, aligned_vector<index_t> rowptr,
         aligned_vector<index_t> colind, aligned_vector<value_t> values)
    : n_rows_(n_rows),
      n_cols_(n_cols),
      rowptr_(std::move(rowptr)),
      colind_(std::move(colind)),
      values_(std::move(values)) {
    validate();
}

void Csr::validate() const {
    SYMSPMV_CHECK_MSG(n_rows_ >= 0 && n_cols_ >= 0, "Csr: negative dimension");
    SYMSPMV_CHECK_MSG(rowptr_.size() == static_cast<std::size_t>(n_rows_) + 1,
                      "Csr: rowptr size mismatch");
    SYMSPMV_CHECK_MSG(colind_.size() == values_.size(), "Csr: colind/values size mismatch");
    SYMSPMV_CHECK_MSG(rowptr_.front() == 0, "Csr: rowptr must start at 0");
    SYMSPMV_CHECK_MSG(rowptr_.back() == static_cast<index_t>(values_.size()),
                      "Csr: rowptr must end at nnz");
    for (index_t r = 0; r < n_rows_; ++r) {
        SYMSPMV_CHECK_MSG(rowptr_[static_cast<std::size_t>(r)] <=
                              rowptr_[static_cast<std::size_t>(r) + 1],
                          "Csr: rowptr not monotone");
    }
    for (index_t c : colind_) {
        SYMSPMV_CHECK_MSG(c >= 0 && c < n_cols_, "Csr: column index out of bounds");
    }
}

std::size_t Csr::size_bytes() const {
    // Eq. (1): values + colind per nnz, plus the rowptr array.
    return (kValueBytes + kIndexBytes) * values_.size() +
           kIndexBytes * (static_cast<std::size_t>(n_rows_) + 1);
}

void Csr::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == n_cols_, "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == n_rows_, "spmv: y size mismatch");
    spmv_rows(0, n_rows_, x, y);
}

void Csr::spmv_rows(index_t row_begin, index_t row_end, std::span<const value_t> x,
                    std::span<value_t> y) const {
    const index_t* __restrict rp = rowptr_.data();
    const index_t* __restrict ci = colind_.data();
    const value_t* __restrict va = values_.data();
    const value_t* __restrict xv = x.data();
    for (index_t r = row_begin; r < row_end; ++r) {
        value_t acc = 0.0;
        for (index_t j = rp[r]; j < rp[r + 1]; ++j) {
            acc += va[j] * xv[ci[j]];
        }
        y[static_cast<std::size_t>(r)] = acc;
    }
}

Coo Csr::to_coo() const {
    Coo out(n_rows_, n_cols_);
    for (index_t r = 0; r < n_rows_; ++r) {
        for (index_t j = rowptr_[static_cast<std::size_t>(r)];
             j < rowptr_[static_cast<std::size_t>(r) + 1]; ++j) {
            out.add(r, colind_[static_cast<std::size_t>(j)], values_[static_cast<std::size_t>(j)]);
        }
    }
    out.canonicalize();
    return out;
}

void Csr::rehome(std::span<const RowRange> parts, ThreadPool& pool) {
    if (n_rows_ == 0 || parts.empty()) return;
    const auto nnzr = nnz_ranges(rowptr_, parts);
    std::vector<RowRange> rp(parts.begin(), parts.end());
    rp.back().end += 1;  // the rowptr sentinel rides with the last worker
    rehome_partitioned(rowptr_, rp, pool);
    rehome_partitioned(colind_, nnzr, pool);
    rehome_partitioned(values_, nnzr, pool);
}

}  // namespace symspmv
