// Kernel registry: names every SpM×V kernel the library implements and
// builds any of them from a full symmetric COO matrix.  Relocated from
// bench/registry.hpp — kernel construction is engine policy, not a bench
// concern; the bench layer now depends on the engine, not the other way
// round.  KernelFactory (engine/factory.hpp) is the sweep-friendly builder
// that amortizes the format conversions through a MatrixBundle; the free
// make_kernel() below remains as the one-shot convenience entry point.
#pragma once

#include <string_view>
#include <vector>

#include "core/thread_pool.hpp"
#include "csx/detect.hpp"
#include "matrix/coo.hpp"
#include "spmv/kernel.hpp"

namespace symspmv {

enum class KernelKind {
    kCsrSerial,     // serial CSR baseline
    kCsr,           // multithreaded CSR (the paper's baseline)
    kSssSerial,     // Alg. 2
    kSssNaive,      // Alg. 3 (naive local vectors)
    kSssEffective,  // effective ranges [Batista et al.]
    kSssIndexing,   // §III.C local vectors indexing
    kCsx,           // unsymmetric CSX
    kCsxSym,        // CSX-Sym + local vectors indexing (§IV)
    kCsb,           // Compressed Sparse Blocks [Buluç et al., SPAA'09]
    kCsbSym,        // symmetric CSB: band buffers + atomics [27]
    kBcsr,          // register-blocked BCSR with autotuned shape [22]-[26]
    kSssAtomic,     // symmetric SSS with atomic output updates (§III.A)
    kSssColor,      // Batista's "colorful" conflict-coloring method [7]
    kCsrDu,         // CSX with patterns disabled: delta units only (CSR-DU)
    kEll,           // ELLPACK/ITPACK padded-row baseline [13]
    kHyb,           // hybrid ELL + COO-tail split
    kDia,           // diagonal storage with COO-tail spill [13]
    kJds,           // Jagged Diagonal Storage baseline [13]
    kVbl,           // 1-D variable-length horizontal blocks [24]
    kSssRace,       // reduction-free level-scheduled coloring (RACE-style)
    kCsxJit,        // CSX via runtime C code generation (needs a compiler;
                    // listed by all_kernel_kinds() only when one is found)
    kCsxSymJit,     // CSX-Sym via runtime code generation (same caveat)
};

[[nodiscard]] std::string_view to_string(KernelKind kind);

/// Parses a kernel name as printed by to_string (throws on unknown names).
[[nodiscard]] KernelKind parse_kernel_kind(std::string_view name);

/// All kinds in presentation order (serial kinds first).
[[nodiscard]] const std::vector<KernelKind>& all_kernel_kinds();

/// The four multithreaded formats compared in Fig. 11/12/13/14.
[[nodiscard]] const std::vector<KernelKind>& figure_kernel_kinds();

/// Builds a kernel for @p full (a canonical, symmetric COO matrix; the
/// unsymmetric kinds simply don't exploit the symmetry).  @p pool must
/// outlive the kernel.  One-shot path: every call redoes the format
/// conversion — sweeps over many kinds should build a MatrixBundle and use
/// engine::KernelFactory instead.
KernelPtr make_kernel(KernelKind kind, const Coo& full, ThreadPool& pool,
                      const csx::CsxConfig& cfg = {});

}  // namespace symspmv
