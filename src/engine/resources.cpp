#include "engine/resources.hpp"

namespace symspmv::engine {

ExecutionResources::ExecutionResources(int threads, PinStrategy strategy, CpuTopology topo)
    : topo_(std::move(topo)),
      strategy_(strategy),
      pin_cpus_(pin_map(topo_, threads, strategy)),
      socket_of_worker_(socket_of_workers(topo_, pin_cpus_, threads)),
      pool_(threads, pin_cpus_),
      profiler_(threads) {}

ExecutionResources::ExecutionResources(int threads, PinStrategy strategy)
    : ExecutionResources(threads, strategy, local_topology()) {}

ContextPool::ContextPool() : topo_(local_topology()) {}

ContextPool::ContextPool(CpuTopology topo) : topo_(std::move(topo)) {}

std::shared_ptr<ExecutionResources> ContextPool::acquire(int threads, PinStrategy strategy) {
    const Key key = std::make_pair(threads, strategy);
    std::lock_guard lock(mu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
        ++hits_;
        // Refresh recency: splice this key to the front of the LRU list.
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return it->second.resources;
    }
    ++misses_;
    auto resources = std::make_shared<ExecutionResources>(threads, strategy, topo_);
    lru_.push_front(key);
    cache_.emplace(key, Entry{resources, lru_.begin()});
    evict_over_capacity_locked();
    return resources;
}

void ContextPool::evict_over_capacity_locked() {
    if (capacity_ == 0) return;
    while (cache_.size() > capacity_ && !lru_.empty()) {
        const Key victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
        ++evictions_;
        // Checked-out holders keep the evicted resources alive through their
        // shared_ptr; the workers exit when the last handle drops.
    }
}

void ContextPool::set_capacity(std::size_t capacity) {
    std::lock_guard lock(mu_);
    capacity_ = capacity;
    evict_over_capacity_locked();
}

std::size_t ContextPool::capacity() const {
    std::lock_guard lock(mu_);
    return capacity_;
}

std::size_t ContextPool::size() const {
    std::lock_guard lock(mu_);
    return cache_.size();
}

ContextPool::Stats ContextPool::stats() const {
    std::lock_guard lock(mu_);
    return Stats{hits_, misses_, evictions_, cache_.size()};
}

void ContextPool::clear() {
    std::lock_guard lock(mu_);
    cache_.clear();
    lru_.clear();
}

ContextPool& ContextPool::instance() {
    static ContextPool pool;
    return pool;
}

}  // namespace symspmv::engine
