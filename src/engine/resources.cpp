#include "engine/resources.hpp"

namespace symspmv::engine {

ExecutionResources::ExecutionResources(int threads, PinStrategy strategy, CpuTopology topo)
    : topo_(std::move(topo)),
      strategy_(strategy),
      pin_cpus_(pin_map(topo_, threads, strategy)),
      socket_of_worker_(socket_of_workers(topo_, pin_cpus_, threads)),
      pool_(threads, pin_cpus_) {}

ExecutionResources::ExecutionResources(int threads, PinStrategy strategy)
    : ExecutionResources(threads, strategy, local_topology()) {}

ContextPool::ContextPool() : topo_(local_topology()) {}

ContextPool::ContextPool(CpuTopology topo) : topo_(std::move(topo)) {}

std::shared_ptr<ExecutionResources> ContextPool::acquire(int threads, PinStrategy strategy) {
    const auto key = std::make_pair(threads, strategy);
    std::lock_guard lock(mu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    auto resources = std::make_shared<ExecutionResources>(threads, strategy, topo_);
    cache_.emplace(key, resources);
    return resources;
}

ContextPool::Stats ContextPool::stats() const {
    std::lock_guard lock(mu_);
    return Stats{hits_, misses_, cache_.size()};
}

void ContextPool::clear() {
    std::lock_guard lock(mu_);
    cache_.clear();
}

ContextPool& ContextPool::instance() {
    static ContextPool pool;
    return pool;
}

}  // namespace symspmv::engine
