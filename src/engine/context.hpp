// ExecutionContext — a cheap per-run handle over pooled execution resources.
//
// The paper binds threads to logical processors, partitions matrix rows by
// non-zero count and places pages NUMA-aware (§V.A); before this layer every
// bench, example and solver call re-plumbed a raw ThreadPool& and re-decided
// those policies locally.  An ExecutionContext bundles the decisions —
// worker pool (+ pin strategy), page-placement policy and row-partition
// policy — into one object that is passed everywhere a ThreadPool used to be
// (it converts implicitly, so the lower layers keep their ThreadPool&
// signatures and stay independent of the engine).
//
// The expensive half (pool + topology) lives in ExecutionResources
// (engine/resources.hpp), reference-counted and cached by the process-wide
// ContextPool; a context is only {shared_ptr, options} — copy it, pass it by
// value, build one per run.  Two contexts with the same thread count and pin
// strategy share one warm pool, so sweeping contexts in a loop no longer
// spawns threads per iteration.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "core/types.hpp"
#include "engine/resources.hpp"

namespace symspmv::engine {

/// First-touch page placement applied to vectors the context allocates and
/// (via MatrixBundle::apply_placement) to the format arrays.
enum class PlacementPolicy {
    kNone,         // leave placement to the allocating thread (UMA default)
    kInterleave,   // deal pages round-robin across workers (for x/y vectors)
    kPartitioned,  // give each worker the pages of its own row range
};

/// How matrix rows are split among workers.
enum class PartitionPolicy {
    kByNnz,     // equal non-zeros per partition (the paper's policy, Fig. 3a)
    kEvenRows,  // equal rows per partition (the naive reduction split)
    kBySocket,  // nnz-balanced within each socket's worker block (NUMA split)
};

struct ContextOptions {
    int threads = 1;
    bool pin_threads = false;  // legacy alias: true = PinStrategy::kCompact
    /// Where workers land on the machine.  kNone defers to pin_threads for
    /// compatibility; any other value wins over the bool.
    PinStrategy pin_strategy = PinStrategy::kNone;
    PlacementPolicy placement = PlacementPolicy::kNone;
    PartitionPolicy partition = PartitionPolicy::kByNnz;
};

/// Stable names ("by-nnz", "even-rows", "none", ...) used by the CLI flags
/// and the autotune plan files.
[[nodiscard]] std::string_view to_string(PartitionPolicy policy);
[[nodiscard]] std::string_view to_string(PlacementPolicy policy);

/// Inverse of to_string (throws InvalidArgument on unknown names).
[[nodiscard]] PartitionPolicy parse_partition_policy(std::string_view name);
[[nodiscard]] PlacementPolicy parse_placement_policy(std::string_view name);

/// The pin strategy @p opts resolves to (strategy field wins, then the
/// legacy pin_threads bool).
[[nodiscard]] PinStrategy effective_pin_strategy(const ContextOptions& opts);

class ExecutionContext {
   public:
    /// Draws resources for (opts.threads, resolved pin strategy) from the
    /// process-wide ContextPool — repeat constructions with equal keys share
    /// one warm pool.
    explicit ExecutionContext(const ContextOptions& opts);

    /// Convenience: a context with @p threads workers and default policies.
    explicit ExecutionContext(int threads, bool pin_threads = false);

    /// A context over explicitly provided resources — the seam for private
    /// (non-global) ContextPools and for tests injecting fake topologies.
    ExecutionContext(std::shared_ptr<ExecutionResources> resources, const ContextOptions& opts);

    [[nodiscard]] ThreadPool& pool() const { return resources_->pool(); }
    [[nodiscard]] int threads() const { return resources_->threads(); }
    [[nodiscard]] const ContextOptions& options() const { return opts_; }
    [[nodiscard]] const ExecutionResources& resources() const { return *resources_; }
    [[nodiscard]] const std::shared_ptr<ExecutionResources>& resources_ptr() const {
        return resources_;
    }
    [[nodiscard]] const CpuTopology& topology() const { return resources_->topology(); }

    /// Implicit view as the worker pool, so a context drops into every API
    /// that still takes ThreadPool& (cg::solve, pcg_solve, estimate_spectrum,
    /// the kernel constructors) without those layers depending on the engine.
    operator ThreadPool&() const { return resources_->pool(); }  // NOLINT(google-explicit-constructor)

    /// Runs @p fn once on every worker thread (blocking until all finish).
    /// This is the per-thread attachment seam the observability layer uses:
    /// resources that must be created on the thread they measure — perf
    /// counter groups (obs::ThreadCounters), thread-local trace state — are
    /// opened here, on the workers the kernels will actually run on.
    void for_each_worker(const std::function<void(int)>& fn) { resources_->pool().run(fn); }

    /// Splits the rows described by the CSR/SSS row-pointer array according
    /// to the context's partition policy, one range per worker.  kBySocket
    /// balances nnz within each socket's contiguous worker block (weighted
    /// between sockets); without pinning it degenerates to plain by-nnz.
    [[nodiscard]] std::vector<RowRange> partition(std::span<const index_t> rowptr) const;

    /// Allocates an n-element vector and first-touches its pages per the
    /// placement policy (interleaved and partitioned both deal pages across
    /// the workers; kNone leaves them to the calling thread).
    [[nodiscard]] aligned_vector<value_t> allocate_vector(index_t n);

   private:
    std::shared_ptr<ExecutionResources> resources_;
    ContextOptions opts_;
};

}  // namespace symspmv::engine
