// ExecutionContext — the engine's single owner of execution resources.
//
// The paper binds threads to logical processors, partitions matrix rows by
// non-zero count and places pages NUMA-aware (§V.A); before this layer every
// bench, example and solver call re-plumbed a raw ThreadPool& and re-decided
// those policies locally.  An ExecutionContext bundles the three decisions —
// worker pool (+ pinning), page-placement policy and row-partition policy —
// into one object that is created once and passed everywhere a ThreadPool
// used to be (it converts implicitly, so the lower layers keep their
// ThreadPool& signatures and stay independent of the engine).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"

namespace symspmv::engine {

/// First-touch page placement applied to vectors the context allocates.
enum class PlacementPolicy {
    kNone,         // leave placement to the allocating thread (UMA default)
    kInterleave,   // deal pages round-robin across workers (for x/y vectors)
    kPartitioned,  // give each worker the pages of its own row range
};

/// How matrix rows are split among workers.
enum class PartitionPolicy {
    kByNnz,     // equal non-zeros per partition (the paper's policy, Fig. 3a)
    kEvenRows,  // equal rows per partition (the naive reduction split)
};

struct ContextOptions {
    int threads = 1;
    bool pin_threads = false;  // bind worker i to logical CPU i (§V.A)
    PlacementPolicy placement = PlacementPolicy::kNone;
    PartitionPolicy partition = PartitionPolicy::kByNnz;
};

/// Stable names ("by-nnz", "even-rows", "none", ...) used by the CLI flags
/// and the autotune plan files.
[[nodiscard]] std::string_view to_string(PartitionPolicy policy);
[[nodiscard]] std::string_view to_string(PlacementPolicy policy);

/// Inverse of to_string (throws InvalidArgument on unknown names).
[[nodiscard]] PartitionPolicy parse_partition_policy(std::string_view name);
[[nodiscard]] PlacementPolicy parse_placement_policy(std::string_view name);

class ExecutionContext {
   public:
    explicit ExecutionContext(const ContextOptions& opts);

    /// Convenience: a context with @p threads workers and default policies.
    explicit ExecutionContext(int threads, bool pin_threads = false);

    ExecutionContext(const ExecutionContext&) = delete;
    ExecutionContext& operator=(const ExecutionContext&) = delete;

    [[nodiscard]] ThreadPool& pool() { return pool_; }
    [[nodiscard]] int threads() const { return pool_.size(); }
    [[nodiscard]] const ContextOptions& options() const { return opts_; }

    /// Implicit view as the worker pool, so a context drops into every API
    /// that still takes ThreadPool& (cg::solve, pcg_solve, estimate_spectrum,
    /// the kernel constructors) without those layers depending on the engine.
    operator ThreadPool&() { return pool_; }  // NOLINT(google-explicit-constructor)

    /// Runs @p fn once on every worker thread (blocking until all finish).
    /// This is the per-thread attachment seam the observability layer uses:
    /// resources that must be created on the thread they measure — perf
    /// counter groups (obs::ThreadCounters), thread-local trace state — are
    /// opened here, on the workers the kernels will actually run on.
    void for_each_worker(const std::function<void(int)>& fn) { pool_.run(fn); }

    /// Splits the rows described by the CSR/SSS row-pointer array according
    /// to the context's partition policy, one range per worker.
    [[nodiscard]] std::vector<RowRange> partition(std::span<const index_t> rowptr) const;

    /// Allocates an n-element vector and first-touches its pages per the
    /// placement policy (interleaved and partitioned both deal pages across
    /// the workers; kNone leaves them to the calling thread).
    [[nodiscard]] aligned_vector<value_t> allocate_vector(index_t n);

   private:
    ContextOptions opts_;
    ThreadPool pool_;
};

}  // namespace symspmv::engine
