#include "engine/bundle.hpp"

namespace symspmv::engine {

MatrixBundle::MatrixBundle(Coo full)
    : owned_(std::make_unique<Coo>(std::move(full))),
      full_(owned_.get()),
      state_(std::make_unique<State>()) {}

MatrixBundle::MatrixBundle(const Coo* borrowed)
    : full_(borrowed), state_(std::make_unique<State>()) {}

MatrixBundle MatrixBundle::view(const Coo& full) { return MatrixBundle(&full); }

const Csr& MatrixBundle::csr() const {
    const std::scoped_lock lock(state_->mu);
    if (!state_->csr) {
        state_->csr = std::make_unique<Csr>(*full_);
        ++state_->counts.csr;
    }
    return *state_->csr;
}

const Sss& MatrixBundle::sss() const {
    const std::scoped_lock lock(state_->mu);
    if (!state_->sss) {
        state_->sss = std::make_unique<Sss>(*full_);
        ++state_->counts.sss;
    }
    return *state_->sss;
}

const Csr& MatrixBundle::lower_csr() const {
    const std::scoped_lock lock(state_->mu);
    if (!state_->lower_csr) {
        state_->lower_csr = std::make_unique<Csr>(full_->lower());
        ++state_->counts.lower_csr;
    }
    return *state_->lower_csr;
}

const MatrixProperties& MatrixBundle::properties() const {
    const std::scoped_lock lock(state_->mu);
    if (!state_->properties) {
        state_->properties = std::make_unique<MatrixProperties>(analyze(*full_));
        ++state_->counts.properties;
    }
    return *state_->properties;
}

BundleBuildCounts MatrixBundle::build_counts() const {
    const std::scoped_lock lock(state_->mu);
    return state_->counts;
}

int MatrixBundle::apply_placement(std::span<const RowRange> parts, ThreadPool& pool) const {
    const std::scoped_lock lock(state_->mu);
    int rehomed = 0;
    if (state_->csr) {
        state_->csr->rehome(parts, pool);
        ++rehomed;
    }
    if (state_->sss) {
        state_->sss->rehome(parts, pool);
        ++rehomed;
    }
    if (state_->lower_csr) {
        state_->lower_csr->rehome(parts, pool);
        ++rehomed;
    }
    return rehomed;
}

}  // namespace symspmv::engine
