// ExecutionResources + ContextPool — the expensive half of execution state.
//
// Constructing a ThreadPool spawns OS threads, binds them to CPUs and warms
// their stacks; before this layer every bench repetition, tuner candidate
// and CG solve paid that cost by building a fresh ExecutionContext.  The
// split here follows the usual resource/session pattern: an
// ExecutionResources is the immutable, shareable bundle (worker pool +
// machine topology + the pin layout the pool was built with), handed out as
// a shared_ptr; ExecutionContext (engine/context.hpp) shrinks to a cheap
// per-run handle that references one and carries only per-run policy
// (placement, partitioning).  The ContextPool caches resources keyed by
// (threads, pin strategy), so a bench sweeping thread counts, the tuner
// trying dozens of candidates, and a future server handling sessions all
// reuse the same warm pools — ThreadPool::pools_created() stays flat while
// they run.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/profiling.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"

namespace symspmv::engine {

/// The expensive, immutable execution state: a warm worker pool plus the
/// topology and pin layout it was built with.  Share it via shared_ptr;
/// never rebuild one per run.  (The ThreadPool inside is mutable by nature —
/// run() dispatches jobs — but the *configuration* never changes after
/// construction, which is what makes sharing safe.)
class ExecutionResources {
   public:
    /// Builds @p threads workers pinned per @p strategy over @p topo.
    ExecutionResources(int threads, PinStrategy strategy, CpuTopology topo);

    /// Same, over the discovered machine topology.
    ExecutionResources(int threads, PinStrategy strategy);

    ExecutionResources(const ExecutionResources&) = delete;
    ExecutionResources& operator=(const ExecutionResources&) = delete;

    [[nodiscard]] ThreadPool& pool() const { return pool_; }
    [[nodiscard]] int threads() const { return pool_.size(); }
    [[nodiscard]] const CpuTopology& topology() const { return topo_; }
    [[nodiscard]] PinStrategy pin_strategy() const { return strategy_; }

    /// Worker i -> logical CPU (empty when unpinned).
    [[nodiscard]] const std::vector<int>& pin_cpus() const { return pin_cpus_; }

    /// Worker i -> socket id (all zero when unpinned or UMA) — the input of
    /// the by-socket partition policy.
    [[nodiscard]] const std::vector<int>& socket_of_worker() const { return socket_of_worker_; }

    /// Serializes whole-pool job submission.  ThreadPool::run is not
    /// reentrant: two threads dispatching jobs on the same pool race.  The
    /// single-submitter callers (benches, solvers) never needed this, but a
    /// server executing requests for several matrix sessions on one shared
    /// pool must hold this mutex around every run() burst (kernel
    /// construction, spmv, solve) — see serve/service.cpp.
    [[nodiscard]] std::mutex& run_mutex() const { return run_mu_; }

    /// A per-resources PhaseProfiler sized to the pool, reused across the
    /// requests that execute on this bundle (serve/service.cpp resets it
    /// per request under exec_mu -> run_mutex, so no two requests see each
    /// other's slots).  Kept here so the tracing bridge does not construct
    /// a cache-line-padded profiler per request.
    [[nodiscard]] PhaseProfiler& profiler() const { return profiler_; }

   private:
    CpuTopology topo_;
    PinStrategy strategy_;
    std::vector<int> pin_cpus_;
    std::vector<int> socket_of_worker_;
    mutable ThreadPool pool_;
    mutable std::mutex run_mu_;
    mutable PhaseProfiler profiler_;
};

/// Cache of ExecutionResources keyed by (threads, pin strategy).  acquire()
/// returns the cached entry or builds one; the pool keeps a reference, so
/// the workers stay warm between checkouts and "returning" a resource is
/// simply dropping the shared_ptr.  Thread-safe.
class ContextPool {
   public:
    /// Pool over the discovered machine topology.
    ContextPool();

    /// Pool over an injected topology — the test seam (fake_topology) and
    /// the hook for serving topologies read from fixture sysfs trees.
    explicit ContextPool(CpuTopology topo);

    ContextPool(const ContextPool&) = delete;
    ContextPool& operator=(const ContextPool&) = delete;

    /// The cached resources for (threads, strategy), built on first use.
    [[nodiscard]] std::shared_ptr<ExecutionResources> acquire(int threads, PinStrategy strategy);

    struct Stats {
        std::uint64_t hits = 0;       // acquire() served from cache
        std::uint64_t misses = 0;     // acquire() had to build
        std::uint64_t evictions = 0;  // entries dropped by the capacity cap
        std::size_t resident = 0;     // distinct resources alive in the cache
    };
    [[nodiscard]] Stats stats() const;

    /// Caps the resident entries at @p capacity; 0 (the default) means
    /// unbounded.  When an acquire() would exceed the cap the
    /// least-recently-acquired entry is dropped (its workers exit once every
    /// outstanding shared_ptr is released) — the guard a long-lived daemon
    /// needs so a client-driven sweep over (threads, pinning) combinations
    /// cannot grow the pool map without bound.  Shrinking the cap evicts
    /// immediately.
    void set_capacity(std::size_t capacity);
    [[nodiscard]] std::size_t capacity() const;

    /// Distinct resources currently cached (same as stats().resident).
    [[nodiscard]] std::size_t size() const;

    /// Drops every cached resource (workers of unshared entries exit).
    void clear();

    [[nodiscard]] const CpuTopology& topology() const { return topo_; }

    /// The process-wide pool every ExecutionContext draws from by default.
    [[nodiscard]] static ContextPool& instance();

   private:
    using Key = std::pair<int, PinStrategy>;

    struct Entry {
        std::shared_ptr<ExecutionResources> resources;
        std::list<Key>::iterator lru;  // position in lru_ (front = most recent)
    };

    void evict_over_capacity_locked();

    CpuTopology topo_;
    mutable std::mutex mu_;
    std::map<Key, Entry> cache_;
    std::list<Key> lru_;  // most recently acquired first
    std::size_t capacity_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace symspmv::engine
