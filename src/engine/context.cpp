#include "engine/context.hpp"

#include "core/error.hpp"

namespace symspmv::engine {

std::string_view to_string(PartitionPolicy policy) {
    switch (policy) {
        case PartitionPolicy::kByNnz:
            return "by-nnz";
        case PartitionPolicy::kEvenRows:
            return "even-rows";
        case PartitionPolicy::kBySocket:
            return "by-socket";
    }
    return "?";
}

std::string_view to_string(PlacementPolicy policy) {
    switch (policy) {
        case PlacementPolicy::kNone:
            return "none";
        case PlacementPolicy::kInterleave:
            return "interleave";
        case PlacementPolicy::kPartitioned:
            return "partitioned";
    }
    return "?";
}

PartitionPolicy parse_partition_policy(std::string_view name) {
    for (PartitionPolicy p : {PartitionPolicy::kByNnz, PartitionPolicy::kEvenRows,
                              PartitionPolicy::kBySocket}) {
        if (to_string(p) == name) return p;
    }
    throw InvalidArgument("unknown partition policy: " + std::string(name));
}

PlacementPolicy parse_placement_policy(std::string_view name) {
    for (PlacementPolicy p : {PlacementPolicy::kNone, PlacementPolicy::kInterleave,
                              PlacementPolicy::kPartitioned}) {
        if (to_string(p) == name) return p;
    }
    throw InvalidArgument("unknown placement policy: " + std::string(name));
}

PinStrategy effective_pin_strategy(const ContextOptions& opts) {
    if (opts.pin_strategy != PinStrategy::kNone) return opts.pin_strategy;
    return opts.pin_threads ? PinStrategy::kCompact : PinStrategy::kNone;
}

ExecutionContext::ExecutionContext(const ContextOptions& opts)
    : ExecutionContext(ContextPool::instance().acquire(opts.threads, effective_pin_strategy(opts)),
                       opts) {}

ExecutionContext::ExecutionContext(int threads, bool pin_threads)
    : ExecutionContext(ContextOptions{.threads = threads, .pin_threads = pin_threads}) {}

ExecutionContext::ExecutionContext(std::shared_ptr<ExecutionResources> resources,
                                   const ContextOptions& opts)
    : resources_(std::move(resources)), opts_(opts) {
    SYMSPMV_CHECK_MSG(resources_ != nullptr, "ExecutionContext: null resources");
    SYMSPMV_CHECK_MSG(resources_->threads() == opts_.threads || opts_.threads == 0,
                      "ExecutionContext: resources/options thread count mismatch");
    opts_.threads = resources_->threads();
}

std::vector<RowRange> ExecutionContext::partition(std::span<const index_t> rowptr) const {
    SYMSPMV_CHECK_MSG(!rowptr.empty(), "ExecutionContext::partition: empty rowptr");
    switch (opts_.partition) {
        case PartitionPolicy::kByNnz:
            return split_by_nnz(rowptr, threads());
        case PartitionPolicy::kEvenRows:
            return split_even(static_cast<index_t>(rowptr.size() - 1), threads());
        case PartitionPolicy::kBySocket:
            return split_by_nnz_grouped(rowptr, resources_->socket_of_worker());
    }
    throw InvalidArgument("ExecutionContext: unknown partition policy");
}

aligned_vector<value_t> ExecutionContext::allocate_vector(index_t n) {
    aligned_vector<value_t> v(static_cast<std::size_t>(n));
    switch (opts_.placement) {
        case PlacementPolicy::kNone:
            break;
        case PlacementPolicy::kInterleave:
            first_touch_interleaved<value_t>(v, pool());
            break;
        case PlacementPolicy::kPartitioned: {
            const auto parts = split_even(n, threads());
            first_touch_partitioned<value_t>(v, parts, pool());
            break;
        }
    }
    return v;
}

}  // namespace symspmv::engine
