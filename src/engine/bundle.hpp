// MatrixBundle — build-once cache of every derived representation of one
// input matrix.
//
// A registry sweep (all kernel kinds x thread counts, as in fig11-fig14 and
// table1) used to re-run the COO->CSR and COO->SSS conversions for every
// kernel it built.  The bundle performs each conversion exactly once per
// input matrix and hands out const references, so the conversion cost is
// amortized across the whole sweep — the amortized-preprocessing
// architecture of OSKI/RACE that the engine layer is built around.
//
// Lazy and thread-safe: representations are built on first request under a
// mutex, addresses are stable thereafter (callers may keep the references
// for the bundle's lifetime).  build_counts() exposes how many times each
// conversion ran, which the tests assert to be at most one.
#pragma once

#include <memory>
#include <mutex>
#include <span>

#include "core/partition.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/properties.hpp"
#include "matrix/sss.hpp"

namespace symspmv::engine {

/// How many times each derived representation was converted from COO.
struct BundleBuildCounts {
    int csr = 0;
    int sss = 0;
    int lower_csr = 0;
    int properties = 0;

    [[nodiscard]] int total() const { return csr + sss + lower_csr + properties; }
};

class MatrixBundle {
   public:
    /// Owning bundle: takes the canonical full (symmetric, for the symmetric
    /// formats) COO matrix by value.
    explicit MatrixBundle(Coo full);

    /// Non-owning bundle over a caller-kept matrix; @p full must outlive the
    /// bundle.  Used by the make_kernel() compatibility path, which receives
    /// a borrowed Coo.
    [[nodiscard]] static MatrixBundle view(const Coo& full);

    MatrixBundle(const MatrixBundle&) = delete;
    MatrixBundle& operator=(const MatrixBundle&) = delete;
    MatrixBundle(MatrixBundle&&) noexcept = default;
    MatrixBundle& operator=(MatrixBundle&&) noexcept = default;

    /// The input matrix.
    [[nodiscard]] const Coo& coo() const { return *full_; }

    /// Full-matrix CSR (Eq. 1 layout); built on first call, cached after.
    [[nodiscard]] const Csr& csr() const;

    /// Symmetric sparse skyline (Eq. 2 layout); built once.
    [[nodiscard]] const Sss& sss() const;

    /// Lower triangle including the diagonal, in CSR — the factorization
    /// half used by incomplete-factorization preconditioners; built once.
    [[nodiscard]] const Csr& lower_csr() const;

    /// One-pass structural analysis (bandwidth, skew, symmetry); built once.
    [[nodiscard]] const MatrixProperties& properties() const;

    /// Conversion counters for the cache-effectiveness assertions.
    [[nodiscard]] BundleBuildCounts build_counts() const;

    /// NUMA first-touch placement: re-homes the pages of every *already
    /// built* cached representation onto the workers owning each row range
    /// (@p parts, one per worker of @p pool).  Builds nothing — call after
    /// the representations a run needs exist.  Contents are unchanged, but
    /// spans obtained from the representations before the call are
    /// invalidated (storage is reallocated), so apply placement before
    /// constructing kernels, not while they are live.  Returns how many
    /// representations were re-homed.  Safe to call again with a different
    /// partition (e.g. per thread count in a sweep).
    int apply_placement(std::span<const RowRange> parts, ThreadPool& pool) const;

   private:
    explicit MatrixBundle(const Coo* borrowed);

    // All state sits behind stable addresses (unique_ptr) so bundles are
    // movable — sweeps keep one bundle per suite matrix in a vector — while
    // handed-out references stay valid across moves.
    struct State {
        std::mutex mu;
        std::unique_ptr<Csr> csr;
        std::unique_ptr<Sss> sss;
        std::unique_ptr<Csr> lower_csr;
        std::unique_ptr<MatrixProperties> properties;
        BundleBuildCounts counts;
    };

    std::unique_ptr<Coo> owned_;  // engaged only for the owning constructor
    const Coo* full_ = nullptr;
    std::unique_ptr<State> state_;
};

}  // namespace symspmv::engine
