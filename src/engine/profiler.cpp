#include "engine/profiler.hpp"

#include <iomanip>
#include <sstream>

namespace symspmv::engine {

std::string imbalance_report(const PhaseProfiler& profiler) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    for (int p = 0; p < kPhaseCount; ++p) {
        const auto phase = static_cast<Phase>(p);
        const PhaseStats s = profiler.stats(phase);
        if (s.samples == 0) continue;
        os << std::left << std::setw(10) << to_string(phase) << " min " << std::setw(9)
           << s.min_seconds * 1e3 << " mean " << std::setw(9) << s.mean_seconds * 1e3 << " max "
           << std::setw(9) << s.max_seconds * 1e3 << " ms  imbalance "
           << std::setprecision(1) << s.imbalance * 100.0 << "%\n"
           << std::setprecision(3);
    }
    return os.str();
}

double per_op_max_seconds(const PhaseProfiler& profiler, Phase phase) {
    if (profiler.ops() == 0) return 0.0;
    return profiler.stats(phase).max_seconds / static_cast<double>(profiler.ops());
}

}  // namespace symspmv::engine
