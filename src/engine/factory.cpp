#include "engine/factory.hpp"

#include "bcsr/bcsr_kernels.hpp"
#include "core/error.hpp"
#include "csb/csb_kernels.hpp"
#include "csx/jit.hpp"
#include "csx/kernels.hpp"
#include "spmv/alt_kernels.hpp"
#include "spmv/baseline_kernels.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/race_kernels.hpp"
#include "spmv/sss_kernels.hpp"

namespace symspmv::engine {

KernelFactory::KernelFactory(const MatrixBundle& bundle, ThreadPool& pool, csx::CsxConfig cfg,
                             PartitionPolicy partition)
    : bundle_(bundle), pool_(pool), cfg_(cfg), partition_(partition) {}

KernelFactory::KernelFactory(const MatrixBundle& bundle, ExecutionContext& ctx,
                             csx::CsxConfig cfg)
    : KernelFactory(bundle, ctx.pool(), cfg, ctx.options().partition) {
    placement_ = ctx.options().placement;
    socket_of_worker_ = ctx.resources().socket_of_worker();
}

KernelPtr KernelFactory::make(KernelKind kind) const {
    // Kernels that own their representation by value (CSR/SSS families) get
    // a copy of the bundle's cached conversion: an O(nnz) memcpy, not a
    // repeat of the O(nnz log nnz) COO conversion.  CSX-family kernels read
    // the cached representation by reference while encoding.
    //
    // For the row-partitioned kernels an empty parts vector means "use the
    // kernel's own by-nnz split"; even-rows and by-socket need explicit
    // ranges.  The partition depends on the representation's rowptr (CSR
    // counts the full matrix, SSS the lower triangle), so it is derived per
    // kind.
    const auto parts_for = [this](std::span<const index_t> rowptr) -> std::vector<RowRange> {
        switch (partition_) {
            case PartitionPolicy::kByNnz:
                return {};
            case PartitionPolicy::kEvenRows:
                return split_even(static_cast<index_t>(rowptr.size() - 1), pool_.size());
            case PartitionPolicy::kBySocket:
                if (static_cast<int>(socket_of_worker_.size()) != pool_.size()) return {};
                return split_by_nnz_grouped(rowptr, socket_of_worker_);
        }
        return {};
    };
    const bool place = placement_ == PlacementPolicy::kPartitioned;
    const auto make_sss_mt = [&](ReductionMethod method) {
        auto kernel = std::make_unique<SssMtKernel>(bundle_.sss(), pool_, method,
                                                    parts_for(bundle_.sss().rowptr()));
        kernel->set_prefetch_distance(prefetch_distance_);
        if (place) kernel->apply_partitioned_placement();
        return kernel;
    };
    switch (kind) {
        case KernelKind::kCsrSerial:
            return std::make_unique<CsrSerialKernel>(bundle_.csr());
        case KernelKind::kCsr: {
            auto kernel = std::make_unique<CsrMtKernel>(bundle_.csr(), pool_,
                                                        parts_for(bundle_.csr().rowptr()));
            if (place) kernel->apply_partitioned_placement();
            return kernel;
        }
        case KernelKind::kSssSerial:
            return std::make_unique<SssSerialKernel>(bundle_.sss());
        case KernelKind::kSssNaive:
            return make_sss_mt(ReductionMethod::kNaive);
        case KernelKind::kSssEffective:
            return make_sss_mt(ReductionMethod::kEffectiveRanges);
        case KernelKind::kSssIndexing:
            return make_sss_mt(ReductionMethod::kIndexing);
        case KernelKind::kCsx:
            return std::make_unique<csx::CsxMtKernel>(bundle_.csr(), cfg_, pool_);
        case KernelKind::kCsxSym: {
            auto kernel = std::make_unique<csx::CsxSymKernel>(bundle_.sss(), cfg_, pool_);
            kernel->set_prefetch_distance(prefetch_distance_);
            if (place) kernel->apply_partitioned_placement();
            return kernel;
        }
        case KernelKind::kCsb:
            return std::make_unique<csb::CsbMtKernel>(csb::CsbMatrix(bundle_.coo()), pool_);
        case KernelKind::kCsbSym:
            return std::make_unique<csb::CsbSymKernel>(csb::CsbSymMatrix(bundle_.coo()), pool_);
        case KernelKind::kBcsr:
            return std::make_unique<bcsr::BcsrMtKernel>(
                bcsr::BcsrMatrix(bundle_.coo(), bcsr::choose_block_size(bundle_.coo())), pool_);
        case KernelKind::kSssAtomic:
            return std::make_unique<SssAtomicKernel>(bundle_.sss(), pool_);
        case KernelKind::kSssColor:
            return std::make_unique<SssColorKernel>(bundle_.sss(), pool_);
        case KernelKind::kCsrDu:
            return std::make_unique<csx::CsxMtKernel>(bundle_.csr(), csx::delta_only_config(),
                                                      pool_, "CSR-DU");
        case KernelKind::kEll:
            return std::make_unique<EllpackMtKernel>(Ellpack(bundle_.coo()), pool_);
        case KernelKind::kHyb:
            return std::make_unique<HybMtKernel>(Hyb(bundle_.coo()), pool_);
        case KernelKind::kDia:
            return std::make_unique<DiaMtKernel>(Dia(bundle_.coo()), pool_);
        case KernelKind::kJds:
            return std::make_unique<JdsMtKernel>(Jds(bundle_.coo()), pool_);
        case KernelKind::kVbl:
            return std::make_unique<VblMtKernel>(Vbl(bundle_.coo()), pool_);
        case KernelKind::kSssRace:
            return std::make_unique<SssRaceKernel>(bundle_.sss(), bundle_.coo(), pool_);
        case KernelKind::kCsxJit:
            return std::make_unique<csx::CsxJitKernel>(bundle_.csr(), cfg_, pool_);
        case KernelKind::kCsxSymJit:
            return std::make_unique<csx::CsxSymJitKernel>(bundle_.sss(), cfg_, pool_);
    }
    throw InvalidArgument("unknown kernel kind");
}

}  // namespace symspmv::engine
