#include "engine/factory.hpp"

#include "bcsr/bcsr_kernels.hpp"
#include "core/error.hpp"
#include "csb/csb_kernels.hpp"
#include "csx/jit.hpp"
#include "csx/kernels.hpp"
#include "spmv/alt_kernels.hpp"
#include "spmv/baseline_kernels.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/sss_kernels.hpp"

namespace symspmv::engine {

KernelFactory::KernelFactory(const MatrixBundle& bundle, ThreadPool& pool, csx::CsxConfig cfg,
                             PartitionPolicy partition)
    : bundle_(bundle), pool_(pool), cfg_(cfg), partition_(partition) {}

KernelFactory::KernelFactory(const MatrixBundle& bundle, ExecutionContext& ctx,
                             csx::CsxConfig cfg)
    : KernelFactory(bundle, ctx.pool(), cfg, ctx.options().partition) {}

KernelPtr KernelFactory::make(KernelKind kind) const {
    // Kernels that own their representation by value (CSR/SSS families) get
    // a copy of the bundle's cached conversion: an O(nnz) memcpy, not a
    // repeat of the O(nnz log nnz) COO conversion.  CSX-family kernels read
    // the cached representation by reference while encoding.
    //
    // For the row-partitioned kernels an empty parts vector means "use the
    // kernel's own by-nnz split"; only the even-rows policy needs explicit
    // ranges.
    std::vector<RowRange> parts;
    if (partition_ == PartitionPolicy::kEvenRows) {
        parts = split_even(bundle_.coo().rows(), pool_.size());
    }
    switch (kind) {
        case KernelKind::kCsrSerial:
            return std::make_unique<CsrSerialKernel>(bundle_.csr());
        case KernelKind::kCsr:
            return std::make_unique<CsrMtKernel>(bundle_.csr(), pool_, std::move(parts));
        case KernelKind::kSssSerial:
            return std::make_unique<SssSerialKernel>(bundle_.sss());
        case KernelKind::kSssNaive:
            return std::make_unique<SssMtKernel>(bundle_.sss(), pool_, ReductionMethod::kNaive,
                                                 std::move(parts));
        case KernelKind::kSssEffective:
            return std::make_unique<SssMtKernel>(bundle_.sss(), pool_,
                                                 ReductionMethod::kEffectiveRanges,
                                                 std::move(parts));
        case KernelKind::kSssIndexing:
            return std::make_unique<SssMtKernel>(bundle_.sss(), pool_,
                                                 ReductionMethod::kIndexing, std::move(parts));
        case KernelKind::kCsx:
            return std::make_unique<csx::CsxMtKernel>(bundle_.csr(), cfg_, pool_);
        case KernelKind::kCsxSym:
            return std::make_unique<csx::CsxSymKernel>(bundle_.sss(), cfg_, pool_);
        case KernelKind::kCsb:
            return std::make_unique<csb::CsbMtKernel>(csb::CsbMatrix(bundle_.coo()), pool_);
        case KernelKind::kCsbSym:
            return std::make_unique<csb::CsbSymKernel>(csb::CsbSymMatrix(bundle_.coo()), pool_);
        case KernelKind::kBcsr:
            return std::make_unique<bcsr::BcsrMtKernel>(
                bcsr::BcsrMatrix(bundle_.coo(), bcsr::choose_block_size(bundle_.coo())), pool_);
        case KernelKind::kSssAtomic:
            return std::make_unique<SssAtomicKernel>(bundle_.sss(), pool_);
        case KernelKind::kSssColor:
            return std::make_unique<SssColorKernel>(bundle_.sss(), pool_);
        case KernelKind::kCsrDu:
            return std::make_unique<csx::CsxMtKernel>(bundle_.csr(), csx::delta_only_config(),
                                                      pool_, "CSR-DU");
        case KernelKind::kEll:
            return std::make_unique<EllpackMtKernel>(Ellpack(bundle_.coo()), pool_);
        case KernelKind::kHyb:
            return std::make_unique<HybMtKernel>(Hyb(bundle_.coo()), pool_);
        case KernelKind::kDia:
            return std::make_unique<DiaMtKernel>(Dia(bundle_.coo()), pool_);
        case KernelKind::kJds:
            return std::make_unique<JdsMtKernel>(Jds(bundle_.coo()), pool_);
        case KernelKind::kVbl:
            return std::make_unique<VblMtKernel>(Vbl(bundle_.coo()), pool_);
        case KernelKind::kCsxJit:
            return std::make_unique<csx::CsxJitKernel>(bundle_.csr(), cfg_, pool_);
        case KernelKind::kCsxSymJit:
            return std::make_unique<csx::CsxSymJitKernel>(bundle_.sss(), cfg_, pool_);
    }
    throw InvalidArgument("unknown kernel kind");
}

}  // namespace symspmv::engine
