// Engine view of the per-thread phase profiler.
//
// The recording machinery lives in core/profiling.hpp so that ThreadPool
// and the kernels (which sit below the engine) can write into it; this
// header is the engine-level entry point that re-exports those types and
// adds the reporting helpers the benches and the CG breakdown use.
#pragma once

#include <string>

#include "core/profiling.hpp"

namespace symspmv::engine {

using symspmv::kPhaseCount;
using symspmv::Phase;
using symspmv::PhaseProfiler;
using symspmv::PhaseStats;

/// Multi-line human-readable summary: one row per phase with per-thread
/// min/mean/max milliseconds and the max/mean-1 imbalance percentage.
/// Phases no thread ever recorded are omitted.
[[nodiscard]] std::string imbalance_report(const PhaseProfiler& profiler);

/// Per-op seconds the slowest thread spent in @p phase (stats max divided
/// by profiled op count); 0 when no ops were profiled.
[[nodiscard]] double per_op_max_seconds(const PhaseProfiler& profiler, Phase phase);

}  // namespace symspmv::engine
