// KernelFactory — builds any registry kernel from a MatrixBundle.
//
// Where make_kernel() converts the COO input on every call, the factory
// pulls the shared representations (CSR, SSS) out of its bundle, so a sweep
// over all_kernel_kinds() performs each conversion at most once per matrix.
// Formats with a private representation (CSB, BCSR, ELL, ...) still convert
// from the bundle's COO themselves — those conversions are kernel-specific
// and shared by nothing else.
#pragma once

#include "csx/detect.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/registry.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::autotune {
class Tuner;
struct TuneReport;
}  // namespace symspmv::autotune

namespace symspmv::engine {

class KernelFactory {
   public:
    /// Both @p bundle and @p pool must outlive the factory and every kernel
    /// it builds.  @p cfg configures the CSX-family kinds; @p partition is
    /// applied to the row-partitioned kernels (CSR and the SSS reduction
    /// family — the other formats tile by their own structure).
    KernelFactory(const MatrixBundle& bundle, ThreadPool& pool, csx::CsxConfig cfg = {},
                  PartitionPolicy partition = PartitionPolicy::kByNnz);

    /// Context-owned pool plus the context's policies: row partition policy,
    /// page placement (kPartitioned re-homes the row-partitioned kernels'
    /// arrays after construction) and, for the by-socket partition, the
    /// socket each worker is pinned to.
    KernelFactory(const MatrixBundle& bundle, ExecutionContext& ctx, csx::CsxConfig cfg = {});

    /// Builds a kernel of @p kind over the bundle's matrix.
    [[nodiscard]] KernelPtr make(KernelKind kind) const;

    /// Empirically-selected best kernel for this matrix on this machine:
    /// consults the tuner's plan store and runs a timed search on a cache
    /// miss (thread count fixed to this factory's pool, so the returned
    /// kernel runs on it directly).  The optional @p report receives the
    /// winning plan plus the cache-hit/trial accounting of this call.
    /// Defined in the symspmv_autotune library — link symspmv_autotune (or
    /// symspmv::symspmv) to use it.
    [[nodiscard]] KernelPtr make_tuned(autotune::Tuner& tuner,
                                       autotune::TuneReport* report = nullptr) const;

    [[nodiscard]] const MatrixBundle& bundle() const { return bundle_; }
    [[nodiscard]] ThreadPool& pool() const { return pool_; }
    [[nodiscard]] PartitionPolicy partition() const { return partition_; }
    [[nodiscard]] PlacementPolicy placement() const { return placement_; }

    /// Software-prefetch distance pushed into the kernels that support it
    /// (the SSS reduction family and CSX-Sym); 0 = off.  Autotune plans
    /// carry the learned value here via build_plan.
    void set_prefetch_distance(int d) { prefetch_distance_ = d < 0 ? 0 : d; }
    [[nodiscard]] int prefetch_distance() const { return prefetch_distance_; }

   private:
    const MatrixBundle& bundle_;
    ThreadPool& pool_;
    csx::CsxConfig cfg_;
    PartitionPolicy partition_ = PartitionPolicy::kByNnz;
    PlacementPolicy placement_ = PlacementPolicy::kNone;
    std::vector<int> socket_of_worker_;  // for kBySocket; empty = one socket
    int prefetch_distance_ = 0;
};

}  // namespace symspmv::engine
