// KernelFactory — builds any registry kernel from a MatrixBundle.
//
// Where make_kernel() converts the COO input on every call, the factory
// pulls the shared representations (CSR, SSS) out of its bundle, so a sweep
// over all_kernel_kinds() performs each conversion at most once per matrix.
// Formats with a private representation (CSB, BCSR, ELL, ...) still convert
// from the bundle's COO themselves — those conversions are kernel-specific
// and shared by nothing else.
#pragma once

#include "csx/detect.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/registry.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::engine {

class KernelFactory {
   public:
    /// Both @p bundle and @p pool must outlive the factory and every kernel
    /// it builds.  @p cfg configures the CSX-family kinds.
    KernelFactory(const MatrixBundle& bundle, ThreadPool& pool, csx::CsxConfig cfg = {});

    /// Context-owned pool plus the context's policies.
    KernelFactory(const MatrixBundle& bundle, ExecutionContext& ctx, csx::CsxConfig cfg = {});

    /// Builds a kernel of @p kind over the bundle's matrix.
    [[nodiscard]] KernelPtr make(KernelKind kind) const;

    [[nodiscard]] const MatrixBundle& bundle() const { return bundle_; }
    [[nodiscard]] ThreadPool& pool() const { return pool_; }

   private:
    const MatrixBundle& bundle_;
    ThreadPool& pool_;
    csx::CsxConfig cfg_;
};

}  // namespace symspmv::engine
