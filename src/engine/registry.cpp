#include "engine/registry.hpp"

#include "core/error.hpp"
#include "csx/jit.hpp"
#include "engine/bundle.hpp"
#include "engine/factory.hpp"

namespace symspmv {

std::string_view to_string(KernelKind kind) {
    switch (kind) {
        case KernelKind::kCsrSerial:
            return "CSR-serial";
        case KernelKind::kCsr:
            return "CSR";
        case KernelKind::kSssSerial:
            return "SSS-serial";
        case KernelKind::kSssNaive:
            return "SSS-naive";
        case KernelKind::kSssEffective:
            return "SSS-eff";
        case KernelKind::kSssIndexing:
            return "SSS-idx";
        case KernelKind::kCsx:
            return "CSX";
        case KernelKind::kCsxSym:
            return "CSX-Sym";
        case KernelKind::kCsb:
            return "CSB";
        case KernelKind::kCsbSym:
            return "CSB-Sym";
        case KernelKind::kBcsr:
            return "BCSR";
        case KernelKind::kSssAtomic:
            return "SSS-atomic";
        case KernelKind::kSssColor:
            return "SSS-color";
        case KernelKind::kCsrDu:
            return "CSR-DU";
        case KernelKind::kEll:
            return "ELL";
        case KernelKind::kHyb:
            return "HYB";
        case KernelKind::kDia:
            return "DIA";
        case KernelKind::kJds:
            return "JDS";
        case KernelKind::kVbl:
            return "VBL";
        case KernelKind::kSssRace:
            return "SSS-race";
        case KernelKind::kCsxJit:
            return "CSX-jit";
        case KernelKind::kCsxSymJit:
            return "CSX-Sym-jit";
    }
    return "?";
}

KernelKind parse_kernel_kind(std::string_view name) {
    for (KernelKind kind : all_kernel_kinds()) {
        if (to_string(kind) == name) return kind;
    }
    throw InvalidArgument("unknown kernel kind: " + std::string(name));
}

const std::vector<KernelKind>& all_kernel_kinds() {
    static const std::vector<KernelKind> kinds = [] {
        std::vector<KernelKind> k = {
            KernelKind::kCsrSerial, KernelKind::kCsr,          KernelKind::kSssSerial,
            KernelKind::kSssNaive,  KernelKind::kSssEffective, KernelKind::kSssIndexing,
            KernelKind::kCsx,       KernelKind::kCsxSym,       KernelKind::kCsb,
            KernelKind::kCsbSym,    KernelKind::kBcsr,         KernelKind::kSssAtomic,
            KernelKind::kSssColor,  KernelKind::kCsrDu,        KernelKind::kEll,
            KernelKind::kHyb,       KernelKind::kDia,          KernelKind::kJds,
            KernelKind::kVbl,       KernelKind::kSssRace,
        };
        // The JIT backends need a system C compiler at runtime.
        if (csx::JitModule::compiler_available()) {
            k.push_back(KernelKind::kCsxJit);
            k.push_back(KernelKind::kCsxSymJit);
        }
        return k;
    }();
    return kinds;
}

const std::vector<KernelKind>& figure_kernel_kinds() {
    static const std::vector<KernelKind> kinds = {
        KernelKind::kCsr,
        KernelKind::kCsx,
        KernelKind::kSssIndexing,
        KernelKind::kCsxSym,
    };
    return kinds;
}

KernelPtr make_kernel(KernelKind kind, const Coo& full, ThreadPool& pool,
                      const csx::CsxConfig& cfg) {
    const engine::MatrixBundle bundle = engine::MatrixBundle::view(full);
    return engine::KernelFactory(bundle, pool, cfg).make(kind);
}

}  // namespace symspmv
