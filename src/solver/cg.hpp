// Non-preconditioned Conjugate Gradient (Alg. 1 of the paper).
//
// The solver is format-agnostic: it takes any SpmvKernel, so the Fig. 14
// study (CSR vs CSX vs SSS-idx vs CSX-Sym inside CG) is a one-line kernel
// swap.  Per-phase wall-clock accounting (SpM×V multiply, SpM×V reduction,
// vector operations) reproduces the paper's execution-time breakdown.
#pragma once

#include <span>
#include <vector>

#include "core/profiling.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::cg {

struct Options {
    int max_iterations = 1000;
    double tolerance = 1e-8;       // stop when ||r|| <= tolerance * ||b||
    bool track_breakdown = true;   // collect the Fig. 14 phase timings
    bool record_residuals = false; // fill Result::residual_history
    /// Fill Result::iteration_seconds with the wall-clock of every
    /// iteration (SpM×V + vector ops + preconditioner).  The raw series the
    /// observability layer's latency histograms are built from; one Timer
    /// read per iteration, so leaving it on costs nothing measurable.
    bool record_iteration_seconds = false;
    /// When set, the kernel records per-thread multiply/barrier/reduction
    /// times into it across every SpM×V of the solve (attached for the
    /// duration of solve(), detached before returning) — the per-thread
    /// refinement of Breakdown's scalar phase split.
    PhaseProfiler* profiler = nullptr;
};

/// Execution-time breakdown of a solve (Fig. 14 legend: SpM×V, SpM×V
/// reduction, vector operations; CSX preprocessing is accounted by the
/// caller, who builds the kernel).
struct Breakdown {
    double spmv_multiply_seconds = 0.0;
    double spmv_reduction_seconds = 0.0;
    double vector_ops_seconds = 0.0;

    [[nodiscard]] double total() const {
        return spmv_multiply_seconds + spmv_reduction_seconds + vector_ops_seconds;
    }
};

struct Result {
    std::vector<value_t> x;
    int iterations = 0;
    double residual_norm = 0.0;  // ||b - A x|| at exit
    bool converged = false;
    Breakdown breakdown;
    /// ||r|| after every iteration, starting with the initial residual
    /// (only filled when Options::record_residuals is set).
    std::vector<double> residual_history;
    /// Wall-clock seconds of each iteration (only filled when
    /// Options::record_iteration_seconds is set).
    std::vector<double> iteration_seconds;
};

/// Solves A x = b with A given by @p kernel (must be symmetric positive
/// definite for CG to apply).  @p x0 is the initial guess; pass empty to
/// start from zero.
///
/// When the kernel's region_pool() is @p pool, the whole solve executes
/// inside ONE persistent parallel region: scalar recurrences are computed
/// redundantly (and deterministically) on every worker from shared padded
/// partials, phase boundaries are SpinBarrier crossings, and the
/// per-iteration cost drops from ~6 pool dispatches to a handful of barrier
/// crossings.  Results are bit-identical to the dispatch-per-op path given
/// the same partitioning.  Other kernels keep the blas1 dispatch loop.
Result solve(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
             std::span<const value_t> x0, const Options& opts);

/// Convenience overload starting from x0 = 0.
Result solve(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
             const Options& opts);

}  // namespace symspmv::cg
