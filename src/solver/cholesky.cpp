#include "solver/cholesky.hpp"

#include <cmath>

#include "core/error.hpp"

namespace symspmv::cg {

DenseCholesky::DenseCholesky(const Dense& a) : l_(a.rows(), a.cols()) {
    SYMSPMV_CHECK_MSG(a.rows() == a.cols(), "cholesky: matrix must be square");
    const index_t n = a.rows();
    for (index_t j = 0; j < n; ++j) {
        value_t diag = a.at(j, j);
        for (index_t k = 0; k < j; ++k) diag -= l_.at(j, k) * l_.at(j, k);
        if (diag <= value_t{0}) {
            throw InvalidArgument("cholesky: matrix is not positive definite");
        }
        const value_t ljj = std::sqrt(diag);
        l_.at(j, j) = ljj;
        for (index_t i = j + 1; i < n; ++i) {
            value_t s = a.at(i, j);
            for (index_t k = 0; k < j; ++k) s -= l_.at(i, k) * l_.at(j, k);
            l_.at(i, j) = s / ljj;
        }
    }
}

DenseCholesky::DenseCholesky(const Coo& a) : DenseCholesky(Dense(a)) {}

std::vector<value_t> DenseCholesky::solve(std::span<const value_t> b) const {
    const index_t n = l_.rows();
    SYMSPMV_CHECK_MSG(static_cast<index_t>(b.size()) == n, "cholesky: b size mismatch");
    // Forward: L z = b.
    std::vector<value_t> z(b.begin(), b.end());
    for (index_t i = 0; i < n; ++i) {
        value_t s = z[static_cast<std::size_t>(i)];
        for (index_t k = 0; k < i; ++k) s -= l_.at(i, k) * z[static_cast<std::size_t>(k)];
        z[static_cast<std::size_t>(i)] = s / l_.at(i, i);
    }
    // Backward: L^T x = z.
    for (index_t i = n - 1; i >= 0; --i) {
        value_t s = z[static_cast<std::size_t>(i)];
        for (index_t k = i + 1; k < n; ++k) s -= l_.at(k, i) * z[static_cast<std::size_t>(k)];
        z[static_cast<std::size_t>(i)] = s / l_.at(i, i);
    }
    return z;
}

double DenseCholesky::log_determinant() const {
    double log_det = 0.0;
    for (index_t i = 0; i < l_.rows(); ++i) log_det += std::log(l_.at(i, i));
    return 2.0 * log_det;
}

}  // namespace symspmv::cg
