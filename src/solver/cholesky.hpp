// Dense Cholesky factorization — the direct-solve oracle for the iterative
// solver tests.
//
// CG's accuracy claims need an independent ground truth; for the
// test-sized systems a dense LL^T factorization provides the exact
// solution (up to rounding) against which the CG/PCG results are checked.
// Deliberately simple and O(n^3): this is test infrastructure, not a
// production solver.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "matrix/dense.hpp"

namespace symspmv::cg {

/// Dense LL^T factorization of a symmetric positive definite matrix.
class DenseCholesky {
   public:
    /// Factorizes @p a (must be square, symmetric, positive definite;
    /// throws InvalidArgument when a non-positive pivot appears).
    explicit DenseCholesky(const Dense& a);

    /// Builds the dense matrix from COO first.
    explicit DenseCholesky(const Coo& a);

    [[nodiscard]] index_t rows() const { return l_.rows(); }

    /// Solves A x = b via forward + backward substitution.
    [[nodiscard]] std::vector<value_t> solve(std::span<const value_t> b) const;

    /// log(det A) = 2 * sum log(L_ii); handy for SPD sanity checks.
    [[nodiscard]] double log_determinant() const;

   private:
    Dense l_;  // lower triangular factor (upper part unused)
};

}  // namespace symspmv::cg
