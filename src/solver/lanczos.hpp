// Lanczos extreme-eigenvalue estimation for symmetric positive definite
// operators.
//
// CG's §II.C convergence behaviour is governed by the spectral condition
// number κ = λ_max/λ_min: the classical bound needs ~(√κ/2)·ln(2/ε)
// iterations.  This module estimates both extreme eigenvalues with a plain
// Lanczos recurrence over any SpmvKernel (the same kernels CG uses) and a
// bisection/Sturm eigensolver on the resulting tridiagonal matrix — which
// is how the preconditioner ablation's iteration counts can be predicted
// from structure alone.
//
// No reorthogonalization is performed: extreme Ritz values converge first
// and are exactly what we need; interior ghost eigenvalues are irrelevant.
#pragma once

#include <span>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::cg {

struct SpectrumEstimate {
    double lambda_min = 0.0;  // smallest Ritz value after `iterations` steps
    double lambda_max = 0.0;  // largest Ritz value
    int iterations = 0;       // Lanczos steps actually performed

    [[nodiscard]] double condition_number() const {
        return lambda_min > 0.0 ? lambda_max / lambda_min : 0.0;
    }

    /// Classical CG iteration bound to reduce the A-norm error by @p eps.
    [[nodiscard]] double cg_iteration_bound(double eps = 1e-8) const;
};

/// Runs @p steps Lanczos iterations on A given by @p kernel (must be
/// symmetric; positive definiteness is the caller's contract) and returns
/// the extreme Ritz values.  @p seed randomizes the start vector.
SpectrumEstimate estimate_spectrum(SpmvKernel& kernel, ThreadPool& pool, int steps = 50,
                                   std::uint64_t seed = 2013);

/// Extreme eigenvalues of the symmetric tridiagonal matrix with diagonal
/// @p alpha and off-diagonal @p beta (beta[i] couples i and i+1), via
/// bisection with Sturm-sequence counts.  Exposed for testing.
std::pair<double, double> tridiagonal_extreme_eigenvalues(std::span<const double> alpha,
                                                          std::span<const double> beta);

}  // namespace symspmv::cg
