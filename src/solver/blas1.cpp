#include "solver/blas1.hpp"

#include <cmath>
#include <vector>

#include "core/allocator.hpp"
#include "core/error.hpp"
#include "core/partition.hpp"

namespace symspmv::blas1 {
namespace {

/// Per-thread partial results, padded to a cache line each to avoid false
/// sharing during the parallel dot product.
struct alignas(kCacheLineBytes) Partial {
    value_t v = 0.0;
};

std::vector<RowRange> ranges(ThreadPool& pool, std::size_t n) {
    return split_even(static_cast<index_t>(n), pool.size());
}

}  // namespace

value_t dot(ThreadPool& pool, std::span<const value_t> x, std::span<const value_t> y) {
    SYMSPMV_CHECK_MSG(x.size() == y.size(), "dot: size mismatch");
    const auto parts = ranges(pool, x.size());
    std::vector<Partial> partial(static_cast<std::size_t>(pool.size()));
    pool.run([&](int tid) {
        const RowRange r = parts[static_cast<std::size_t>(tid)];
        value_t acc = 0.0;
        for (index_t i = r.begin; i < r.end; ++i) {
            acc += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
        }
        partial[static_cast<std::size_t>(tid)].v = acc;
    });
    value_t total = 0.0;
    for (const Partial& p : partial) total += p.v;
    return total;
}

void axpy(ThreadPool& pool, value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(x.size() == y.size(), "axpy: size mismatch");
    const auto parts = ranges(pool, x.size());
    pool.run([&](int tid) {
        const RowRange r = parts[static_cast<std::size_t>(tid)];
        for (index_t i = r.begin; i < r.end; ++i) {
            y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
        }
    });
}

void xpby(ThreadPool& pool, std::span<const value_t> x, value_t beta, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(x.size() == y.size(), "xpby: size mismatch");
    const auto parts = ranges(pool, x.size());
    pool.run([&](int tid) {
        const RowRange r = parts[static_cast<std::size_t>(tid)];
        for (index_t i = r.begin; i < r.end; ++i) {
            y[static_cast<std::size_t>(i)] =
                x[static_cast<std::size_t>(i)] + beta * y[static_cast<std::size_t>(i)];
        }
    });
}

void copy(ThreadPool& pool, std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(x.size() == y.size(), "copy: size mismatch");
    const auto parts = ranges(pool, x.size());
    pool.run([&](int tid) {
        const RowRange r = parts[static_cast<std::size_t>(tid)];
        for (index_t i = r.begin; i < r.end; ++i) {
            y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
        }
    });
}

void zero(ThreadPool& pool, std::span<value_t> x) {
    const auto parts = ranges(pool, x.size());
    pool.run([&](int tid) {
        const RowRange r = parts[static_cast<std::size_t>(tid)];
        for (index_t i = r.begin; i < r.end; ++i) x[static_cast<std::size_t>(i)] = 0.0;
    });
}

value_t norm2(ThreadPool& pool, std::span<const value_t> x) {
    return std::sqrt(dot(pool, x, x));
}

namespace serial {

value_t dot(std::span<const value_t> x, std::span<const value_t> y) {
    SYMSPMV_CHECK_MSG(x.size() == y.size(), "dot: size mismatch");
    value_t acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
    return acc;
}

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(x.size() == y.size(), "axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace serial
}  // namespace symspmv::blas1
