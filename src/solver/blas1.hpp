// Parallel BLAS-1 vector operations used by the CG solver (Alg. 1).
//
// CG performs several dot products and axpy updates per iteration but only
// one SpM×V; for small matrices these vector operations dominate the solver
// time (§V.F), so they are parallelized over the same thread pool.
#pragma once

#include <span>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/types.hpp"

namespace symspmv::blas1 {

/// Returns sum_i x[i] * y[i].
value_t dot(ThreadPool& pool, std::span<const value_t> x, std::span<const value_t> y);

/// y += alpha * x.
void axpy(ThreadPool& pool, value_t alpha, std::span<const value_t> x, std::span<value_t> y);

/// y = x + beta * y  (the p-update of CG).
void xpby(ThreadPool& pool, std::span<const value_t> x, value_t beta, std::span<value_t> y);

/// y = x.
void copy(ThreadPool& pool, std::span<const value_t> x, std::span<value_t> y);

/// x = 0.
void zero(ThreadPool& pool, std::span<value_t> x);

/// Returns the Euclidean norm of x.
value_t norm2(ThreadPool& pool, std::span<const value_t> x);

/// Serial reference implementations (used by tests and tiny problems).
namespace serial {
value_t dot(std::span<const value_t> x, std::span<const value_t> y);
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);
}  // namespace serial

}  // namespace symspmv::blas1
