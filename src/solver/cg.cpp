#include "solver/cg.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "core/allocator.hpp"
#include "core/error.hpp"
#include "core/partition.hpp"
#include "core/timer.hpp"
#include "solver/blas1.hpp"

namespace symspmv::cg {

namespace {

// Attach for the duration of the solve; restore on every exit path
// (including the not-positive-definite throw).
struct ProfilerGuard {
    SpmvKernel* kernel = nullptr;
    PhaseProfiler* previous = nullptr;
    ~ProfilerGuard() {
        if (kernel != nullptr) kernel->set_profiler(previous);
    }
};

/// Per-thread dot-product partials, padded to a cache line each to avoid
/// false sharing (same idiom as blas1).
struct alignas(kCacheLineBytes) Partial {
    value_t v = 0.0;
};

/// Whole-solve persistent parallel region for kernels exposing one: every
/// CG iteration used to cost ~6 pool dispatches (one per SpM×V + one per
/// BLAS-1 call); here the ENTIRE solve is one ThreadPool::run_many-style
/// region with SpinBarrier phase boundaries, so the per-iteration
/// synchronization cost drops to a handful of barrier crossings.
///
/// Scalar recurrences (rr, alpha, beta) are computed REDUNDANTLY on every
/// worker: after a barrier each worker sums the same per-thread partials in
/// the same order, giving bit-identical values everywhere — every worker
/// takes the same convergence branch with no broadcast or flag.  Worker 0
/// alone writes the Result bookkeeping.
Result solve_region(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
                    const Options& opts, Result res) {
    const auto n = static_cast<std::size_t>(kernel.rows());
    const int threads = pool.size();

    ProfilerGuard guard{&kernel, kernel.profiler()};
    std::optional<PhaseProfiler> own;
    PhaseProfiler* prof = opts.profiler;
    if (prof == nullptr && opts.track_breakdown) {
        // The region path reads the SpM×V phase split out of a profiler
        // (last_phases() is never updated inside a region), so attach an
        // internal one when the caller wants the breakdown but no profiler.
        own.emplace(threads);
        prof = &*own;
    }
    kernel.set_profiler(prof);

    std::vector<value_t> r(n), p(n), ap(n);
    std::vector<Partial> partial_a(static_cast<std::size_t>(threads));
    std::vector<Partial> partial_b(static_cast<std::size_t>(threads));
    const auto parts = split_even(static_cast<index_t>(n), threads);
    const std::span<value_t> x{res.x};
    double vec_seconds = 0.0;  // worker 0's share, written once at region end

    auto sum = [threads](const std::vector<Partial>& partials) {
        value_t total = 0.0;
        for (int i = 0; i < threads; ++i) total += partials[static_cast<std::size_t>(i)].v;
        return total;
    };

    // Breakdown is the DELTA over this solve; a caller-supplied profiler may
    // already hold accumulations from earlier runs.
    const double base_mult = prof != nullptr ? prof->seconds(0, Phase::kMultiply) : 0.0;
    const double base_red = prof != nullptr ? prof->seconds(0, Phase::kReduction) : 0.0;

    pool.run([&](int tid) {
        const RowRange rg = parts[static_cast<std::size_t>(tid)];
        const auto lo = static_cast<std::size_t>(rg.begin);
        const auto hi = static_cast<std::size_t>(rg.end);
        double vec_local = 0.0;

        // r0 = b - A x0 ; p0 = r0 ; rr = r.r ; b_norm = ||b||.
        if (tid == 0 && prof != nullptr) prof->begin_op();
        kernel.spmv_region(tid, x, ap);
        pool.barrier();  // all of ap written before any thread reads it
        Timer vt;
        value_t acc_r = 0.0;
        value_t acc_b = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
            r[i] = b[i] - ap[i];
            p[i] = r[i];
            acc_r += r[i] * r[i];
            acc_b += b[i] * b[i];
        }
        partial_a[static_cast<std::size_t>(tid)].v = acc_r;
        partial_b[static_cast<std::size_t>(tid)].v = acc_b;
        vec_local += vt.seconds();
        pool.barrier();
        value_t rr = sum(partial_a);
        const value_t b_norm = std::sqrt(sum(partial_b));
        const value_t threshold = opts.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

        if (tid == 0) {
            res.residual_norm = std::sqrt(rr);
            if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
        }
        if (std::sqrt(rr) <= threshold) {
            if (tid == 0) {
                res.converged = true;
                vec_seconds = vec_local;
            }
            return;
        }

        Timer iter_timer;
        for (int i = 0; i < opts.max_iterations; ++i) {
            if (tid == 0 && opts.record_iteration_seconds) iter_timer.reset();
            // a_i = (r.r) / (p.A.p) — the SpM×V of the iteration (Alg. 1 line 6).
            if (tid == 0 && prof != nullptr) prof->begin_op();
            kernel.spmv_region(tid, p, ap);
            pool.barrier();

            vt.reset();
            partial_a[static_cast<std::size_t>(tid)].v =
                blas1::serial::dot({p.data() + lo, hi - lo}, {ap.data() + lo, hi - lo});
            pool.barrier();
            const value_t pap = sum(partial_a);
            // Deterministic on every worker: all throw together, the pool
            // poisons/unwinds, and run() rethrows the first error.
            SYMSPMV_CHECK_MSG(pap > 0.0, "cg: matrix is not positive definite (p.A.p <= 0)");
            const value_t alpha = rr / pap;
            value_t acc = 0.0;
            for (std::size_t j = lo; j < hi; ++j) {
                x[j] += alpha * p[j];   // x_{i+1} = x_i + a_i p_i
                r[j] -= alpha * ap[j];  // r_{i+1} = r_i - a_i A p_i
                acc += r[j] * r[j];     // own range only: no barrier needed
            }
            // The two partial arrays alternate: a fast worker may reach this
            // store while a slow peer is still inside sum(partial_a) above, so
            // the r.r partial must not reuse partial_a within the iteration.
            partial_b[static_cast<std::size_t>(tid)].v = acc;
            vec_local += vt.seconds();
            pool.barrier();
            const value_t rr_next = sum(partial_b);

            if (tid == 0) {
                res.iterations = i + 1;
                res.residual_norm = std::sqrt(rr_next);
                if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
            }
            if (std::sqrt(rr_next) <= threshold) {
                if (tid == 0) {
                    res.converged = true;
                    if (opts.record_iteration_seconds) {
                        res.iteration_seconds.push_back(iter_timer.seconds());
                    }
                }
                break;
            }

            vt.reset();
            const value_t beta = rr_next / rr;
            for (std::size_t j = lo; j < hi; ++j) {
                p[j] = r[j] + beta * p[j];  // p_{i+1} = r_{i+1} + b_i p_i
            }
            rr = rr_next;
            vec_local += vt.seconds();
            pool.barrier();  // all of p written before the next SpM×V reads it
            if (tid == 0 && opts.record_iteration_seconds) {
                res.iteration_seconds.push_back(iter_timer.seconds());
            }
        }
        if (tid == 0) vec_seconds = vec_local;
    });

    if (prof != nullptr && opts.track_breakdown) {
        res.breakdown.spmv_multiply_seconds = prof->seconds(0, Phase::kMultiply) - base_mult;
        res.breakdown.spmv_reduction_seconds = prof->seconds(0, Phase::kReduction) - base_red;
        res.breakdown.vector_ops_seconds = vec_seconds;
    }
    return res;
}

}  // namespace

Result solve(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
             std::span<const value_t> x0, const Options& opts) {
    const auto n = static_cast<std::size_t>(kernel.rows());
    SYMSPMV_CHECK_MSG(b.size() == n, "cg: b size mismatch");
    SYMSPMV_CHECK_MSG(x0.empty() || x0.size() == n, "cg: x0 size mismatch");
    SYMSPMV_CHECK_MSG(opts.max_iterations >= 0, "cg: negative iteration limit");

    Result res;
    res.x.assign(n, 0.0);
    if (!x0.empty()) res.x.assign(x0.begin(), x0.end());

    if (kernel.region_pool() == &pool) {
        return solve_region(kernel, pool, b, opts, std::move(res));
    }

    ProfilerGuard profiler_guard{opts.profiler != nullptr ? &kernel : nullptr,
                                 opts.profiler != nullptr ? kernel.profiler() : nullptr};
    if (opts.profiler != nullptr) kernel.set_profiler(opts.profiler);

    std::vector<value_t> r(n), p(n), ap(n);
    PhaseTimer vec_timer;

    // r0 = b - A x0 ; p0 = r0.
    if (opts.profiler != nullptr) opts.profiler->begin_op();
    kernel.spmv(res.x, ap);
    res.breakdown.spmv_multiply_seconds += kernel.last_phases().multiply_seconds;
    res.breakdown.spmv_reduction_seconds += kernel.last_phases().reduction_seconds;
    vec_timer.start();
    blas1::copy(pool, b, r);
    blas1::axpy(pool, -1.0, ap, r);
    blas1::copy(pool, r, p);
    value_t rr = blas1::dot(pool, r, r);
    const value_t b_norm = blas1::norm2(pool, b);
    vec_timer.stop();

    const value_t threshold = opts.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
    res.residual_norm = std::sqrt(rr);
    if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
    if (res.residual_norm <= threshold) {
        res.converged = true;
        res.breakdown.vector_ops_seconds = vec_timer.total_seconds();
        return res;
    }

    Timer iter_timer;
    for (int i = 0; i < opts.max_iterations; ++i) {
        if (opts.record_iteration_seconds) iter_timer.reset();
        // a_i = (r.r) / (p.A.p)  — the SpM×V of the iteration (Alg. 1 line 6).
        if (opts.profiler != nullptr) opts.profiler->begin_op();
        kernel.spmv(p, ap);
        res.breakdown.spmv_multiply_seconds += kernel.last_phases().multiply_seconds;
        res.breakdown.spmv_reduction_seconds += kernel.last_phases().reduction_seconds;

        vec_timer.start();
        const value_t pap = blas1::dot(pool, p, ap);
        SYMSPMV_CHECK_MSG(pap > 0.0, "cg: matrix is not positive definite (p.A.p <= 0)");
        const value_t alpha = rr / pap;
        blas1::axpy(pool, alpha, p, res.x);    // x_{i+1} = x_i + a_i p_i
        blas1::axpy(pool, -alpha, ap, r);      // r_{i+1} = r_i - a_i A p_i
        const value_t rr_next = blas1::dot(pool, r, r);
        vec_timer.stop();

        res.iterations = i + 1;
        res.residual_norm = std::sqrt(rr_next);
        if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
        if (res.residual_norm <= threshold) {
            res.converged = true;
            rr = rr_next;
            if (opts.record_iteration_seconds) {
                res.iteration_seconds.push_back(iter_timer.seconds());
            }
            break;
        }

        vec_timer.start();
        const value_t beta = rr_next / rr;
        blas1::xpby(pool, r, beta, p);  // p_{i+1} = r_{i+1} + b_i p_i
        rr = rr_next;
        vec_timer.stop();
        if (opts.record_iteration_seconds) {
            res.iteration_seconds.push_back(iter_timer.seconds());
        }
    }
    res.breakdown.vector_ops_seconds = vec_timer.total_seconds();
    return res;
}

Result solve(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
             const Options& opts) {
    return solve(kernel, pool, b, {}, opts);
}

}  // namespace symspmv::cg
