#include "solver/cg.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "solver/blas1.hpp"

namespace symspmv::cg {

Result solve(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
             std::span<const value_t> x0, const Options& opts) {
    const auto n = static_cast<std::size_t>(kernel.rows());
    SYMSPMV_CHECK_MSG(b.size() == n, "cg: b size mismatch");
    SYMSPMV_CHECK_MSG(x0.empty() || x0.size() == n, "cg: x0 size mismatch");
    SYMSPMV_CHECK_MSG(opts.max_iterations >= 0, "cg: negative iteration limit");

    Result res;
    res.x.assign(n, 0.0);
    if (!x0.empty()) res.x.assign(x0.begin(), x0.end());

    // Attach for the duration of the solve; detach on every exit path
    // (including the not-positive-definite throw below).
    struct ProfilerGuard {
        SpmvKernel* kernel;
        ~ProfilerGuard() {
            if (kernel != nullptr) kernel->set_profiler(nullptr);
        }
    } profiler_guard{opts.profiler != nullptr ? &kernel : nullptr};
    if (opts.profiler != nullptr) kernel.set_profiler(opts.profiler);

    std::vector<value_t> r(n), p(n), ap(n);
    PhaseTimer vec_timer;

    // r0 = b - A x0 ; p0 = r0.
    if (opts.profiler != nullptr) opts.profiler->begin_op();
    kernel.spmv(res.x, ap);
    res.breakdown.spmv_multiply_seconds += kernel.last_phases().multiply_seconds;
    res.breakdown.spmv_reduction_seconds += kernel.last_phases().reduction_seconds;
    vec_timer.start();
    blas1::copy(pool, b, r);
    blas1::axpy(pool, -1.0, ap, r);
    blas1::copy(pool, r, p);
    value_t rr = blas1::dot(pool, r, r);
    const value_t b_norm = blas1::norm2(pool, b);
    vec_timer.stop();

    const value_t threshold = opts.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
    res.residual_norm = std::sqrt(rr);
    if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
    if (res.residual_norm <= threshold) {
        res.converged = true;
        res.breakdown.vector_ops_seconds = vec_timer.total_seconds();
        return res;
    }

    Timer iter_timer;
    for (int i = 0; i < opts.max_iterations; ++i) {
        if (opts.record_iteration_seconds) iter_timer.reset();
        // a_i = (r.r) / (p.A.p)  — the SpM×V of the iteration (Alg. 1 line 6).
        if (opts.profiler != nullptr) opts.profiler->begin_op();
        kernel.spmv(p, ap);
        res.breakdown.spmv_multiply_seconds += kernel.last_phases().multiply_seconds;
        res.breakdown.spmv_reduction_seconds += kernel.last_phases().reduction_seconds;

        vec_timer.start();
        const value_t pap = blas1::dot(pool, p, ap);
        SYMSPMV_CHECK_MSG(pap > 0.0, "cg: matrix is not positive definite (p.A.p <= 0)");
        const value_t alpha = rr / pap;
        blas1::axpy(pool, alpha, p, res.x);    // x_{i+1} = x_i + a_i p_i
        blas1::axpy(pool, -alpha, ap, r);      // r_{i+1} = r_i - a_i A p_i
        const value_t rr_next = blas1::dot(pool, r, r);
        vec_timer.stop();

        res.iterations = i + 1;
        res.residual_norm = std::sqrt(rr_next);
        if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
        if (res.residual_norm <= threshold) {
            res.converged = true;
            rr = rr_next;
            if (opts.record_iteration_seconds) {
                res.iteration_seconds.push_back(iter_timer.seconds());
            }
            break;
        }

        vec_timer.start();
        const value_t beta = rr_next / rr;
        blas1::xpby(pool, r, beta, p);  // p_{i+1} = r_{i+1} + b_i p_i
        rr = rr_next;
        vec_timer.stop();
        if (opts.record_iteration_seconds) {
            res.iteration_seconds.push_back(iter_timer.seconds());
        }
    }
    res.breakdown.vector_ops_seconds = vec_timer.total_seconds();
    return res;
}

Result solve(SpmvKernel& kernel, ThreadPool& pool, std::span<const value_t> b,
             const Options& opts) {
    return solve(kernel, pool, b, {}, opts);
}

}  // namespace symspmv::cg
