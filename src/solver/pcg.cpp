#include "solver/pcg.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "solver/blas1.hpp"

namespace symspmv::cg {

PcgResult pcg_solve(SpmvKernel& kernel, Preconditioner& precond, ThreadPool& pool,
                    std::span<const value_t> b, std::span<const value_t> x0,
                    const Options& opts) {
    const auto n = static_cast<std::size_t>(kernel.rows());
    SYMSPMV_CHECK_MSG(b.size() == n, "pcg: b size mismatch");
    SYMSPMV_CHECK_MSG(x0.empty() || x0.size() == n, "pcg: x0 size mismatch");
    SYMSPMV_CHECK_MSG(opts.max_iterations >= 0, "pcg: negative iteration limit");

    PcgResult out;
    Result& res = out.base;
    res.x.assign(n, 0.0);
    if (!x0.empty()) res.x.assign(x0.begin(), x0.end());

    // Attach for the duration of the solve; detach on every exit path
    // (including the not-positive-definite throw below).
    struct ProfilerGuard {
        SpmvKernel* kernel;
        ~ProfilerGuard() {
            if (kernel != nullptr) kernel->set_profiler(nullptr);
        }
    } profiler_guard{opts.profiler != nullptr ? &kernel : nullptr};
    if (opts.profiler != nullptr) kernel.set_profiler(opts.profiler);

    std::vector<value_t> r(n), z(n), p(n), ap(n);
    PhaseTimer vec_timer;
    PhaseTimer pc_timer;

    // r0 = b - A x0 ; z0 = M^{-1} r0 ; p0 = z0.
    if (opts.profiler != nullptr) opts.profiler->begin_op();
    kernel.spmv(res.x, ap);
    res.breakdown.spmv_multiply_seconds += kernel.last_phases().multiply_seconds;
    res.breakdown.spmv_reduction_seconds += kernel.last_phases().reduction_seconds;
    vec_timer.start();
    blas1::copy(pool, b, r);
    blas1::axpy(pool, -1.0, ap, r);
    const value_t b_norm = blas1::norm2(pool, b);
    value_t rr = blas1::dot(pool, r, r);
    vec_timer.stop();
    pc_timer.start();
    precond.apply(r, z);
    pc_timer.stop();
    vec_timer.start();
    blas1::copy(pool, z, p);
    value_t rz = blas1::dot(pool, r, z);
    vec_timer.stop();

    const value_t threshold = opts.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
    res.residual_norm = std::sqrt(rr);
    if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
    if (res.residual_norm <= threshold) {
        res.converged = true;
        res.breakdown.vector_ops_seconds = vec_timer.total_seconds();
        out.precond_seconds = pc_timer.total_seconds();
        return out;
    }

    Timer iter_timer;
    for (int i = 0; i < opts.max_iterations; ++i) {
        if (opts.record_iteration_seconds) iter_timer.reset();
        if (opts.profiler != nullptr) opts.profiler->begin_op();
        kernel.spmv(p, ap);
        res.breakdown.spmv_multiply_seconds += kernel.last_phases().multiply_seconds;
        res.breakdown.spmv_reduction_seconds += kernel.last_phases().reduction_seconds;

        vec_timer.start();
        const value_t pap = blas1::dot(pool, p, ap);
        SYMSPMV_CHECK_MSG(pap > 0.0, "pcg: matrix is not positive definite (p.A.p <= 0)");
        const value_t alpha = rz / pap;
        blas1::axpy(pool, alpha, p, res.x);
        blas1::axpy(pool, -alpha, ap, r);
        rr = blas1::dot(pool, r, r);
        vec_timer.stop();

        res.iterations = i + 1;
        res.residual_norm = std::sqrt(rr);
        if (opts.record_residuals) res.residual_history.push_back(res.residual_norm);
        if (res.residual_norm <= threshold) {
            res.converged = true;
            if (opts.record_iteration_seconds) {
                res.iteration_seconds.push_back(iter_timer.seconds());
            }
            break;
        }

        pc_timer.start();
        precond.apply(r, z);
        pc_timer.stop();
        vec_timer.start();
        const value_t rz_next = blas1::dot(pool, r, z);
        const value_t beta = rz_next / rz;
        blas1::xpby(pool, z, beta, p);  // p_{i+1} = z_{i+1} + beta p_i
        rz = rz_next;
        vec_timer.stop();
        if (opts.record_iteration_seconds) {
            res.iteration_seconds.push_back(iter_timer.seconds());
        }
    }
    res.breakdown.vector_ops_seconds = vec_timer.total_seconds();
    out.precond_seconds = pc_timer.total_seconds();
    return out;
}

PcgResult pcg_solve(SpmvKernel& kernel, Preconditioner& precond, ThreadPool& pool,
                    std::span<const value_t> b, const Options& opts) {
    return pcg_solve(kernel, precond, pool, b, {}, opts);
}

}  // namespace symspmv::cg
