#include "solver/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/error.hpp"
#include "solver/blas1.hpp"

namespace symspmv::cg {

double SpectrumEstimate::cg_iteration_bound(double eps) const {
    const double kappa = condition_number();
    if (kappa <= 1.0) return 1.0;
    return 0.5 * std::sqrt(kappa) * std::log(2.0 / eps);
}

namespace {

/// Number of eigenvalues of the tridiagonal (alpha, beta) strictly below
/// @p x (Sturm sequence count, computed stably as sign agreements of the
/// shifted LDL^T pivots).
int sturm_count(std::span<const double> alpha, std::span<const double> beta, double x) {
    int count = 0;
    double d = 1.0;
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        const double b2 = i == 0 ? 0.0 : beta[i - 1] * beta[i - 1];
        d = alpha[i] - x - (d == 0.0 ? b2 / 1e-300 : b2 / d);
        if (d < 0.0) ++count;
    }
    return count;
}

/// Finds the k-th smallest eigenvalue (0-based) by bisection on [lo, hi].
double bisect_eigenvalue(std::span<const double> alpha, std::span<const double> beta, int k,
                         double lo, double hi) {
    for (int it = 0; it < 200 && hi - lo > 1e-13 * std::max(1.0, std::abs(hi)); ++it) {
        const double mid = 0.5 * (lo + hi);
        if (sturm_count(alpha, beta, mid) > k) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return 0.5 * (lo + hi);
}

}  // namespace

std::pair<double, double> tridiagonal_extreme_eigenvalues(std::span<const double> alpha,
                                                          std::span<const double> beta) {
    SYMSPMV_CHECK_MSG(!alpha.empty() && beta.size() + 1 == alpha.size(),
                      "tridiagonal: need n diagonals and n-1 off-diagonals");
    // Gershgorin bounds.
    double lo = alpha[0];
    double hi = alpha[0];
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        const double r = (i > 0 ? std::abs(beta[i - 1]) : 0.0) +
                         (i + 1 < alpha.size() ? std::abs(beta[i]) : 0.0);
        lo = std::min(lo, alpha[i] - r);
        hi = std::max(hi, alpha[i] + r);
    }
    const int n = static_cast<int>(alpha.size());
    const double smallest = bisect_eigenvalue(alpha, beta, 0, lo, hi);
    const double largest = bisect_eigenvalue(alpha, beta, n - 1, lo, hi);
    return {smallest, largest};
}

SpectrumEstimate estimate_spectrum(SpmvKernel& kernel, ThreadPool& pool, int steps,
                                   std::uint64_t seed) {
    const auto n = static_cast<std::size_t>(kernel.rows());
    SYMSPMV_CHECK_MSG(steps >= 1, "lanczos: need at least one step");
    steps = std::min(steps, static_cast<int>(n));

    std::vector<value_t> v(n), v_prev(n, 0.0), w(n);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    for (auto& e : v) e = dist(rng);
    const value_t v_norm = blas1::norm2(pool, v);
    for (auto& e : v) e /= v_norm;

    std::vector<double> alpha;
    std::vector<double> beta;
    alpha.reserve(static_cast<std::size_t>(steps));
    double beta_prev = 0.0;
    for (int j = 0; j < steps; ++j) {
        kernel.spmv(v, w);                                 // w = A v_j
        blas1::axpy(pool, -beta_prev, v_prev, w);          // w -= beta_{j-1} v_{j-1}
        const double a = blas1::dot(pool, w, v);           // alpha_j
        blas1::axpy(pool, -a, v, w);                       // w -= alpha_j v_j
        alpha.push_back(a);
        const double b = blas1::norm2(pool, w);
        if (j + 1 == steps || b < 1e-12) break;            // invariant subspace
        beta.push_back(b);
        beta_prev = b;
        v_prev = v;
        for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / b;
    }

    const auto [lmin, lmax] = tridiagonal_extreme_eigenvalues(alpha, beta);
    SpectrumEstimate est;
    est.lambda_min = lmin;
    est.lambda_max = lmax;
    est.iterations = static_cast<int>(alpha.size());
    return est;
}

}  // namespace symspmv::cg
