#include "solver/precond.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"
#include "core/partition.hpp"

namespace symspmv::cg {

void IdentityPreconditioner::apply(std::span<const value_t> r, std::span<value_t> z) {
    SYMSPMV_CHECK(r.size() == z.size());
    std::ranges::copy(r, z.begin());
}

JacobiPreconditioner::JacobiPreconditioner(const Sss& matrix, ThreadPool& pool) : pool_(pool) {
    const auto d = matrix.dvalues();
    inv_diag_.resize(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        SYMSPMV_CHECK_MSG(d[i] != value_t{0}, "Jacobi preconditioner needs a non-zero diagonal");
        inv_diag_[i] = value_t{1} / d[i];
    }
}

void JacobiPreconditioner::apply(std::span<const value_t> r, std::span<value_t> z) {
    SYMSPMV_CHECK(r.size() == z.size() && r.size() == inv_diag_.size());
    const auto parts = split_even(static_cast<index_t>(r.size()), pool_.size());
    pool_.run([&](int tid) {
        const RowRange range = parts[static_cast<std::size_t>(tid)];
        for (index_t i = range.begin; i < range.end; ++i) {
            z[static_cast<std::size_t>(i)] =
                r[static_cast<std::size_t>(i)] * inv_diag_[static_cast<std::size_t>(i)];
        }
    });
}

SsorPreconditioner::SsorPreconditioner(const Sss& matrix, double omega)
    : matrix_(matrix), omega_(omega) {
    SYMSPMV_CHECK_MSG(omega > 0.0 && omega < 2.0, "SSOR requires 0 < omega < 2");
    for (value_t d : matrix.dvalues()) {
        SYMSPMV_CHECK_MSG(d != value_t{0}, "SSOR preconditioner needs a non-zero diagonal");
    }
    work_.resize(static_cast<std::size_t>(matrix.rows()));
}

void SsorPreconditioner::apply(std::span<const value_t> r, std::span<value_t> z) {
    const index_t n = matrix_.rows();
    SYMSPMV_CHECK(static_cast<index_t>(r.size()) == n && static_cast<index_t>(z.size()) == n);
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    const auto dvalues = matrix_.dvalues();
    const double w = omega_;
    // M = (1/(w(2-w))) (D + wL) D^{-1} (D + wL)^T, so M z = r unfolds into
    //   (D/w + L) t = ((2-w)/w) r,   then   (D/w + L)^T z = D t.
    const double scale = (2.0 - w) / w;
    value_t* __restrict t = work_.data();
    value_t* __restrict zv = z.data();

    // Forward solve (D/w + L) t = scale * r, exploiting that SSS stores
    // exactly the strictly-lower rows in CSR order.
    for (index_t i = 0; i < n; ++i) {
        value_t acc = scale * r[static_cast<std::size_t>(i)];
        for (index_t j = rowptr[static_cast<std::size_t>(i)];
             j < rowptr[static_cast<std::size_t>(i) + 1]; ++j) {
            acc -= values[static_cast<std::size_t>(j)] *
                   t[colind[static_cast<std::size_t>(j)]];
        }
        t[i] = acc * w / dvalues[static_cast<std::size_t>(i)];
    }

    // Right-hand side of the backward solve.
    for (index_t i = 0; i < n; ++i) {
        zv[i] = t[i] * dvalues[static_cast<std::size_t>(i)];
    }

    // Backward solve (D/w + L)^T z = rhs: rows of L^T are the stored
    // columns, so each finished z[i] is scattered into the still-pending
    // entries below it (reverse row order keeps the dependences satisfied).
    for (index_t i = n - 1; i >= 0; --i) {
        zv[i] = zv[i] * w / dvalues[static_cast<std::size_t>(i)];
        const value_t zi = zv[i];
        for (index_t j = rowptr[static_cast<std::size_t>(i)];
             j < rowptr[static_cast<std::size_t>(i) + 1]; ++j) {
            zv[colind[static_cast<std::size_t>(j)]] -= values[static_cast<std::size_t>(j)] * zi;
        }
    }
}

std::unique_ptr<Preconditioner> make_preconditioner(std::string_view name, const Sss& matrix,
                                                    ThreadPool& pool) {
    if (name == "none") return std::make_unique<IdentityPreconditioner>();
    if (name == "jacobi") return std::make_unique<JacobiPreconditioner>(matrix, pool);
    if (name == "ssor") return std::make_unique<SsorPreconditioner>(matrix);
    throw InvalidArgument("unknown preconditioner: " + std::string(name));
}

}  // namespace symspmv::cg
