// Preconditioned Conjugate Gradient — the extension arm of the CG study.
//
// Identical to cg::solve with M = I (the control), but every iteration also
// applies z = M^{-1} r and orients the search directions by r·z instead of
// r·r.  The per-phase breakdown gains a preconditioner phase so the Fig. 14
// style accounting extends naturally.
#pragma once

#include <span>

#include "core/thread_pool.hpp"
#include "solver/cg.hpp"
#include "solver/precond.hpp"

namespace symspmv::cg {

struct PcgResult {
    Result base;                       // x, iterations, residual, breakdown
    double precond_seconds = 0.0;      // time spent inside M^{-1}

    [[nodiscard]] double total_seconds() const { return base.breakdown.total() + precond_seconds; }
};

/// Solves A x = b with A given by @p kernel and the SPD preconditioner
/// @p precond.  @p x0 is the initial guess; pass empty to start from zero.
PcgResult pcg_solve(SpmvKernel& kernel, Preconditioner& precond, ThreadPool& pool,
                    std::span<const value_t> b, std::span<const value_t> x0, const Options& opts);

/// Convenience overload starting from x0 = 0.
PcgResult pcg_solve(SpmvKernel& kernel, Preconditioner& precond, ThreadPool& pool,
                    std::span<const value_t> b, const Options& opts);

}  // namespace symspmv::cg
