// Preconditioners for the Conjugate Gradient method.
//
// The paper evaluates a *non-preconditioned* CG and notes that "improving
// the performance of a preconditioner is orthogonal to the SpM×V
// optimization examined" (§II.C).  This module supplies that orthogonal
// piece as an extension: a Jacobi (diagonal) and an SSOR preconditioner
// built directly on the SSS storage, so the preconditioned solver keeps the
// half-size symmetric representation end to end.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "core/allocator.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "matrix/sss.hpp"

namespace symspmv::cg {

/// z = M^{-1} r for a symmetric positive definite approximation M of A.
class Preconditioner {
   public:
    virtual ~Preconditioner() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Applies the preconditioner.  r and z must not alias.
    virtual void apply(std::span<const value_t> r, std::span<value_t> z) = 0;
};

/// M = I: reduces PCG to the paper's plain CG (used as the control arm).
class IdentityPreconditioner final : public Preconditioner {
   public:
    [[nodiscard]] std::string_view name() const override { return "none"; }
    void apply(std::span<const value_t> r, std::span<value_t> z) override;
};

/// M = diag(A).  Embarrassingly parallel; one division per element.
class JacobiPreconditioner final : public Preconditioner {
   public:
    /// @p pool outlives the preconditioner.  Requires a positive diagonal
    /// (guaranteed for SPD matrices).
    JacobiPreconditioner(const Sss& matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "Jacobi"; }
    void apply(std::span<const value_t> r, std::span<value_t> z) override;

   private:
    aligned_vector<value_t> inv_diag_;
    ThreadPool& pool_;
};

/// SSOR: M = (D/ω + L) · (ω(2-ω))^{-1} D^{-1} · (D/ω + L)^T, applied as a
/// forward triangular solve, a diagonal scale and a backward solve straight
/// on the SSS arrays.  ω = 1 gives symmetric Gauss-Seidel.  The triangular
/// solves are inherently sequential; this preconditioner trades parallelism
/// for iteration count, which the ablation bench quantifies.
class SsorPreconditioner final : public Preconditioner {
   public:
    /// @p matrix must outlive the preconditioner (the SSS arrays are
    /// referenced, not copied).  Requires 0 < omega < 2.
    SsorPreconditioner(const Sss& matrix, double omega = 1.0);

    [[nodiscard]] std::string_view name() const override { return "SSOR"; }
    void apply(std::span<const value_t> r, std::span<value_t> z) override;

    [[nodiscard]] double omega() const { return omega_; }

   private:
    const Sss& matrix_;
    double omega_;
    aligned_vector<value_t> work_;  // intermediate vector of the two solves
};

/// Factory by name ("none", "jacobi", "ssor") for the CLI-facing examples.
std::unique_ptr<Preconditioner> make_preconditioner(std::string_view name, const Sss& matrix,
                                                    ThreadPool& pool);

}  // namespace symspmv::cg
