// Compressed Sparse Blocks (CSB) — the comparator format of Buluç et al.
// [SPAA'09], discussed in the paper's related work (§VI).
//
// The matrix is divided into β×β square blocks.  Blocks are stored
// block-row-major: a block-row pointer array (CSR at block granularity), a
// block-column index per block, and per-block element lists whose row/column
// coordinates are *local* to the block and therefore fit in 16-bit integers.
// This halves the per-element index cost relative to CSR (4 bytes of local
// coordinates vs 4 bytes of colind + amortized rowptr) once β ≤ 2^16, and
// keeps the nnz of a block contiguous in memory.
//
// The symmetric variant CsbSym (Buluç et al. [IPDPS'11], ref. [27] of the
// paper) stores only the lower-triangle blocks; its kernel mirrors each
// block on the fly, directing near-diagonal transposed writes to small local
// band buffers and far ones to atomic updates (see csb_kernels.hpp).
#pragma once

#include <cstdint>
#include <span>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv::csb {

/// Local (in-block) coordinate; β never exceeds 2^16.
using blockindex_t = std::uint16_t;

/// Construction parameters for both CSB variants.
struct CsbConfig {
    /// Block edge β.  0 selects automatically: the power of two nearest to
    /// sqrt(n), clamped to [kMinBlock, kMaxBlock] (Buluç's recommendation,
    /// which makes the number of block rows ~sqrt(n)).
    index_t block_size = 0;

    static constexpr index_t kMinBlock = 4;
    static constexpr index_t kMaxBlock = 1 << 16;
};

/// Resolves cfg.block_size for an n×n matrix (returns a power of two).
[[nodiscard]] index_t resolve_block_size(const CsbConfig& cfg, index_t n);

/// One stored block: its block-column index and the range of its elements
/// in the element arrays.
struct BlockRef {
    index_t block_col = 0;
    std::int64_t first = 0;  // index of the block's first element
};

/// Unsymmetric CSB matrix.
class CsbMatrix {
   public:
    CsbMatrix() = default;

    /// Builds from a canonical COO matrix (square or rectangular).
    explicit CsbMatrix(const Coo& coo, const CsbConfig& cfg = {});

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

    /// Block edge β (a power of two).
    [[nodiscard]] index_t block_size() const { return beta_; }
    [[nodiscard]] index_t block_rows() const { return n_block_rows_; }
    [[nodiscard]] index_t block_cols() const { return n_block_cols_; }
    [[nodiscard]] std::int64_t blocks() const { return static_cast<std::int64_t>(blocks_.size()); }

    /// Block-row pointers: block row I owns blocks
    /// [blockrow_ptr()[I], blockrow_ptr()[I+1]).
    [[nodiscard]] std::span<const index_t> blockrow_ptr() const { return blockrow_ptr_; }
    [[nodiscard]] std::span<const BlockRef> block_refs() const { return blocks_; }

    /// Element k of block b lives at rloc()[first+k], cloc()[first+k]
    /// relative to the block origin, with value values()[first+k].
    [[nodiscard]] std::span<const blockindex_t> rloc() const { return rloc_; }
    [[nodiscard]] std::span<const blockindex_t> cloc() const { return cloc_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    /// Number of elements of block b (blocks are stored contiguously).
    [[nodiscard]] std::int64_t block_nnz(std::int64_t b) const {
        const std::int64_t next = (b + 1 < blocks() ? blocks_[static_cast<std::size_t>(b + 1)].first
                                                    : nnz());
        return next - blocks_[static_cast<std::size_t>(b)].first;
    }

    /// Total non-zeros in block row I (used to balance the MT kernel).
    [[nodiscard]] std::int64_t blockrow_nnz(index_t block_row) const;

    /// Storage footprint in bytes: 4 bytes of local coordinates + 8 bytes of
    /// value per element, 12 bytes per block, 4 bytes per block row + 1.
    [[nodiscard]] std::size_t size_bytes() const;

    /// y = A * x, serial (the test oracle for the MT kernel).
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    index_t beta_ = 0;
    int beta_bits_ = 0;
    index_t n_block_rows_ = 0;
    index_t n_block_cols_ = 0;
    aligned_vector<index_t> blockrow_ptr_;
    aligned_vector<BlockRef> blocks_;
    aligned_vector<blockindex_t> rloc_;
    aligned_vector<blockindex_t> cloc_;
    aligned_vector<value_t> values_;
};

/// Symmetric CSB: only blocks (I, J) with J <= I are stored; diagonal blocks
/// keep just their lower triangle (diagonal included).  nnz() reports the
/// non-zeros of the represented full matrix, like Sss.
class CsbSymMatrix {
   public:
    CsbSymMatrix() = default;

    /// Builds from a canonical COO holding the FULL symmetric matrix.
    explicit CsbSymMatrix(const Coo& full, const CsbConfig& cfg = {});

    [[nodiscard]] index_t rows() const { return lower_.rows(); }
    [[nodiscard]] index_t cols() const { return lower_.rows(); }

    /// Non-zeros of the full symmetric matrix.
    [[nodiscard]] std::int64_t nnz() const { return full_nnz_; }

    /// Non-zeros actually stored (lower triangle + diagonal).
    [[nodiscard]] std::int64_t stored_nnz() const { return lower_.nnz(); }

    /// The underlying block structure over the lower triangle.
    [[nodiscard]] const CsbMatrix& lower() const { return lower_; }

    [[nodiscard]] index_t block_size() const { return lower_.block_size(); }
    [[nodiscard]] std::size_t size_bytes() const { return lower_.size_bytes(); }

    /// Serial symmetric SpM×V: y = A * x with on-the-fly mirroring.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

   private:
    CsbMatrix lower_;
    std::int64_t full_nnz_ = 0;
};

}  // namespace symspmv::csb
