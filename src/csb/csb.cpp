#include "csb/csb.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/error.hpp"

namespace symspmv::csb {

index_t resolve_block_size(const CsbConfig& cfg, index_t n) {
    if (cfg.block_size != 0) {
        SYMSPMV_CHECK_MSG(cfg.block_size >= CsbConfig::kMinBlock &&
                              cfg.block_size <= CsbConfig::kMaxBlock &&
                              std::has_single_bit(static_cast<std::uint32_t>(cfg.block_size)),
                          "CSB block size must be a power of two in [4, 65536]");
        return cfg.block_size;
    }
    const auto target = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(std::max<index_t>(n, 1))));
    const std::uint32_t beta = std::bit_ceil(std::max<std::uint32_t>(target, 1));
    return std::clamp<index_t>(static_cast<index_t>(beta), CsbConfig::kMinBlock,
                               CsbConfig::kMaxBlock);
}

namespace {

int log2_of(index_t pow2) { return std::countr_zero(static_cast<std::uint32_t>(pow2)); }

}  // namespace

CsbMatrix::CsbMatrix(const Coo& coo, const CsbConfig& cfg) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "CsbMatrix requires a canonical COO matrix");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    beta_ = resolve_block_size(cfg, std::max(n_rows_, n_cols_));
    beta_bits_ = log2_of(beta_);
    n_block_rows_ = (n_rows_ + beta_ - 1) >> beta_bits_;
    n_block_cols_ = (n_cols_ + beta_ - 1) >> beta_bits_;

    // COO is row-major sorted; within one block row the entries of distinct
    // blocks interleave by column, so bucket them by block column with a
    // counting pass.  Everything stays O(nnz + blocks).
    const auto entries = coo.entries();
    blockrow_ptr_.assign(static_cast<std::size_t>(n_block_rows_) + 1, 0);

    // Pass 1: count distinct blocks per block row by scanning each block
    // row's entries and marking block columns seen this round.
    std::vector<std::int64_t> col_count(static_cast<std::size_t>(n_block_cols_), 0);
    std::size_t pos = 0;
    std::vector<std::size_t> rowband_begin(static_cast<std::size_t>(n_block_rows_) + 1, 0);
    for (index_t br = 0; br < n_block_rows_; ++br) {
        rowband_begin[static_cast<std::size_t>(br)] = pos;
        const index_t row_end = std::min<index_t>((br + 1) << beta_bits_, n_rows_);
        while (pos < entries.size() && entries[pos].row < row_end) ++pos;
    }
    rowband_begin[static_cast<std::size_t>(n_block_rows_)] = pos;
    SYMSPMV_CHECK(pos == entries.size());

    rloc_.resize(entries.size());
    cloc_.resize(entries.size());
    values_.resize(entries.size());

    const index_t mask = beta_ - 1;
    std::int64_t element_base = 0;
    for (index_t br = 0; br < n_block_rows_; ++br) {
        const std::size_t lo = rowband_begin[static_cast<std::size_t>(br)];
        const std::size_t hi = rowband_begin[static_cast<std::size_t>(br) + 1];
        // Count elements per block column inside this block row.
        for (std::size_t k = lo; k < hi; ++k) {
            ++col_count[static_cast<std::size_t>(entries[k].col >> beta_bits_)];
        }
        // Emit blocks in ascending block-column order.
        blockrow_ptr_[static_cast<std::size_t>(br)] = static_cast<index_t>(blocks_.size());
        std::vector<std::int64_t> offset(static_cast<std::size_t>(n_block_cols_), -1);
        for (index_t bc = 0; bc < n_block_cols_; ++bc) {
            const std::int64_t cnt = col_count[static_cast<std::size_t>(bc)];
            if (cnt == 0) continue;
            offset[static_cast<std::size_t>(bc)] = element_base;
            blocks_.push_back(BlockRef{bc, element_base});
            element_base += cnt;
            col_count[static_cast<std::size_t>(bc)] = 0;  // reset for the next block row
        }
        // Scatter the elements; the row-major scan keeps each block's
        // elements row-major too.
        for (std::size_t k = lo; k < hi; ++k) {
            const Triplet& t = entries[k];
            const index_t bc = t.col >> beta_bits_;
            const std::int64_t dst = offset[static_cast<std::size_t>(bc)]++;
            rloc_[static_cast<std::size_t>(dst)] = static_cast<blockindex_t>(t.row & mask);
            cloc_[static_cast<std::size_t>(dst)] = static_cast<blockindex_t>(t.col & mask);
            values_[static_cast<std::size_t>(dst)] = t.val;
        }
    }
    blockrow_ptr_[static_cast<std::size_t>(n_block_rows_)] = static_cast<index_t>(blocks_.size());
    SYMSPMV_CHECK(element_base == static_cast<std::int64_t>(entries.size()));
}

std::int64_t CsbMatrix::blockrow_nnz(index_t block_row) const {
    const index_t b0 = blockrow_ptr_[static_cast<std::size_t>(block_row)];
    const index_t b1 = blockrow_ptr_[static_cast<std::size_t>(block_row) + 1];
    if (b0 == b1) return 0;
    const std::int64_t first = blocks_[static_cast<std::size_t>(b0)].first;
    const std::int64_t last =
        (b1 < static_cast<index_t>(blocks_.size()) ? blocks_[static_cast<std::size_t>(b1)].first
                                                   : nnz());
    return last - first;
}

std::size_t CsbMatrix::size_bytes() const {
    return values_.size() * kValueBytes + (rloc_.size() + cloc_.size()) * sizeof(blockindex_t) +
           blocks_.size() * sizeof(BlockRef) + blockrow_ptr_.size() * kIndexBytes;
}

void CsbMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    std::ranges::fill(y, value_t{0});
    for (index_t br = 0; br < n_block_rows_; ++br) {
        const index_t row_base = br << beta_bits_;
        for (index_t b = blockrow_ptr_[static_cast<std::size_t>(br)];
             b < blockrow_ptr_[static_cast<std::size_t>(br) + 1]; ++b) {
            const BlockRef& blk = blocks_[static_cast<std::size_t>(b)];
            const index_t col_base = blk.block_col << beta_bits_;
            const std::int64_t first = blk.first;
            const std::int64_t last = first + block_nnz(b);
            for (std::int64_t k = first; k < last; ++k) {
                y[static_cast<std::size_t>(row_base + rloc_[static_cast<std::size_t>(k)])] +=
                    values_[static_cast<std::size_t>(k)] *
                    x[static_cast<std::size_t>(col_base + cloc_[static_cast<std::size_t>(k)])];
            }
        }
    }
}

CsbSymMatrix::CsbSymMatrix(const Coo& full, const CsbConfig& cfg) {
    SYMSPMV_CHECK_MSG(full.rows() == full.cols(), "CsbSymMatrix requires a square matrix");
    SYMSPMV_DCHECK(full.is_symmetric());
    full_nnz_ = full.nnz();
    lower_ = CsbMatrix(full.lower(), cfg);
}

void CsbSymMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    const CsbMatrix& m = lower_;
    SYMSPMV_CHECK(x.size() == y.size() && static_cast<index_t>(y.size()) == m.rows());
    std::ranges::fill(y, value_t{0});
    const int bits = std::countr_zero(static_cast<std::uint32_t>(m.block_size()));
    const auto rloc = m.rloc();
    const auto cloc = m.cloc();
    const auto vals = m.values();
    for (index_t br = 0; br < m.block_rows(); ++br) {
        const index_t row_base = br << bits;
        for (index_t b = m.blockrow_ptr()[static_cast<std::size_t>(br)];
             b < m.blockrow_ptr()[static_cast<std::size_t>(br) + 1]; ++b) {
            const BlockRef& blk = m.block_refs()[static_cast<std::size_t>(b)];
            const index_t col_base = blk.block_col << bits;
            const std::int64_t first = blk.first;
            const std::int64_t last = first + m.block_nnz(b);
            for (std::int64_t k = first; k < last; ++k) {
                const index_t r = row_base + rloc[static_cast<std::size_t>(k)];
                const index_t c = col_base + cloc[static_cast<std::size_t>(k)];
                const value_t v = vals[static_cast<std::size_t>(k)];
                y[static_cast<std::size_t>(r)] += v * x[static_cast<std::size_t>(c)];
                if (r != c) y[static_cast<std::size_t>(c)] += v * x[static_cast<std::size_t>(r)];
            }
        }
    }
}

}  // namespace symspmv::csb
