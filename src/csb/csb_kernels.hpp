// SpM×V kernels over the CSB formats (related work [8], [27] of the paper).
//
// CsbMtKernel parallelizes across block rows (each block row's output rows
// are private to their owner, so no reduction phase exists).  CsbSymKernel
// implements the reduced-bandwidth symmetric scheme of Buluç et al.
// [IPDPS'11]: transposed writes that stay within the three innermost block
// diagonals go to a small per-thread band buffer (so the reduction phase is
// a constant number of short vector additions, independent of the thread
// count), and the rare far-from-diagonal writes use atomic adds.  The paper
// (§VI) predicts this scheme is "bound by the atomic operations" on
// high-bandwidth matrices — atomic_updates_per_spmv() exposes the counter
// the ablation bench uses to check exactly that.
#pragma once

#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "csb/csb.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::csb {

/// Unsymmetric multithreaded CSB kernel.
class CsbMtKernel final : public SpmvKernel {
   public:
    /// @p pool outlives the kernel; its size fixes the thread count.
    CsbMtKernel(CsbMatrix matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "CSB"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const CsbMatrix& matrix() const { return matrix_; }

    /// Block-row ranges (not element rows) assigned to each thread.
    [[nodiscard]] std::span<const RowRange> block_partitions() const { return parts_; }

   private:
    CsbMatrix matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
};

/// Symmetric multithreaded CSB kernel (band buffers + atomics).
class CsbSymKernel final : public SpmvKernel {
   public:
    /// Number of innermost block diagonals whose transposed writes are
    /// buffered locally instead of updated atomically ([27] uses three:
    /// offsets 0, 1 and 2 from the main block diagonal).
    static constexpr index_t kBandDiagonals = 3;

    CsbSymKernel(CsbSymMatrix matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "CSB-Sym"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override;
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const CsbSymMatrix& matrix() const { return matrix_; }

    /// Stored elements whose transposed write needs an atomic add (falls
    /// outside the banded block diagonals of the owning thread).  Constant
    /// across calls; high values predict the related-work failure mode.
    [[nodiscard]] std::int64_t atomic_updates_per_spmv() const { return atomic_updates_; }

   private:
    void multiply(int tid, std::span<const value_t> x, std::span<value_t> y);
    void reduce(int tid, std::span<value_t> y);

    CsbSymMatrix matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;        // block-row ranges per thread
    std::vector<RowRange> row_parts_;    // same ranges in element rows
    std::vector<aligned_vector<value_t>> bands_;  // per-thread band buffers
    std::vector<index_t> band_base_;     // first element row each band covers
    std::int64_t atomic_updates_ = 0;
    double last_mult_seconds_ = 0.0;  // written by worker 0 per spmv
};

}  // namespace symspmv::csb
