#include "csb/csb_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::csb {

namespace {

/// Block-row partitions with approximately equal element counts, via the
/// cumulative element count per block row (the block-granularity analogue of
/// split_by_nnz).
std::vector<RowRange> split_block_rows(const CsbMatrix& m, int p) {
    std::vector<index_t> prefix(static_cast<std::size_t>(m.block_rows()) + 1, 0);
    for (index_t br = 0; br < m.block_rows(); ++br) {
        const std::int64_t cum =
            prefix[static_cast<std::size_t>(br)] + m.blockrow_nnz(br);
        SYMSPMV_CHECK_MSG(cum <= std::numeric_limits<index_t>::max(),
                          "CSB matrix exceeds 2^31 stored elements");
        prefix[static_cast<std::size_t>(br) + 1] = static_cast<index_t>(cum);
    }
    return split_by_nnz(prefix, p);
}

}  // namespace

CsbMtKernel::CsbMtKernel(CsbMatrix matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)), pool_(pool), parts_(split_block_rows(matrix_, pool.size())) {}

void CsbMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    const int bits = std::countr_zero(static_cast<std::uint32_t>(matrix_.block_size()));
    const auto blockrow_ptr = matrix_.blockrow_ptr();
    const auto blocks = matrix_.block_refs();
    const auto rloc = matrix_.rloc();
    const auto cloc = matrix_.cloc();
    const auto vals = matrix_.values();
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        const value_t* __restrict xv = x.data();
        value_t* __restrict yv = y.data();
        // Rows of this thread's block rows are private: zero, then scatter.
        // Empty tail partitions (more threads than block rows) clamp to an
        // empty row range.
        const index_t row_lo = std::min<index_t>(part.begin << bits, matrix_.rows());
        const index_t row_hi = std::min<index_t>(part.end << bits, matrix_.rows());
        std::fill(yv + row_lo, yv + row_hi, value_t{0});
        for (index_t br = part.begin; br < part.end; ++br) {
            const index_t row_base = br << bits;
            for (index_t b = blockrow_ptr[static_cast<std::size_t>(br)];
                 b < blockrow_ptr[static_cast<std::size_t>(br) + 1]; ++b) {
                const BlockRef& blk = blocks[static_cast<std::size_t>(b)];
                const index_t col_base = blk.block_col << bits;
                const std::int64_t first = blk.first;
                const std::int64_t last = first + matrix_.block_nnz(b);
                for (std::int64_t k = first; k < last; ++k) {
                    yv[row_base + rloc[static_cast<std::size_t>(k)]] +=
                        vals[static_cast<std::size_t>(k)] *
                        xv[col_base + cloc[static_cast<std::size_t>(k)]];
                }
            }
        }
    });
    phases_ = {total.seconds(), 0.0};
}

CsbSymKernel::CsbSymKernel(CsbSymMatrix matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)), pool_(pool) {
    const CsbMatrix& m = matrix_.lower();
    const int p = pool_.size();
    parts_ = split_block_rows(m, p);
    const index_t beta = m.block_size();
    const int bits = std::countr_zero(static_cast<std::uint32_t>(beta));
    row_parts_.resize(parts_.size());
    bands_.resize(parts_.size());
    band_base_.resize(parts_.size());
    for (std::size_t t = 0; t < parts_.size(); ++t) {
        const index_t row_lo = parts_[t].begin << bits;
        const index_t row_hi = std::min<index_t>(parts_[t].end << bits, m.rows());
        row_parts_[t] = {std::min(row_lo, m.rows()), row_hi};
        // The band buffer covers the (kBandDiagonals - 1) block rows right
        // below this thread's first block row: the only rows a banded
        // transposed write can touch outside the thread's own range.
        const index_t band_begin =
            std::max<index_t>(parts_[t].begin - (kBandDiagonals - 1), 0) << bits;
        band_base_[t] = std::min(band_begin, m.rows());
        bands_[t].assign(static_cast<std::size_t>(row_parts_[t].begin - band_base_[t]),
                         value_t{0});
    }
    // Count the elements whose transposed write must be atomic (blocks more
    // than kBandDiagonals-1 block diagonals away from their owner's range).
    for (std::size_t t = 0; t < parts_.size(); ++t) {
        for (index_t br = parts_[t].begin; br < parts_[t].end; ++br) {
            for (index_t b = m.blockrow_ptr()[static_cast<std::size_t>(br)];
                 b < m.blockrow_ptr()[static_cast<std::size_t>(br) + 1]; ++b) {
                const index_t bc = m.block_refs()[static_cast<std::size_t>(b)].block_col;
                if (bc < parts_[t].begin && br - bc >= kBandDiagonals) {
                    atomic_updates_ += m.block_nnz(b);
                }
            }
        }
    }
}

std::size_t CsbSymKernel::footprint_bytes() const {
    std::size_t bytes = matrix_.size_bytes();
    for (const auto& band : bands_) bytes += band.size() * kValueBytes;
    return bytes;
}

void CsbSymKernel::multiply(int tid, std::span<const value_t> x, std::span<value_t> y) {
    const CsbMatrix& m = matrix_.lower();
    const RowRange part = parts_[static_cast<std::size_t>(tid)];
    const int bits = std::countr_zero(static_cast<std::uint32_t>(m.block_size()));
    const auto blockrow_ptr = m.blockrow_ptr();
    const auto blocks = m.block_refs();
    const auto rloc = m.rloc();
    const auto cloc = m.cloc();
    const auto vals = m.values();
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    value_t* __restrict band = bands_[static_cast<std::size_t>(tid)].data();
    const index_t band_base = band_base_[static_cast<std::size_t>(tid)];

    for (index_t br = part.begin; br < part.end; ++br) {
        const index_t row_base = br << bits;
        for (index_t b = blockrow_ptr[static_cast<std::size_t>(br)];
             b < blockrow_ptr[static_cast<std::size_t>(br) + 1]; ++b) {
            const BlockRef& blk = blocks[static_cast<std::size_t>(b)];
            const index_t bc = blk.block_col;
            const index_t col_base = bc << bits;
            const std::int64_t first = blk.first;
            const std::int64_t last = first + m.block_nnz(b);
            if (bc >= part.begin) {
                // Both the direct and the transposed write stay inside this
                // thread's rows (the diagonal block included).
                for (std::int64_t k = first; k < last; ++k) {
                    const index_t r = row_base + rloc[static_cast<std::size_t>(k)];
                    const index_t c = col_base + cloc[static_cast<std::size_t>(k)];
                    const value_t v = vals[static_cast<std::size_t>(k)];
                    yv[r] += v * xv[c];
                    if (r != c) yv[c] += v * xv[r];
                }
            } else if (br - bc < kBandDiagonals) {
                // Banded block: the transposed write lands in the band
                // buffer, to be folded in during the (constant-size)
                // reduction phase.  own_begin <= c is impossible here.
                for (std::int64_t k = first; k < last; ++k) {
                    const index_t r = row_base + rloc[static_cast<std::size_t>(k)];
                    const index_t c = col_base + cloc[static_cast<std::size_t>(k)];
                    const value_t v = vals[static_cast<std::size_t>(k)];
                    yv[r] += v * xv[c];
                    band[c - band_base] += v * xv[r];
                }
            } else {
                // Far block: atomic transposed update ([27]'s fallback).
                for (std::int64_t k = first; k < last; ++k) {
                    const index_t r = row_base + rloc[static_cast<std::size_t>(k)];
                    const index_t c = col_base + cloc[static_cast<std::size_t>(k)];
                    const value_t v = vals[static_cast<std::size_t>(k)];
                    yv[r] += v * xv[c];
                    std::atomic_ref<value_t>(yv[c]).fetch_add(v * xv[r],
                                                              std::memory_order_relaxed);
                }
            }
        }
    }
}

void CsbSymKernel::reduce(int tid, std::span<value_t> y) {
    // Fold every band buffer segment that overlaps this thread's rows.  Each
    // band spans at most (kBandDiagonals-1)*beta rows, so this phase costs
    // O(beta) per thread — independent of N and p.
    const RowRange rows = row_parts_[static_cast<std::size_t>(tid)];
    value_t* __restrict yv = y.data();
    for (std::size_t s = 0; s < bands_.size(); ++s) {
        if (bands_[s].empty()) continue;
        const index_t lo = std::max(rows.begin, band_base_[s]);
        const index_t hi =
            std::min(rows.end, band_base_[s] + static_cast<index_t>(bands_[s].size()));
        value_t* __restrict band = bands_[s].data();
        for (index_t r = lo; r < hi; ++r) {
            yv[r] += band[r - band_base_[s]];
            band[r - band_base_[s]] = value_t{0};
        }
    }
}

void CsbSymKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    pool_.run([&](int tid) {
        // Phase 0: zero own output rows (atomic adds from other threads may
        // target them, so everyone must finish zeroing before multiplying).
        const RowRange rows = row_parts_[static_cast<std::size_t>(tid)];
        std::fill(y.data() + rows.begin, y.data() + rows.end, value_t{0});
        pool_.barrier();
        Timer t;
        multiply(tid, x, y);
        pool_.barrier();
        if (tid == 0) last_mult_seconds_ = t.seconds();
        reduce(tid, y);
    });
    const double total_seconds = total.seconds();
    phases_ = {last_mult_seconds_, std::max(0.0, total_seconds - last_mult_seconds_)};
}

}  // namespace symspmv::csb
