// Differential oracle: every registered kernel vs. a serial reference.
//
// The reference y = A*x is accumulated in long double straight off the COO
// triplets, and each component carries its own error bound derived from a
// standard forward-error model of dot-product accumulation:
//
//   |y_i - fl(y_i)| <= slack * eps * (row_nnz_i + 2) * sum_j |a_ij| |x_j|
//
// (eps = DBL_EPSILON; the +2 covers the diagonal split and one reduction
// step; `slack` absorbs reassociation across threads and the tree-shaped
// reductions).  The bound is floored at DBL_MIN so rows whose abs-sum is
// itself denormal tolerate flush-to-zero differences between kernels.  The
// measured worst componentwise ULP distance is reported per (kernel, case)
// so regressions show up as a number, not just a pass/fail flip.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/registry.hpp"
#include "matrix/coo.hpp"
#include "spmv/kernel.hpp"
#include "verify/adversarial.hpp"

namespace symspmv::verify {

struct OracleOptions {
    std::vector<KernelKind> kinds;          // empty => all_kernel_kinds()
    std::vector<int> thread_counts = {1, 3, 8};
    double ulp_slack = 16.0;                // `slack` in the bound above
    std::uint64_t x_seed = 2013;
    /// JIT kinds recompile per kernel build; run them at one thread count
    /// (the last) instead of all, to keep the sweep inside test time.
    bool jit_last_thread_count_only = true;
};

/// One (kernel, case, thread count) comparison.
struct OracleResult {
    std::string kernel;
    std::string case_name;
    int threads = 0;
    double max_ulp = 0.0;      // measured worst componentwise ULP distance
    double worst_share = 0.0;  // max_i |y_i - ref_i| / bound_i; <= 1 passes
    index_t worst_row = -1;
    std::string error;         // non-empty: the kernel threw instead
    bool pass = false;
};

struct OracleReport {
    std::vector<OracleResult> results;

    [[nodiscard]] bool all_passed() const;
    [[nodiscard]] int failures() const;
    /// Per-kernel worst-ULP table (rows: kernels; worst case and count).
    [[nodiscard]] std::string table() const;
    /// Every failing result, one line each.
    [[nodiscard]] std::string failure_lines() const;
};

/// Reference product and componentwise tolerance for y = A*x.
struct Reference {
    std::vector<value_t> y;
    std::vector<double> bound;
};
[[nodiscard]] Reference reference_spmv(const Coo& full, std::span<const value_t> x,
                                       double slack);

/// Compares one already-built kernel against the reference on @p full.
[[nodiscard]] OracleResult check_kernel(SpmvKernel& kernel, const Coo& full,
                                        std::string_view case_name, double ulp_slack = 16.0,
                                        std::uint64_t x_seed = 2013);

/// The full sweep: every kind x case x thread count.
[[nodiscard]] OracleReport run_differential_oracle(const std::vector<AdversarialCase>& cases,
                                                   const OracleOptions& opts = {});
/// Convenience overload over adversarial_suite().
[[nodiscard]] OracleReport run_differential_oracle(const OracleOptions& opts = {});

}  // namespace symspmv::verify
