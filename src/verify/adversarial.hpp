// Deterministic adversarial matrix suite for the differential oracle.
//
// The generator suite in matrix/generators.hpp produces *typical* matrices
// (the paper's Table I stand-ins).  This suite produces the structures that
// break kernels in practice but almost never occur in benchmark inputs:
// empty rows, a dense row/column, singleton diagonals, extreme bandwidth,
// signed zeros and denormal values, and matrices small enough that a pool
// has more threads than there are rows to partition.
#pragma once

#include <string>
#include <vector>

#include "matrix/coo.hpp"

namespace symspmv::verify {

struct AdversarialCase {
    std::string name;
    std::string targets;  // the failure mode this case exists to provoke
    Coo matrix;           // canonical, square, exactly symmetric
};

/// The fixed suite.  Every case is deterministic (fixed seeds), exactly
/// symmetric and small enough that the full oracle sweep stays in test
/// time.  Order is stable so reports are diffable run to run.
[[nodiscard]] std::vector<AdversarialCase> adversarial_suite();

}  // namespace symspmv::verify
