#include "verify/faults.hpp"

#include <algorithm>
#include <cstring>
#include <random>
#include <set>
#include <sstream>

#include "autotune/fingerprint.hpp"
#include "autotune/plan.hpp"
#include "autotune/store.hpp"
#include "core/error.hpp"
#include "matrix/binio.hpp"
#include "matrix/generators.hpp"
#include "matrix/mmio.hpp"
#include "verify/validate.hpp"

namespace symspmv::verify {
namespace {

enum class Outcome { kReject, kIdentical, kDifferent, kCrash };

struct Attempt {
    Outcome outcome = Outcome::kReject;
    std::string detail;
};

/// Bitwise matrix equality: shape, coordinates and value *bit patterns*
/// (operator== on doubles would call -0.0 and 0.0 interchangeable, which is
/// exactly the kind of silent drift the harness exists to catch).
bool bitwise_equal(const Coo& a, const Coo& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz()) return false;
    for (index_t k = 0; k < a.nnz(); ++k) {
        const Triplet& ta = a.entries()[static_cast<std::size_t>(k)];
        const Triplet& tb = b.entries()[static_cast<std::size_t>(k)];
        if (ta.row != tb.row || ta.col != tb.col) return false;
        if (std::memcmp(&ta.val, &tb.val, sizeof(ta.val)) != 0) return false;
    }
    return true;
}

/// Applies the deterministic fault schedule to @p good and classifies each
/// corrupted copy with @p attempt.  Truncation lengths sit on an even grid;
/// mutation positions come from the seeded rng.  @p text replaces the
/// faulted byte with a random printable character instead of a bit flip.
template <typename TryParse>
FaultReport run_faults(const std::string& good, std::uint64_t seed, int truncations,
                       int mutations, bool text, TryParse&& attempt) {
    FaultReport rep;
    const auto record = [&](const std::string& fault, const std::string& data) {
        ++rep.trials;
        Attempt a;
        try {
            a = attempt(data);
        } catch (...) {
            a.outcome = Outcome::kCrash;
            a.detail = "classifier itself threw";
        }
        switch (a.outcome) {
            case Outcome::kReject:
                ++rep.clean_rejects;
                break;
            case Outcome::kIdentical:
                ++rep.accepted_identical;
                break;
            case Outcome::kDifferent:
                ++rep.accepted_different;
                rep.incidents.push_back("silent accept after " + fault + ": " + a.detail);
                break;
            case Outcome::kCrash:
                ++rep.crashes;
                rep.incidents.push_back("crash after " + fault + ": " + a.detail);
                break;
        }
    };

    const std::size_t size = good.size();
    std::set<std::size_t> cuts;
    for (int i = 1; i <= truncations; ++i) {
        cuts.insert(size * static_cast<std::size_t>(i) /
                    static_cast<std::size_t>(truncations + 1));
    }
    if (size > 0) cuts.insert(size - 1);  // lose just the final byte
    for (const std::size_t cut : cuts) {
        record("truncation to " + std::to_string(cut) + " bytes", good.substr(0, cut));
    }

    std::mt19937_64 rng(seed);
    const char kTextPool[] = " \t0123456789-+.eE%abcxyz";
    for (int i = 0; i < mutations && size > 0; ++i) {
        const std::size_t pos = rng() % size;
        std::string bad = good;
        if (text) {
            const char repl = kTextPool[rng() % (sizeof(kTextPool) - 1)];
            if (repl == bad[pos]) continue;  // not a fault; skip
            bad[pos] = repl;
        } else {
            bad[pos] = static_cast<char>(bad[pos] ^ static_cast<char>(1u << (rng() % 8)));
        }
        record("byte " + std::to_string(pos) + (text ? " substitution" : " bit flip"), bad);
    }
    return rep;
}

}  // namespace

std::string FaultReport::summary(const std::string& what) const {
    std::ostringstream os;
    os << what << ": " << trials << " faults -> " << clean_rejects << " clean rejects, "
       << accepted_identical << " harmless accepts, " << accepted_different
       << " SILENT WRONG ACCEPTS, " << crashes << " crashes\n";
    for (const std::string& line : incidents) os << "  " << line << '\n';
    return os.str();
}

FaultReport fuzz_smx_stream(const Coo& original, std::uint64_t seed, int truncations,
                            int bitflips) {
    std::ostringstream os;
    write_binary(os, original);
    const std::string good = os.str();
    return run_faults(good, seed, truncations, bitflips, /*text=*/false,
                      [&](const std::string& data) {
                          Attempt a;
                          std::istringstream in(data);
                          try {
                              const Coo loaded = read_binary(in);
                              a.outcome = bitwise_equal(loaded, original) ? Outcome::kIdentical
                                                                          : Outcome::kDifferent;
                              if (a.outcome == Outcome::kDifferent) {
                                  a.detail = "read_binary returned a different matrix";
                              }
                          } catch (const ParseError&) {
                              a.outcome = Outcome::kReject;
                          } catch (const std::exception& e) {
                              a.outcome = Outcome::kCrash;
                              a.detail = e.what();
                          }
                          return a;
                      });
}

FaultReport fuzz_plan_file(std::uint64_t seed, int truncations, int bitflips) {
    // A deterministic key (no machine-dependent fields) so the fault
    // schedule fuzzes identical bytes on every host.
    autotune::PlanKey key;
    key.fingerprint = autotune::fingerprint(gen::make_spd(gen::poisson2d(6, 6)));
    key.hardware.hardware_threads = 8;
    key.hardware.pin_threads = true;
    key.hardware.placement = engine::PlacementPolicy::kInterleave;
    key.hardware.compiler = "gcc-13.2";
    key.hardware.build = "opt";
    key.search_hash = 0xabcdef0123456789ULL;

    autotune::Plan plan;
    plan.kernel = KernelKind::kCsxSym;
    plan.threads = 8;
    plan.partition = engine::PartitionPolicy::kByNnz;
    plan.csx_patterns = true;
    plan.expected_seconds_per_op = 1.25e-4;

    std::ostringstream os;
    autotune::PlanStore::serialize(os, key, plan);
    const std::string good = os.str();
    return run_faults(good, seed, truncations, bitflips, /*text=*/false,
                      [&](const std::string& data) {
                          Attempt a;
                          std::istringstream in(data);
                          try {
                              const auto loaded = autotune::PlanStore::parse(in, key);
                              if (!loaded) {
                                  a.outcome = Outcome::kReject;  // clean cache miss
                              } else if (autotune::same_decision(*loaded, plan) &&
                                         loaded->expected_seconds_per_op ==
                                             plan.expected_seconds_per_op) {
                                  a.outcome = Outcome::kIdentical;
                              } else {
                                  a.outcome = Outcome::kDifferent;
                                  a.detail = "parse() served " + autotune::to_string(*loaded);
                              }
                          } catch (const std::exception& e) {
                              // parse() promises miss-not-throw on any input.
                              a.outcome = Outcome::kCrash;
                              a.detail = e.what();
                          }
                          return a;
                      });
}

FaultReport fuzz_matrix_market(const Coo& original, std::uint64_t seed, int truncations,
                               int mutations) {
    std::ostringstream os;
    write_matrix_market(os, original, original.is_symmetric());
    const std::string good = os.str();
    return run_faults(
        good, seed, truncations, mutations, /*text=*/true, [&](const std::string& data) {
            Attempt a;
            std::istringstream in(data);
            try {
                const Coo loaded = read_matrix_market(in);
                // Text has no integrity cover: a changed digit is a valid
                // different file.  What must still hold is structural
                // well-formedness of whatever was accepted.
                const auto issues = validate(loaded);
                if (!issues.empty()) {
                    a.outcome = Outcome::kCrash;
                    a.detail = "ill-formed accept: " + issues.front();
                } else {
                    a.outcome = bitwise_equal(loaded, original) ? Outcome::kIdentical
                                                                : Outcome::kDifferent;
                    a.detail = "text mutation changed the parsed matrix";
                }
            } catch (const ParseError&) {
                a.outcome = Outcome::kReject;
            } catch (const InvalidArgument&) {
                a.outcome = Outcome::kReject;
            } catch (const std::exception& e) {
                a.outcome = Outcome::kCrash;
                a.detail = e.what();
            }
            return a;
        });
}

namespace {

/// Shared classifier for both frame encodings: @p expected is what an
/// uncorrupted stream must decode to (for v1 that is the original with
/// trace_id zeroed, since the legacy wire carries no id).
FaultReport fuzz_frame_bytes(const std::string& good, const Frame& expected,
                             std::uint64_t seed, int truncations, int bitflips,
                             std::size_t max_payload) {
    return run_faults(good, seed, truncations, bitflips, /*text=*/false,
                      [&](const std::string& data) {
                          Attempt a;
                          std::istringstream in(data, std::ios::binary);
                          try {
                              const auto loaded = read_frame(in, max_payload);
                              if (!loaded) {
                                  // Clean EOF before the first byte — only the
                                  // zero-length truncation can land here.
                                  a.outcome = Outcome::kReject;
                              } else if (*loaded == expected) {
                                  a.outcome = Outcome::kIdentical;
                              } else {
                                  a.outcome = Outcome::kDifferent;
                                  a.detail = "read_frame returned a different frame (type " +
                                             std::to_string(loaded->type) + ", " +
                                             std::to_string(loaded->payload.size()) +
                                             " payload bytes)";
                              }
                          } catch (const ParseError&) {
                              a.outcome = Outcome::kReject;
                          } catch (const std::exception& e) {
                              a.outcome = Outcome::kCrash;
                              a.detail = e.what();
                          }
                          return a;
                      });
}

}  // namespace

FaultReport fuzz_frame_stream(const Frame& original, std::uint64_t seed, int truncations,
                              int bitflips, std::size_t max_payload) {
    return fuzz_frame_bytes(encode_frame(original), original, seed, truncations, bitflips,
                            max_payload);
}

FaultReport fuzz_frame_stream_legacy(const Frame& original, std::uint64_t seed,
                                     int truncations, int bitflips,
                                     std::size_t max_payload) {
    Frame expected = original;
    expected.trace_id = 0;
    return fuzz_frame_bytes(encode_frame_legacy(original), expected, seed, truncations,
                            bitflips, max_payload);
}

}  // namespace symspmv::verify
