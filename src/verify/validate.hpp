// Structural invariant validators for every matrix representation.
//
// Each validate() walks one representation and returns a human-readable
// list of every invariant violation it finds (empty = valid):
//
//   Coo      canonical order, in-bounds coordinates
//   Csr      rowptr shape/monotonicity, per-row strictly increasing
//            in-bounds columns, array-length consistency
//   Sss      the CSR invariants on the strictly lower triangle, columns
//            strictly below the diagonal, dense diagonal array length
//   CsxMatrix    every ctl stream decodes, units stay inside their
//                partition and the matrix bounds, no duplicate elements,
//                per-partition value counts and the total element count
//                match the declared nnz
//   CsxSymMatrix the CSX invariants on the strictly lower triangle, plus
//                the §IV.B boundary rule: no unit's columns may straddle
//                the owning partition's start row
//
// The constructors of these types validate what they can cheaply; these
// functions are the exhaustive version for tests, `solve_mm --verify` and
// post-corruption triage, so they favour completeness over speed and never
// throw on malformed input — malformation is their return value.
#pragma once

#include <string>
#include <vector>

#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/sss.hpp"

namespace symspmv::verify {

[[nodiscard]] std::vector<std::string> validate(const Coo& m);
[[nodiscard]] std::vector<std::string> validate(const Csr& m);
[[nodiscard]] std::vector<std::string> validate(const Sss& m);
[[nodiscard]] std::vector<std::string> validate(const csx::CsxMatrix& m);
[[nodiscard]] std::vector<std::string> validate(const csx::CsxSymMatrix& m);

}  // namespace symspmv::verify
