#include "verify/validate.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "csx/builder_inl.hpp"

namespace symspmv::verify {
namespace {

/// Issue sink with a cap: a badly corrupted structure would otherwise
/// produce one message per element.
class Issues {
   public:
    static constexpr std::size_t kMax = 64;

    template <typename... Parts>
    void add(Parts&&... parts) {
        if (list_.size() == kMax) {
            list_.push_back("... further issues suppressed");
        }
        if (list_.size() > kMax) return;
        std::ostringstream os;
        (os << ... << parts);
        list_.push_back(os.str());
    }

    [[nodiscard]] std::vector<std::string> take() && { return std::move(list_); }

   private:
    std::vector<std::string> list_;
};

/// Shared CSR-shape checks.  @p strictly_lower switches the per-row column
/// bound from [0, cols) to [0, row) — the SSS lower-triangle contract.
void check_csr_arrays(Issues& issues, const char* what, index_t rows, index_t cols,
                      std::span<const index_t> rowptr, std::span<const index_t> colind,
                      std::span<const value_t> values, bool strictly_lower) {
    if (rowptr.size() != static_cast<std::size_t>(rows) + 1) {
        issues.add(what, ": rowptr has ", rowptr.size(), " entries, want rows+1 = ", rows + 1);
        return;  // row walks below would index out of bounds
    }
    if (colind.size() != values.size()) {
        issues.add(what, ": colind/values length mismatch (", colind.size(), " vs ",
                   values.size(), ")");
    }
    if (!rowptr.empty() && rowptr.front() != 0) {
        issues.add(what, ": rowptr[0] = ", rowptr.front(), ", want 0");
    }
    if (rowptr.back() != static_cast<index_t>(colind.size())) {
        issues.add(what, ": rowptr[rows] = ", rowptr.back(), " does not match nnz = ",
                   colind.size());
    }
    for (index_t r = 0; r < rows; ++r) {
        const index_t begin = rowptr[static_cast<std::size_t>(r)];
        const index_t end = rowptr[static_cast<std::size_t>(r) + 1];
        if (begin > end) {
            issues.add(what, ": rowptr decreases at row ", r);
            continue;
        }
        if (end > static_cast<index_t>(colind.size())) {
            issues.add(what, ": rowptr[", r + 1, "] points past the colind array");
            continue;
        }
        const index_t limit = strictly_lower ? r : cols;
        index_t prev = -1;
        for (index_t k = begin; k < end; ++k) {
            const index_t c = colind[static_cast<std::size_t>(k)];
            if (c < 0 || c >= limit) {
                issues.add(what, ": row ", r, " column ", c, " outside [0, ", limit, ")");
            }
            if (c <= prev) {
                issues.add(what, ": row ", r, " columns not strictly increasing at ", c);
            }
            prev = c;
        }
    }
}

using Element = std::pair<index_t, index_t>;  // (row, col)

/// Decodes one encoded partition, invoking per_unit(header, elements) for
/// every unit.  Element enumeration mirrors the SpM×V interpreters in
/// csx/csx_matrix.cpp exactly — the validator checks what execution would
/// actually touch.  Decode failures (the walker's own invariants firing)
/// land in @p issues instead of escaping.
template <typename Fn>
void decode_partition(const csx::EncodedPartition& part, std::span<const csx::Pattern> table,
                      Issues& issues, Fn&& per_unit) {
    std::vector<Element> elems;
    try {
        csx::walk_ctl(
            std::span<const std::uint8_t>(part.ctl), part.row_begin, table,
            [&](const csx::UnitHeader& h, const std::uint8_t* body) {
                elems.clear();
                switch (h.id) {
                    case 0:
                    case 1:
                    case 2: {
                        index_t c = h.col;
                        elems.emplace_back(h.row, c);
                        for (int k = 0; k < h.size - 1; ++k) {
                            index_t delta = 0;
                            if (h.id == 0) delta = csx::detail::read_fixed<std::uint8_t>(body, k);
                            if (h.id == 1) delta = csx::detail::read_fixed<std::uint16_t>(body, k);
                            if (h.id == 2) delta = csx::detail::read_fixed<std::uint32_t>(body, k);
                            if (delta == 0) {
                                issues.add("ctl: zero delta (duplicate column) in unit at row ",
                                           h.row);
                            }
                            c += delta;
                            elems.emplace_back(h.row, c);
                        }
                        break;
                    }
                    default: {
                        const auto& p = table[static_cast<std::size_t>(h.id - csx::kFirstTableId)];
                        switch (p.type) {
                            case csx::PatternType::kHorizontal:
                                for (int k = 0; k < h.size; ++k) {
                                    elems.emplace_back(h.row, h.col + k * p.delta);
                                }
                                break;
                            case csx::PatternType::kVertical:
                                for (int k = 0; k < h.size; ++k) {
                                    elems.emplace_back(h.row + k * p.delta, h.col);
                                }
                                break;
                            case csx::PatternType::kDiagonal:
                                for (int k = 0; k < h.size; ++k) {
                                    elems.emplace_back(h.row + k * p.delta, h.col + k * p.delta);
                                }
                                break;
                            case csx::PatternType::kAntiDiagonal:
                                for (int k = 0; k < h.size; ++k) {
                                    elems.emplace_back(h.row + k * p.delta, h.col - k * p.delta);
                                }
                                break;
                            case csx::PatternType::kBlock: {
                                if (p.delta <= 0 || h.size % p.delta != 0) {
                                    issues.add("ctl: block unit size ", h.size,
                                               " not divisible by block rows ", p.delta);
                                    break;
                                }
                                const int bcols = h.size / static_cast<int>(p.delta);
                                for (int b = 0; b < bcols; ++b) {
                                    for (index_t a = 0; a < p.delta; ++a) {
                                        elems.emplace_back(h.row + a, h.col + b);
                                    }
                                }
                                break;
                            }
                            default:
                                issues.add("ctl: delta pattern type in the table");
                                break;
                        }
                        break;
                    }
                }
                per_unit(h, elems);
            });
    } catch (const std::exception& e) {
        issues.add("ctl stream does not decode: ", e.what());
    }
}

struct PartitionScan {
    std::vector<Element> elements;  // everything the partition touches
};

/// Checks one partition's units against the matrix bounds and the declared
/// row range; returns all decoded elements for the duplicate/count checks.
/// @p boundary < 0 disables the CSX-Sym straddle rule.
PartitionScan scan_partition(const csx::EncodedPartition& part, const RowRange& declared,
                             std::span<const csx::Pattern> table, index_t rows, index_t cols,
                             int pid, Issues& issues, index_t boundary) {
    PartitionScan scan;
    if (part.row_begin != declared.begin || part.row_end != declared.end) {
        issues.add("partition ", pid, ": encoded range [", part.row_begin, ", ", part.row_end,
                   ") disagrees with partition_rows [", declared.begin, ", ", declared.end, ")");
    }
    decode_partition(part, table, issues, [&](const csx::UnitHeader& h,
                                              const std::vector<Element>& elems) {
        index_t cmin = cols;
        index_t cmax = -1;
        for (const auto& [r, c] : elems) {
            if (r < part.row_begin || r >= part.row_end) {
                issues.add("partition ", pid, ": unit at (", h.row, ",", h.col, ") touches row ",
                           r, " outside [", part.row_begin, ", ", part.row_end, ")");
            }
            if (c < 0 || c >= cols) {
                issues.add("partition ", pid, ": unit at (", h.row, ",", h.col,
                           ") touches column ", c, " outside [0, ", cols, ")");
            }
            cmin = std::min(cmin, c);
            cmax = std::max(cmax, c);
        }
        if (boundary >= 0 && cmin < boundary && cmax >= boundary) {
            issues.add("partition ", pid, ": unit at (", h.row, ",", h.col,
                       ") straddles the §IV.B boundary column ", boundary, " (columns ", cmin,
                       "..", cmax, ")");
        }
        scan.elements.insert(scan.elements.end(), elems.begin(), elems.end());
    });
    if (scan.elements.size() != part.values.size()) {
        issues.add("partition ", pid, ": ctl encodes ", scan.elements.size(),
                   " elements but carries ", part.values.size(), " values");
    }
    std::sort(scan.elements.begin(), scan.elements.end());
    for (std::size_t k = 1; k < scan.elements.size(); ++k) {
        if (scan.elements[k] == scan.elements[k - 1]) {
            issues.add("partition ", pid, ": duplicate element (", scan.elements[k].first, ",",
                       scan.elements[k].second, ")");
        }
    }
    return scan;
}

}  // namespace

std::vector<std::string> validate(const Coo& m) {
    Issues issues;
    if (!m.is_canonical()) issues.add("coo: entries not in canonical row-major order");
    for (const Triplet& t : m.entries()) {
        if (t.row < 0 || t.row >= m.rows() || t.col < 0 || t.col >= m.cols()) {
            issues.add("coo: entry (", t.row, ",", t.col, ") outside ", m.rows(), "x", m.cols());
        }
    }
    return std::move(issues).take();
}

std::vector<std::string> validate(const Csr& m) {
    Issues issues;
    check_csr_arrays(issues, "csr", m.rows(), m.cols(), m.rowptr(), m.colind(), m.values(),
                     /*strictly_lower=*/false);
    return std::move(issues).take();
}

std::vector<std::string> validate(const Sss& m) {
    Issues issues;
    if (m.dvalues().size() != static_cast<std::size_t>(m.rows())) {
        issues.add("sss: dvalues has ", m.dvalues().size(), " entries, want ", m.rows());
    }
    check_csr_arrays(issues, "sss lower", m.rows(), m.cols(), m.rowptr(), m.colind(),
                     m.values(), /*strictly_lower=*/true);
    return std::move(issues).take();
}

std::vector<std::string> validate(const csx::CsxMatrix& m) {
    Issues issues;
    std::int64_t total = 0;
    index_t expected_begin = 0;
    for (int pid = 0; pid < m.partitions(); ++pid) {
        const RowRange& range = m.partition_rows(pid);
        if (range.begin != expected_begin) {
            issues.add("partition ", pid, ": starts at row ", range.begin, ", want ",
                       expected_begin);
        }
        expected_begin = range.end;
        const PartitionScan scan = scan_partition(m.partition(pid), range, m.table(), m.rows(),
                                                  m.cols(), pid, issues, /*boundary=*/-1);
        total += static_cast<std::int64_t>(scan.elements.size());
    }
    if (expected_begin != m.rows()) {
        issues.add("partitions end at row ", expected_begin, ", want ", m.rows());
    }
    if (total != m.nnz()) {
        issues.add("partitions encode ", total, " elements, matrix declares nnz = ", m.nnz());
    }
    return std::move(issues).take();
}

std::vector<std::string> validate(const csx::CsxSymMatrix& m) {
    Issues issues;
    if (m.dvalues().size() != static_cast<std::size_t>(m.rows())) {
        issues.add("csx-sym: dvalues has ", m.dvalues().size(), " entries, want ", m.rows());
    }
    std::int64_t lower_total = 0;
    index_t expected_begin = 0;
    for (int pid = 0; pid < m.partitions(); ++pid) {
        const RowRange& range = m.partition_rows(pid);
        if (range.begin != expected_begin) {
            issues.add("partition ", pid, ": starts at row ", range.begin, ", want ",
                       expected_begin);
        }
        expected_begin = range.end;
        const PartitionScan scan = scan_partition(m.partition(pid), range, m.table(), m.rows(),
                                                  m.rows(), pid, issues,
                                                  /*boundary=*/range.begin);
        for (const auto& [r, c] : scan.elements) {
            if (c >= r) {
                issues.add("partition ", pid, ": element (", r, ",", c,
                           ") not strictly below the diagonal");
            }
        }
        lower_total += static_cast<std::int64_t>(scan.elements.size());
    }
    if (expected_begin != m.rows()) {
        issues.add("partitions end at row ", expected_begin, ", want ", m.rows());
    }
    // full nnz = structural diagonal + 2x strict lower; the diagonal share
    // must land in [0, rows].
    const std::int64_t diag = m.nnz() - 2 * lower_total;
    if (diag < 0 || diag > static_cast<std::int64_t>(m.rows())) {
        issues.add("partitions encode ", lower_total, " lower elements, inconsistent with "
                   "declared full nnz = ", m.nnz());
    }
    return std::move(issues).take();
}

}  // namespace symspmv::verify
