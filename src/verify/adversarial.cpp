#include "verify/adversarial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "matrix/generators.hpp"

namespace symspmv::verify {
namespace {

/// Triplet list that stays exactly symmetric by construction: every
/// off-diagonal insert mirrors itself with the identical value.
class SymBuilder {
   public:
    explicit SymBuilder(index_t n) : n_(n) {}

    void add(index_t i, index_t j, value_t v) {
        entries_.push_back({i, j, v});
        if (i != j) entries_.push_back({j, i, v});
    }

    [[nodiscard]] Coo build() && { return Coo(n_, n_, std::move(entries_)); }

   private:
    index_t n_;
    std::vector<Triplet> entries_;
};

Coo empty_matrix(index_t n) { return Coo(n, n); }

Coo one_by_one() {
    SymBuilder b(1);
    b.add(0, 0, -3.25);
    return std::move(b).build();
}

/// Pure diagonal with wildly varying magnitudes — every row is a singleton.
Coo diagonal_only(index_t n) {
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) {
        const double mag = std::ldexp(1.0, static_cast<int>(i % 64) - 32);
        b.add(i, i, (i % 2 == 0) ? mag : -mag);
    }
    return std::move(b).build();
}

/// Tridiagonal band, but every row r with r % 5 == 2 is structurally empty
/// (no diagonal either).  Kernels that assume rowptr[r] < rowptr[r+1], or
/// that derive partitions from non-empty rows only, break here.
Coo empty_rows(index_t n) {
    SymBuilder b(n);
    const auto alive = [](index_t r) { return r % 5 != 2; };
    for (index_t i = 0; i < n; ++i) {
        if (!alive(i)) continue;
        b.add(i, i, 4.0 + static_cast<double>(i % 3));
        if (i + 1 < n && alive(i + 1)) b.add(i + 1, i, -1.0);
    }
    return std::move(b).build();
}

/// Arrowhead: row/column 0 is dense, the rest is diagonal.  The dense
/// column is the worst case for symmetric kernels' mirrored updates (every
/// thread writes y[0]) and for by-nnz partitioning (row 0 outweighs all).
Coo arrowhead(index_t n) {
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) b.add(i, i, static_cast<double>(n));
    for (index_t i = 1; i < n; ++i) b.add(i, 0, -1.0 / static_cast<double>(i));
    return std::move(b).build();
}

/// Diagonal plus full anti-diagonal: bandwidth n-1 on every row.  DIA/ELL
/// style formats degenerate, CSX anti-diagonal detection triggers.
Coo anti_band(index_t n) {
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) b.add(i, i, 2.0);
    for (index_t i = 0; i < n; ++i) {
        const index_t j = n - 1 - i;
        if (i < j) b.add(j, i, 0.5 + static_cast<double>(i));
    }
    return std::move(b).build();
}

/// Tridiagonal band whose values cycle through the floating-point edge
/// cases: signed zeros, denormals, and magnitudes 60 binary orders apart.
/// Structural zeros (entries whose value is ±0.0) must flow through every
/// format without being dropped or de-canonicalizing anything.
Coo signed_zero_denormal(index_t n) {
    constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
    constexpr double kTiny = std::numeric_limits<double>::min();
    const double cycle[8] = {+0.0, -0.0, kDenorm, -kDenorm, kTiny, 1.0, -0x1p-30, 0x1p30};
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) {
        b.add(i, i, cycle[i % 8]);
        if (i + 1 < n) b.add(i + 1, i, cycle[(i + 3) % 8]);
    }
    return std::move(b).build();
}

/// Tiny pentadiagonal matrix: with the oracle's 8-thread pool there are
/// more partitions than rows, so several partitions are empty.
Coo tiny_wide() {
    const index_t n = 5;
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) b.add(i, i, 6.0);
    for (index_t i = 2; i < n; ++i) b.add(i, i - 2, 1.0 + static_cast<double>(i));
    return std::move(b).build();
}

/// Disconnected components of very different diameters: a long path, a
/// star, a small clique, and isolated vertices.  Level-scheduled kernels
/// must restart their BFS per component and merge level structures of
/// depths 30, 2, 1 and 1; orderings must cover unreachable vertices.
Coo disconnected(index_t n) {
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) b.add(i, i, 8.0 + static_cast<double>(i % 5));
    const index_t path_end = n / 2;  // component 1: path 0-1-...-path_end-1
    for (index_t i = 1; i < path_end; ++i) b.add(i, i - 1, -1.0);
    const index_t star_end = path_end + (n - path_end) / 2;  // component 2: star
    for (index_t i = path_end + 1; i < star_end; ++i) {
        b.add(i, path_end, 0.25 + static_cast<double>(i - path_end));
    }
    const index_t clique_end = std::min<index_t>(star_end + 4, n);  // component 3: clique
    for (index_t i = star_end; i < clique_end; ++i) {
        for (index_t j = star_end; j < i; ++j) b.add(i, j, -0.5);
    }
    // Rows clique_end..n-1 stay isolated (diagonal-only components).
    return std::move(b).build();
}

/// Pure path graph: n BFS levels of width one.  The degenerate case for
/// level scheduling — no parallelism inside a level, so all speedup must
/// come from coloring blocks of *different* levels into one stage.
Coo path_chain(index_t n) {
    SymBuilder b(n);
    for (index_t i = 0; i < n; ++i) b.add(i, i, 3.0);
    for (index_t i = 1; i < n; ++i) b.add(i, i - 1, -1.0 - static_cast<double>(i % 3));
    return std::move(b).build();
}

}  // namespace

std::vector<AdversarialCase> adversarial_suite() {
    std::vector<AdversarialCase> suite;
    suite.push_back({"empty", "zero nnz: conversions and partitioners see no work at all",
                     empty_matrix(24)});
    suite.push_back({"one-by-one", "degenerate dimensions", one_by_one()});
    suite.push_back({"diagonal-only", "singleton diagonal rows, magnitudes 2^-32..2^31",
                     diagonal_only(37)});
    suite.push_back({"empty-rows", "structurally empty rows inside the band", empty_rows(40)});
    suite.push_back({"arrowhead", "one dense row/column: mirrored-write hot spot, "
                     "degenerate by-nnz partitions", arrowhead(64)});
    suite.push_back({"anti-band", "bandwidth n-1 on every row", anti_band(48)});
    suite.push_back({"signed-zero-denormal", "±0.0 structural entries, denormals, "
                     "60-binary-order magnitude spread", signed_zero_denormal(32)});
    suite.push_back({"tiny-wide", "fewer rows than pool threads (empty partitions)",
                     tiny_wide()});
    suite.push_back({"disconnected", "path + star + clique + isolated components: "
                     "per-component BFS restarts, merged level structures", disconnected(53)});
    suite.push_back({"path-chain", "pure path: n width-1 BFS levels, zero intra-level "
                     "parallelism", path_chain(33)});
    suite.push_back({"scatter", "high-bandwidth irregular rows (§V.B corner case)",
                     gen::make_spd(gen::banded_random(229, 200, 6.0, 11, 0.9))});
    suite.push_back({"block-fem", "dense 3x3 block substructures (CSX pattern units)",
                     gen::make_spd(gen::block_fem(40, 3, 4.0, 0.6, 7))});
    return suite;
}

}  // namespace symspmv::verify
