#include "verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <random>
#include <sstream>

#include "core/thread_pool.hpp"
#include "engine/bundle.hpp"
#include "engine/factory.hpp"

namespace symspmv::verify {
namespace {

std::vector<value_t> deterministic_x(index_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = dist(rng);
    return x;
}

bool is_jit(KernelKind kind) {
    return kind == KernelKind::kCsxJit || kind == KernelKind::kCsxSymJit;
}

/// ULP of double @p r, with the reference magnitude floored at DBL_MIN so a
/// zero/denormal reference doesn't divide by a 4.9e-324 ULP.
double ulp_of(double r) {
    const double ar = std::max(std::abs(r), std::numeric_limits<double>::min());
    return std::nextafter(ar, std::numeric_limits<double>::infinity()) - ar;
}

}  // namespace

Reference reference_spmv(const Coo& full, std::span<const value_t> x, double slack) {
    const auto n = static_cast<std::size_t>(full.rows());
    std::vector<long double> acc(n, 0.0L);
    std::vector<long double> abs_sum(n, 0.0L);
    std::vector<index_t> row_nnz(n, 0);
    for (const Triplet& t : full.entries()) {
        const auto r = static_cast<std::size_t>(t.row);
        const long double p =
            static_cast<long double>(t.val) * static_cast<long double>(x[static_cast<std::size_t>(t.col)]);
        acc[r] += p;
        abs_sum[r] += std::abs(p);
        ++row_nnz[r];
    }
    Reference ref;
    ref.y.resize(n);
    ref.bound.resize(n);
    constexpr double kEps = std::numeric_limits<double>::epsilon();
    constexpr double kFloor = std::numeric_limits<double>::min();
    for (std::size_t r = 0; r < n; ++r) {
        ref.y[r] = static_cast<value_t>(acc[r]);
        const double model = slack * kEps * static_cast<double>(row_nnz[r] + 2) *
                             static_cast<double>(abs_sum[r]);
        ref.bound[r] = std::max(model, kFloor);
    }
    return ref;
}

OracleResult check_kernel(SpmvKernel& kernel, const Coo& full, std::string_view case_name,
                          double ulp_slack, std::uint64_t x_seed) {
    OracleResult res;
    res.kernel = std::string(kernel.name());
    res.case_name = std::string(case_name);
    if (kernel.rows() != full.rows()) {
        res.error = "kernel reports " + std::to_string(kernel.rows()) + " rows, matrix has " +
                    std::to_string(full.rows());
        return res;
    }
    const auto x = deterministic_x(full.rows(), x_seed);
    const Reference ref = reference_spmv(full, x, ulp_slack);
    std::vector<value_t> y(static_cast<std::size_t>(full.rows()), 0.0);
    try {
        kernel.spmv(x, y);
    } catch (const std::exception& e) {
        res.error = e.what();
        return res;
    }
    res.pass = true;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double err = std::abs(y[i] - ref.y[i]);
        if (std::isnan(y[i]) || err > ref.bound[i]) {
            res.pass = false;
        }
        const double share = err / ref.bound[i];
        if (share > res.worst_share || std::isnan(y[i])) {
            res.worst_share = std::isnan(y[i]) ? std::numeric_limits<double>::infinity() : share;
            res.worst_row = static_cast<index_t>(i);
        }
        res.max_ulp = std::max(res.max_ulp, err / ulp_of(ref.y[i]));
    }
    return res;
}

OracleReport run_differential_oracle(const std::vector<AdversarialCase>& cases,
                                     const OracleOptions& opts) {
    const std::vector<KernelKind>& kinds = opts.kinds.empty() ? all_kernel_kinds() : opts.kinds;
    OracleReport report;
    for (const AdversarialCase& c : cases) {
        const engine::MatrixBundle bundle = engine::MatrixBundle::view(c.matrix);
        for (std::size_t ti = 0; ti < opts.thread_counts.size(); ++ti) {
            const int threads = opts.thread_counts[ti];
            const bool last = ti + 1 == opts.thread_counts.size();
            ThreadPool pool(threads);
            const engine::KernelFactory factory(bundle, pool);
            for (const KernelKind kind : kinds) {
                if (opts.jit_last_thread_count_only && is_jit(kind) && !last) continue;
                OracleResult res;
                try {
                    const KernelPtr kernel = factory.make(kind);
                    res = check_kernel(*kernel, c.matrix, c.name, opts.ulp_slack, opts.x_seed);
                } catch (const std::exception& e) {
                    res.kernel = std::string(to_string(kind));
                    res.case_name = c.name;
                    res.error = std::string("build: ") + e.what();
                    res.pass = false;
                }
                res.threads = threads;
                report.results.push_back(std::move(res));
            }
        }
    }
    return report;
}

OracleReport run_differential_oracle(const OracleOptions& opts) {
    return run_differential_oracle(adversarial_suite(), opts);
}

bool OracleReport::all_passed() const { return failures() == 0; }

int OracleReport::failures() const {
    int n = 0;
    for (const OracleResult& r : results) n += r.pass ? 0 : 1;
    return n;
}

std::string OracleReport::table() const {
    struct Row {
        double max_ulp = 0.0;
        std::string worst_case;
        int worst_threads = 0;
        int runs = 0;
        int failed = 0;
    };
    std::map<std::string, Row> rows;
    for (const OracleResult& r : results) {
        Row& row = rows[r.kernel];
        ++row.runs;
        if (!r.pass) ++row.failed;
        if (r.max_ulp >= row.max_ulp) {
            row.max_ulp = r.max_ulp;
            row.worst_case = r.case_name;
            row.worst_threads = r.threads;
        }
    }
    std::ostringstream os;
    os << std::left << std::setw(14) << "kernel" << std::right << std::setw(10) << "max ULP"
       << "  " << std::left << std::setw(22) << "worst case" << std::right << std::setw(5)
       << "runs" << std::setw(7) << "failed" << '\n';
    for (const auto& [kernel, row] : rows) {
        os << std::left << std::setw(14) << kernel << std::right << std::setw(10)
           << std::setprecision(3) << std::fixed << row.max_ulp << "  " << std::left
           << std::setw(22) << (row.worst_case + " x" + std::to_string(row.worst_threads))
           << std::right << std::setw(5) << row.runs << std::setw(7) << row.failed << '\n';
    }
    return os.str();
}

std::string OracleReport::failure_lines() const {
    std::ostringstream os;
    for (const OracleResult& r : results) {
        if (r.pass) continue;
        os << r.kernel << " on " << r.case_name << " x" << r.threads << ": ";
        if (!r.error.empty()) {
            os << r.error;
        } else {
            os << "row " << r.worst_row << " off by " << std::setprecision(3)
               << r.worst_share << "x the bound (" << r.max_ulp << " ULP)";
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace symspmv::verify
