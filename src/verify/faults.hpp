// Fault-injection harness for the ingestion paths.
//
// Takes a known-good artifact (.smx stream, plan-cache file, MatrixMarket
// text), applies deterministic byte-level faults (truncations and bit
// flips), and classifies what the reader does with each corrupted copy:
//
//   clean reject       ParseError (or a cache miss for plan files)
//   accepted identical parsed fine and the data equals the original
//                      (the fault hit redundant bytes)
//   accepted different parsed fine but the data CHANGED — a silent wrong
//                      answer, the one outcome the checksummed binary
//                      formats must never produce
//   crash              any other exception escaped the reader
//
// For the checksummed formats (.smx, plan files) the contract is strict:
// no accepted-different, no crash.  MatrixMarket is plain text with no
// integrity cover — a flipped digit is a different but perfectly valid
// file — so there the contract is only: never crash, and everything that
// parses is structurally well-formed (accepted_different counts mutations
// that legitimately changed the parsed matrix).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/framing.hpp"
#include "matrix/coo.hpp"

namespace symspmv::verify {

struct FaultReport {
    int trials = 0;
    int clean_rejects = 0;
    int accepted_identical = 0;
    int accepted_different = 0;
    int crashes = 0;
    std::vector<std::string> incidents;  // one line per crash / silent accept

    /// The strict (checksummed-format) contract.
    [[nodiscard]] bool strictly_clean() const {
        return crashes == 0 && accepted_different == 0;
    }
    /// The text-format contract.
    [[nodiscard]] bool no_crashes() const { return crashes == 0; }

    [[nodiscard]] std::string summary(const std::string& what) const;
};

/// Fuzzes read_binary() over corrupted serializations of @p original:
/// every truncation length on a deterministic grid plus @p bitflips
/// single-bit flips at seeded positions.
[[nodiscard]] FaultReport fuzz_smx_stream(const Coo& original, std::uint64_t seed,
                                          int truncations, int bitflips);

/// Fuzzes PlanStore::parse() the same way; "accepted different" means a
/// corrupted file loaded as a plan with different decisions — the silent
/// wrong answer a tuning cache must never serve.
[[nodiscard]] FaultReport fuzz_plan_file(std::uint64_t seed, int truncations, int bitflips);

/// Fuzzes read_matrix_market() with truncations plus random printable-byte
/// substitutions (bit flips in text mostly produce other text).
[[nodiscard]] FaultReport fuzz_matrix_market(const Coo& original, std::uint64_t seed,
                                             int truncations, int mutations);

/// Fuzzes read_frame() (the serve wire transport, core/framing.hpp) over
/// corrupted encodings of @p original: truncations on the deterministic
/// grid plus @p bitflips single-bit flips — covering the magic, version,
/// type, the length prefix (oversized-length attacks) and the checksum
/// itself.  The checksummed-frame contract is strict: every fault is a
/// ParseError (or a clean end-of-stream for the zero-byte truncation),
/// never a different frame and never a crash.
[[nodiscard]] FaultReport fuzz_frame_stream(const Frame& original, std::uint64_t seed,
                                            int truncations, int bitflips,
                                            std::size_t max_payload = kDefaultMaxFramePayload);

/// Same harness over the LEGACY v1 encoding (no trace-id field), exercising
/// the backward-compat decode path: an intact v1 stream must load as the
/// original frame with trace_id == 0 (that is the accepted-identical
/// criterion here), every fault must still be a clean reject.
[[nodiscard]] FaultReport fuzz_frame_stream_legacy(
    const Frame& original, std::uint64_t seed, int truncations, int bitflips,
    std::size_t max_payload = kDefaultMaxFramePayload);

}  // namespace symspmv::verify
