// Umbrella header for the symspmv library.
//
// Downstream users can include this single header; the individual module
// headers remain available for faster builds.  See README.md for the
// public API tour and DESIGN.md for the module inventory.
#pragma once

// Core utilities.
#include "core/allocator.hpp"    // IWYU pragma: export
#include "core/atomic_file.hpp"  // IWYU pragma: export
#include "core/error.hpp"        // IWYU pragma: export
#include "core/options.hpp"      // IWYU pragma: export
#include "core/partition.hpp"    // IWYU pragma: export
#include "core/placement.hpp"    // IWYU pragma: export
#include "core/profiling.hpp"    // IWYU pragma: export
#include "core/stats.hpp"        // IWYU pragma: export
#include "core/thread_pool.hpp"  // IWYU pragma: export
#include "core/timer.hpp"        // IWYU pragma: export
#include "core/types.hpp"        // IWYU pragma: export

// Sparse matrix formats.
#include "matrix/coo.hpp"         // IWYU pragma: export
#include "matrix/binio.hpp"       // IWYU pragma: export
#include "matrix/csr.hpp"         // IWYU pragma: export
#include "matrix/dense.hpp"       // IWYU pragma: export
#include "matrix/dia.hpp"         // IWYU pragma: export
#include "matrix/ellpack.hpp"     // IWYU pragma: export
#include "matrix/generators.hpp"  // IWYU pragma: export
#include "matrix/hyb.hpp"         // IWYU pragma: export
#include "matrix/mmio.hpp"        // IWYU pragma: export
#include "matrix/properties.hpp"  // IWYU pragma: export
#include "matrix/sss.hpp"         // IWYU pragma: export
#include "matrix/suite.hpp"       // IWYU pragma: export
#include "matrix/vbl.hpp"         // IWYU pragma: export

// Bandwidth reduction.
#include "reorder/orderings.hpp"  // IWYU pragma: export
#include "reorder/permute.hpp"    // IWYU pragma: export
#include "reorder/rcm.hpp"        // IWYU pragma: export

// SpM×V kernels and the local-vectors reduction machinery.
#include "spmv/alt_kernels.hpp"        // IWYU pragma: export
#include "spmv/baseline_kernels.hpp"   // IWYU pragma: export
#include "spmv/coloring.hpp"           // IWYU pragma: export
#include "spmv/comm_volume.hpp"        // IWYU pragma: export
#include "spmv/csr_kernels.hpp"        // IWYU pragma: export
#include "spmv/kernel.hpp"             // IWYU pragma: export
#include "spmv/reduction.hpp"          // IWYU pragma: export
#include "spmv/reduction_compact.hpp"  // IWYU pragma: export
#include "spmv/sss_kernels.hpp"        // IWYU pragma: export

// Blocked comparator formats.
#include "bcsr/bcsr.hpp"          // IWYU pragma: export
#include "bcsr/bcsr_kernels.hpp"  // IWYU pragma: export
#include "csb/csb.hpp"            // IWYU pragma: export
#include "csb/csb_kernels.hpp"    // IWYU pragma: export

// CSX and CSX-Sym.
#include "csx/csx_matrix.hpp"  // IWYU pragma: export
#include "csx/csx_sym.hpp"     // IWYU pragma: export
#include "csx/detect.hpp"      // IWYU pragma: export
#include "csx/jit.hpp"         // IWYU pragma: export
#include "csx/kernels.hpp"     // IWYU pragma: export

// Iterative solvers.
#include "solver/blas1.hpp"    // IWYU pragma: export
#include "solver/cg.hpp"       // IWYU pragma: export
#include "solver/cholesky.hpp" // IWYU pragma: export
#include "solver/lanczos.hpp"  // IWYU pragma: export
#include "solver/pcg.hpp"      // IWYU pragma: export
#include "solver/precond.hpp"  // IWYU pragma: export

// Cache model for the §V.B interference study.
#include "cachesim/cache.hpp"       // IWYU pragma: export
#include "cachesim/spmv_trace.hpp"  // IWYU pragma: export

// Engine: execution contexts, shared matrix bundles, the kernel registry
// and the per-thread phase profiler.
#include "engine/bundle.hpp"    // IWYU pragma: export
#include "engine/context.hpp"   // IWYU pragma: export
#include "engine/factory.hpp"   // IWYU pragma: export
#include "engine/profiler.hpp"  // IWYU pragma: export
#include "engine/registry.hpp"  // IWYU pragma: export

// Measurement harness, roofline model, format advisor.
#include "bench/advisor.hpp"   // IWYU pragma: export
#include "bench/harness.hpp"   // IWYU pragma: export
#include "bench/roofline.hpp"  // IWYU pragma: export

// Autotuning: empirical plan search with a persistent plan cache.
#include "autotune/fingerprint.hpp"  // IWYU pragma: export
#include "autotune/plan.hpp"         // IWYU pragma: export
#include "autotune/store.hpp"        // IWYU pragma: export
#include "autotune/tuner.hpp"        // IWYU pragma: export
