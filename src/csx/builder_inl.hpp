// Inline ctl-stream walker shared by the SpM×V interpreters, the tests and
// the debug tooling.  Keeping the stream-structure logic in one place means
// an encoding change cannot silently diverge from the decoders.
#pragma once

#include <cstring>

#include "core/error.hpp"
#include "csx/varint.hpp"

namespace symspmv::csx {

namespace detail {

/// Reads one fixed-width little-endian delta from a delta-unit body.
template <typename T>
inline index_t read_fixed(const std::uint8_t* body, int k) {
    T v;
    std::memcpy(&v, body + static_cast<std::size_t>(k) * sizeof(T), sizeof(T));
    return static_cast<index_t>(v);
}

}  // namespace detail

/// Walks every unit of @p ctl.  @p table resolves pattern ids >= 3.
/// fn is invoked as fn(const UnitHeader&, const std::uint8_t* body) where
/// body points at the unit's delta body (delta units only, else nullptr).
template <typename Fn>
inline void walk_ctl(std::span<const std::uint8_t> ctl, index_t row_begin,
                     std::span<const Pattern> table, Fn&& fn) {
    const std::uint8_t* data = ctl.data();
    const std::size_t size = ctl.size();
    std::size_t pos = 0;
    index_t cur_row = row_begin;
    index_t cur_col = 0;
    while (pos < size) {
        const std::uint8_t flags = data[pos++];
        if (flags & kCtlNewRow) {
            index_t jump = 1;
            if (flags & kCtlRowJump) {
                jump = static_cast<index_t>(read_uvarint(data, size, pos));
            }
            cur_row += jump;
            cur_col = 0;
        }
        UnitHeader h;
        h.id = flags & kCtlIdMask;
        h.size = data[pos++];
        SYMSPMV_CHECK_MSG(h.size >= 1, "ctl: empty unit");
        cur_col += static_cast<index_t>(read_svarint(data, size, pos));
        h.row = cur_row;
        h.col = cur_col;

        const std::uint8_t* body = nullptr;
        switch (h.id) {
            case 0: {  // delta8
                body = data + pos;
                pos += static_cast<std::size_t>(h.size - 1);
                index_t last = h.col;
                for (int k = 0; k < h.size - 1; ++k) last += detail::read_fixed<std::uint8_t>(body, k);
                cur_col = last + 1;
                break;
            }
            case 1: {  // delta16
                body = data + pos;
                pos += static_cast<std::size_t>(h.size - 1) * 2;
                index_t last = h.col;
                for (int k = 0; k < h.size - 1; ++k) last += detail::read_fixed<std::uint16_t>(body, k);
                cur_col = last + 1;
                break;
            }
            case 2: {  // delta32
                body = data + pos;
                pos += static_cast<std::size_t>(h.size - 1) * 4;
                index_t last = h.col;
                for (int k = 0; k < h.size - 1; ++k) last += detail::read_fixed<std::uint32_t>(body, k);
                cur_col = last + 1;
                break;
            }
            default: {
                const std::size_t t = static_cast<std::size_t>(h.id - kFirstTableId);
                SYMSPMV_CHECK_MSG(t < table.size(), "ctl: pattern id outside table");
                const Pattern& p = table[t];
                if (p.type == PatternType::kHorizontal) {
                    cur_col = h.col + (h.size - 1) * p.delta + 1;
                } else {
                    cur_col = h.col + 1;
                }
                break;
            }
        }
        SYMSPMV_CHECK_MSG(pos <= size, "ctl: truncated unit body");
        fn(static_cast<const UnitHeader&>(h), body);
    }
}

template <typename Fn>
inline void for_each_unit(std::span<const std::uint8_t> ctl, index_t row_begin, Fn&& fn) {
    // Table-free variant for streams known to contain only delta units.
    walk_ctl(ctl, row_begin, std::span<const Pattern>{}, std::forward<Fn>(fn));
}

}  // namespace symspmv::csx
