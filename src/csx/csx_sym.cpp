#include "csx/csx_sym.hpp"

#include "core/error.hpp"
#include "core/placement.hpp"
#include "core/prefetch.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace symspmv::csx {
namespace {

std::vector<Triplet> partition_triplets(const Sss& sss, const RowRange& part) {
    std::vector<Triplet> elems;
    const auto rowptr = sss.rowptr();
    const auto colind = sss.colind();
    const auto values = sss.values();
    elems.reserve(static_cast<std::size_t>(rowptr[static_cast<std::size_t>(part.end)] -
                                           rowptr[static_cast<std::size_t>(part.begin)]));
    for (index_t r = part.begin; r < part.end; ++r) {
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            elems.push_back({r, colind[static_cast<std::size_t>(j)],
                             values[static_cast<std::size_t>(j)]});
        }
    }
    return elems;
}

}  // namespace

CsxSymMatrix::CsxSymMatrix(const Sss& sss, const CsxConfig& cfg, int partitions)
    : n_(sss.rows()), full_nnz_(sss.nnz()) {
    SYMSPMV_CHECK_MSG(partitions >= 1, "CsxSymMatrix: need at least one partition");
    Timer prep;
    dvalues_.assign(sss.dvalues().begin(), sss.dvalues().end());
    parts_ = split_by_nnz(sss.rowptr(), partitions);

    // Stats per partition with that partition's local/direct boundary, then
    // one shared pattern table across partitions.
    std::vector<std::vector<Triplet>> elems(parts_.size());
    std::vector<std::vector<PatternStats>> stats(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
        elems[p] = partition_triplets(sss, parts_[p]);
        stats[p] = Detector(elems[p], cfg, parts_[p].begin).collect_stats();
    }
    const auto stored = static_cast<std::int64_t>(sss.stored_nnz());
    table_ = build_pattern_table(stats, stored, cfg);

    encoded_.reserve(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
        encoded_.push_back(encode_partition(elems[p], parts_[p].begin, parts_[p].end, table_, cfg,
                                            /*boundary=*/parts_[p].begin));
    }
    preprocess_seconds_ = prep.seconds();
}

void CsxSymMatrix::rehome(ThreadPool& pool) {
    if (pool.size() != partitions() || n_ == 0) return;
    rehome_partitioned(dvalues_, parts_, pool);
    pool.run([&](int tid) {
        // Worker-local copies: allocation and every byte of the copy happen
        // on the owning worker, so the fresh pages are first touched (and
        // homed) on its node; swap retires the builder-thread pages.
        EncodedPartition& part = encoded_[static_cast<std::size_t>(tid)];
        std::vector<std::uint8_t> ctl(part.ctl.begin(), part.ctl.end());
        aligned_vector<value_t> values(part.values.begin(), part.values.end());
        part.ctl.swap(ctl);
        part.values.swap(values);
    });
}

std::size_t CsxSymMatrix::size_bytes() const {
    std::size_t bytes = dvalues_.size() * kValueBytes;
    for (const EncodedPartition& e : encoded_) bytes += e.size_bytes();
    return bytes;
}

std::map<Pattern, std::int64_t> CsxSymMatrix::coverage() const {
    std::map<Pattern, std::int64_t> out;
    for (const EncodedPartition& e : encoded_) {
        for (const auto& [pattern, count] : e.coverage) out[pattern] += count;
    }
    return out;
}

void CsxSymMatrix::spmv_partition(int pid, std::span<const value_t> x, std::span<value_t> y,
                                  std::span<value_t> local) const {
    const EncodedPartition& part = encoded_[static_cast<std::size_t>(pid)];
    const index_t start = part.row_begin;
    SYMSPMV_CHECK_MSG(static_cast<index_t>(local.size()) >= start,
                      "CsxSymMatrix: local vector too small");
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    value_t* __restrict lv = local.data();
    const value_t* __restrict dv = dvalues_.data();
    // Diagonal pass seeds the partition's own rows (Alg. 2 line 3).
    for (index_t r = part.row_begin; r < part.row_end; ++r) yv[r] = dv[r] * xv[r];

    const value_t* __restrict va = part.values.data();
    std::size_t vpos = 0;
    const auto pf = static_cast<std::size_t>(prefetch_distance_);
    const std::size_t vend = part.values.size();
    walk_ctl(std::span<const std::uint8_t>(part.ctl), part.row_begin, table_,
             [&](const UnitHeader& h, const std::uint8_t* body) {
                 if (pf > 0 && vpos + pf < vend) prefetch_read(&va[vpos + pf]);
                 // §IV.B: the encoder guarantees all of a unit's columns lie
                 // on one side of `start`, so the mirror target is selected
                 // once per unit.
                 const bool mirror_local = h.col < start;
                 value_t* __restrict mv = mirror_local ? lv : yv;
                 switch (h.id) {
                     case 0:
                     case 1:
                     case 2: {  // delta units
                         index_t c = h.col;
                         const value_t xr = xv[h.row];
                         value_t acc = 0.0;
                         for (int k = 0;; ++k) {
                             const value_t v = va[vpos++];
                             acc += v * xv[c];
                             mv[c] += v * xr;
                             if (k == h.size - 1) break;
                             if (h.id == 0) c += detail::read_fixed<std::uint8_t>(body, k);
                             if (h.id == 1) c += detail::read_fixed<std::uint16_t>(body, k);
                             if (h.id == 2) c += detail::read_fixed<std::uint32_t>(body, k);
                         }
                         yv[h.row] += acc;
                         break;
                     }
                     default: {
                         const Pattern& p = table_[static_cast<std::size_t>(h.id - kFirstTableId)];
                         switch (p.type) {
                             case PatternType::kHorizontal: {
                                 const value_t xr = xv[h.row];
                                 value_t acc = 0.0;
                                 index_t c = h.col;
                                 for (int k = 0; k < h.size; ++k, c += p.delta) {
                                     const value_t v = va[vpos++];
                                     acc += v * xv[c];
                                     mv[c] += v * xr;
                                 }
                                 yv[h.row] += acc;
                                 break;
                             }
                             case PatternType::kVertical: {
                                 const value_t xc = xv[h.col];
                                 value_t macc = 0.0;
                                 index_t r = h.row;
                                 for (int k = 0; k < h.size; ++k, r += p.delta) {
                                     const value_t v = va[vpos++];
                                     yv[r] += v * xc;
                                     macc += v * xv[r];
                                 }
                                 mv[h.col] += macc;
                                 break;
                             }
                             case PatternType::kDiagonal: {
                                 index_t r = h.row;
                                 index_t c = h.col;
                                 for (int k = 0; k < h.size; ++k, r += p.delta, c += p.delta) {
                                     const value_t v = va[vpos++];
                                     yv[r] += v * xv[c];
                                     mv[c] += v * xv[r];
                                 }
                                 break;
                             }
                             case PatternType::kAntiDiagonal: {
                                 index_t r = h.row;
                                 index_t c = h.col;
                                 for (int k = 0; k < h.size; ++k, r += p.delta, c -= p.delta) {
                                     const value_t v = va[vpos++];
                                     yv[r] += v * xv[c];
                                     mv[c] += v * xv[r];
                                 }
                                 break;
                             }
                             case PatternType::kBlock: {
                                 const auto block_rows = p.delta;
                                 const int cols = h.size / static_cast<int>(block_rows);
                                 for (int b = 0; b < cols; ++b) {
                                     const index_t c = h.col + b;
                                     const value_t xc = xv[c];
                                     value_t macc = 0.0;
                                     for (index_t a = 0; a < block_rows; ++a) {
                                         const value_t v = va[vpos++];
                                         yv[h.row + a] += v * xc;
                                         macc += v * xv[h.row + a];
                                     }
                                     mv[c] += macc;
                                 }
                                 break;
                             }
                             default:
                                 throw InternalError("CsxSymMatrix: delta pattern in table");
                         }
                         break;
                     }
                 }
             });
    SYMSPMV_CHECK_MSG(vpos == part.values.size(), "CsxSymMatrix: values not fully consumed");
}

}  // namespace symspmv::csx
