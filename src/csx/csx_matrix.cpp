#include "csx/csx_matrix.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::csx {

std::vector<Pattern> build_pattern_table(std::span<const std::vector<PatternStats>> per_part,
                                         std::int64_t total_nnz, const CsxConfig& cfg) {
    std::map<Pattern, PatternStats> merged;
    for (const auto& stats : per_part) {
        for (const PatternStats& s : stats) {
            PatternStats& m = merged[s.pattern];
            m.pattern = s.pattern;
            m.covered += s.covered;
            m.units += s.units;
        }
    }
    std::vector<PatternStats> ranked;
    ranked.reserve(merged.size());
    for (const auto& [pattern, s] : merged) ranked.push_back(s);
    std::sort(ranked.begin(), ranked.end(), [](const PatternStats& a, const PatternStats& b) {
        if (a.savings() != b.savings()) return a.savings() > b.savings();
        return a.pattern < b.pattern;
    });
    const auto threshold =
        static_cast<std::int64_t>(cfg.min_coverage * static_cast<double>(total_nnz));
    std::vector<Pattern> table;
    const std::size_t capacity = kMaxTableId - kFirstTableId + 1;
    for (const PatternStats& s : ranked) {
        if (s.covered < threshold) continue;
        table.push_back(s.pattern);
        if (table.size() == capacity) break;
    }
    return table;
}

namespace {

/// Extracts the partition's elements as row-major triplets.
std::vector<Triplet> partition_triplets(const Csr& csr, const RowRange& part) {
    std::vector<Triplet> elems;
    const auto rowptr = csr.rowptr();
    const auto colind = csr.colind();
    const auto values = csr.values();
    elems.reserve(static_cast<std::size_t>(rowptr[static_cast<std::size_t>(part.end)] -
                                           rowptr[static_cast<std::size_t>(part.begin)]));
    for (index_t r = part.begin; r < part.end; ++r) {
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            elems.push_back({r, colind[static_cast<std::size_t>(j)],
                             values[static_cast<std::size_t>(j)]});
        }
    }
    return elems;
}

}  // namespace

CsxMatrix::CsxMatrix(const Csr& full, const CsxConfig& cfg, int partitions)
    : n_rows_(full.rows()), n_cols_(full.cols()), nnz_(full.nnz()) {
    SYMSPMV_CHECK_MSG(partitions >= 1, "CsxMatrix: need at least one partition");
    Timer prep;
    parts_ = split_by_nnz(full.rowptr(), partitions);

    // Stats pass per partition, then one shared pattern table.
    std::vector<std::vector<Triplet>> elems(parts_.size());
    std::vector<std::vector<PatternStats>> stats(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
        elems[p] = partition_triplets(full, parts_[p]);
        stats[p] = Detector(elems[p], cfg).collect_stats();
    }
    table_ = build_pattern_table(stats, nnz_, cfg);

    encoded_.reserve(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
        encoded_.push_back(
            encode_partition(elems[p], parts_[p].begin, parts_[p].end, table_, cfg));
    }
    preprocess_seconds_ = prep.seconds();
}

std::size_t CsxMatrix::size_bytes() const {
    std::size_t bytes = 0;
    for (const EncodedPartition& e : encoded_) bytes += e.size_bytes();
    return bytes;
}

std::map<Pattern, std::int64_t> CsxMatrix::coverage() const {
    std::map<Pattern, std::int64_t> out;
    for (const EncodedPartition& e : encoded_) {
        for (const auto& [pattern, count] : e.coverage) out[pattern] += count;
    }
    return out;
}

void CsxMatrix::spmv_partition(int pid, std::span<const value_t> x, std::span<value_t> y) const {
    const EncodedPartition& part = encoded_[static_cast<std::size_t>(pid)];
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (index_t r = part.row_begin; r < part.row_end; ++r) yv[r] = value_t{0};

    const value_t* __restrict va = part.values.data();
    std::size_t vpos = 0;
    walk_ctl(std::span<const std::uint8_t>(part.ctl), part.row_begin, table_,
             [&](const UnitHeader& h, const std::uint8_t* body) {
                 switch (h.id) {
                     case 0: {  // delta8
                         index_t c = h.col;
                         value_t acc = va[vpos++] * xv[c];
                         for (int k = 0; k < h.size - 1; ++k) {
                             c += detail::read_fixed<std::uint8_t>(body, k);
                             acc += va[vpos++] * xv[c];
                         }
                         yv[h.row] += acc;
                         break;
                     }
                     case 1: {  // delta16
                         index_t c = h.col;
                         value_t acc = va[vpos++] * xv[c];
                         for (int k = 0; k < h.size - 1; ++k) {
                             c += detail::read_fixed<std::uint16_t>(body, k);
                             acc += va[vpos++] * xv[c];
                         }
                         yv[h.row] += acc;
                         break;
                     }
                     case 2: {  // delta32
                         index_t c = h.col;
                         value_t acc = va[vpos++] * xv[c];
                         for (int k = 0; k < h.size - 1; ++k) {
                             c += detail::read_fixed<std::uint32_t>(body, k);
                             acc += va[vpos++] * xv[c];
                         }
                         yv[h.row] += acc;
                         break;
                     }
                     default: {
                         const Pattern& p = table_[static_cast<std::size_t>(h.id - kFirstTableId)];
                         switch (p.type) {
                             case PatternType::kHorizontal: {
                                 value_t acc = 0.0;
                                 index_t c = h.col;
                                 for (int k = 0; k < h.size; ++k, c += p.delta) {
                                     acc += va[vpos++] * xv[c];
                                 }
                                 yv[h.row] += acc;
                                 break;
                             }
                             case PatternType::kVertical: {
                                 const value_t xc = xv[h.col];
                                 index_t r = h.row;
                                 for (int k = 0; k < h.size; ++k, r += p.delta) {
                                     yv[r] += va[vpos++] * xc;
                                 }
                                 break;
                             }
                             case PatternType::kDiagonal: {
                                 index_t r = h.row;
                                 index_t c = h.col;
                                 for (int k = 0; k < h.size; ++k, r += p.delta, c += p.delta) {
                                     yv[r] += va[vpos++] * xv[c];
                                 }
                                 break;
                             }
                             case PatternType::kAntiDiagonal: {
                                 index_t r = h.row;
                                 index_t c = h.col;
                                 for (int k = 0; k < h.size; ++k, r += p.delta, c -= p.delta) {
                                     yv[r] += va[vpos++] * xv[c];
                                 }
                                 break;
                             }
                             case PatternType::kBlock: {
                                 const auto block_rows = p.delta;
                                 const int cols = h.size / static_cast<int>(block_rows);
                                 for (int b = 0; b < cols; ++b) {
                                     const value_t xc = xv[h.col + b];
                                     for (index_t a = 0; a < block_rows; ++a) {
                                         yv[h.row + a] += va[vpos++] * xc;
                                     }
                                 }
                                 break;
                             }
                             default:
                                 throw InternalError("CsxMatrix: delta pattern in table");
                         }
                         break;
                     }
                 }
             });
    SYMSPMV_CHECK_MSG(vpos == part.values.size(), "CsxMatrix: values not fully consumed");
}

}  // namespace symspmv::csx
