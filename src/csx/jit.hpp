// Runtime code generation for CSX (§IV.A, DESIGN.md §5).
//
// The original CSX emits per-matrix SpM×V code with LLVM at runtime; this
// module is the faithful stand-in: once a matrix's pattern table is known,
// it emits C source in which every table entry becomes a fully specialized
// switch case (pattern type and stride baked in as literals — exactly the
// constants the LLVM backend folds), compiles it with the system C compiler
// into a shared object and dlopens the resulting kernel.
//
// The backend is optional: compiler_available() probes for cc/gcc/clang and
// callers fall back to the built-in interpreter (csx_matrix.cpp) when no
// compiler is installed.  The ctl stream layout is identical either way.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/thread_pool.hpp"
#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "csx/pattern.hpp"
#include "spmv/kernel.hpp"
#include "spmv/reduction.hpp"

namespace symspmv::csx {

/// Signature of the generated per-matrix kernel: computes y over the rows
/// of one encoded partition (zeroing them first).
using JitSpmvFn = void (*)(const std::uint8_t* ctl, std::size_t ctl_len, const double* values,
                           std::int32_t row_begin, std::int32_t row_end, const double* x,
                           double* y);

/// Symmetric variant: seeds y[row] with dvalues, performs the mirrored
/// writes into `local` (below row_begin) or `y` (own rows) per the §IV.B
/// one-side-per-unit guarantee.
using JitSymSpmvFn = void (*)(const std::uint8_t* ctl, std::size_t ctl_len, const double* values,
                              const double* dvalues, std::int32_t row_begin, std::int32_t row_end,
                              const double* x, double* y, double* local);

/// One compiled kernel pair (shared object) for a pattern table.
class JitModule {
   public:
    /// True when a usable C compiler was found on PATH (probed once).
    static bool compiler_available();

    /// Generates, compiles and loads the kernel for @p table.  Throws
    /// InternalError when no compiler is available or compilation fails.
    explicit JitModule(std::span<const Pattern> table);

    JitModule(const JitModule&) = delete;
    JitModule& operator=(const JitModule&) = delete;

    ~JitModule();

    [[nodiscard]] JitSpmvFn fn() const { return fn_; }
    [[nodiscard]] JitSymSpmvFn sym_fn() const { return sym_fn_; }

    /// The generated C source (exposed for tests and debugging).
    [[nodiscard]] const std::string& source() const { return source_; }

    /// Wall-clock seconds of the emit + compile + load step; part of the
    /// preprocessing cost a fair §V.E comparison must include.
    [[nodiscard]] double compile_seconds() const { return compile_seconds_; }

   private:
    std::string source_;
    std::string so_path_;
    void* handle_ = nullptr;
    JitSpmvFn fn_ = nullptr;
    JitSymSpmvFn sym_fn_ = nullptr;
    double compile_seconds_ = 0.0;
};

/// Generates the C source for @p table: both the unsymmetric (`csx_spmv`)
/// and the symmetric (`csx_sym_spmv`) entry points, each with one fully
/// specialized case per table entry.  Separated out for testability.
[[nodiscard]] std::string generate_kernel_source(std::span<const Pattern> table);

/// Unsymmetric CSX kernel executing through the runtime-compiled module.
class CsxJitKernel final : public SpmvKernel {
   public:
    CsxJitKernel(const Csr& full, const CsxConfig& cfg, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "CSX-jit"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const CsxMatrix& matrix() const { return matrix_; }
    [[nodiscard]] const JitModule& module() const { return module_; }

    /// Detection/encoding plus code generation seconds (§V.E accounting).
    [[nodiscard]] double preprocess_seconds() const {
        return matrix_.preprocess_seconds() + module_.compile_seconds();
    }

   private:
    CsxMatrix matrix_;
    JitModule module_;
    ThreadPool& pool_;
};

/// CSX-Sym kernel executing through the runtime-compiled module, with the
/// §III.C local-vectors-indexing reduction (same as CsxSymKernel).
class CsxSymJitKernel final : public SpmvKernel {
   public:
    CsxSymJitKernel(const Sss& sss, const CsxConfig& cfg, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "CSX-Sym-jit"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override;
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const CsxSymMatrix& matrix() const { return matrix_; }
    [[nodiscard]] const JitModule& module() const { return module_; }
    [[nodiscard]] double preprocess_seconds() const {
        return matrix_.preprocess_seconds() + module_.compile_seconds();
    }

   private:
    CsxSymMatrix matrix_;
    JitModule module_;
    ThreadPool& pool_;
    std::vector<aligned_vector<value_t>> locals_;
    ReductionIndex index_;
    double last_mult_seconds_ = 0.0;
};

}  // namespace symspmv::csx
