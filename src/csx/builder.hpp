// CSX partition encoder: turns a row range of a sparse matrix into the ctl
// byte stream + values array of the CSX representation (§IV.A, Fig. 7).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "csx/detect.hpp"
#include "csx/pattern.hpp"

namespace symspmv::csx {

/// One thread's share of a CSX matrix: a self-contained ctl/values pair
/// covering rows [row_begin, row_end).
struct EncodedPartition {
    index_t row_begin = 0;
    index_t row_end = 0;
    std::vector<std::uint8_t> ctl;
    aligned_vector<value_t> values;

    /// Elements encoded per pattern (delta units under their own keys);
    /// useful for the compression reports and the ablation benches.
    std::map<Pattern, std::int64_t> coverage;

    [[nodiscard]] std::size_t size_bytes() const {
        return ctl.size() + values.size() * kValueBytes;
    }
};

/// Encodes @p elems (canonical row-major, rows within [row_begin, row_end))
/// against the per-matrix pattern table @p table.  @p boundary activates the
/// CSX-Sym rule: no unit's columns may straddle it (mixed elements fall back
/// to delta units that the encoder splits at the boundary).
EncodedPartition encode_partition(std::span<const Triplet> elems, index_t row_begin,
                                  index_t row_end, std::span<const Pattern> table,
                                  const CsxConfig& cfg, index_t boundary = -1);

/// Decoded unit header handed to the SpM×V interpreters.
struct UnitHeader {
    index_t row = 0;   // absolute anchor row
    index_t col = 0;   // absolute anchor column
    int size = 0;      // elements in the unit
    int id = 0;        // 0-2: delta units; >= kFirstTableId: table index + 3
};

/// Walks a ctl stream invoking `fn(header, body_pos)` per unit, where
/// body_pos is the ctl offset of the unit's body.  Used by tests and the
/// debug dumper; the hot SpM×V loops inline the same logic.
template <typename Fn>
void for_each_unit(std::span<const std::uint8_t> ctl, index_t row_begin, Fn&& fn);

}  // namespace symspmv::csx

#include "csx/builder_inl.hpp"
