// The CSX compressed sparse matrix (§IV.A).
//
// A CSX matrix is a set of per-thread encoded partitions (each thread
// detects and encodes its own row range, exactly as the original
// implementation does before spawning its runtime-generated kernels) plus a
// per-matrix pattern table.  SpM×V execution interprets the ctl stream with
// one specialized inner loop per pattern — the compiled stand-in for CSX's
// LLVM-generated code (see DESIGN.md §5).
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "csx/builder.hpp"
#include "csx/detect.hpp"
#include "matrix/csr.hpp"

namespace symspmv::csx {

class CsxMatrix {
   public:
    /// Builds from a general CSR matrix, split row-wise into @p partitions
    /// of approximately equal non-zero count.
    CsxMatrix(const Csr& full, const CsxConfig& cfg, int partitions);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }
    [[nodiscard]] std::int64_t nnz() const { return nnz_; }
    [[nodiscard]] int partitions() const { return static_cast<int>(parts_.size()); }
    [[nodiscard]] const RowRange& partition_rows(int pid) const {
        return parts_[static_cast<std::size_t>(pid)];
    }
    [[nodiscard]] const EncodedPartition& partition(int pid) const {
        return encoded_[static_cast<std::size_t>(pid)];
    }
    [[nodiscard]] std::span<const Pattern> table() const { return table_; }

    /// ctl + values bytes of all partitions.
    [[nodiscard]] std::size_t size_bytes() const;

    /// Wall-clock seconds spent in detection + encoding (§V.E).
    [[nodiscard]] double preprocess_seconds() const { return preprocess_seconds_; }

    /// Elements encoded per pattern across all partitions.
    [[nodiscard]] std::map<Pattern, std::int64_t> coverage() const;

    /// Computes y[r] for the rows of partition @p pid only (zeroing them
    /// first); partitions are independent, so calls may run concurrently.
    void spmv_partition(int pid, std::span<const value_t> x, std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    std::int64_t nnz_ = 0;
    std::vector<RowRange> parts_;
    std::vector<Pattern> table_;
    std::vector<EncodedPartition> encoded_;
    double preprocess_seconds_ = 0.0;
};

/// Shared by CsxMatrix and CsxSymMatrix: merges per-partition pattern
/// statistics, applies the coverage threshold and the table-size cap.
std::vector<Pattern> build_pattern_table(std::span<const std::vector<PatternStats>> per_part,
                                         std::int64_t total_nnz, const CsxConfig& cfg);

}  // namespace symspmv::csx
