#include "csx/pattern.hpp"

namespace symspmv::csx {

std::string to_string(PatternType t) {
    switch (t) {
        case PatternType::kDelta8:
            return "delta8";
        case PatternType::kDelta16:
            return "delta16";
        case PatternType::kDelta32:
            return "delta32";
        case PatternType::kHorizontal:
            return "horiz";
        case PatternType::kVertical:
            return "vert";
        case PatternType::kDiagonal:
            return "diag";
        case PatternType::kAntiDiagonal:
            return "adiag";
        case PatternType::kBlock:
            return "block";
    }
    return "?";
}

std::string to_string(const Pattern& p) {
    if (p.type == PatternType::kBlock) {
        return "block(r=" + std::to_string(p.delta) + ")";
    }
    if (is_delta(p.type)) return to_string(p.type);
    return to_string(p.type) + "(d=" + std::to_string(p.delta) + ")";
}

}  // namespace symspmv::csx
