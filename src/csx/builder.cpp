#include "csx/builder.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "csx/varint.hpp"

namespace symspmv::csx {
namespace {

/// Width class of a column delta for delta-unit bodies.
PatternType delta_class(index_t d) {
    SYMSPMV_CHECK_MSG(d >= 0, "delta_class: negative delta");
    if (d <= 0xFF) return PatternType::kDelta8;
    if (d <= 0xFFFF) return PatternType::kDelta16;
    return PatternType::kDelta32;
}

int delta_id(PatternType t) { return static_cast<int>(t); }

void append_fixed(std::vector<std::uint8_t>& out, PatternType cls, index_t d) {
    switch (cls) {
        case PatternType::kDelta8:
            out.push_back(static_cast<std::uint8_t>(d));
            break;
        case PatternType::kDelta16: {
            const auto v = static_cast<std::uint16_t>(d);
            out.push_back(static_cast<std::uint8_t>(v & 0xFF));
            out.push_back(static_cast<std::uint8_t>(v >> 8));
            break;
        }
        case PatternType::kDelta32: {
            const auto v = static_cast<std::uint32_t>(d);
            out.push_back(static_cast<std::uint8_t>(v & 0xFF));
            out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
            out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
            out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
            break;
        }
        default:
            throw InternalError("append_fixed: not a delta class");
    }
}

/// Column-cursor position after a unit; must mirror walk_ctl exactly.
index_t cursor_after(const DetectedUnit& u, std::span<const Triplet> elems) {
    if (is_delta(u.pattern.type)) {
        return elems[u.elems.back()].col + 1;
    }
    if (u.pattern.type == PatternType::kHorizontal) {
        return u.col + (u.size - 1) * u.pattern.delta + 1;
    }
    return u.col + 1;
}

}  // namespace

EncodedPartition encode_partition(std::span<const Triplet> elems, index_t row_begin,
                                  index_t row_end, std::span<const Pattern> table,
                                  const CsxConfig& cfg, index_t boundary) {
    SYMSPMV_CHECK_MSG(table.size() <= static_cast<std::size_t>(kMaxTableId - kFirstTableId + 1),
                      "encode_partition: pattern table too large");
    for (const Triplet& t : elems) {
        SYMSPMV_CHECK_MSG(t.row >= row_begin && t.row < row_end,
                          "encode_partition: element outside row range");
    }

    EncodedPartition out;
    out.row_begin = row_begin;
    out.row_end = row_end;

    // Pass 1: materialize substructure units for the selected patterns.
    const Detector detector(elems, cfg, boundary);
    auto encoded = detector.encode_units(table);
    std::vector<DetectedUnit> units = std::move(encoded.units);

    // Pass 2: sweep leftovers into delta units, row by row.  Elements are
    // canonical row-major, so one forward scan suffices.  Units never span
    // the CSX-Sym boundary, and a width-class change starts a new unit.
    std::vector<std::uint32_t> leftover;
    std::size_t i = 0;
    while (i < elems.size()) {
        const index_t row = elems[i].row;
        leftover.clear();
        for (; i < elems.size() && elems[i].row == row; ++i) {
            if (!encoded.consumed[i]) leftover.push_back(static_cast<std::uint32_t>(i));
        }
        std::size_t k = 0;
        while (k < leftover.size()) {
            DetectedUnit u;
            u.row = row;
            u.col = elems[leftover[k]].col;
            u.elems.push_back(leftover[k]);
            PatternType cls = PatternType::kDelta8;  // class of a singleton
            bool cls_fixed = false;
            std::size_t j = k + 1;
            for (; j < leftover.size() && u.elems.size() < kMaxUnitSize; ++j) {
                const index_t prev_col = elems[u.elems.back()].col;
                const index_t next_col = elems[leftover[j]].col;
                if (boundary >= 0 && (prev_col < boundary) != (next_col < boundary)) break;
                const PatternType c = delta_class(next_col - prev_col);
                if (!cls_fixed) {
                    cls = c;
                    cls_fixed = true;
                } else if (c != cls) {
                    break;
                }
                u.elems.push_back(leftover[j]);
            }
            u.pattern = {cls, 0};
            u.size = static_cast<int>(u.elems.size());
            units.push_back(std::move(u));
            k = j;
        }
    }

    // Pass 3: order all units by anchor and serialize the ctl stream.
    std::sort(units.begin(), units.end(), [](const DetectedUnit& a, const DetectedUnit& b) {
        if (a.row != b.row) return a.row < b.row;
        if (a.col != b.col) return a.col < b.col;
        return a.pattern < b.pattern;
    });

    index_t cur_row = row_begin;
    index_t cur_col = 0;
    out.values.reserve(elems.size());
    for (const DetectedUnit& u : units) {
        std::uint8_t flags = 0;
        index_t jump = 0;
        if (u.row != cur_row) {
            flags |= kCtlNewRow;
            jump = u.row - cur_row;
            SYMSPMV_CHECK_MSG(jump > 0, "encode_partition: units not row-sorted");
            if (jump > 1) flags |= kCtlRowJump;
            cur_col = 0;
        }
        int id;
        if (is_delta(u.pattern.type)) {
            id = delta_id(u.pattern.type);
        } else {
            const auto it = std::find(table.begin(), table.end(), u.pattern);
            SYMSPMV_CHECK_MSG(it != table.end(), "encode_partition: unit pattern not in table");
            id = kFirstTableId + static_cast<int>(it - table.begin());
        }
        flags |= static_cast<std::uint8_t>(id);

        out.ctl.push_back(flags);
        if (flags & kCtlRowJump) write_uvarint(out.ctl, static_cast<std::uint64_t>(jump));
        SYMSPMV_CHECK_MSG(u.size >= 1 && u.size <= kMaxUnitSize, "encode_partition: bad unit size");
        out.ctl.push_back(static_cast<std::uint8_t>(u.size));
        write_svarint(out.ctl, static_cast<std::int64_t>(u.col) - cur_col);
        if (is_delta(u.pattern.type)) {
            for (std::size_t e = 1; e < u.elems.size(); ++e) {
                append_fixed(out.ctl, u.pattern.type,
                             elems[u.elems[e]].col - elems[u.elems[e - 1]].col);
            }
        }
        for (std::uint32_t e : u.elems) out.values.push_back(elems[e].val);

        out.coverage[u.pattern] += u.size;
        cur_row = u.row;
        cur_col = cursor_after(u, elems);
    }
    SYMSPMV_CHECK_MSG(out.values.size() == elems.size(),
                      "encode_partition: element count mismatch after encoding");
    return out;
}

}  // namespace symspmv::csx
