// SpmvKernel adapters for the CSX and CSX-Sym formats.
//
// CSX-Sym integrates with the local-vectors indexing reduction of §III.C
// (the paper evaluates CSX-Sym only with that optimized reduction: "All
// symmetric formats use the optimized local vector indexing method",
// Fig. 11 caption).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/thread_pool.hpp"
#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "spmv/kernel.hpp"
#include "spmv/reduction.hpp"

namespace symspmv::csx {

/// Multithreaded unsymmetric CSX kernel (each worker interprets the
/// partition it encoded; no reduction phase).
class CsxMtKernel final : public SpmvKernel {
   public:
    /// Builds the CSX matrix with one partition per pool worker.  @p name
    /// labels the kernel in reports ("CSR-DU" when cfg disables patterns).
    CsxMtKernel(const Csr& full, const CsxConfig& cfg, ThreadPool& pool,
                std::string name = "CSX");

    [[nodiscard]] std::string_view name() const override { return name_; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;
    [[nodiscard]] ThreadPool* region_pool() const override { return &pool_; }
    void spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const CsxMatrix& matrix() const { return matrix_; }

   private:
    CsxMatrix matrix_;
    ThreadPool& pool_;
    std::string name_;
};

/// Multithreaded CSX-Sym kernel with local-vectors-indexing reduction.
class CsxSymKernel final : public SpmvKernel {
   public:
    /// @p sss provides both the lower-triangle structure to encode and the
    /// conflict information for the reduction index.
    CsxSymKernel(const Sss& sss, const CsxConfig& cfg, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "CSX-Sym"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override;
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;
    [[nodiscard]] ThreadPool* region_pool() const override { return &pool_; }
    void spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const CsxSymMatrix& matrix() const { return matrix_; }
    [[nodiscard]] const ReductionIndex& reduction_index() const { return index_; }

    /// See CsxSymMatrix::set_prefetch_distance.
    void set_prefetch_distance(int d) { matrix_.set_prefetch_distance(d); }
    [[nodiscard]] int prefetch_distance() const { return matrix_.prefetch_distance(); }

    /// NUMA placement: re-homes the encoded streams and each worker's local
    /// vector onto the owning workers.  Call after construction, before
    /// timing.
    void apply_partitioned_placement();

   private:
    CsxSymMatrix matrix_;
    ThreadPool& pool_;
    std::vector<aligned_vector<value_t>> locals_;
    ReductionIndex index_;
    double last_mult_seconds_ = 0.0;
};

}  // namespace symspmv::csx
