#include "csx/detect.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace symspmv::csx {
namespace {

/// Row-window size for sampled statistics (CSX samples row windows so that
/// vertical/diagonal runs inside a window are still observed).
constexpr index_t kSampleWindowRows = 64;

}  // namespace

Detector::Detector(std::span<const Triplet> elems, const CsxConfig& cfg, index_t boundary)
    : elems_(elems), cfg_(cfg), boundary_(boundary) {
    SYMSPMV_CHECK_MSG(cfg_.min_pattern_length >= 2, "CsxConfig: min_pattern_length >= 2");
    SYMSPMV_CHECK_MSG(cfg_.max_delta >= 1, "CsxConfig: max_delta >= 1");
    SYMSPMV_CHECK_MSG(cfg_.sample_fraction > 0.0 && cfg_.sample_fraction <= 1.0,
                      "CsxConfig: sample_fraction in (0,1]");
    if (!elems_.empty()) row_begin_ = elems_.front().row;
}

bool Detector::row_sampled(index_t row) const {
    if (cfg_.sample_fraction >= 1.0) return true;
    const auto window = static_cast<std::uint64_t>(row / kSampleWindowRows);
    const std::uint64_t h = window * 2654435761ULL;
    return static_cast<double>(h % 1000) < cfg_.sample_fraction * 1000.0;
}

template <typename LineOf, typename PosOf>
void Detector::scan_directional(PatternType type, LineOf line_of, PosOf pos_of,
                                std::vector<PatternStats>* stats, std::vector<bool>* consumed,
                                std::vector<DetectedUnit>* units, index_t fixed_delta) const {
    // Gather eligible element indices and sort by (line, pos): elements of a
    // run become consecutive.
    std::vector<std::uint32_t> order;
    order.reserve(elems_.size());
    for (std::uint32_t i = 0; i < elems_.size(); ++i) {
        if (consumed != nullptr && (*consumed)[i]) continue;
        if (consumed == nullptr && !row_sampled(elems_[i].row)) continue;
        order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        const auto la = line_of(elems_[a]);
        const auto lb = line_of(elems_[b]);
        if (la != lb) return la < lb;
        return pos_of(elems_[a]) < pos_of(elems_[b]);
    });

    struct DeltaStats {
        std::int64_t covered = 0;
        std::int64_t units = 0;
    };
    std::map<index_t, DeltaStats> covered_by_delta;
    std::size_t k = 0;
    while (k + 1 < order.size()) {
        const auto line = line_of(elems_[order[k]]);
        if (line_of(elems_[order[k + 1]]) != line) {
            ++k;
            continue;
        }
        const index_t d = pos_of(elems_[order[k + 1]]) - pos_of(elems_[order[k]]);
        if (d < 1 || d > cfg_.max_delta || !same_side(elems_[order[k]].col, elems_[order[k + 1]].col)) {
            ++k;
            continue;
        }
        // Extend the constant-stride run.
        std::size_t end = k + 1;
        while (end + 1 < order.size() && static_cast<int>(end - k) + 1 < kMaxUnitSize &&
               line_of(elems_[order[end + 1]]) == line &&
               pos_of(elems_[order[end + 1]]) - pos_of(elems_[order[end]]) == d &&
               same_side(elems_[order[k]].col, elems_[order[end + 1]].col)) {
            ++end;
        }
        const int len = static_cast<int>(end - k + 1);
        if (len < cfg_.min_pattern_length || (fixed_delta >= 0 && d != fixed_delta)) {
            // Too short, or not the pattern being encoded: advance one step
            // so overlapping runs with other strides are still discoverable.
            ++k;
            continue;
        }
        if (stats != nullptr) {
            covered_by_delta[d].covered += len;
            ++covered_by_delta[d].units;
        }
        if (units != nullptr) {
            DetectedUnit u;
            // The anchor is the first element in transform order; for every
            // supported type this is also the topmost-leftmost element.
            u.row = elems_[order[k]].row;
            u.col = elems_[order[k]].col;
            u.pattern = {type, d};
            u.size = len;
            u.elems.assign(order.begin() + static_cast<std::ptrdiff_t>(k),
                           order.begin() + static_cast<std::ptrdiff_t>(end + 1));
            for (std::uint32_t e : u.elems) (*consumed)[e] = true;
            units->push_back(std::move(u));
        }
        k = end + 1;
    }
    if (stats != nullptr) {
        for (const auto& [d, ds] : covered_by_delta) {
            const auto scale = [&](std::int64_t v) {
                return static_cast<std::int64_t>(static_cast<double>(v) / cfg_.sample_fraction);
            };
            stats->push_back({{type, d}, scale(ds.covered), scale(ds.units)});
        }
    }
}

void Detector::scan_blocks(int block_rows, std::vector<PatternStats>* stats,
                           std::vector<bool>* consumed, std::vector<DetectedUnit>* units) const {
    SYMSPMV_CHECK_MSG(block_rows >= 2, "scan_blocks: block height >= 2");
    const index_t r = block_rows;
    const int max_cols = kMaxUnitSize / block_rows;
    if (max_cols < 2) return;

    // Sort eligible elements by (strip, col, row): a full column of a strip
    // becomes r consecutive entries; full columns at consecutive col values
    // form a block.
    auto strip_of = [&](const Triplet& t) { return (t.row - row_begin_) / r; };
    std::vector<std::uint32_t> order;
    order.reserve(elems_.size());
    for (std::uint32_t i = 0; i < elems_.size(); ++i) {
        if (consumed != nullptr && (*consumed)[i]) continue;
        if (consumed == nullptr && !row_sampled(elems_[i].row)) continue;
        order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        const auto sa = strip_of(elems_[a]);
        const auto sb = strip_of(elems_[b]);
        if (sa != sb) return sa < sb;
        if (elems_[a].col != elems_[b].col) return elems_[a].col < elems_[b].col;
        return elems_[a].row < elems_[b].row;
    });

    // Collect full columns: (strip, col, first-order-index).
    struct FullColumn {
        index_t strip;
        index_t col;
        std::size_t first;
    };
    std::vector<FullColumn> full;
    std::size_t k = 0;
    while (k < order.size()) {
        const index_t strip = strip_of(elems_[order[k]]);
        const index_t col = elems_[order[k]].col;
        std::size_t end = k;
        while (end + 1 < order.size() && strip_of(elems_[order[end + 1]]) == strip &&
               elems_[order[end + 1]].col == col) {
            ++end;
        }
        // Full column: exactly r elements covering rows strip_start..+r-1.
        const index_t strip_start = row_begin_ + strip * r;
        if (static_cast<index_t>(end - k + 1) == r && elems_[order[k]].row == strip_start &&
            elems_[order[end]].row == strip_start + r - 1) {
            full.push_back({strip, col, k});
        }
        k = end + 1;
    }

    // Group consecutive full columns of a strip into blocks.
    std::int64_t covered = 0;
    std::int64_t unit_count = 0;
    std::size_t f = 0;
    while (f < full.size()) {
        std::size_t g = f;
        while (g + 1 < full.size() && full[g + 1].strip == full[f].strip &&
               full[g + 1].col == full[g].col + 1 &&
               static_cast<int>(g - f + 2) <= max_cols &&
               same_side(full[f].col, full[g + 1].col)) {
            ++g;
        }
        const int cols = static_cast<int>(g - f + 1);
        if (cols >= 2) {
            covered += static_cast<std::int64_t>(cols) * r;
            ++unit_count;
            if (units != nullptr) {
                DetectedUnit u;
                u.row = row_begin_ + full[f].strip * r;
                u.col = full[f].col;
                u.pattern = {PatternType::kBlock, r};
                u.size = cols * r;
                for (std::size_t c = f; c <= g; ++c) {
                    for (index_t e = 0; e < r; ++e) {
                        const std::uint32_t idx = order[full[c].first + static_cast<std::size_t>(e)];
                        u.elems.push_back(idx);
                        (*consumed)[idx] = true;
                    }
                }
                units->push_back(std::move(u));
            }
        }
        f = g + 1;
    }
    if (stats != nullptr && covered > 0) {
        const auto scale = [&](std::int64_t v) {
            return static_cast<std::int64_t>(static_cast<double>(v) / cfg_.sample_fraction);
        };
        stats->push_back({{PatternType::kBlock, r}, scale(covered), scale(unit_count)});
    }
}

std::vector<PatternStats> Detector::collect_stats() const {
    std::vector<PatternStats> stats;
    const auto line_row = [](const Triplet& t) { return t.row; };
    const auto line_col = [](const Triplet& t) { return t.col; };
    const auto line_diag = [](const Triplet& t) { return t.col - t.row; };
    const auto line_adiag = [](const Triplet& t) { return t.col + t.row; };
    const auto pos_row = [](const Triplet& t) { return t.row; };
    const auto pos_col = [](const Triplet& t) { return t.col; };
    if (cfg_.horizontal) {
        scan_directional(PatternType::kHorizontal, line_row, pos_col, &stats, nullptr, nullptr, -1);
    }
    if (cfg_.vertical) {
        scan_directional(PatternType::kVertical, line_col, pos_row, &stats, nullptr, nullptr, -1);
    }
    if (cfg_.diagonal) {
        scan_directional(PatternType::kDiagonal, line_diag, pos_row, &stats, nullptr, nullptr, -1);
    }
    if (cfg_.antidiagonal) {
        scan_directional(PatternType::kAntiDiagonal, line_adiag, pos_row, &stats, nullptr, nullptr,
                         -1);
    }
    if (cfg_.blocks) {
        for (int r : cfg_.block_rows) scan_blocks(r, &stats, nullptr, nullptr);
    }
    std::sort(stats.begin(), stats.end(), [](const PatternStats& a, const PatternStats& b) {
        if (a.savings() != b.savings()) return a.savings() > b.savings();
        return a.pattern < b.pattern;
    });
    return stats;
}

std::vector<Pattern> Detector::select_patterns() const {
    const auto stats = collect_stats();
    const auto threshold = static_cast<std::int64_t>(
        cfg_.min_coverage * static_cast<double>(elems_.size()));
    std::vector<Pattern> selected;
    const std::size_t table_capacity = kMaxTableId - kFirstTableId + 1;
    for (const PatternStats& s : stats) {
        if (s.covered < threshold || s.covered < cfg_.min_pattern_length) continue;
        selected.push_back(s.pattern);
        if (selected.size() == table_capacity) break;
    }
    return selected;
}

Detector::EncodeResult Detector::encode_units(std::span<const Pattern> selected) const {
    EncodeResult result;
    result.consumed.assign(elems_.size(), false);
    const auto line_row = [](const Triplet& t) { return t.row; };
    const auto line_col = [](const Triplet& t) { return t.col; };
    const auto line_diag = [](const Triplet& t) { return t.col - t.row; };
    const auto line_adiag = [](const Triplet& t) { return t.col + t.row; };
    const auto pos_row = [](const Triplet& t) { return t.row; };
    const auto pos_col = [](const Triplet& t) { return t.col; };
    for (const Pattern& p : selected) {
        switch (p.type) {
            case PatternType::kHorizontal:
                scan_directional(p.type, line_row, pos_col, nullptr, &result.consumed,
                                 &result.units, p.delta);
                break;
            case PatternType::kVertical:
                scan_directional(p.type, line_col, pos_row, nullptr, &result.consumed,
                                 &result.units, p.delta);
                break;
            case PatternType::kDiagonal:
                scan_directional(p.type, line_diag, pos_row, nullptr, &result.consumed,
                                 &result.units, p.delta);
                break;
            case PatternType::kAntiDiagonal:
                scan_directional(p.type, line_adiag, pos_row, nullptr, &result.consumed,
                                 &result.units, p.delta);
                break;
            case PatternType::kBlock:
                scan_blocks(static_cast<int>(p.delta), nullptr, &result.consumed, &result.units);
                break;
            default:
                throw InvalidArgument("delta units cannot be selected patterns");
        }
    }
    return result;
}

}  // namespace symspmv::csx
