// CSX substructure detection (§IV.A).
//
// Detection follows the CSX approach: for every candidate pattern type the
// partition's coordinates are transformed so that elements of that pattern
// become consecutive in sort order, then maximal constant-stride runs are
// collected.  A statistics pass (optionally row-sampled, like CSX's matrix
// sampling) ranks the pattern types; the encoding pass then materializes
// units greedily in rank order, each element consumed at most once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "csx/pattern.hpp"

namespace symspmv::csx {

/// Tuning knobs of the CSX preprocessing (DESIGN.md §6 lists the ablations).
struct CsxConfig {
    int min_pattern_length = 4;   // shortest run encoded as a substructure
    index_t max_delta = 64;       // largest stride considered
    bool horizontal = true;
    bool vertical = true;
    bool diagonal = true;
    bool antidiagonal = true;
    bool blocks = true;
    std::vector<int> block_rows = {2, 3, 4, 6, 8};
    double min_coverage = 0.05;   // fraction of partition nnz to justify a pattern
    double sample_fraction = 1.0; // row-window fraction used for statistics
};

/// Configuration with every substructure pattern disabled: only delta units
/// remain, which degenerates CSX into the CSR-DU format (Kourtis et al.'s
/// delta-unit column-index compression, the predecessor of CSX).
[[nodiscard]] inline CsxConfig delta_only_config() {
    CsxConfig cfg;
    cfg.horizontal = false;
    cfg.vertical = false;
    cfg.diagonal = false;
    cfg.antidiagonal = false;
    cfg.blocks = false;
    return cfg;
}

/// Coverage statistics of one candidate pattern.
struct PatternStats {
    Pattern pattern;
    std::int64_t covered = 0;  // elements coverable by this pattern
    std::int64_t units = 0;    // number of units those elements would form

    /// Ranking score: elements covered minus the ~3-byte ctl head paid per
    /// unit.  This prefers block units (many elements per head) over
    /// horizontal runs of the same raw coverage, mirroring CSX's preference
    /// for the encoding that actually shrinks the ctl stream the most.
    [[nodiscard]] std::int64_t savings() const { return covered - 3 * units; }
};

/// One detected unit: `size` elements starting at (row, col); `elems` holds
/// indices into the partition's element array in storage order (the order
/// the values array will use).
struct DetectedUnit {
    index_t row = 0;
    index_t col = 0;
    Pattern pattern;
    int size = 0;
    std::vector<std::uint32_t> elems;
};

class Detector {
   public:
    /// @p elems: the partition's elements, canonical row-major order.
    /// @p boundary: if >= 0, no unit may span columns on both sides of this
    /// column (the CSX-Sym local-vs-direct write rule, §IV.B); -1 disables.
    Detector(std::span<const Triplet> elems, const CsxConfig& cfg, index_t boundary = -1);

    /// Statistics pass over all enabled pattern types, sorted by coverage
    /// (descending).  Honors cfg.sample_fraction.
    [[nodiscard]] std::vector<PatternStats> collect_stats() const;

    /// Selects the patterns to encode: coverage filter + table-size cap.
    [[nodiscard]] std::vector<Pattern> select_patterns() const;

    /// Materializes substructure units for @p selected (in priority order).
    /// Elements not covered by any unit are left for delta units; the
    /// returned mask marks consumed elements.
    struct EncodeResult {
        std::vector<DetectedUnit> units;
        std::vector<bool> consumed;
    };
    [[nodiscard]] EncodeResult encode_units(std::span<const Pattern> selected) const;

   private:
    template <typename LineOf, typename PosOf>
    void scan_directional(PatternType type, LineOf line_of, PosOf pos_of,
                          std::vector<PatternStats>* stats, std::vector<bool>* consumed,
                          std::vector<DetectedUnit>* units, index_t fixed_delta) const;

    void scan_blocks(int block_rows, std::vector<PatternStats>* stats,
                     std::vector<bool>* consumed, std::vector<DetectedUnit>* units) const;

    [[nodiscard]] bool same_side(index_t col_a, index_t col_b) const {
        if (boundary_ < 0) return true;
        return (col_a < boundary_) == (col_b < boundary_);
    }

    [[nodiscard]] bool row_sampled(index_t row) const;

    std::span<const Triplet> elems_;
    CsxConfig cfg_;
    index_t boundary_;
    index_t row_begin_ = 0;  // first row of the partition (block alignment)
};

}  // namespace symspmv::csx
