// CSX-Sym: the symmetric CSX variant (§IV.B).
//
// Substructures are detected only in the strictly lower triangle; the main
// diagonal lives in a separate dvalues array (like SSS).  Each encoded unit
// additionally performs the mirrored (transposed) updates.  The §IV.B rule
// is enforced at encode time: a unit's columns must lie entirely below the
// owning partition's start row (mirrored writes go to the local vector) or
// entirely inside it (mirrored writes go directly to the output vector), so
// execution never needs a per-element branch.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/types.hpp"
#include "csx/builder.hpp"
#include "csx/csx_matrix.hpp"
#include "csx/detect.hpp"
#include "matrix/sss.hpp"

namespace symspmv::csx {

class CsxSymMatrix {
   public:
    /// Builds from an SSS matrix (lower triangle + diagonal), split row-wise
    /// into @p partitions of approximately equal stored non-zero count.
    CsxSymMatrix(const Sss& sss, const CsxConfig& cfg, int partitions);

    [[nodiscard]] index_t rows() const { return n_; }

    /// Non-zeros of the full symmetric matrix.
    [[nodiscard]] std::int64_t nnz() const { return full_nnz_; }

    [[nodiscard]] int partitions() const { return static_cast<int>(parts_.size()); }
    [[nodiscard]] const RowRange& partition_rows(int pid) const {
        return parts_[static_cast<std::size_t>(pid)];
    }
    [[nodiscard]] std::span<const RowRange> partition_spans() const { return parts_; }
    [[nodiscard]] const EncodedPartition& partition(int pid) const {
        return encoded_[static_cast<std::size_t>(pid)];
    }
    [[nodiscard]] std::span<const Pattern> table() const { return table_; }
    [[nodiscard]] std::span<const value_t> dvalues() const { return dvalues_; }

    /// ctl + values + dvalues bytes (matrix representation only; reduction
    /// side structures are accounted by the kernel, as in Table I).
    [[nodiscard]] std::size_t size_bytes() const;

    [[nodiscard]] double preprocess_seconds() const { return preprocess_seconds_; }
    [[nodiscard]] std::map<Pattern, std::int64_t> coverage() const;

    /// Multiply phase for partition @p pid: writes the partition's own rows
    /// of @p y directly and the mirrored products below the partition start
    /// into @p local (the thread's local vector, size >= partition start).
    void spmv_partition(int pid, std::span<const value_t> x, std::span<value_t> y,
                        std::span<value_t> local) const;

    /// Software-prefetch distance over the compressed values stream, in
    /// elements, hinted once per encoded unit (the ctl stream is opaque
    /// ahead of the cursor, so the values stream is the only address known
    /// early).  0 = off; the autotuner learns the value.
    void set_prefetch_distance(int d) { prefetch_distance_ = d < 0 ? 0 : d; }
    [[nodiscard]] int prefetch_distance() const { return prefetch_distance_; }

    /// NUMA first-touch re-home: each worker of @p pool copies its own
    /// partition's ctl/values streams (and its rows of dvalues) so their
    /// pages land on the node that executes the partition.  Requires one
    /// worker per partition; no-op otherwise.
    void rehome(ThreadPool& pool);

   private:
    index_t n_ = 0;
    std::int64_t full_nnz_ = 0;
    std::vector<RowRange> parts_;
    std::vector<Pattern> table_;
    std::vector<EncodedPartition> encoded_;
    aligned_vector<value_t> dvalues_;
    int prefetch_distance_ = 0;
    double preprocess_seconds_ = 0.0;
};

}  // namespace symspmv::csx
