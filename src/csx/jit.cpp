#include "csx/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::csx {

namespace {

/// First compiler on PATH, or "" when none works.
std::string find_compiler() {
    for (const char* cc : {"cc", "gcc", "clang"}) {
        const std::string probe = std::string("command -v ") + cc + " >/dev/null 2>&1";
        if (std::system(probe.c_str()) == 0) return cc;
    }
    return {};
}

const std::string& compiler() {
    static const std::string cc = find_compiler();
    return cc;
}

/// Emits the specialized case for pattern-table entry @p t (unit id t+3).
/// Mirrors the interpreter in csx_matrix.cpp case for case, but with the
/// pattern type and stride folded into the source as literals.
void emit_pattern_case(std::ostream& os, std::size_t t, const Pattern& p) {
    const int id = static_cast<int>(t) + kFirstTableId;
    const long d = p.delta;
    os << "    case " << id << ": { /* " << to_string(p) << " */\n";
    switch (p.type) {
        case PatternType::kHorizontal:
            os << "      double acc = 0.0; long c = ucol;\n"
               << "      for (int k = 0; k < usize; ++k) { acc += va[vpos++] * x[c]; c += " << d
               << "; }\n"
               << "      y[cur_row] += acc; cur_col = ucol + (long)(usize - 1) * " << d
               << " + 1;\n";
            break;
        case PatternType::kVertical:
            os << "      const double xc = x[ucol]; long r = cur_row;\n"
               << "      for (int k = 0; k < usize; ++k) { y[r] += va[vpos++] * xc; r += " << d
               << "; }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        case PatternType::kDiagonal:
            os << "      long r = cur_row; long c = ucol;\n"
               << "      for (int k = 0; k < usize; ++k) { y[r] += va[vpos++] * x[c]; r += " << d
               << "; c += " << d << "; }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        case PatternType::kAntiDiagonal:
            os << "      long r = cur_row; long c = ucol;\n"
               << "      for (int k = 0; k < usize; ++k) { y[r] += va[vpos++] * x[c]; r += " << d
               << "; c -= " << d << "; }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        case PatternType::kBlock:
            os << "      const int bcols = usize / " << d << ";\n"
               << "      for (int b = 0; b < bcols; ++b) {\n"
               << "        const double xc = x[ucol + b];\n"
               << "        for (int a = 0; a < " << d << "; ++a) y[cur_row + a] += va[vpos++] * xc;\n"
               << "      }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        default:
            throw InternalError("jit: delta pattern in table");
    }
    os << "      break; }\n";
}

/// Emits the symmetric (mirroring) case for table entry @p t, mirroring
/// CsxSymMatrix::spmv_partition case for case.
void emit_sym_pattern_case(std::ostream& os, std::size_t t, const Pattern& p) {
    const int id = static_cast<int>(t) + kFirstTableId;
    const long d = p.delta;
    os << "    case " << id << ": { /* sym " << to_string(p) << " */\n";
    switch (p.type) {
        case PatternType::kHorizontal:
            os << "      const double xr = x[cur_row]; double acc = 0.0; long c = ucol;\n"
               << "      for (int k = 0; k < usize; ++k) { const double v = va[vpos++];\n"
               << "        acc += v * x[c]; mv[c] += v * xr; c += " << d << "; }\n"
               << "      y[cur_row] += acc; cur_col = ucol + (long)(usize - 1) * " << d
               << " + 1;\n";
            break;
        case PatternType::kVertical:
            os << "      const double xc = x[ucol]; double macc = 0.0; long r = cur_row;\n"
               << "      for (int k = 0; k < usize; ++k) { const double v = va[vpos++];\n"
               << "        y[r] += v * xc; macc += v * x[r]; r += " << d << "; }\n"
               << "      mv[ucol] += macc; cur_col = ucol + 1;\n";
            break;
        case PatternType::kDiagonal:
            os << "      long r = cur_row; long c = ucol;\n"
               << "      for (int k = 0; k < usize; ++k) { const double v = va[vpos++];\n"
               << "        y[r] += v * x[c]; mv[c] += v * x[r]; r += " << d << "; c += " << d
               << "; }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        case PatternType::kAntiDiagonal:
            os << "      long r = cur_row; long c = ucol;\n"
               << "      for (int k = 0; k < usize; ++k) { const double v = va[vpos++];\n"
               << "        y[r] += v * x[c]; mv[c] += v * x[r]; r += " << d << "; c -= " << d
               << "; }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        case PatternType::kBlock:
            os << "      const int bcols = usize / " << d << ";\n"
               << "      for (int b = 0; b < bcols; ++b) {\n"
               << "        const long c = ucol + b; const double xc = x[c]; double macc = 0.0;\n"
               << "        for (int a = 0; a < " << d << "; ++a) { const double v = va[vpos++];\n"
               << "          y[cur_row + a] += v * xc; macc += v * x[cur_row + a]; }\n"
               << "        mv[c] += macc;\n"
               << "      }\n"
               << "      cur_col = ucol + 1;\n";
            break;
        default:
            throw InternalError("jit: delta pattern in table");
    }
    os << "      break; }\n";
}

}  // namespace

std::string generate_kernel_source(std::span<const Pattern> table) {
    std::ostringstream os;
    os << "/* symspmv: runtime-generated CSX kernel (" << table.size()
       << " specialized pattern cases) */\n"
          "#include <stddef.h>\n"
          "#include <stdint.h>\n"
          "#include <string.h>\n"
          "\n"
          "static uint64_t read_uvarint(const uint8_t* d, size_t* pos) {\n"
          "  uint64_t v = 0; int shift = 0;\n"
          "  for (;;) {\n"
          "    const uint8_t b = d[(*pos)++];\n"
          "    v |= (uint64_t)(b & 0x7F) << shift;\n"
          "    if ((b & 0x80) == 0) break;\n"
          "    shift += 7;\n"
          "  }\n"
          "  return v;\n"
          "}\n"
          "\n"
          "static int64_t read_svarint(const uint8_t* d, size_t* pos) {\n"
          "  const uint64_t v = read_uvarint(d, pos);\n"
          "  return (int64_t)(v >> 1) ^ -(int64_t)(v & 1);\n"
          "}\n"
          "\n"
          "void csx_spmv(const uint8_t* ctl, size_t ctl_len, const double* va,\n"
          "              int32_t row_begin, int32_t row_end, const double* restrict x,\n"
          "              double* restrict y) {\n"
          "  for (int32_t r = row_begin; r < row_end; ++r) y[r] = 0.0;\n"
          "  size_t pos = 0, vpos = 0;\n"
          "  long cur_row = row_begin, cur_col = 0;\n"
          "  while (pos < ctl_len) {\n"
          "    const uint8_t flags = ctl[pos++];\n"
          "    if (flags & 0x80) {\n"
          "      long jump = 1;\n"
          "      if (flags & 0x40) jump = (long)read_uvarint(ctl, &pos);\n"
          "      cur_row += jump; cur_col = 0;\n"
          "    }\n"
          "    const int uid = flags & 0x3F;\n"
          "    const int usize = ctl[pos++];\n"
          "    cur_col += (long)read_svarint(ctl, &pos);\n"
          "    const long ucol = cur_col;\n"
          "    switch (uid) {\n"
          "    case 0: { /* delta8 */\n"
          "      long c = ucol; double acc = va[vpos++] * x[c];\n"
          "      for (int k = 0; k < usize - 1; ++k) { c += ctl[pos + (size_t)k];\n"
          "        acc += va[vpos++] * x[c]; }\n"
          "      pos += (size_t)(usize - 1); y[cur_row] += acc; cur_col = c + 1;\n"
          "      break; }\n"
          "    case 1: { /* delta16 */\n"
          "      long c = ucol; double acc = va[vpos++] * x[c];\n"
          "      for (int k = 0; k < usize - 1; ++k) { uint16_t dlt;\n"
          "        memcpy(&dlt, ctl + pos + (size_t)k * 2, 2); c += dlt;\n"
          "        acc += va[vpos++] * x[c]; }\n"
          "      pos += (size_t)(usize - 1) * 2; y[cur_row] += acc; cur_col = c + 1;\n"
          "      break; }\n"
          "    case 2: { /* delta32 */\n"
          "      long c = ucol; double acc = va[vpos++] * x[c];\n"
          "      for (int k = 0; k < usize - 1; ++k) { uint32_t dlt;\n"
          "        memcpy(&dlt, ctl + pos + (size_t)k * 4, 4); c += dlt;\n"
          "        acc += va[vpos++] * x[c]; }\n"
          "      pos += (size_t)(usize - 1) * 4; y[cur_row] += acc; cur_col = c + 1;\n"
          "      break; }\n";
    for (std::size_t t = 0; t < table.size(); ++t) emit_pattern_case(os, t, table[t]);
    os << "    default: return; /* corrupt stream: ids are validated at encode time */\n"
          "    }\n"
          "  }\n"
          "}\n"
          "\n"
          "void csx_sym_spmv(const uint8_t* ctl, size_t ctl_len, const double* va,\n"
          "                  const double* dvalues, int32_t row_begin, int32_t row_end,\n"
          "                  const double* restrict x, double* restrict y,\n"
          "                  double* restrict local) {\n"
          "  for (int32_t r = row_begin; r < row_end; ++r) y[r] = dvalues[r] * x[r];\n"
          "  size_t pos = 0, vpos = 0;\n"
          "  long cur_row = row_begin, cur_col = 0;\n"
          "  while (pos < ctl_len) {\n"
          "    const uint8_t flags = ctl[pos++];\n"
          "    if (flags & 0x80) {\n"
          "      long jump = 1;\n"
          "      if (flags & 0x40) jump = (long)read_uvarint(ctl, &pos);\n"
          "      cur_row += jump; cur_col = 0;\n"
          "    }\n"
          "    const int uid = flags & 0x3F;\n"
          "    const int usize = ctl[pos++];\n"
          "    cur_col += (long)read_svarint(ctl, &pos);\n"
          "    const long ucol = cur_col;\n"
          "    /* one-side-per-unit (IV.B): pick the mirror target once */\n"
          "    double* restrict mv = (ucol < row_begin) ? local : y;\n"
          "    switch (uid) {\n"
          "    case 0: case 1: case 2: { /* delta units */\n"
          "      long c = ucol; const double xr = x[cur_row]; double acc = 0.0;\n"
          "      const int width = (uid == 0) ? 1 : (uid == 1) ? 2 : 4;\n"
          "      for (int k = 0;; ++k) {\n"
          "        const double v = va[vpos++];\n"
          "        acc += v * x[c]; mv[c] += v * xr;\n"
          "        if (k == usize - 1) break;\n"
          "        if (uid == 0) { c += ctl[pos + (size_t)k]; }\n"
          "        else if (uid == 1) { uint16_t dlt; memcpy(&dlt, ctl + pos + (size_t)k * 2, 2);"
          " c += dlt; }\n"
          "        else { uint32_t dlt; memcpy(&dlt, ctl + pos + (size_t)k * 4, 4); c += dlt; }\n"
          "      }\n"
          "      pos += (size_t)(usize - 1) * (size_t)width;\n"
          "      y[cur_row] += acc; cur_col = c + 1;\n"
          "      break; }\n";
    for (std::size_t t = 0; t < table.size(); ++t) emit_sym_pattern_case(os, t, table[t]);
    os << "    default: return;\n"
          "    }\n"
          "  }\n"
          "}\n";
    return os.str();
}

bool JitModule::compiler_available() { return !compiler().empty(); }

JitModule::JitModule(std::span<const Pattern> table) {
    SYMSPMV_CHECK_MSG(compiler_available(), "jit: no C compiler on PATH");
    Timer t;
    source_ = generate_kernel_source(table);

    // Unique temp names per process + module.
    char c_path[] = "/tmp/symspmv_jit_XXXXXX.c";
    const int fd = ::mkstemps(c_path, 2);
    SYMSPMV_CHECK_MSG(fd >= 0, "jit: cannot create temp source file");
    {
        std::ofstream out(c_path);
        out << source_;
    }
    ::close(fd);
    so_path_ = std::string(c_path, sizeof(c_path) - 3) + ".so";

    const std::string cmd = compiler() + " -O2 -shared -fPIC -o " + so_path_ + " " + c_path +
                            " 2>/dev/null";
    const int rc = std::system(cmd.c_str());
    ::unlink(c_path);
    SYMSPMV_CHECK_MSG(rc == 0, "jit: compilation failed");

    handle_ = ::dlopen(so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
    SYMSPMV_CHECK_MSG(handle_ != nullptr, "jit: dlopen failed");
    fn_ = reinterpret_cast<JitSpmvFn>(::dlsym(handle_, "csx_spmv"));
    SYMSPMV_CHECK_MSG(fn_ != nullptr, "jit: csx_spmv symbol missing");
    sym_fn_ = reinterpret_cast<JitSymSpmvFn>(::dlsym(handle_, "csx_sym_spmv"));
    SYMSPMV_CHECK_MSG(sym_fn_ != nullptr, "jit: csx_sym_spmv symbol missing");
    compile_seconds_ = t.seconds();
}

JitModule::~JitModule() {
    if (handle_ != nullptr) ::dlclose(handle_);
    if (!so_path_.empty()) ::unlink(so_path_.c_str());
}

CsxJitKernel::CsxJitKernel(const Csr& full, const CsxConfig& cfg, ThreadPool& pool)
    : matrix_(full, cfg, pool.size()), module_(matrix_.table()), pool_(pool) {}

void CsxJitKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    const JitSpmvFn fn = module_.fn();
    pool_.run([&](int tid) {
        const EncodedPartition& part = matrix_.partition(tid);
        fn(part.ctl.data(), part.ctl.size(), part.values.data(), part.row_begin, part.row_end,
           x.data(), y.data());
    });
    phases_ = {t.seconds(), 0.0};
}

CsxSymJitKernel::CsxSymJitKernel(const Sss& sss, const CsxConfig& cfg, ThreadPool& pool)
    : matrix_(sss, cfg, pool.size()), module_(matrix_.table()), pool_(pool) {
    index_ = ReductionIndex(sss, matrix_.partition_spans());
    locals_.resize(static_cast<std::size_t>(pool_.size()));
    for (int i = 0; i < pool_.size(); ++i) {
        locals_[static_cast<std::size_t>(i)].assign(
            static_cast<std::size_t>(matrix_.partition_rows(i).begin), value_t{0});
    }
}

std::size_t CsxSymJitKernel::footprint_bytes() const {
    std::size_t bytes = matrix_.size_bytes() + index_.bytes();
    for (const auto& v : locals_) bytes += v.size() * kValueBytes;
    return bytes;
}

void CsxSymJitKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    const JitSymSpmvFn fn = module_.sym_fn();
    pool_.run([&](int tid) {
        Timer t;
        const EncodedPartition& part = matrix_.partition(tid);
        fn(part.ctl.data(), part.ctl.size(), part.values.data(), matrix_.dvalues().data(),
           part.row_begin, part.row_end, x.data(), y.data(),
           locals_[static_cast<std::size_t>(tid)].data());
        pool_.barrier();
        if (tid == 0) last_mult_seconds_ = t.seconds();
        apply_reduction_index(index_, locals_, y, tid);
    });
    const double total_seconds = total.seconds();
    phases_ = {last_mult_seconds_, std::max(0.0, total_seconds - last_mult_seconds_)};
}

}  // namespace symspmv::csx
