#include "csx/kernels.hpp"

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::csx {

CsxMtKernel::CsxMtKernel(const Csr& full, const CsxConfig& cfg, ThreadPool& pool,
                         std::string name)
    : matrix_(full, cfg, pool.size()), pool_(pool), name_(std::move(name)) {}

void CsxMtKernel::spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) {
    Timer tm;
    matrix_.spmv_partition(tid, x, y);
    if (profiler_ != nullptr) profiler_->record(tid, Phase::kMultiply, tm.seconds());
}

void CsxMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    pool_.run([&](int tid) { spmv_region(tid, x, y); });
    phases_ = {t.seconds(), 0.0};
}

CsxSymKernel::CsxSymKernel(const Sss& sss, const CsxConfig& cfg, ThreadPool& pool)
    : matrix_(sss, cfg, pool.size()), pool_(pool) {
    index_ = ReductionIndex(sss, matrix_.partition_spans());
    locals_.resize(static_cast<std::size_t>(pool_.size()));
    for (int i = 0; i < pool_.size(); ++i) {
        locals_[static_cast<std::size_t>(i)].assign(
            static_cast<std::size_t>(matrix_.partition_rows(i).begin), value_t{0});
    }
}

void CsxSymKernel::apply_partitioned_placement() {
    matrix_.rehome(pool_);
    pool_.run([&](int tid) {
        // Each worker re-touches its own local vector (built by the
        // constructing thread) so its pages live on the worker's node.
        auto& local = locals_[static_cast<std::size_t>(tid)];
        aligned_vector<value_t> fresh(local.begin(), local.end());
        local.swap(fresh);
    });
}

std::size_t CsxSymKernel::footprint_bytes() const {
    std::size_t bytes = matrix_.size_bytes() + index_.bytes();
    for (const auto& v : locals_) bytes += v.size() * kValueBytes;
    return bytes;
}

void CsxSymKernel::spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) {
    Timer t;
    matrix_.spmv_partition(tid, x, y, locals_[static_cast<std::size_t>(tid)]);
    // Sample the multiply time BEFORE the barrier so the slowest thread's
    // barrier wait is never charged to the multiply phase.
    const double mult_seconds = t.seconds();
    if (tid == 0) last_mult_seconds_ = mult_seconds;
    if (profiler_ != nullptr) {
        profiler_->record(tid, Phase::kMultiply, mult_seconds);
        pool_.barrier(*profiler_, tid);
    } else {
        pool_.barrier();
    }
    Timer tr;
    apply_reduction_index(index_, locals_, y, tid);
    if (profiler_ != nullptr) profiler_->record(tid, Phase::kReduction, tr.seconds());
}

void CsxSymKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    pool_.run([&](int tid) { spmv_region(tid, x, y); });
    const double total_seconds = total.seconds();
    phases_ = {last_mult_seconds_, std::max(0.0, total_seconds - last_mult_seconds_)};
}

}  // namespace symspmv::csx
