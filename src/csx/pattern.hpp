// CSX substructure model (§IV.A, Fig. 6).
//
// A CSX unit is either a delta unit (a run of column deltas representable in
// 8/16/32 bits) or a substructure unit drawn from the per-matrix pattern
// table: horizontal / vertical / diagonal / anti-diagonal runs with a fixed
// element stride, or row-aligned dense blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace symspmv::csx {

enum class PatternType : std::uint8_t {
    kDelta8 = 0,    // body: (size-1) 8-bit column deltas
    kDelta16 = 1,   // body: (size-1) 16-bit column deltas
    kDelta32 = 2,   // body: (size-1) 32-bit column deltas
    kHorizontal,    // (i, j+k*d), k = 0..size-1
    kVertical,      // (i+k*d, j)
    kDiagonal,      // (i+k*d, j+k*d)
    kAntiDiagonal,  // (i+k*d, j-k*d)
    kBlock,         // dense r x c block anchored at (i, j), column-major;
                    // `delta` holds r, the column count is size / r
};

/// True for the three built-in delta unit kinds.
[[nodiscard]] constexpr bool is_delta(PatternType t) {
    return t == PatternType::kDelta8 || t == PatternType::kDelta16 || t == PatternType::kDelta32;
}

/// One pattern-table entry: a substructure type with its stride (or block
/// row count).  Delta units are built-in and never appear in the table.
struct Pattern {
    PatternType type = PatternType::kHorizontal;
    index_t delta = 1;

    friend bool operator==(const Pattern&, const Pattern&) = default;
    friend auto operator<=>(const Pattern&, const Pattern&) = default;
};

[[nodiscard]] std::string to_string(PatternType t);
[[nodiscard]] std::string to_string(const Pattern& p);

/// ctl flags-byte layout: bit 7 = new row, bit 6 = row jump follows,
/// bits 0-5 = unit id (0-2 built-in delta units, 3+ pattern-table index).
inline constexpr std::uint8_t kCtlNewRow = 0x80;
inline constexpr std::uint8_t kCtlRowJump = 0x40;
inline constexpr std::uint8_t kCtlIdMask = 0x3F;
inline constexpr int kFirstTableId = 3;
inline constexpr int kMaxTableId = 63;
/// Maximum elements per unit (the size field is one byte).
inline constexpr int kMaxUnitSize = 255;

}  // namespace symspmv::csx
