// Variable-length integer coding for the CSX ctl byte stream.
//
// CSX stores column indices "as a delta distance from the previous column in
// a variable size integer" (§IV.A).  Unit-start column deltas can be
// negative (a unit may be anchored left of where the previous unit ended),
// so those use zigzag-mapped LEB128; all other quantities are unsigned
// LEB128.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace symspmv::csx {

/// Appends @p v as unsigned LEB128 to @p out.
inline void write_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/// Reads an unsigned LEB128 value, advancing @p pos.
inline std::uint64_t read_uvarint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        SYMSPMV_CHECK_MSG(pos < size, "varint: truncated stream");
        const std::uint8_t byte = data[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
        SYMSPMV_CHECK_MSG(shift < 64, "varint: overlong encoding");
    }
    return v;
}

/// Zigzag mapping: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
inline std::uint64_t zigzag_encode(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
    return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Appends @p v as zigzag LEB128.
inline void write_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
    write_uvarint(out, zigzag_encode(v));
}

/// Reads a zigzag LEB128 value, advancing @p pos.
inline std::int64_t read_svarint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
    return zigzag_decode(read_uvarint(data, size, pos));
}

}  // namespace symspmv::csx
