// Local-vectors reduction machinery for the symmetric SpM×V (§III).
//
// Three methods are modelled:
//  - naive (Alg. 3):       p full-length local vectors, O(pN) reduction.
//  - effective ranges [7]: thread i writes rows [0, start_i) to its local
//                          vector and its own rows directly; reduction scans
//                          the effective regions, ws ≈ 4(p-1)N (Eq. 4).
//  - indexing (§III.C):    a (vid, idx) conflict index enumerates only the
//                          local-vector elements actually written,
//                          ws ≈ 8(p-1)Nd with d the effective-region density
//                          (Eqs. 5-6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "matrix/sss.hpp"

namespace symspmv {

/// One conflict-index entry: local vector `vid` has a non-zero at row `idx`.
/// Matches the paper's layout: four bytes for idx (matrix index size) and —
/// generously, like the paper — four bytes for vid.
struct ReductionEntry {
    index_t idx;
    std::int32_t vid;

    friend bool operator==(const ReductionEntry&, const ReductionEntry&) = default;
};
static_assert(sizeof(ReductionEntry) == 8);

/// The non-zero index over the effective regions of the local vectors.
class ReductionIndex {
   public:
    ReductionIndex() = default;

    /// Builds the index for @p sss partitioned as @p parts: for every thread
    /// i, the distinct column indices below start_i appearing in its
    /// partition are exactly the local-vector rows the multiply phase will
    /// write.  Entries are sorted by idx (the paper's parallelization key)
    /// and split into `parts.size()` chunks such that no idx value is shared
    /// between chunks, guaranteeing independent final-vector updates.
    ReductionIndex(const Sss& sss, std::span<const RowRange> parts);

    [[nodiscard]] std::span<const ReductionEntry> entries() const { return entries_; }

    /// Chunk bounds for parallel reduction: thread t owns entries
    /// [chunk_ptr()[t], chunk_ptr()[t+1]).
    [[nodiscard]] std::span<const std::size_t> chunk_ptr() const { return chunk_ptr_; }

    /// Total size of all effective regions: sum_i start_i rows.
    [[nodiscard]] std::int64_t effective_region_rows() const { return effective_rows_; }

    /// Density d of the effective regions (Fig. 4): indexed entries divided
    /// by the total effective-region size.  Zero when there are no regions.
    [[nodiscard]] double density() const;

    /// Bytes of the index structure itself.
    [[nodiscard]] std::size_t bytes() const { return entries_.size() * sizeof(ReductionEntry); }

   private:
    std::vector<ReductionEntry> entries_;
    std::vector<std::size_t> chunk_ptr_;
    std::int64_t effective_rows_ = 0;
};

/// Working-set overhead in bytes of the reduction phase for each method,
/// both the paper's analytic models (Eqs. 3-6) and the exact measured values
/// for a concrete matrix/partitioning.  Used by the Fig. 5 bench.
struct ReductionWorkingSet {
    std::int64_t naive = 0;            // 8*p*N (Eq. 3)
    std::int64_t effective = 0;        // 8 * sum_i start_i (≈ Eq. 4)
    std::int64_t indexing = 0;         // index pairs + touched values (Eq. 5)
    double density = 0.0;              // measured effective-region density
};

ReductionWorkingSet reduction_working_set(const Sss& sss, std::span<const RowRange> parts);

/// Applies chunk @p tid of the reduction index: accumulates the indexed
/// local-vector elements into @p y and re-zeroes them (so the next multiply
/// phase starts from clean local vectors without an O(N) sweep).  Shared by
/// the SSS-idx and CSX-Sym kernels.
template <typename Locals>
inline void apply_reduction_index(const ReductionIndex& index, Locals& locals,
                                  std::span<value_t> y, int tid) {
    const auto entries = index.entries();
    const auto chunks = index.chunk_ptr();
    value_t* __restrict yv = y.data();
    for (std::size_t k = chunks[static_cast<std::size_t>(tid)];
         k < chunks[static_cast<std::size_t>(tid) + 1]; ++k) {
        const ReductionEntry e = entries[k];
        value_t* __restrict local = locals[static_cast<std::size_t>(e.vid)].data();
        yv[e.idx] += local[e.idx];
        local[e.idx] = value_t{0};
    }
}

}  // namespace symspmv
