#include "spmv/baseline_kernels.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv {

EllpackMtKernel::EllpackMtKernel(Ellpack matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)),
      pool_(pool),
      parts_(split_even(matrix_.rows(), pool.size())) {}

void EllpackMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        matrix_.spmv_rows(part.begin, part.end, x, y);
    });
    phases_ = {t.seconds(), 0.0};
}

JdsMtKernel::JdsMtKernel(Jds matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)), pool_(pool) {
    // Balance by non-zeros: position k in sorted order holds the k-th
    // longest row, so the per-position cost is its row length; build the
    // prefix and reuse split_by_nnz.
    const index_t n = matrix_.rows();
    std::vector<index_t> prefix(static_cast<std::size_t>(n) + 1, 0);
    std::vector<index_t> len(static_cast<std::size_t>(n), 0);
    for (index_t d = 0; d < matrix_.diagonals(); ++d) {
        const index_t count = matrix_.jd_ptr()[static_cast<std::size_t>(d) + 1] -
                              matrix_.jd_ptr()[static_cast<std::size_t>(d)];
        for (index_t k = 0; k < count; ++k) ++len[static_cast<std::size_t>(k)];
    }
    for (index_t k = 0; k < n; ++k) {
        prefix[static_cast<std::size_t>(k) + 1] =
            prefix[static_cast<std::size_t>(k)] + len[static_cast<std::size_t>(k)];
    }
    parts_ = split_by_nnz(prefix, pool.size());
}

void JdsMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    const auto perm = matrix_.perm();
    const auto jd_ptr = matrix_.jd_ptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];  // sorted positions
        const value_t* __restrict xv = x.data();
        value_t* __restrict yv = y.data();
        for (index_t k = part.begin; k < part.end; ++k) {
            yv[perm[static_cast<std::size_t>(k)]] = value_t{0};
        }
        for (index_t d = 0; d < matrix_.diagonals(); ++d) {
            const index_t lo = jd_ptr[static_cast<std::size_t>(d)];
            const index_t hi = jd_ptr[static_cast<std::size_t>(d) + 1];
            const index_t count = hi - lo;
            // This diagonal covers sorted positions [0, count).
            const index_t from = part.begin;
            const index_t to = std::min(part.end, count);
            for (index_t k = from; k < to; ++k) {
                yv[perm[static_cast<std::size_t>(k)]] +=
                    values[static_cast<std::size_t>(lo + k)] *
                    xv[colind[static_cast<std::size_t>(lo + k)]];
            }
        }
    });
    phases_ = {t.seconds(), 0.0};
}

VblMtKernel::VblMtKernel(Vbl matrix, ThreadPool& pool) : matrix_(std::move(matrix)), pool_(pool) {
    // Build a per-row nnz prefix from the block lengths to balance by nnz.
    const index_t n = matrix_.rows();
    std::vector<index_t> prefix(static_cast<std::size_t>(n) + 1, 0);
    std::size_t v = 0;
    for (index_t r = 0; r < n; ++r) {
        for (index_t b = matrix_.block_rowptr()[static_cast<std::size_t>(r)];
             b < matrix_.block_rowptr()[static_cast<std::size_t>(r) + 1]; ++b) {
            v += matrix_.blen()[static_cast<std::size_t>(b)];
        }
        prefix[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(v);
    }
    parts_ = split_by_nnz(prefix, pool.size());
    value_offsets_.reserve(parts_.size());
    for (const RowRange& part : parts_) {
        value_offsets_.push_back(
            static_cast<std::size_t>(prefix[static_cast<std::size_t>(part.begin)]));
    }
}

DiaMtKernel::DiaMtKernel(Dia matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)),
      pool_(pool),
      parts_(split_even(matrix_.rows(), pool.size())) {
    const auto tail_rows = matrix_.tail_rows();
    tail_ptr_.reserve(parts_.size() + 1);
    tail_ptr_.push_back(0);
    for (const RowRange& part : parts_) {
        const auto it = std::lower_bound(tail_rows.begin(), tail_rows.end(), part.end);
        tail_ptr_.push_back(static_cast<std::size_t>(it - tail_rows.begin()));
    }
}

void DiaMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        matrix_.spmv_lanes_rows(part.begin, part.end, x, y);
        matrix_.spmv_tail_range(tail_ptr_[static_cast<std::size_t>(tid)],
                                tail_ptr_[static_cast<std::size_t>(tid) + 1], x, y);
    });
    phases_ = {t.seconds(), 0.0};
}

HybMtKernel::HybMtKernel(Hyb matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)),
      pool_(pool),
      parts_(split_even(matrix_.rows(), pool.size())) {
    // Tail ranges aligned to the row partitions (tail rows are sorted).
    const auto tail_rows = matrix_.tail_rows();
    tail_ptr_.reserve(parts_.size() + 1);
    tail_ptr_.push_back(0);
    for (const RowRange& part : parts_) {
        const auto it = std::lower_bound(tail_rows.begin(), tail_rows.end(), part.end);
        tail_ptr_.push_back(static_cast<std::size_t>(it - tail_rows.begin()));
    }
}

void HybMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        matrix_.spmv_ell_rows(part.begin, part.end, x, y);
        matrix_.spmv_tail_range(tail_ptr_[static_cast<std::size_t>(tid)],
                                tail_ptr_[static_cast<std::size_t>(tid) + 1], x, y);
    });
    phases_ = {t.seconds(), 0.0};
}

void VblMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        matrix_.spmv_rows_from(part.begin, part.end,
                               value_offsets_[static_cast<std::size_t>(tid)], x, y);
    });
    phases_ = {t.seconds(), 0.0};
}

}  // namespace symspmv
