#include "spmv/coloring.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv {

namespace {

/// Sorted distinct columns of block @p b that fall below its own row range
/// (the mirrored-write targets outside the block).
std::vector<index_t> remote_writes(const Sss& sss, RowRange block) {
    std::vector<index_t> cols;
    const auto rowptr = sss.rowptr();
    const auto colind = sss.colind();
    for (index_t r = block.begin; r < block.end; ++r) {
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            const index_t c = colind[static_cast<std::size_t>(j)];
            if (c < block.begin) cols.push_back(c);
        }
    }
    std::ranges::sort(cols);
    const auto dup = std::ranges::unique(cols);
    cols.erase(dup.begin(), dup.end());
    return cols;
}

/// True when two sorted index sequences share an element.
bool intersects(std::span<const index_t> a, std::span<const index_t> b) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) return true;
        if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    return false;
}

/// True when sorted sequence @p a has an element inside [range.begin, range.end).
bool touches(std::span<const index_t> a, RowRange range) {
    const auto it = std::ranges::lower_bound(a, range.begin);
    return it != a.end() && *it < range.end;
}

}  // namespace

ColoringPlan::ColoringPlan(const Sss& sss, int n_blocks) {
    SYMSPMV_CHECK_MSG(n_blocks >= 1, "ColoringPlan: need at least one block");
    block_ranges_ = split_by_nnz(sss.rowptr(), n_blocks);

    // Write sets: own rows (implicit, the contiguous range) + remote columns.
    std::vector<std::vector<index_t>> remote(block_ranges_.size());
    for (std::size_t b = 0; b < block_ranges_.size(); ++b) {
        remote[b] = remote_writes(sss, block_ranges_[b]);
    }

    // Conflict test.  Own-row ranges never overlap across blocks, so a
    // conflict needs a remote write hitting another block's rows or two
    // blocks sharing a remote target.
    const auto conflict = [&](std::size_t a, std::size_t b) {
        return touches(remote[a], block_ranges_[b]) || touches(remote[b], block_ranges_[a]) ||
               intersects(remote[a], remote[b]);
    };

    // Greedy coloring in block order (the natural first-fit heuristic).
    std::vector<int> color(block_ranges_.size(), -1);
    int n_colors = 0;
    std::vector<char> used;
    for (std::size_t b = 0; b < block_ranges_.size(); ++b) {
        used.assign(static_cast<std::size_t>(n_colors) + 1, 0);
        for (std::size_t a = 0; a < b; ++a) {
            if (conflict(a, b)) used[static_cast<std::size_t>(color[a])] = 1;
        }
        int c = 0;
        while (used[static_cast<std::size_t>(c)] != 0) ++c;
        color[b] = c;
        n_colors = std::max(n_colors, c + 1);
    }

    // Bucket blocks by color.
    color_ptr_.assign(static_cast<std::size_t>(n_colors) + 1, 0);
    for (int c : color) ++color_ptr_[static_cast<std::size_t>(c) + 1];
    for (std::size_t c = 1; c < color_ptr_.size(); ++c) color_ptr_[c] += color_ptr_[c - 1];
    blocks_of_color_.resize(block_ranges_.size());
    std::vector<std::size_t> cursor(color_ptr_.begin(), color_ptr_.end() - 1);
    for (std::size_t b = 0; b < block_ranges_.size(); ++b) {
        blocks_of_color_[cursor[static_cast<std::size_t>(color[b])]++] = static_cast<int>(b);
    }
}

int ColoringPlan::max_parallelism() const {
    int best = 0;
    for (int c = 0; c < colors(); ++c) {
        best = std::max(best, static_cast<int>(color_ptr_[static_cast<std::size_t>(c) + 1] -
                                               color_ptr_[static_cast<std::size_t>(c)]));
    }
    return best;
}

}  // namespace symspmv
