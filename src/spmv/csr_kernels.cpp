#include "spmv/csr_kernels.hpp"

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv {

CsrSerialKernel::CsrSerialKernel(Csr matrix) : matrix_(std::move(matrix)) {}

void CsrSerialKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    Timer t;
    matrix_.spmv(x, y);
    phases_ = {t.seconds(), 0.0};
    if (profiler_ != nullptr) profiler_->record(0, Phase::kMultiply, phases_.multiply_seconds);
}

CsrMtKernel::CsrMtKernel(Csr matrix, ThreadPool& pool)
    : CsrMtKernel(std::move(matrix), pool, {}) {}

CsrMtKernel::CsrMtKernel(Csr matrix, ThreadPool& pool, std::vector<RowRange> parts)
    : matrix_(std::move(matrix)), pool_(pool), parts_(std::move(parts)) {
    SYMSPMV_CHECK_MSG(matrix_.rows() == matrix_.cols(), "CsrMtKernel: matrix must be square");
    if (parts_.empty()) parts_ = split_by_nnz(matrix_.rowptr(), pool_.size());
    SYMSPMV_CHECK_MSG(static_cast<int>(parts_.size()) == pool_.size(),
                      "CsrMtKernel: one partition per worker");
}

void CsrMtKernel::spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) {
    Timer tm;
    const RowRange part = parts_[static_cast<std::size_t>(tid)];
    matrix_.spmv_rows(part.begin, part.end, x, y);
    if (profiler_ != nullptr) profiler_->record(tid, Phase::kMultiply, tm.seconds());
}

void CsrMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer t;
    pool_.run([&](int tid) { spmv_region(tid, x, y); });
    phases_ = {t.seconds(), 0.0};
}

}  // namespace symspmv
