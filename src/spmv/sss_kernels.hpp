// Symmetric SpM×V kernels over the SSS format (§II.B, §III).
//
// The multithreaded kernel supports the three local-vector reduction methods
// the paper compares (Fig. 9): naive (Alg. 3), effective ranges [Batista et
// al.], and the proposed non-zero indexing scheme (§III.C).
#pragma once

#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "matrix/sss.hpp"
#include "spmv/kernel.hpp"
#include "spmv/reduction.hpp"

namespace symspmv {

/// How the per-thread partial results are combined into the output vector.
enum class ReductionMethod {
    kNaive,            // full-length local vectors, O(pN) reduction (Alg. 3)
    kEffectiveRanges,  // local vectors cover [0, start_i) only (Fig. 3c)
    kIndexing,         // (vid, idx) non-zero conflict index (Fig. 3d, §III.C)
};

[[nodiscard]] std::string_view to_string(ReductionMethod m);

/// Serial symmetric kernel (Alg. 2) — no local vectors needed.
class SssSerialKernel final : public SpmvKernel {
   public:
    explicit SssSerialKernel(Sss matrix);

    [[nodiscard]] std::string_view name() const override { return "SSS-serial"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Sss& matrix() const { return matrix_; }

   private:
    Sss matrix_;
};

/// Multithreaded symmetric kernel with a selectable reduction method.
class SssMtKernel final : public SpmvKernel {
   public:
    /// @p pool outlives the kernel; its size fixes the thread count.
    SssMtKernel(Sss matrix, ThreadPool& pool, ReductionMethod method);

    /// Same, with a caller-chosen multiply-phase partition (one range per
    /// worker, tiling [0, rows)); an empty @p parts falls back to the
    /// by-nnz split.  Local-vector sizes and the conflict index follow the
    /// given partition, so any tiling is safe.
    SssMtKernel(Sss matrix, ThreadPool& pool, ReductionMethod method,
                std::vector<RowRange> parts);

    [[nodiscard]] std::string_view name() const override;
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override;
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;
    [[nodiscard]] ThreadPool* region_pool() const override { return &pool_; }
    void spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] ReductionMethod method() const { return method_; }
    [[nodiscard]] std::span<const RowRange> partitions() const { return parts_; }
    [[nodiscard]] const ReductionIndex& reduction_index() const { return index_; }

    /// Software-prefetch distance, in non-zeros ahead of the multiply
    /// cursor: the x[colind[j + d]] gather target is hinted d elements
    /// early.  0 disables (the default); the autotuner learns the value.
    void set_prefetch_distance(int d) { prefetch_distance_ = d < 0 ? 0 : d; }
    [[nodiscard]] int prefetch_distance() const { return prefetch_distance_; }

    /// NUMA placement of the kernel's own matrix copy and local vectors:
    /// first-touches them onto the workers owning each multiply partition.
    /// Call once after construction, before timing (the constructor's copy
    /// was first-touched by the constructing thread).
    void apply_partitioned_placement();

   private:
    template <bool Prefetch>
    void multiply_direct_impl(int tid, std::span<const value_t> x, std::span<value_t> y);
    template <bool Prefetch>
    void multiply_naive_impl(int tid, std::span<const value_t> x);
    void multiply_direct(int tid, std::span<const value_t> x, std::span<value_t> y);
    void multiply_naive(int tid, std::span<const value_t> x);
    void reduce_naive(int tid, std::span<value_t> y);
    void reduce_effective(int tid, std::span<value_t> y);
    void reduce_indexing(int tid, std::span<value_t> y);

    Sss matrix_;
    ThreadPool& pool_;
    ReductionMethod method_;
    std::vector<RowRange> parts_;          // multiply-phase partitions (by nnz)
    std::vector<RowRange> reduce_parts_;   // reduction-phase partitions (by rows)
    std::vector<aligned_vector<value_t>> locals_;
    ReductionIndex index_;                 // only populated for kIndexing
    int prefetch_distance_ = 0;            // non-zeros ahead; 0 = off
    double last_mult_seconds_ = 0.0;       // written by worker 0 per spmv
};

}  // namespace symspmv
