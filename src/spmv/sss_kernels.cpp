#include "spmv/sss_kernels.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/prefetch.hpp"
#include "core/timer.hpp"

namespace symspmv {

std::string_view to_string(ReductionMethod m) {
    switch (m) {
        case ReductionMethod::kNaive:
            return "SSS-naive";
        case ReductionMethod::kEffectiveRanges:
            return "SSS-eff";
        case ReductionMethod::kIndexing:
            return "SSS-idx";
    }
    return "SSS-?";
}

SssSerialKernel::SssSerialKernel(Sss matrix) : matrix_(std::move(matrix)) {}

void SssSerialKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    Timer t;
    matrix_.spmv(x, y);
    phases_ = {t.seconds(), 0.0};
    if (profiler_ != nullptr) profiler_->record(0, Phase::kMultiply, phases_.multiply_seconds);
}

SssMtKernel::SssMtKernel(Sss matrix, ThreadPool& pool, ReductionMethod method)
    : SssMtKernel(std::move(matrix), pool, method, {}) {}

SssMtKernel::SssMtKernel(Sss matrix, ThreadPool& pool, ReductionMethod method,
                         std::vector<RowRange> parts)
    : matrix_(std::move(matrix)), pool_(pool), method_(method), parts_(std::move(parts)) {
    const int p = pool_.size();
    if (parts_.empty()) parts_ = split_by_nnz(matrix_.rowptr(), p);
    SYMSPMV_CHECK_MSG(static_cast<int>(parts_.size()) == p,
                      "SssMtKernel: one partition per worker");
    reduce_parts_ = split_even(matrix_.rows(), p);
    locals_.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        // Naive keeps full-length local vectors (Alg. 3); the other methods
        // only need the effective region [0, start_i) of each thread.
        const index_t len = method_ == ReductionMethod::kNaive
                                ? matrix_.rows()
                                : parts_[static_cast<std::size_t>(i)].begin;
        locals_[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(len), value_t{0});
    }
    if (method_ == ReductionMethod::kIndexing) {
        index_ = ReductionIndex(matrix_, parts_);
    }
}

std::string_view SssMtKernel::name() const { return to_string(method_); }

void SssMtKernel::apply_partitioned_placement() {
    matrix_.rehome(parts_, pool_);
    pool_.run([&](int tid) {
        // Each worker re-touches its own local vector (built by the
        // constructing thread) so its pages live on the worker's node.
        auto& local = locals_[static_cast<std::size_t>(tid)];
        aligned_vector<value_t> fresh(local.begin(), local.end());
        local.swap(fresh);
    });
}

std::size_t SssMtKernel::footprint_bytes() const {
    std::size_t bytes = matrix_.size_bytes() + index_.bytes();
    for (const auto& v : locals_) bytes += v.size() * kValueBytes;
    return bytes;
}

template <bool Prefetch>
void SssMtKernel::multiply_direct_impl(int tid, std::span<const value_t> x,
                                       std::span<value_t> y) {
    // Effective-ranges / indexing multiply phase: rows in the own partition
    // are written directly; mirrored writes below start go to the local
    // vector (its effective region).
    const RowRange part = parts_[static_cast<std::size_t>(tid)];
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    const auto dvalues = matrix_.dvalues();
    value_t* __restrict local = locals_[static_cast<std::size_t>(tid)].data();
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    const index_t start = part.begin;
    // The prefetch cursor runs ahead in nnz space, clamped to this worker's
    // own non-zeros so it never reads colind entries another worker owns
    // (placement keeps those on a remote node on purpose).
    const index_t pf = static_cast<index_t>(prefetch_distance_);
    const index_t pf_end = rowptr[static_cast<std::size_t>(part.end)];
    for (index_t r = part.begin; r < part.end; ++r) {
        yv[r] = dvalues[static_cast<std::size_t>(r)] * xv[r];
    }
    for (index_t r = part.begin; r < part.end; ++r) {
        value_t acc = yv[r];
        const value_t xr = xv[r];
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            if constexpr (Prefetch) {
                if (j + pf < pf_end) {
                    prefetch_read(&xv[colind[static_cast<std::size_t>(j + pf)]]);
                }
            }
            const index_t c = colind[static_cast<std::size_t>(j)];
            const value_t v = values[static_cast<std::size_t>(j)];
            acc += v * xv[c];
            if (c >= start) {
                yv[c] += v * xr;  // own rows: conflict-free direct update
            } else {
                local[c] += v * xr;  // possibly-conflicting region
            }
        }
        yv[r] = acc;
    }
}

void SssMtKernel::multiply_direct(int tid, std::span<const value_t> x, std::span<value_t> y) {
    if (prefetch_distance_ > 0) {
        multiply_direct_impl<true>(tid, x, y);
    } else {
        multiply_direct_impl<false>(tid, x, y);
    }
}

template <bool Prefetch>
void SssMtKernel::multiply_naive_impl(int tid, std::span<const value_t> x) {
    // Alg. 3 lines 2-11: every product, diagonal included, goes to the local
    // vector; the output vector is not touched until the reduction.
    const RowRange part = parts_[static_cast<std::size_t>(tid)];
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    const auto dvalues = matrix_.dvalues();
    value_t* __restrict local = locals_[static_cast<std::size_t>(tid)].data();
    const value_t* __restrict xv = x.data();
    const index_t pf = static_cast<index_t>(prefetch_distance_);
    const index_t pf_end = rowptr[static_cast<std::size_t>(part.end)];
    for (index_t r = part.begin; r < part.end; ++r) {
        value_t acc = dvalues[static_cast<std::size_t>(r)] * xv[r];
        const value_t xr = xv[r];
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            if constexpr (Prefetch) {
                if (j + pf < pf_end) {
                    prefetch_read(&xv[colind[static_cast<std::size_t>(j + pf)]]);
                }
            }
            const index_t c = colind[static_cast<std::size_t>(j)];
            const value_t v = values[static_cast<std::size_t>(j)];
            acc += v * xv[c];
            local[c] += v * xr;
        }
        local[r] = acc;
    }
}

void SssMtKernel::multiply_naive(int tid, std::span<const value_t> x) {
    if (prefetch_distance_ > 0) {
        multiply_naive_impl<true>(tid, x);
    } else {
        multiply_naive_impl<false>(tid, x);
    }
}

void SssMtKernel::reduce_naive(int tid, std::span<value_t> y) {
    // Alg. 3 lines 12-15: rows are split evenly; every thread sums all p
    // local vectors over its rows (and re-zeroes them for the next call).
    const RowRange rows = reduce_parts_[static_cast<std::size_t>(tid)];
    value_t* __restrict yv = y.data();
    for (index_t r = rows.begin; r < rows.end; ++r) yv[r] = value_t{0};
    for (auto& local_vec : locals_) {
        value_t* __restrict local = local_vec.data();
        for (index_t r = rows.begin; r < rows.end; ++r) {
            yv[r] += local[r];
            local[r] = value_t{0};
        }
    }
}

void SssMtKernel::reduce_effective(int tid, std::span<value_t> y) {
    // Scan the full effective region [0, start_i) of every local vector,
    // restricted to this thread's reduction rows.
    const RowRange rows = reduce_parts_[static_cast<std::size_t>(tid)];
    value_t* __restrict yv = y.data();
    for (std::size_t i = 1; i < locals_.size(); ++i) {
        const index_t region_end = parts_[i].begin;
        value_t* __restrict local = locals_[i].data();
        const index_t lo = rows.begin;
        const index_t hi = std::min(rows.end, region_end);
        for (index_t r = lo; r < hi; ++r) {
            yv[r] += local[r];
            local[r] = value_t{0};
        }
    }
}

void SssMtKernel::reduce_indexing(int tid, std::span<value_t> y) {
    apply_reduction_index(index_, locals_, y, tid);
}

void SssMtKernel::spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) {
    Timer t;
    if (method_ == ReductionMethod::kNaive) {
        multiply_naive(tid, x);
    } else {
        multiply_direct(tid, x, y);
    }
    // Sample the multiply time BEFORE the barrier on both paths: sampling
    // after it would charge the slowest thread's barrier wait to the
    // multiply phase and understate the reduction correspondingly.
    const double mult_seconds = t.seconds();
    if (tid == 0) last_mult_seconds_ = mult_seconds;
    if (profiler_ != nullptr) {
        profiler_->record(tid, Phase::kMultiply, mult_seconds);
        pool_.barrier(*profiler_, tid);
    } else {
        pool_.barrier();
    }
    Timer tr;
    switch (method_) {
        case ReductionMethod::kNaive:
            reduce_naive(tid, y);
            break;
        case ReductionMethod::kEffectiveRanges:
            reduce_effective(tid, y);
            break;
        case ReductionMethod::kIndexing:
            reduce_indexing(tid, y);
            break;
    }
    if (profiler_ != nullptr) profiler_->record(tid, Phase::kReduction, tr.seconds());
}

void SssMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    pool_.run([&](int tid) { spmv_region(tid, x, y); });
    const double total_seconds = total.seconds();
    phases_ = {last_mult_seconds_, std::max(0.0, total_seconds - last_mult_seconds_)};
}

}  // namespace symspmv
