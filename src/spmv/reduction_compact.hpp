// Compact layouts of the local-vectors reduction index (§III.C ablations).
//
// The paper stores one (vid, idx) pair per conflicting element and remarks
// that it uses "generously four bytes for the vid field, but two or even a
// single byte is enough for current multicore architectures".  This module
// implements that remark plus one further layout the paper does not try:
//
//  - CompactReductionIndex: idx stays four bytes; vid shrinks to 1, 2 or 4
//    bytes in a separate (structure-of-arrays) stream.
//  - GroupedReductionIndex: entries sharing an idx collapse into one idx
//    plus a CSC-like group of vids, removing the repeated idx values that
//    appear whenever several threads conflict on the same output row.
//
// Both keep the paper's parallelization invariant: chunks never split an
// idx value, so final-vector updates stay independent.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "matrix/sss.hpp"
#include "spmv/kernel.hpp"
#include "spmv/reduction.hpp"

namespace symspmv {

/// Bytes used for the vid field of a compact index entry.
enum class VidWidth : std::uint8_t { k1 = 1, k2 = 2, k4 = 4 };

[[nodiscard]] std::string_view to_string(VidWidth w);

/// Pair layout with a narrow vid stream.
class CompactReductionIndex {
   public:
    CompactReductionIndex() = default;

    /// Compacts @p index to @p width.  Throws when the thread count does not
    /// fit the width (e.g. 300 threads with VidWidth::k1).
    CompactReductionIndex(const ReductionIndex& index, VidWidth width);

    [[nodiscard]] VidWidth width() const { return width_; }
    [[nodiscard]] std::size_t entries() const { return idx_.size(); }

    /// Bytes of the index structure (4 per idx + width() per vid).
    [[nodiscard]] std::size_t bytes() const {
        return idx_.size() * (kIndexBytes + static_cast<std::size_t>(width_));
    }

    /// Applies chunk @p tid: y[idx] += locals[vid][idx], re-zeroing the
    /// local element (same contract as apply_reduction_index).
    template <typename Locals>
    void apply(Locals& locals, std::span<value_t> y, int tid) const {
        const std::size_t lo = chunk_ptr_[static_cast<std::size_t>(tid)];
        const std::size_t hi = chunk_ptr_[static_cast<std::size_t>(tid) + 1];
        value_t* __restrict yv = y.data();
        switch (width_) {
            case VidWidth::k1:
                apply_range<std::uint8_t>(vid8_, locals, yv, lo, hi);
                break;
            case VidWidth::k2:
                apply_range<std::uint16_t>(vid16_, locals, yv, lo, hi);
                break;
            case VidWidth::k4:
                apply_range<std::uint32_t>(vid32_, locals, yv, lo, hi);
                break;
        }
    }

   private:
    template <typename V, typename Locals>
    void apply_range(const std::vector<V>& vids, Locals& locals, value_t* __restrict yv,
                     std::size_t lo, std::size_t hi) const {
        for (std::size_t k = lo; k < hi; ++k) {
            const index_t idx = idx_[k];
            value_t* __restrict local = locals[static_cast<std::size_t>(vids[k])].data();
            yv[idx] += local[idx];
            local[idx] = value_t{0};
        }
    }

    VidWidth width_ = VidWidth::k4;
    std::vector<index_t> idx_;
    std::vector<std::uint8_t> vid8_;
    std::vector<std::uint16_t> vid16_;
    std::vector<std::uint32_t> vid32_;
    std::vector<std::size_t> chunk_ptr_;
};

/// CSC-like grouped layout: one entry per distinct conflicting output row.
class GroupedReductionIndex {
   public:
    GroupedReductionIndex() = default;

    /// Groups @p index by idx value.  Vids are stored with @p width bytes.
    GroupedReductionIndex(const ReductionIndex& index, VidWidth width = VidWidth::k2);

    [[nodiscard]] std::size_t rows() const { return row_idx_.size(); }
    [[nodiscard]] std::size_t entries() const { return vid_.size(); }

    /// Bytes: 4 per distinct row + 4 per group pointer + width per vid.
    [[nodiscard]] std::size_t bytes() const {
        return row_idx_.size() * kIndexBytes + group_ptr_.size() * kIndexBytes +
               vid_.size() * static_cast<std::size_t>(width_);
    }

    /// Applies chunk @p tid (chunks are whole groups, so idx values are
    /// never shared between threads by construction).
    template <typename Locals>
    void apply(Locals& locals, std::span<value_t> y, int tid) const {
        const std::size_t lo = chunk_ptr_[static_cast<std::size_t>(tid)];
        const std::size_t hi = chunk_ptr_[static_cast<std::size_t>(tid) + 1];
        value_t* __restrict yv = y.data();
        for (std::size_t g = lo; g < hi; ++g) {
            const index_t idx = row_idx_[g];
            value_t acc = value_t{0};
            for (index_t k = group_ptr_[g]; k < group_ptr_[g + 1]; ++k) {
                value_t* __restrict local =
                    locals[static_cast<std::size_t>(vid_[static_cast<std::size_t>(k)])].data();
                acc += local[idx];
                local[idx] = value_t{0};
            }
            yv[idx] += acc;
        }
    }

   private:
    VidWidth width_ = VidWidth::k2;
    std::vector<index_t> row_idx_;    // distinct conflicting rows, ascending
    std::vector<index_t> group_ptr_;  // group g: vid_[group_ptr_[g] .. group_ptr_[g+1])
    std::vector<std::uint16_t> vid_;
    std::vector<std::size_t> chunk_ptr_;
};

/// Index layout selector for the ablation kernel.
enum class IndexLayout {
    kPairs4,   // the paper's layout: (idx, vid) pairs, 4-byte vid
    kPairs2,   // 2-byte vid stream
    kPairs1,   // 1-byte vid stream
    kGrouped,  // CSC-like grouped layout
};

[[nodiscard]] std::string_view to_string(IndexLayout layout);

/// SSS-idx kernel variant with a selectable index layout; the multiply
/// phase is identical to SssMtKernel's indexing mode, only the reduction
/// structure changes.
class SssCompactIdxKernel final : public SpmvKernel {
   public:
    SssCompactIdxKernel(Sss matrix, ThreadPool& pool, IndexLayout layout);

    [[nodiscard]] std::string_view name() const override;
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override;
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] IndexLayout layout() const { return layout_; }

    /// Bytes of the reduction-index structure alone (the ablation metric).
    [[nodiscard]] std::size_t index_bytes() const;

   private:
    Sss matrix_;
    ThreadPool& pool_;
    IndexLayout layout_;
    std::vector<RowRange> parts_;
    std::vector<aligned_vector<value_t>> locals_;
    CompactReductionIndex compact_;
    GroupedReductionIndex grouped_;
    double last_mult_seconds_ = 0.0;
};

}  // namespace symspmv
