// Alternative symmetric SpM×V parallelizations from the paper's related
// work, built as comparators for the local-vectors ablation benches:
//
//  - SssAtomicKernel: every output write is an atomic add.  This is the
//    locking/atomic option §III.A dismisses as "prohibitive cost"; the
//    bench quantifies exactly how prohibitive.
//  - SssColorKernel: Batista's "colorful" method [7] — conflict-free block
//    colors executed color-by-color, no local vectors and no reduction, at
//    the cost of sequential color phases and reduced parallelism.
#pragma once

#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "matrix/sss.hpp"
#include "spmv/coloring.hpp"
#include "spmv/kernel.hpp"

namespace symspmv {

/// Symmetric SSS kernel with atomic output updates instead of local vectors.
class SssAtomicKernel final : public SpmvKernel {
   public:
    /// @p pool outlives the kernel; its size fixes the thread count.
    SssAtomicKernel(Sss matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "SSS-atomic"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Sss& matrix() const { return matrix_; }

   private:
    Sss matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
};

/// Symmetric SSS kernel parallelized by conflict-graph coloring.
class SssColorKernel final : public SpmvKernel {
   public:
    /// @p blocks_per_thread controls the coloring granularity: more blocks
    /// give the greedy coloring more freedom (and each color more
    /// parallelism) at a higher scheduling overhead.
    SssColorKernel(Sss matrix, ThreadPool& pool, int blocks_per_thread = 4);

    [[nodiscard]] std::string_view name() const override { return "SSS-color"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const ColoringPlan& plan() const { return plan_; }

   private:
    void run_block(RowRange block, std::span<const value_t> x, std::span<value_t> y) const;

    Sss matrix_;
    ThreadPool& pool_;
    ColoringPlan plan_;
    std::vector<RowRange> zero_parts_;
};

}  // namespace symspmv
