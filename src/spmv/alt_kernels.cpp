#include "spmv/alt_kernels.hpp"

#include <algorithm>
#include <atomic>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv {

SssAtomicKernel::SssAtomicKernel(Sss matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)), pool_(pool), parts_(split_by_nnz(matrix_.rowptr(), pool.size())) {}

void SssAtomicKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    const auto dvalues = matrix_.dvalues();
    pool_.run([&](int tid) {
        // Zero phase: everyone must finish before any thread adds.
        const RowRange zero = split_even(matrix_.rows(), pool_.size())[static_cast<std::size_t>(tid)];
        std::fill(y.data() + zero.begin, y.data() + zero.end, value_t{0});
        pool_.barrier();
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        const value_t* __restrict xv = x.data();
        value_t* yv = y.data();
        for (index_t r = part.begin; r < part.end; ++r) {
            // The row sum is accumulated in a register, but even the final
            // y[r] store must be atomic: other threads' mirrored writes may
            // target r concurrently.  One atomic per row + one per stored
            // off-diagonal element — the cost §III.A calls prohibitive.
            value_t acc = dvalues[static_cast<std::size_t>(r)] * xv[r];
            const value_t xr = xv[r];
            for (index_t j = rowptr[static_cast<std::size_t>(r)];
                 j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
                const index_t c = colind[static_cast<std::size_t>(j)];
                const value_t v = values[static_cast<std::size_t>(j)];
                acc += v * xv[c];
                std::atomic_ref<value_t>(yv[c]).fetch_add(v * xr, std::memory_order_relaxed);
            }
            std::atomic_ref<value_t>(yv[r]).fetch_add(acc, std::memory_order_relaxed);
        }
    });
    phases_ = {total.seconds(), 0.0};
}

SssColorKernel::SssColorKernel(Sss matrix, ThreadPool& pool, int blocks_per_thread)
    : matrix_(std::move(matrix)),
      pool_(pool),
      plan_(matrix_, std::max(1, pool.size() * blocks_per_thread)),
      zero_parts_(split_even(matrix_.rows(), pool.size())) {}

void SssColorKernel::run_block(RowRange block, std::span<const value_t> x,
                               std::span<value_t> y) const {
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    const auto dvalues = matrix_.dvalues();
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    for (index_t r = block.begin; r < block.end; ++r) {
        value_t acc = dvalues[static_cast<std::size_t>(r)] * xv[r];
        const value_t xr = xv[r];
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            const index_t c = colind[static_cast<std::size_t>(j)];
            const value_t v = values[static_cast<std::size_t>(j)];
            acc += v * xv[c];
            yv[c] += v * xr;  // conflict-free by the coloring invariant
        }
        yv[r] += acc;
    }
}

void SssColorKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    const auto blocks = plan_.blocks_of_color();
    const auto color_ptr = plan_.color_ptr();
    const auto ranges = plan_.block_ranges();
    pool_.run([&](int tid) {
        const RowRange zero = zero_parts_[static_cast<std::size_t>(tid)];
        std::fill(y.data() + zero.begin, y.data() + zero.end, value_t{0});
        pool_.barrier();
        // Colors run strictly one after another; within a color, the blocks
        // are dealt round-robin to the workers (write sets are disjoint).
        for (int c = 0; c < plan_.colors(); ++c) {
            const std::size_t lo = color_ptr[static_cast<std::size_t>(c)];
            const std::size_t hi = color_ptr[static_cast<std::size_t>(c) + 1];
            for (std::size_t k = lo + static_cast<std::size_t>(tid); k < hi;
                 k += static_cast<std::size_t>(pool_.size())) {
                run_block(ranges[static_cast<std::size_t>(blocks[k])], x, y);
            }
            pool_.barrier();
        }
    });
    phases_ = {total.seconds(), 0.0};
}

}  // namespace symspmv
