// CSR SpM×V kernels: the unsymmetric baseline of every figure in the paper.
#pragma once

#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "matrix/csr.hpp"
#include "spmv/kernel.hpp"

namespace symspmv {

/// Serial CSR kernel.
class CsrSerialKernel final : public SpmvKernel {
   public:
    explicit CsrSerialKernel(Csr matrix);

    [[nodiscard]] std::string_view name() const override { return "CSR-serial"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Csr& matrix() const { return matrix_; }

   private:
    Csr matrix_;
};

/// Multithreaded CSR kernel: rows are partitioned by non-zero count and each
/// thread computes its rows independently (no reduction phase).
class CsrMtKernel final : public SpmvKernel {
   public:
    /// @p pool outlives the kernel; its size fixes the thread count.
    CsrMtKernel(Csr matrix, ThreadPool& pool);

    /// Same, with a caller-chosen row partition (one range per worker,
    /// tiling [0, rows)); an empty @p parts falls back to the by-nnz split.
    /// The engine's KernelFactory uses this to apply its partition policy.
    CsrMtKernel(Csr matrix, ThreadPool& pool, std::vector<RowRange> parts);

    [[nodiscard]] std::string_view name() const override { return "CSR"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;
    [[nodiscard]] ThreadPool* region_pool() const override { return &pool_; }
    void spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] std::span<const RowRange> partitions() const { return parts_; }

    /// NUMA placement of the kernel's own matrix copy: first-touches the
    /// format arrays onto the workers owning each partition.  Call once
    /// after construction, before timing.
    void apply_partitioned_placement() { matrix_.rehome(parts_, pool_); }

   private:
    Csr matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
};

}  // namespace symspmv
