#include "spmv/race_kernels.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "reorder/levels.hpp"

namespace symspmv {

namespace {

/// Sorted distinct symmetric write set of the given rows: each row itself
/// plus its stored (strictly lower) neighbors — exactly the y elements the
/// kernel touches when it processes these rows.
std::vector<index_t> write_set(const Sss& sss, std::span<const index_t> rows) {
    const auto rowptr = sss.rowptr();
    const auto colind = sss.colind();
    std::vector<index_t> w;
    std::size_t entries = rows.size();
    for (const index_t r : rows) {
        entries += static_cast<std::size_t>(rowptr[static_cast<std::size_t>(r) + 1] -
                                            rowptr[static_cast<std::size_t>(r)]);
    }
    w.reserve(entries);
    for (const index_t r : rows) {
        w.push_back(r);
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            w.push_back(colind[static_cast<std::size_t>(j)]);
        }
    }
    std::ranges::sort(w);
    const auto dup = std::ranges::unique(w);
    w.erase(dup.begin(), dup.end());
    return w;
}

/// True when two sorted index sequences share an element.
bool intersects(std::span<const index_t> a, std::span<const index_t> b) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) return true;
        if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    return false;
}

}  // namespace

RaceSchedule::RaceSchedule(const Sss& sss, const Coo& full, int threads,
                           int blocks_per_thread) {
    SYMSPMV_CHECK_MSG(threads >= 1 && blocks_per_thread >= 1,
                      "RaceSchedule: need threads >= 1 and blocks_per_thread >= 1");
    const LevelSets ls = build_level_sets(full);
    levels_ = ls.levels();

    // Weight = 1 + stored lower non-zeros: proportional to the row's share
    // of both multiply work and mirrored writes.
    const index_t n = sss.rows();
    const auto rowptr = sss.rowptr();
    std::vector<std::int64_t> weight(static_cast<std::size_t>(n));
    std::int64_t total = 0;
    for (index_t r = 0; r < n; ++r) {
        weight[static_cast<std::size_t>(r)] =
            1 + rowptr[static_cast<std::size_t>(r) + 1] - rowptr[static_cast<std::size_t>(r)];
        total += weight[static_cast<std::size_t>(r)];
    }
    const std::int64_t target =
        std::max<std::int64_t>(1, total / (static_cast<std::int64_t>(threads) * blocks_per_thread));
    LevelBlocks lb = subdivide_levels(ls, weight, target);
    rows_ = std::move(lb.rows);
    block_ptr_ = std::move(lb.block_ptr);

    // Greedy first-fit coloring of the block conflict graph.  The conflict
    // scan for block b only walks back while the level distance is <= 2:
    // write sets live in levels [level-1, level+1] (levels.hpp), so farther
    // blocks cannot conflict.  Blocks are emitted in level order, which
    // makes that walk a short suffix, not O(blocks).
    const int nb = blocks();
    std::vector<std::vector<index_t>> wset(static_cast<std::size_t>(nb));
    for (int b = 0; b < nb; ++b) {
        wset[static_cast<std::size_t>(b)] = write_set(sss, block_rows(b));
    }
    std::vector<int> color(static_cast<std::size_t>(nb), -1);
    int n_colors = 0;
    std::vector<char> used;
    for (int b = 0; b < nb; ++b) {
        used.assign(static_cast<std::size_t>(n_colors) + 1, 0);
        for (int a = b - 1;
             a >= 0 && lb.level_of[static_cast<std::size_t>(b)] -
                               lb.level_of[static_cast<std::size_t>(a)] <=
                           2;
             --a) {
            if (intersects(wset[static_cast<std::size_t>(a)], wset[static_cast<std::size_t>(b)])) {
                used[static_cast<std::size_t>(color[static_cast<std::size_t>(a)])] = 1;
            }
        }
        int c = 0;
        while (used[static_cast<std::size_t>(c)] != 0) ++c;
        color[static_cast<std::size_t>(b)] = c;
        n_colors = std::max(n_colors, c + 1);
    }

    // Bucket blocks by color; block order within a color is preserved.
    color_ptr_.assign(static_cast<std::size_t>(n_colors) + 1, 0);
    for (int c : color) ++color_ptr_[static_cast<std::size_t>(c) + 1];
    for (std::size_t c = 1; c < color_ptr_.size(); ++c) color_ptr_[c] += color_ptr_[c - 1];
    blocks_of_color_.resize(static_cast<std::size_t>(nb));
    std::vector<std::size_t> cursor(color_ptr_.begin(), color_ptr_.end() - 1);
    for (int b = 0; b < nb; ++b) {
        blocks_of_color_[cursor[static_cast<std::size_t>(color[static_cast<std::size_t>(b)])]++] =
            b;
    }
}

int RaceSchedule::max_parallelism() const {
    int best = 0;
    for (int c = 0; c < colors(); ++c) {
        best = std::max(best, static_cast<int>(color_ptr_[static_cast<std::size_t>(c) + 1] -
                                               color_ptr_[static_cast<std::size_t>(c)]));
    }
    return best;
}

std::size_t RaceSchedule::bytes() const {
    return rows_.size() * sizeof(index_t) + block_ptr_.size() * sizeof(std::size_t) +
           blocks_of_color_.size() * sizeof(int) + color_ptr_.size() * sizeof(std::size_t);
}

bool RaceSchedule::write_safe(const Sss& sss) const {
    for (int c = 0; c < colors(); ++c) {
        // Each block's write set is already duplicate-free, so a duplicate
        // in the concatenation of a color's write sets is an overlap
        // between two blocks of that color.
        std::vector<index_t> all;
        for (std::size_t k = color_ptr_[static_cast<std::size_t>(c)];
             k < color_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
            const auto w = write_set(sss, block_rows(blocks_of_color_[k]));
            all.insert(all.end(), w.begin(), w.end());
        }
        std::ranges::sort(all);
        if (std::ranges::adjacent_find(all) != all.end()) return false;
    }
    return true;
}

SssRaceKernel::SssRaceKernel(Sss matrix, const Coo& full, ThreadPool& pool,
                             int blocks_per_thread)
    : matrix_(std::move(matrix)),
      pool_(pool),
      schedule_(matrix_, full, pool.size(), blocks_per_thread),
      zero_parts_(split_even(matrix_.rows(), pool.size())),
      stage_seconds_(static_cast<std::size_t>(schedule_.colors()) + 1, 0.0) {
    SYMSPMV_CHECK_MSG(matrix_.rows() == full.rows(),
                      "SssRaceKernel: Sss and Coo describe different matrices");
}

void SssRaceKernel::run_block(std::span<const index_t> rows, const value_t* __restrict xv,
                              value_t* __restrict yv) const {
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    for (const index_t r : rows) {
        const value_t xr = xv[r];
        value_t acc = 0.0;
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            const index_t c = colind[static_cast<std::size_t>(j)];
            const value_t v = values[static_cast<std::size_t>(j)];
            acc += v * xv[static_cast<std::size_t>(c)];
            yv[static_cast<std::size_t>(c)] += v * xr;
        }
        yv[static_cast<std::size_t>(r)] += acc;
    }
}

void SssRaceKernel::spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) {
    const int p = pool_.size();
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();

    // Stage 0: y <- D*x on an even contiguous split.  Seeds every y element
    // exactly once (no conflicts possible), so the color stages below only
    // accumulate off-diagonal contributions.
    Timer stage_t;
    const RowRange z = zero_parts_[static_cast<std::size_t>(tid)];
    const auto dval = matrix_.dvalues();
    for (index_t r = z.begin; r < z.end; ++r) {
        yv[static_cast<std::size_t>(r)] = dval[static_cast<std::size_t>(r)] * xv[static_cast<std::size_t>(r)];
    }
    // Sample multiply time before the barrier (sss_kernels.cpp rationale);
    // the stage_seconds_ slots deliberately *include* the closing barrier —
    // they attribute the whole wall-clock of the op across stages.
    const double init_seconds = stage_t.seconds();
    if (profiler_ != nullptr) {
        profiler_->record(tid, Phase::kMultiply, init_seconds);
        pool_.barrier(*profiler_, tid);
    } else {
        pool_.barrier();
    }
    if (tid == 0) stage_seconds_[0] = stage_t.seconds();

    // Color stages: same-color blocks have disjoint write sets, so workers
    // scatter mirrored contributions directly into y.  There is no
    // reduction phase to record — Phase::kReduction stays at zero.
    const auto color_ptr = schedule_.color_ptr();
    const auto boc = schedule_.blocks_of_color();
    for (int c = 0; c < schedule_.colors(); ++c) {
        Timer t;
        for (std::size_t k = color_ptr[static_cast<std::size_t>(c)] + static_cast<std::size_t>(tid);
             k < color_ptr[static_cast<std::size_t>(c) + 1]; k += static_cast<std::size_t>(p)) {
            run_block(schedule_.block_rows(boc[k]), xv, yv);
        }
        const double mult_seconds = t.seconds();
        if (profiler_ != nullptr) {
            profiler_->record(tid, Phase::kMultiply, mult_seconds);
            pool_.barrier(*profiler_, tid);
        } else {
            pool_.barrier();
        }
        if (tid == 0) stage_seconds_[static_cast<std::size_t>(c) + 1] = t.seconds();
    }
}

void SssRaceKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    pool_.run([&](int tid) { spmv_region(tid, x, y); });
    phases_ = {total.seconds(), 0.0};
}

}  // namespace symspmv
