#include "spmv/reduction_compact.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv {

std::string_view to_string(VidWidth w) {
    switch (w) {
        case VidWidth::k1:
            return "vid8";
        case VidWidth::k2:
            return "vid16";
        case VidWidth::k4:
            return "vid32";
    }
    return "vid?";
}

std::string_view to_string(IndexLayout layout) {
    switch (layout) {
        case IndexLayout::kPairs4:
            return "SSS-idx-v4";
        case IndexLayout::kPairs2:
            return "SSS-idx-v2";
        case IndexLayout::kPairs1:
            return "SSS-idx-v1";
        case IndexLayout::kGrouped:
            return "SSS-idx-grouped";
    }
    return "SSS-idx-?";
}

CompactReductionIndex::CompactReductionIndex(const ReductionIndex& index, VidWidth width)
    : width_(width) {
    const auto entries = index.entries();
    idx_.reserve(entries.size());
    std::int32_t max_vid = 0;
    for (const ReductionEntry& e : entries) max_vid = std::max(max_vid, e.vid);
    const std::int64_t limit = (std::int64_t{1} << (8 * static_cast<int>(width))) - 1;
    SYMSPMV_CHECK_MSG(max_vid <= limit, "vid width too narrow for this thread count");
    switch (width) {
        case VidWidth::k1:
            vid8_.reserve(entries.size());
            for (const ReductionEntry& e : entries) {
                idx_.push_back(e.idx);
                vid8_.push_back(static_cast<std::uint8_t>(e.vid));
            }
            break;
        case VidWidth::k2:
            vid16_.reserve(entries.size());
            for (const ReductionEntry& e : entries) {
                idx_.push_back(e.idx);
                vid16_.push_back(static_cast<std::uint16_t>(e.vid));
            }
            break;
        case VidWidth::k4:
            vid32_.reserve(entries.size());
            for (const ReductionEntry& e : entries) {
                idx_.push_back(e.idx);
                vid32_.push_back(static_cast<std::uint32_t>(e.vid));
            }
            break;
    }
    chunk_ptr_.assign(index.chunk_ptr().begin(), index.chunk_ptr().end());
}

GroupedReductionIndex::GroupedReductionIndex(const ReductionIndex& index, VidWidth width)
    : width_(width) {
    SYMSPMV_CHECK_MSG(width == VidWidth::k2, "grouped layout stores 16-bit vids");
    const auto entries = index.entries();  // already sorted by idx
    const auto chunks = index.chunk_ptr();
    const int n_chunks = static_cast<int>(chunks.size()) - 1;
    chunk_ptr_.assign(static_cast<std::size_t>(n_chunks) + 1, 0);
    group_ptr_.push_back(0);
    int chunk = 0;
    for (std::size_t k = 0; k < entries.size(); ++k) {
        // Entry chunks never split an idx, so group boundaries respect them;
        // record the group count at every chunk boundary crossed.
        while (chunk < n_chunks && k >= chunks[static_cast<std::size_t>(chunk) + 1]) {
            ++chunk;
            chunk_ptr_[static_cast<std::size_t>(chunk)] = row_idx_.size();
        }
        if (row_idx_.empty() || row_idx_.back() != entries[k].idx ||
            k == chunks[static_cast<std::size_t>(chunk)]) {
            if (!row_idx_.empty()) group_ptr_.push_back(static_cast<index_t>(vid_.size()));
            row_idx_.push_back(entries[k].idx);
        }
        SYMSPMV_CHECK(entries[k].vid <= std::numeric_limits<std::uint16_t>::max());
        vid_.push_back(static_cast<std::uint16_t>(entries[k].vid));
    }
    group_ptr_.push_back(static_cast<index_t>(vid_.size()));
    while (chunk < n_chunks) {
        ++chunk;
        chunk_ptr_[static_cast<std::size_t>(chunk)] = row_idx_.size();
    }
}

SssCompactIdxKernel::SssCompactIdxKernel(Sss matrix, ThreadPool& pool, IndexLayout layout)
    : matrix_(std::move(matrix)), pool_(pool), layout_(layout) {
    const int p = pool_.size();
    parts_ = split_by_nnz(matrix_.rowptr(), p);
    locals_.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        locals_[static_cast<std::size_t>(i)].assign(
            static_cast<std::size_t>(parts_[static_cast<std::size_t>(i)].begin), value_t{0});
    }
    const ReductionIndex full(matrix_, parts_);
    switch (layout_) {
        case IndexLayout::kPairs4:
            compact_ = CompactReductionIndex(full, VidWidth::k4);
            break;
        case IndexLayout::kPairs2:
            compact_ = CompactReductionIndex(full, VidWidth::k2);
            break;
        case IndexLayout::kPairs1:
            compact_ = CompactReductionIndex(full, VidWidth::k1);
            break;
        case IndexLayout::kGrouped:
            grouped_ = GroupedReductionIndex(full);
            break;
    }
}

std::string_view SssCompactIdxKernel::name() const { return to_string(layout_); }

std::size_t SssCompactIdxKernel::index_bytes() const {
    return layout_ == IndexLayout::kGrouped ? grouped_.bytes() : compact_.bytes();
}

std::size_t SssCompactIdxKernel::footprint_bytes() const {
    std::size_t bytes = matrix_.size_bytes() + index_bytes();
    for (const auto& v : locals_) bytes += v.size() * kValueBytes;
    return bytes;
}

void SssCompactIdxKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.rows(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const auto values = matrix_.values();
    const auto dvalues = matrix_.dvalues();
    pool_.run([&](int tid) {
        Timer t;
        // Multiply phase — identical to SssMtKernel's indexing mode.
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        value_t* __restrict local = locals_[static_cast<std::size_t>(tid)].data();
        const value_t* __restrict xv = x.data();
        value_t* __restrict yv = y.data();
        const index_t start = part.begin;
        for (index_t r = part.begin; r < part.end; ++r) {
            yv[r] = dvalues[static_cast<std::size_t>(r)] * xv[r];
        }
        for (index_t r = part.begin; r < part.end; ++r) {
            value_t acc = yv[r];
            const value_t xr = xv[r];
            for (index_t j = rowptr[static_cast<std::size_t>(r)];
                 j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
                const index_t c = colind[static_cast<std::size_t>(j)];
                const value_t v = values[static_cast<std::size_t>(j)];
                acc += v * xv[c];
                if (c >= start) {
                    yv[c] += v * xr;
                } else {
                    local[c] += v * xr;
                }
            }
            yv[r] = acc;
        }
        pool_.barrier();
        if (tid == 0) last_mult_seconds_ = t.seconds();
        if (layout_ == IndexLayout::kGrouped) {
            grouped_.apply(locals_, y, tid);
        } else {
            compact_.apply(locals_, y, tid);
        }
    });
    const double total_seconds = total.seconds();
    phases_ = {last_mult_seconds_, std::max(0.0, total_seconds - last_mult_seconds_)};
}

}  // namespace symspmv
