// Reduction-free symmetric SpM×V via level scheduling + distance-2 conflict
// coloring, after Alappat et al.'s Recursive Algebraic Coloring (RACE;
// PAPERS.md, DESIGN.md §14).
//
// The paper's local-vectors kernels (sss_kernels.hpp) pay for symmetry with
// per-thread buffers and a reduction phase; the colorful comparator
// (alt_kernels.hpp) removes the reduction but colors arbitrary contiguous
// blocks, so "the geometry of the graph limits the potential".  This kernel
// takes the RACE route between the two: rows are grouped by BFS level
// (src/reorder/levels.hpp), wide levels are recursively subdivided into
// load-balanced blocks, and the blocks are greedily distance-2 colored —
// only block pairs within two levels of each other can conflict at all, so
// the coloring needs few colors and keeps nearly full parallelism per
// color.  Execution is barrier-separated color stages inside one parallel
// region: every thread writes y[i] and the mirrored y[j] directly.  No
// local vectors, no reduction phase, no atomics — the profiler's
// Phase::kReduction is identically zero by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "matrix/coo.hpp"
#include "matrix/sss.hpp"
#include "spmv/kernel.hpp"

namespace symspmv {

/// The level-scheduled block coloring backing SssRaceKernel, exposed
/// separately so tests and tools can inspect (and re-verify) the schedule.
class RaceSchedule {
   public:
    RaceSchedule() = default;

    /// Builds the schedule for @p sss, whose full symmetric pattern is
    /// @p full (the BFS runs on the symmetrized adjacency).  Rows are split
    /// into roughly `threads * blocks_per_thread` blocks along BFS levels.
    RaceSchedule(const Sss& sss, const Coo& full, int threads, int blocks_per_thread);

    /// Number of barrier-separated color stages (the sequential depth).
    [[nodiscard]] int colors() const { return static_cast<int>(color_ptr_.size()) - 1; }

    [[nodiscard]] int blocks() const { return static_cast<int>(block_ptr_.size()) - 1; }

    /// BFS levels of the underlying level structure.
    [[nodiscard]] index_t levels() const { return levels_; }

    /// Rows of block @p b (not necessarily contiguous row ids).
    [[nodiscard]] std::span<const index_t> block_rows(int b) const {
        return {rows_.data() + block_ptr_[static_cast<std::size_t>(b)],
                block_ptr_[static_cast<std::size_t>(b) + 1] -
                    block_ptr_[static_cast<std::size_t>(b)]};
    }

    /// Blocks of color c: blocks_of_color()[color_ptr()[c] .. color_ptr()[c+1]).
    [[nodiscard]] std::span<const int> blocks_of_color() const { return blocks_of_color_; }
    [[nodiscard]] std::span<const std::size_t> color_ptr() const { return color_ptr_; }

    /// Largest number of same-color blocks (parallelism within a stage).
    [[nodiscard]] int max_parallelism() const;

    /// Bytes of the schedule's own arrays (counted into the kernel
    /// footprint — the "side structure" replacing the local vectors).
    [[nodiscard]] std::size_t bytes() const;

    /// Recomputes every block's symmetric write set ({r} ∪ stored lower
    /// neighbors) and checks that no two blocks of the same color
    /// intersect — the invariant that makes the stages write-safe without
    /// atomics.  O(colors · total write set) — test/diagnostic use.
    [[nodiscard]] bool write_safe(const Sss& sss) const;

   private:
    index_t levels_ = 0;
    std::vector<index_t> rows_;           // all rows, grouped by block
    std::vector<std::size_t> block_ptr_;  // blocks()+1 offsets into rows_
    std::vector<int> blocks_of_color_;
    std::vector<std::size_t> color_ptr_;
};

/// Reduction-free symmetric SSS kernel on a RACE-style schedule.
class SssRaceKernel final : public SpmvKernel {
   public:
    /// @p pool outlives the kernel; its size fixes the thread count.
    /// @p full is the full symmetric COO the Sss was built from (adjacency
    /// source for the BFS levels).  @p blocks_per_thread controls the
    /// subdivision granularity: more blocks smooth the per-stage load at
    /// the cost of more (smaller) stages on conflict-dense graphs.
    SssRaceKernel(Sss matrix, const Coo& full, ThreadPool& pool, int blocks_per_thread = 4);

    [[nodiscard]] std::string_view name() const override { return "SSS-race"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override {
        return matrix_.size_bytes() + schedule_.bytes();
    }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;
    [[nodiscard]] ThreadPool* region_pool() const override { return &pool_; }
    void spmv_region(int tid, std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const RaceSchedule& schedule() const { return schedule_; }
    [[nodiscard]] const Sss& matrix() const { return matrix_; }

    /// Per-stage wall-clock of the most recent spmv(): slot 0 is the
    /// zero-y stage, slots 1..colors() the color stages, each measured on
    /// worker 0 from the stage's opening barrier alignment to (and
    /// including) its closing barrier.  This is the per-stage attribution
    /// bench_report prints for SSS-race cells: the cost the reduction
    /// phase turned into.
    [[nodiscard]] std::span<const double> stage_seconds() const { return stage_seconds_; }

   private:
    void run_block(std::span<const index_t> rows, const value_t* __restrict xv,
                   value_t* __restrict yv) const;

    Sss matrix_;
    ThreadPool& pool_;
    RaceSchedule schedule_;
    std::vector<RowRange> zero_parts_;
    std::vector<double> stage_seconds_;  // colors()+1 slots; written by tid 0
};

}  // namespace symspmv
