// Abstract SpM×V kernel interface.
//
// The paper's measurement framework "interfaces with the storage format
// implementations through a well-defined sparse matrix-vector multiplication
// interface" (§V.A); this is that interface.  Every format (CSR, SSS with
// any reduction method, CSX, CSX-Sym) implements it, so the benches and the
// CG solver are format-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string_view>

#include "core/profiling.hpp"
#include "core/types.hpp"

namespace symspmv {

class ThreadPool;

/// Wall-clock split of one spmv() call into the paper's phases (Fig. 10).
struct SpmvPhases {
    double multiply_seconds = 0.0;
    double reduction_seconds = 0.0;

    [[nodiscard]] double total() const { return multiply_seconds + reduction_seconds; }
};

class SpmvKernel {
   public:
    virtual ~SpmvKernel() = default;

    /// Human-readable kernel name ("CSR", "SSS-idx", "CSX-Sym", ...).
    [[nodiscard]] virtual std::string_view name() const = 0;

    [[nodiscard]] virtual index_t rows() const = 0;

    /// Non-zeros of the represented (full) matrix; the flop count of one
    /// multiplication is 2x this for every format, which is how the paper
    /// reports Gflop/s comparably across formats.
    [[nodiscard]] virtual std::int64_t nnz() const = 0;

    /// Bytes of the matrix representation, including reduction side
    /// structures (local vectors, conflict index).
    [[nodiscard]] virtual std::size_t footprint_bytes() const = 0;

    /// y = A * x.  x and y must not alias and must have rows() elements.
    virtual void spmv(std::span<const value_t> x, std::span<value_t> y) = 0;

    /// The pool a multi-threaded kernel dispatches spmv() on, or nullptr for
    /// kernels without one (serial CSR).  Non-null is the contract that
    /// spmv_region() below is implemented: callers owning a persistent
    /// parallel region on that pool (bench::measure, cg::solve) can then run
    /// N operations under one ThreadPool::run_many() dispatch instead of N
    /// run() wakes — the fix for dispatch latency dominating small SpM×V ops.
    [[nodiscard]] virtual ThreadPool* region_pool() const { return nullptr; }

    /// One worker's share of y = A * x, callable only from inside a running
    /// job of region_pool() — every worker tid must call it exactly once per
    /// operation.  Includes the kernel's internal phase barrier(s), so after
    /// the LAST barrier the operation is complete on all workers; callers
    /// sequencing dependent operations (x/y swap loops) must add their own
    /// end-of-op barrier.  Size/alias preconditions are the caller's job
    /// here (spmv() checks them once per call; a region caller checks once
    /// per loop).
    virtual void spmv_region(int /*tid*/, std::span<const value_t> /*x*/,
                             std::span<value_t> /*y*/) {
        throw std::logic_error("spmv_region: kernel does not support region execution");
    }

    /// Phase breakdown of the most recent spmv() call; kernels without a
    /// reduction phase report everything as multiply time.
    [[nodiscard]] virtual SpmvPhases last_phases() const { return phases_; }

    /// Floating point operations per multiplication (2 per non-zero).
    [[nodiscard]] std::int64_t flops() const { return 2 * nnz(); }

    /// Attaches a per-thread phase profiler; every subsequent spmv() call
    /// records each worker's multiply / barrier-wait / reduction wall-clock
    /// into it (serial kernels record under tid 0).  Pass nullptr to
    /// detach.  The profiler must outlive the attachment and have at least
    /// as many slots as the kernel has threads.
    ///
    /// This is also the kernel's whole observability surface: the obs layer
    /// turns these recordings into trace spans by attaching a
    /// PhaseTraceSink to the profiler (obs/trace.hpp, SYMSPMV_TRACE=1), and
    /// RunRecords derive their phase breakdown from the same accumulators
    /// (obs/run_record.hpp) — kernels never depend on anything above them.
    void set_profiler(PhaseProfiler* profiler) { profiler_ = profiler; }

    [[nodiscard]] PhaseProfiler* profiler() const { return profiler_; }

   protected:
    SpmvPhases phases_;
    PhaseProfiler* profiler_ = nullptr;
};

using KernelPtr = std::unique_ptr<SpmvKernel>;

}  // namespace symspmv
