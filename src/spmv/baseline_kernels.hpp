// SpM×V kernels for the SPARSKIT-era baseline formats (ELLPACK, JDS) and
// the 1-D variable-block VBL format — the historical baselines the paper's
// related work traces CSX back to ([13], [24]).
#pragma once

#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "matrix/dia.hpp"
#include "matrix/ellpack.hpp"
#include "matrix/hyb.hpp"
#include "matrix/vbl.hpp"
#include "spmv/kernel.hpp"

namespace symspmv {

/// Multithreaded ELLPACK kernel: equal-row partitions (every row costs the
/// same padded width, so equal rows = equal work).
class EllpackMtKernel final : public SpmvKernel {
   public:
    EllpackMtKernel(Ellpack matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "ELL"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Ellpack& matrix() const { return matrix_; }

   private:
    Ellpack matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
};

/// Multithreaded JDS kernel.  Sorted-row positions are partitioned; each
/// position is a distinct output row, so threads never conflict and sweep
/// their slice of every jagged diagonal without barriers.
class JdsMtKernel final : public SpmvKernel {
   public:
    JdsMtKernel(Jds matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "JDS"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Jds& matrix() const { return matrix_; }

   private:
    Jds matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;  // ranges of sorted-row positions
};

/// Multithreaded VBL kernel: row partitions balanced by non-zero count,
/// with precomputed value offsets at the partition boundaries.
class VblMtKernel final : public SpmvKernel {
   public:
    VblMtKernel(Vbl matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "VBL"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Vbl& matrix() const { return matrix_; }

   private:
    Vbl matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
    std::vector<std::size_t> value_offsets_;  // values() cursor per partition
};

/// Multithreaded DIA kernel: row partitions sweep their slice of every
/// stored diagonal lane, plus the partition-aligned COO-tail range.
class DiaMtKernel final : public SpmvKernel {
   public:
    DiaMtKernel(Dia matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "DIA"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Dia& matrix() const { return matrix_; }

   private:
    Dia matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
    std::vector<std::size_t> tail_ptr_;
};

/// Multithreaded HYB kernel: each thread handles its row partition's ELL
/// slots plus the COO-tail entries falling in those rows (the tail is
/// row-major sorted, so per-partition tail ranges never conflict).
class HybMtKernel final : public SpmvKernel {
   public:
    HybMtKernel(Hyb matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "HYB"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const Hyb& matrix() const { return matrix_; }

   private:
    Hyb matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
    std::vector<std::size_t> tail_ptr_;  // tail entry range per partition
};

}  // namespace symspmv
