// Conflict-graph coloring for the symmetric SpM×V — the "colorful" method
// of Batista et al. ([7], discussed in §VI of the paper).
//
// Instead of buffering the mirrored (upper-triangle) writes in local vectors
// and reducing them afterwards, the matrix rows are grouped into blocks and
// the blocks are colored so that no two blocks of the same color write a
// common output-vector element.  The kernel then executes one color at a
// time, with all blocks of the current color running in parallel and no
// synchronization on the output vector at all.  The paper notes that "the
// geometry of the graphs limits the potential of this approach" — the
// coloring bench measures exactly that loss of parallelism.
#pragma once

#include <span>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "matrix/sss.hpp"

namespace symspmv {

/// A block-level greedy coloring of the symmetric SpM×V write conflicts.
class ColoringPlan {
   public:
    ColoringPlan() = default;

    /// Partitions the rows of @p sss into @p n_blocks contiguous blocks of
    /// roughly equal non-zero count and greedily colors the conflict graph:
    /// blocks A and B conflict when the write set of A (its own rows plus
    /// the below-block columns of its lower-triangle elements) intersects
    /// the write set of B.
    ColoringPlan(const Sss& sss, int n_blocks);

    /// Number of colors used (the sequential depth of the kernel).
    [[nodiscard]] int colors() const { return static_cast<int>(color_ptr_.size()) - 1; }

    [[nodiscard]] int blocks() const { return static_cast<int>(block_ranges_.size()); }

    /// Row range of block @p b.
    [[nodiscard]] std::span<const RowRange> block_ranges() const { return block_ranges_; }

    /// Blocks of color c: block_of_color()[color_ptr()[c] .. color_ptr()[c+1]).
    [[nodiscard]] std::span<const int> blocks_of_color() const { return blocks_of_color_; }
    [[nodiscard]] std::span<const std::size_t> color_ptr() const { return color_ptr_; }

    /// Largest number of same-color blocks (the parallelism actually
    /// available to the kernel; ideally == blocks()/colors()).
    [[nodiscard]] int max_parallelism() const;

   private:
    std::vector<RowRange> block_ranges_;
    std::vector<int> blocks_of_color_;
    std::vector<std::size_t> color_ptr_;
};

}  // namespace symspmv
