#include "spmv/reduction.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv {

ReductionIndex::ReductionIndex(const Sss& sss, std::span<const RowRange> parts) {
    const auto p = static_cast<int>(parts.size());
    SYMSPMV_CHECK_MSG(p >= 1, "ReductionIndex: need at least one partition");
    const auto rowptr = sss.rowptr();
    const auto colind = sss.colind();

    // Collect, per thread, the distinct columns below its start row: those
    // are exactly the conflicting rows of its local vector.
    std::vector<bool> seen;
    for (int i = 0; i < p; ++i) {
        const RowRange part = parts[static_cast<std::size_t>(i)];
        effective_rows_ += part.begin;
        if (part.begin == 0) continue;  // thread 0 has no effective region
        seen.assign(static_cast<std::size_t>(part.begin), false);
        for (index_t r = part.begin; r < part.end; ++r) {
            for (index_t j = rowptr[static_cast<std::size_t>(r)];
                 j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
                const index_t c = colind[static_cast<std::size_t>(j)];
                if (c < part.begin && !seen[static_cast<std::size_t>(c)]) {
                    seen[static_cast<std::size_t>(c)] = true;
                    entries_.push_back({c, i});
                }
            }
        }
    }

    // Sort by idx (ties by vid) — the parallelization key of §III.C.
    std::sort(entries_.begin(), entries_.end(), [](const ReductionEntry& a,
                                                   const ReductionEntry& b) {
        if (a.idx != b.idx) return a.idx < b.idx;
        return a.vid < b.vid;
    });

    // Split into p chunks of roughly equal size, advancing each boundary so
    // no idx value straddles two chunks (the independence restriction).
    chunk_ptr_.assign(static_cast<std::size_t>(p) + 1, 0);
    const std::size_t total = entries_.size();
    for (int t = 1; t < p; ++t) {
        std::size_t cut = (total * static_cast<std::size_t>(t)) / static_cast<std::size_t>(p);
        cut = std::max(cut, chunk_ptr_[static_cast<std::size_t>(t) - 1]);
        while (cut > 0 && cut < total && entries_[cut].idx == entries_[cut - 1].idx) ++cut;
        chunk_ptr_[static_cast<std::size_t>(t)] = cut;
    }
    chunk_ptr_[static_cast<std::size_t>(p)] = total;
}

double ReductionIndex::density() const {
    if (effective_rows_ == 0) return 0.0;
    return static_cast<double>(entries_.size()) / static_cast<double>(effective_rows_);
}

ReductionWorkingSet reduction_working_set(const Sss& sss, std::span<const RowRange> parts) {
    const auto p = static_cast<std::int64_t>(parts.size());
    const std::int64_t n = sss.rows();
    const ReductionIndex index(sss, parts);

    ReductionWorkingSet ws;
    ws.naive = static_cast<std::int64_t>(kValueBytes) * p * n;  // Eq. (3)
    ws.effective = static_cast<std::int64_t>(kValueBytes) * index.effective_region_rows();
    // Eq. (5): the index itself (8 bytes/entry) plus the touched local-vector
    // values (8 bytes/entry).
    ws.indexing = static_cast<std::int64_t>(index.bytes()) +
                  static_cast<std::int64_t>(kValueBytes) *
                      static_cast<std::int64_t>(index.entries().size());
    ws.density = index.density();
    return ws;
}

}  // namespace symspmv
