// Communication volume of a row-partitioned SpM×V.
//
// §V.D motivates reordering with the distributed-SpM×V literature
// ([18]-[20]): there, a row partition's cost includes the input-vector
// elements it must fetch from other partitions.  On shared memory the
// same quantity counts the remote x-vector cache lines each thread pulls,
// so it is the natural third metric (beside bandwidth and profile) for
// the ordering ablation.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "matrix/csr.hpp"

namespace symspmv {

/// Total distinct out-of-partition column indices summed over partitions:
/// the words of x a distributed implementation would communicate.
inline std::int64_t communication_volume(const Csr& csr, std::span<const RowRange> parts) {
    std::int64_t volume = 0;
    std::vector<index_t> remote;
    for (const RowRange& part : parts) {
        remote.clear();
        for (index_t r = part.begin; r < part.end; ++r) {
            for (index_t j = csr.rowptr()[static_cast<std::size_t>(r)];
                 j < csr.rowptr()[static_cast<std::size_t>(r) + 1]; ++j) {
                const index_t c = csr.colind()[static_cast<std::size_t>(j)];
                if (c < part.begin || c >= part.end) remote.push_back(c);
            }
        }
        std::ranges::sort(remote);
        const auto dup = std::ranges::unique(remote);
        remote.erase(dup.begin(), dup.end());
        volume += static_cast<std::int64_t>(remote.size());
    }
    return volume;
}

}  // namespace symspmv
