#include "serve/client.hpp"

#include "obs/span.hpp"

namespace symspmv::serve {

Frame Client::call(const Frame& request) {
    Frame stamped = request;
    if (stamped.trace_id == 0) {
        stamped.trace_id = next_trace_id_ != 0 ? next_trace_id_ : obs::make_trace_id();
    }
    next_trace_id_ = 0;
    last_trace_id_ = stamped.trace_id;
    write_frame(stream_, stamped);
    stream_.flush();
    if (!stream_) throw NetError("send failed: daemon hung up");
    auto reply = read_frame(stream_, kDefaultMaxFramePayload);
    if (!reply) throw NetError("daemon closed the connection before replying");
    return std::move(*reply);
}

Frame Client::call_checked(const Frame& request, MsgType expected_reply) {
    Frame reply = call(request);
    if (reply.type == static_cast<std::uint16_t>(MsgType::kError)) {
        const ErrorReply err = decode_error(reply.payload);
        throw RemoteError(err.code, err.message);
    }
    if (reply.type != static_cast<std::uint16_t>(expected_reply)) {
        throw ParseError("unexpected reply type " + std::to_string(reply.type) + ", wanted " +
                         std::string(to_string(expected_reply)));
    }
    return reply;
}

void Client::ping() { (void)call_checked(make_frame(MsgType::kPing), MsgType::kPong); }

SessionInfo Client::open(MsgType type, std::string data, std::uint32_t flags) {
    OpenRequest req;
    req.flags = flags;
    req.data = std::move(data);
    const Frame reply =
        call_checked(make_frame(type, encode(req)), MsgType::kSessionInfo);
    return decode_session_info(reply.payload);
}

SessionInfo Client::open_smx(std::string smx_bytes, std::uint32_t flags) {
    return open(MsgType::kOpenSmx, std::move(smx_bytes), flags);
}

SessionInfo Client::open_matrix_market(std::string mtx_text, std::uint32_t flags) {
    return open(MsgType::kOpenMatrixMarket, std::move(mtx_text), flags);
}

SessionInfo Client::open_fingerprint(const std::string& token, std::uint32_t flags) {
    return open(MsgType::kOpenFingerprint, token, flags);
}

std::vector<double> Client::spmv(std::uint64_t session, std::span<const double> x) {
    SpmvRequest req;
    req.session = session;
    req.x.assign(x.begin(), x.end());
    const Frame reply =
        call_checked(make_frame(MsgType::kSpmv, encode(req)), MsgType::kSpmvResult);
    return decode_spmv_result(reply.payload).y;
}

SolveResult Client::solve(std::uint64_t session, std::span<const double> b, double tolerance,
                          std::uint32_t max_iterations) {
    SolveRequest req;
    req.session = session;
    req.b.assign(b.begin(), b.end());
    req.tolerance = tolerance;
    req.max_iterations = max_iterations;
    const Frame reply =
        call_checked(make_frame(MsgType::kSolve, encode(req)), MsgType::kSolveResult);
    return decode_solve_result(reply.payload);
}

void Client::close_session(std::uint64_t session) {
    (void)call_checked(make_frame(MsgType::kCloseSession, encode_session_id(session)),
                       MsgType::kSessionClosed);
}

std::string Client::metrics() {
    return call_checked(make_frame(MsgType::kGetMetrics), MsgType::kMetricsText).payload;
}

std::string Client::dump_trace() {
    return call_checked(make_frame(MsgType::kDumpTrace), MsgType::kTraceDump).payload;
}

void Client::shutdown_server() {
    (void)call_checked(make_frame(MsgType::kShutdown), MsgType::kShutdownAck);
}

}  // namespace symspmv::serve
