#include "serve/protocol.hpp"

namespace symspmv::serve {

std::string_view to_string(MsgType type) {
    switch (type) {
        case MsgType::kPing: return "ping";
        case MsgType::kOpenSmx: return "open-smx";
        case MsgType::kOpenMatrixMarket: return "open-mtx";
        case MsgType::kOpenFingerprint: return "open-fingerprint";
        case MsgType::kSpmv: return "spmv";
        case MsgType::kSolve: return "solve";
        case MsgType::kCloseSession: return "close-session";
        case MsgType::kGetMetrics: return "get-metrics";
        case MsgType::kShutdown: return "shutdown";
        case MsgType::kDumpTrace: return "dump-trace";
        case MsgType::kPong: return "pong";
        case MsgType::kSessionInfo: return "session-info";
        case MsgType::kSpmvResult: return "spmv-result";
        case MsgType::kSolveResult: return "solve-result";
        case MsgType::kSessionClosed: return "session-closed";
        case MsgType::kMetricsText: return "metrics-text";
        case MsgType::kShutdownAck: return "shutdown-ack";
        case MsgType::kError: return "error";
        case MsgType::kTraceDump: return "trace-dump";
    }
    return "unknown";
}

std::string_view to_string(ErrorCode code) {
    switch (code) {
        case ErrorCode::kBadRequest: return "bad-request";
        case ErrorCode::kNotFound: return "not-found";
        case ErrorCode::kBusy: return "busy";
        case ErrorCode::kShuttingDown: return "shutting-down";
        case ErrorCode::kInternal: return "internal";
    }
    return "unknown";
}

std::string encode(const OpenRequest& m) {
    PayloadWriter w;
    w.put<std::uint32_t>(m.flags);
    w.put_bytes(m.data);
    return w.take();
}

OpenRequest decode_open(std::string_view payload) {
    PayloadReader r(payload);
    OpenRequest m;
    m.flags = r.get<std::uint32_t>();
    m.data = r.get_bytes();
    r.expect_end();
    return m;
}

std::string encode(const SessionInfo& m) {
    PayloadWriter w;
    w.put<std::uint64_t>(m.session);
    w.put_bytes(m.fingerprint);
    w.put<std::uint32_t>(m.rows);
    w.put<std::uint64_t>(m.nnz);
    w.put_bytes(m.kernel);
    w.put<std::uint8_t>(m.plan_from_cache);
    w.put<std::uint8_t>(m.tuning_pending);
    return w.take();
}

SessionInfo decode_session_info(std::string_view payload) {
    PayloadReader r(payload);
    SessionInfo m;
    m.session = r.get<std::uint64_t>();
    m.fingerprint = r.get_bytes();
    m.rows = r.get<std::uint32_t>();
    m.nnz = r.get<std::uint64_t>();
    m.kernel = r.get_bytes();
    m.plan_from_cache = r.get<std::uint8_t>();
    m.tuning_pending = r.get<std::uint8_t>();
    r.expect_end();
    return m;
}

std::string encode(const SpmvRequest& m) {
    PayloadWriter w;
    w.put<std::uint64_t>(m.session);
    w.put_doubles(m.x);
    return w.take();
}

SpmvRequest decode_spmv_request(std::string_view payload) {
    PayloadReader r(payload);
    SpmvRequest m;
    m.session = r.get<std::uint64_t>();
    m.x = r.get_doubles();
    r.expect_end();
    return m;
}

std::string encode(const SpmvResult& m) {
    PayloadWriter w;
    w.put_doubles(m.y);
    return w.take();
}

SpmvResult decode_spmv_result(std::string_view payload) {
    PayloadReader r(payload);
    SpmvResult m;
    m.y = r.get_doubles();
    r.expect_end();
    return m;
}

std::string encode(const SolveRequest& m) {
    PayloadWriter w;
    w.put<std::uint64_t>(m.session);
    w.put_doubles(m.b);
    w.put<double>(m.tolerance);
    w.put<std::uint32_t>(m.max_iterations);
    return w.take();
}

SolveRequest decode_solve_request(std::string_view payload) {
    PayloadReader r(payload);
    SolveRequest m;
    m.session = r.get<std::uint64_t>();
    m.b = r.get_doubles();
    m.tolerance = r.get<double>();
    m.max_iterations = r.get<std::uint32_t>();
    r.expect_end();
    return m;
}

std::string encode(const SolveResult& m) {
    PayloadWriter w;
    w.put_doubles(m.x);
    w.put<std::uint32_t>(m.iterations);
    w.put<double>(m.residual_norm);
    w.put<std::uint8_t>(m.converged);
    return w.take();
}

SolveResult decode_solve_result(std::string_view payload) {
    PayloadReader r(payload);
    SolveResult m;
    m.x = r.get_doubles();
    m.iterations = r.get<std::uint32_t>();
    m.residual_norm = r.get<double>();
    m.converged = r.get<std::uint8_t>();
    r.expect_end();
    return m;
}

std::string encode(const ErrorReply& m) {
    PayloadWriter w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(m.code));
    w.put_bytes(m.message);
    return w.take();
}

ErrorReply decode_error(std::string_view payload) {
    PayloadReader r(payload);
    ErrorReply m;
    m.code = static_cast<ErrorCode>(r.get<std::uint32_t>());
    m.message = r.get_bytes();
    r.expect_end();
    return m;
}

std::string encode_session_id(std::uint64_t session) {
    PayloadWriter w;
    w.put<std::uint64_t>(session);
    return w.take();
}

std::uint64_t decode_session_id(std::string_view payload) {
    PayloadReader r(payload);
    const auto id = r.get<std::uint64_t>();
    r.expect_end();
    return id;
}

Frame make_frame(MsgType type, std::string payload) {
    return Frame{.type = static_cast<std::uint16_t>(type), .payload = std::move(payload)};
}

Frame make_error(ErrorCode code, std::string message) {
    return make_frame(MsgType::kError, encode(ErrorReply{code, std::move(message)}));
}

}  // namespace symspmv::serve
