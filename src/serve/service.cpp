#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <sstream>

#include "core/spin_wait.hpp"
#include "core/timer.hpp"
#include "engine/registry.hpp"
#include "matrix/binio.hpp"
#include "matrix/mmio.hpp"
#include "obs/log.hpp"
#include "obs/run_record.hpp"
#include "solver/cg.hpp"
#include "spmv/race_kernels.hpp"

namespace symspmv::serve {

namespace {

/// Reported as serve_build_info's version label (the CMake package
/// version; bump with the package config in CMakeLists.txt).
constexpr std::string_view kBuildVersion = "1.0.0";

obs::metrics::MetricLabels type_label(MsgType type) {
    return {{"type", std::string(to_string(type))}};
}

bool is_compute(MsgType type) { return type == MsgType::kSpmv || type == MsgType::kSolve; }

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      flight_(opts_.flight != nullptr ? opts_.flight : &obs::global_flight()),
      store_(opts_.plan_cache_dir),
      sessions_(opts_.max_states),
      tune_queue_(64) {
    pool_.set_capacity(opts_.context_pool_capacity);
    sessions_.set_flight_recorder(flight_);
    if (!opts_.slow_log_path.empty()) {
        slow_log_ = std::make_unique<obs::SlowLog>(opts_.slow_log_path);
    }
    // Build/config identity as a constant gauge: one scrape answers "which
    // build and which schema revisions is this daemon speaking?".
    registry_
        .gauge("symspmv_serve_build_info",
               "Constant 1; build and schema identity in the labels",
               {{"version", std::string(kBuildVersion)},
                {"frame_version", std::to_string(kFrameVersion)},
                {"record_schema", std::to_string(obs::kRunRecordSchema)},
                {"plan_format", std::to_string(autotune::kPlanFormatVersion)},
                {"spin_budget", std::to_string(default_spin_budget(opts_.threads))}})
        .set(1.0);
    obs::metrics::register_plan_store_metrics(registry_, store_);
    registry_.add_collector([this] {
        using obs::metrics::MetricKind;
        using obs::metrics::MetricPoint;
        const SessionManager::Stats s = sessions_.stats();
        const engine::ContextPool::Stats p = pool_.stats();
        std::vector<MetricPoint> points;
        const auto point = [&](const char* name, const char* help, MetricKind kind, double v) {
            points.push_back(MetricPoint{name, help, kind, {}, v});
        };
        point("symspmv_serve_sessions_open", "Open matrix sessions", MetricKind::kGauge,
              static_cast<double>(s.sessions_open));
        point("symspmv_serve_sessions_total", "Sessions ever opened", MetricKind::kCounter,
              static_cast<double>(s.sessions_total));
        point("symspmv_serve_matrix_states", "Resident interned matrix states",
              MetricKind::kGauge, static_cast<double>(s.states_resident));
        point("symspmv_serve_state_builds_total",
              "Matrix states built from scratch (bundle + plan resolution)",
              MetricKind::kCounter, static_cast<double>(s.states_built));
        point("symspmv_serve_state_reuse_total", "Warm matrix-state hits",
              MetricKind::kCounter, static_cast<double>(s.states_reused));
        point("symspmv_serve_state_evictions_total", "Matrix states evicted by the cap",
              MetricKind::kCounter, static_cast<double>(s.states_evicted));
        point("symspmv_serve_context_pool_resident", "Warm execution resources resident",
              MetricKind::kGauge, static_cast<double>(p.resident));
        point("symspmv_serve_context_pool_evictions_total",
              "Execution resources evicted by the LRU cap", MetricKind::kCounter,
              static_cast<double>(p.evictions));
        point("symspmv_serve_tune_queue_depth", "Matrix states awaiting background tuning",
              MetricKind::kGauge, static_cast<double>(tune_queue_.depth()));
        point("symspmv_serve_tunes_completed_total", "Background tunes completed",
              MetricKind::kCounter,
              static_cast<double>(tunes_completed_.load(std::memory_order_relaxed)));
        return points;
    });
    if (opts_.tune) {
        tuner_ = std::thread([this] { tune_loop(); });
    }
}

Service::~Service() {
    begin_drain();
    if (tuner_.joinable()) tuner_.join();
}

void Service::begin_drain() {
    draining_.store(true, std::memory_order_relaxed);
    tune_queue_.close();
}

std::string Service::metrics_text() const { return registry_.to_prometheus(); }

Frame Service::handle(const Frame& request) {
    const auto type = static_cast<MsgType>(request.type);
    registry_.counter("symspmv_serve_requests_total", "Requests handled, by message type",
                      type_label(type))
        .add(1);
    // Trace context: the server's worker installs the request's root
    // context before calling in; a socket-free caller (tests, embedding)
    // gets the frame's stamped id, or a fresh trace.
    std::optional<obs::SpanContextScope> adopted;
    if (!obs::current_span_context().valid()) {
        adopted.emplace(obs::SpanContext{
            request.trace_id != 0 ? request.trace_id : obs::make_trace_id(), 0});
    }
    obs::ScopedSpan span(flight_, "handle:" + std::string(to_string(type)));
    Timer timer;
    Frame reply;
    try {
        reply = dispatch(type, request);
    } catch (const ParseError& e) {
        reply = make_error(ErrorCode::kBadRequest, e.what());
    } catch (const InvalidArgument& e) {
        reply = make_error(ErrorCode::kBadRequest, e.what());
    } catch (const std::exception& e) {
        reply = make_error(ErrorCode::kInternal, e.what());
    }
    const double seconds = timer.seconds();
    registry_
        .histogram("symspmv_serve_request_seconds",
                   "Request handling latency, by message type", type_label(type))
        .observe(seconds);
    if (is_compute(type)) {
        // The queue|solve|total phase cut: "solve" is the service-side
        // handling time (the server adds queue and total around it).
        registry_
            .histogram("symspmv_serve_request_seconds",
                       "Request latency by lifecycle phase", {{"phase", "solve"}})
            .observe(seconds);
    }
    const bool is_error = reply.type == static_cast<std::uint16_t>(MsgType::kError);
    if (is_error) {
        registry_.counter("symspmv_serve_errors_total", "Error replies, by message type",
                          type_label(type))
            .add(1);
        span.annotate("outcome", "error");
    }
    reply.trace_id = span.trace_id();
    // End before the slow check so the capture includes this span.
    span.end();
    if (!is_error) maybe_capture_slow(type, reply.trace_id, seconds);
    return reply;
}

void Service::maybe_capture_slow(MsgType type, std::uint64_t trace_id, double seconds) {
    if (!slow_log_ || !is_compute(type)) return;
    double threshold = 0.0;
    std::string_view trigger;
    if (opts_.slow_ms > 0.0) {
        threshold = opts_.slow_ms * 1e-3;
        trigger = "absolute";
    } else {
        // Rolling p99 of the solve-phase histogram; armed only once the
        // histogram has seen enough traffic to mean something.
        const auto snap = registry_
                              .histogram("symspmv_serve_request_seconds",
                                         "Request latency by lifecycle phase",
                                         {{"phase", "solve"}})
                              .snapshot();
        if (snap.count < opts_.slow_auto_min_count) return;
        threshold = snap.quantile(0.99);
        trigger = "p99";
    }
    if (threshold <= 0.0 || seconds < threshold) return;
    const std::vector<obs::Span> spans = flight_->trace(trace_id);
    if (!slow_log_->capture(trace_id, seconds, threshold, trigger, spans)) {
        obs::log_warn("slow-request capture write failed",
                      {{"path", slow_log_->path()}});
        return;
    }
    registry_
        .counter("symspmv_serve_slow_captured_total",
                 "Slow requests whose span trees were dumped to the slow log", {})
        .add(1);
    obs::log_warn("slow request captured",
                  {{"type", std::string(to_string(type))},
                   {"seconds", std::to_string(seconds)},
                   {"threshold_seconds", std::to_string(threshold)},
                   {"trigger", std::string(trigger)},
                   {"spans", std::to_string(spans.size())}});
}

Frame Service::dispatch(MsgType type, const Frame& request) {
    if (opts_.test_request_delay_ms > 0 &&
        (type == MsgType::kSpmv || type == MsgType::kSolve)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opts_.test_request_delay_ms));
    }
    switch (type) {
        case MsgType::kPing:
            return make_frame(MsgType::kPong);
        case MsgType::kGetMetrics:
            return make_frame(MsgType::kMetricsText, metrics_text());
        case MsgType::kOpenSmx:
        case MsgType::kOpenMatrixMarket:
        case MsgType::kOpenFingerprint:
            return handle_open(type, request);
        case MsgType::kSpmv:
            return handle_spmv(request);
        case MsgType::kSolve:
            return handle_solve(request);
        case MsgType::kCloseSession:
            return handle_close(request);
        default:
            return make_error(ErrorCode::kBadRequest,
                              "unsupported request type " + std::to_string(request.type));
    }
}

std::string Service::cache_path(const std::string& token) const {
    return opts_.matrix_cache_dir + "/" + token + ".smx";
}

Frame Service::handle_open(MsgType type, const Frame& request) {
    if (draining_.load(std::memory_order_relaxed)) {
        return make_error(ErrorCode::kShuttingDown, "daemon is draining");
    }
    const OpenRequest req = decode_open(request.payload);

    std::shared_ptr<MatrixState> state;
    bool built = false;
    if (type == MsgType::kOpenFingerprint) {
        const std::string& token = req.data;
        state = sessions_.find_state(token);
        if (!state && !opts_.matrix_cache_dir.empty()) {
            const std::string path = cache_path(token);
            if (std::filesystem::exists(path)) {
                Coo full = read_binary_file(path);
                const auto fp = autotune::fingerprint(full);
                if (autotune::to_string(fp) != token) {
                    return make_error(ErrorCode::kInternal,
                                      "matrix cache entry does not match its fingerprint");
                }
                state = sessions_.intern(token, [&] {
                    built = true;
                    return std::make_shared<MatrixState>(std::move(full), fp);
                });
            }
        }
        if (!state) {
            return make_error(ErrorCode::kNotFound,
                              "fingerprint not resident and not in the matrix cache");
        }
    } else {
        Coo full;
        if (type == MsgType::kOpenSmx) {
            std::istringstream in(req.data, std::ios::binary);
            full = read_binary(in);
        } else {
            std::istringstream in(req.data);
            full = read_matrix_market(in);
        }
        if (full.rows() <= 0 || full.nnz() <= 0) {
            return make_error(ErrorCode::kBadRequest, "matrix is empty");
        }
        const auto fp = autotune::fingerprint(full);
        const std::string token = autotune::to_string(fp);
        state = sessions_.intern(token, [&] {
            built = true;
            return std::make_shared<MatrixState>(std::move(full), fp);
        });
        if (built && !opts_.matrix_cache_dir.empty()) {
            try {
                std::filesystem::create_directories(opts_.matrix_cache_dir);
                write_binary_file(cache_path(state->token), state->bundle.coo());
            } catch (const std::exception& e) {
                // Cache persistence is best-effort; serving continues.
                obs::log_warn("matrix cache write failed",
                              {{"fingerprint", state->token}, {"error", e.what()}});
            }
        }
    }

    if (sessions_.stats().sessions_open >= opts_.max_sessions) {
        return make_error(ErrorCode::kBusy, "session limit reached");
    }
    ensure_kernel(state, (req.flags & kOpenNoTune) != 0);

    SessionInfo info;
    info.session = sessions_.open_session(state);
    info.fingerprint = state->token;
    {
        std::lock_guard lock(state->exec_mu);
        info.rows = static_cast<std::uint32_t>(state->bundle.coo().rows());
        info.nnz = static_cast<std::uint64_t>(state->bundle.coo().nnz());
        info.kernel = state->kernel ? std::string(state->kernel->name()) : "";
        info.plan_from_cache = state->plan_from_cache ? 1 : 0;
    }
    info.tuning_pending = state->tuning_pending.load(std::memory_order_relaxed) ? 1 : 0;
    return make_frame(MsgType::kSessionInfo, encode(info));
}

autotune::TuneOptions Service::tune_options() const {
    autotune::TuneOptions t;
    t.thread_counts = {opts_.threads};
    t.pin_threads = opts_.pin_strategy != PinStrategy::kNone;
    t.max_trials = opts_.tune_budget;
    return t;
}

autotune::PlanKey Service::plan_key(const autotune::MatrixFingerprint& fp) const {
    const autotune::TuneOptions topts = tune_options();
    return autotune::PlanKey{fp, autotune::signature_for(topts),
                             autotune::search_space_hash(topts, {opts_.threads})};
}

autotune::Plan Service::default_plan(const MatrixState& state) const {
    autotune::Plan plan;
    plan.kernel = state.bundle.coo().is_symmetric() ? KernelKind::kSssIndexing
                                                    : KernelKind::kCsr;
    plan.threads = opts_.threads;
    return plan;
}

void Service::apply_plan_locked(MatrixState& state) {
    obs::ScopedSpan span(flight_, "build-kernel");
    auto resources = pool_.acquire(state.plan.threads, opts_.pin_strategy);
    // Kernel construction dispatches pool jobs (partitioning, conversion):
    // serialize against requests running on the same shared resources.
    std::lock_guard run_lock(resources->run_mutex());
    state.kernel = autotune::build_plan(state.plan, state.bundle, resources->pool());
    state.resources = std::move(resources);
    span.annotate("kernel", std::string(state.kernel->name()));
    span.annotate("threads", std::to_string(state.plan.threads));
}

void Service::ensure_kernel(const std::shared_ptr<MatrixState>& state, bool no_tune) {
    std::lock_guard lock(state->exec_mu);
    if (state->kernel) return;
    obs::ScopedSpan span(flight_, "plan-cache-lookup");
    span.annotate("fingerprint", state->token);
    if (auto plan = store_.load(plan_key(state->fp))) {
        state->plan = *plan;
        state->plan_from_cache = true;
        span.annotate("result", "hit");
    } else {
        state->plan = default_plan(*state);
        span.annotate("result", "miss");
        if (opts_.tune && !no_tune && !draining_.load(std::memory_order_relaxed)) {
            state->tuning_pending.store(true, std::memory_order_relaxed);
            if (!tune_queue_.try_push(state)) {
                // Tune backlog full: stay on the default plan, don't stall.
                state->tuning_pending.store(false, std::memory_order_relaxed);
                span.annotate("tune_enqueued", "shed");
            } else {
                span.annotate("tune_enqueued", "yes");
            }
        }
    }
    span.end();
    apply_plan_locked(*state);
}

void Service::tune_loop() {
    while (auto item = tune_queue_.pop()) {
        const std::shared_ptr<MatrixState>& state = *item;
        if (draining_.load(std::memory_order_relaxed)) {
            state->tuning_pending.store(false, std::memory_order_relaxed);
            continue;
        }
        // Each background tune roots its own trace: it belongs to no single
        // request, but its hot-swap explains latency shifts in the dump.
        obs::ScopedSpan span(flight_, "tune-on-miss");
        span.annotate("fingerprint", state->token);
        try {
            // The tuner measures on its own contexts (global ContextPool) and
            // re-checks the store itself, so a plan another process tuned
            // meanwhile is a zero-trial warm hit here.
            autotune::Tuner tuner(store_, tune_options());
            const autotune::TuneReport report = tuner.tune(state->bundle, opts_.threads);
            std::lock_guard lock(state->exec_mu);
            state->plan = report.plan;
            state->plan_from_cache = report.cache_hit;
            apply_plan_locked(*state);
            span.annotate("kernel", std::string(to_string(report.plan.kernel)));
            obs::log_info("background tune swapped plan",
                          {{"fingerprint", state->token},
                           {"kernel", std::string(to_string(report.plan.kernel))}});
        } catch (const std::exception& e) {
            span.annotate("outcome", "error");
            obs::log_error("background tune failed",
                           {{"fingerprint", state->token}, {"error", e.what()}});
        }
        state->tuning_pending.store(false, std::memory_order_relaxed);
        tunes_completed_.fetch_add(1, std::memory_order_relaxed);
    }
}

namespace {

/// Attaches a FlightPhaseSink to the resources' profiler for the scope of
/// one kernel execution, so multiply/barrier/reduction intervals become
/// child spans of @p parent.  exec_mu must be held (the profiler is shared
/// per resources bundle); attach/detach happen outside run_mutex, before
/// and after the workers run.
class PhaseBridge {
   public:
    PhaseBridge(obs::FlightRecorder* flight, MatrixState& state, obs::SpanContext parent)
        : flight_(flight), profiler_(state.resources->profiler()), kernel_(*state.kernel),
          sink_(flight, parent) {
        profiler_.reset();
        profiler_.set_trace_sink(&sink_);
        kernel_.set_profiler(&profiler_);
    }

    ~PhaseBridge() {
        kernel_.set_profiler(nullptr);
        profiler_.set_trace_sink(nullptr);
    }

    PhaseBridge(const PhaseBridge&) = delete;
    PhaseBridge& operator=(const PhaseBridge&) = delete;

    /// Post-run annotations on @p span: per-phase totals (slowest-thread
    /// seconds), the span count the sink capped, and — for the SSS-race
    /// kernel — one child span per color stage from stage_seconds(),
    /// laid out end-to-end against the execution's end time.
    void annotate(obs::ScopedSpan& span, std::uint64_t end_ns) const {
        for (const Phase phase : {Phase::kMultiply, Phase::kBarrier, Phase::kReduction}) {
            span.annotate(std::string(to_string(phase)) + "_seconds",
                          std::to_string(profiler_.stats(phase).max_seconds));
        }
        if (sink_.suppressed() > 0) {
            span.annotate("phase_spans_suppressed", std::to_string(sink_.suppressed()));
        }
        if (const auto* race = dynamic_cast<const SssRaceKernel*>(&kernel_)) {
            const std::span<const double> stages = race->stage_seconds();
            double total = 0.0;
            for (const double s : stages) total += s;
            std::uint64_t cursor = end_ns - static_cast<std::uint64_t>(total * 1e9);
            const obs::SpanContext parent = span.context();
            for (std::size_t i = 0; i < stages.size(); ++i) {
                obs::Span stage;
                stage.trace_id = parent.trace_id;
                stage.span_id = obs::next_span_id();
                stage.parent_id = parent.span_id;
                stage.name = i == 0 ? "stage:init" : "stage:color-" + std::to_string(i);
                stage.start_ns = cursor;
                cursor += static_cast<std::uint64_t>(stages[i] * 1e9);
                stage.end_ns = cursor;
                stage.tid = 0;  // stages are timed on worker 0
                if (flight_ != nullptr) flight_->record(std::move(stage));
            }
        }
    }

   private:
    obs::FlightRecorder* flight_;
    PhaseProfiler& profiler_;
    SpmvKernel& kernel_;
    obs::FlightPhaseSink sink_;
};

}  // namespace

Frame Service::handle_spmv(const Frame& request) {
    const SpmvRequest req = decode_spmv_request(request.payload);
    std::shared_ptr<MatrixState> state;
    {
        obs::ScopedSpan lookup(flight_, "session-lookup");
        lookup.annotate("session", std::to_string(req.session));
        state = sessions_.find(req.session);
        if (!state) lookup.annotate("result", "not-found");
    }
    if (!state) return make_error(ErrorCode::kNotFound, "unknown session id");
    std::lock_guard lock(state->exec_mu);
    const auto rows = static_cast<std::size_t>(state->kernel->rows());
    if (req.x.size() != rows) {
        return make_error(ErrorCode::kBadRequest,
                          "x has " + std::to_string(req.x.size()) + " elements, matrix has " +
                              std::to_string(rows) + " rows");
    }
    SpmvResult res;
    res.y.assign(rows, 0.0);
    {
        obs::ScopedSpan exec(flight_, "spmv-execute");
        exec.annotate("kernel", std::string(state->kernel->name()));
        const PhaseBridge bridge(flight_, *state, exec.context());
        {
            std::lock_guard run_lock(state->resources->run_mutex());
            state->kernel->spmv(req.x, res.y);
        }
        bridge.annotate(exec, obs::monotonic_ns());
    }
    return make_frame(MsgType::kSpmvResult, encode(res));
}

Frame Service::handle_solve(const Frame& request) {
    const SolveRequest req = decode_solve_request(request.payload);
    std::shared_ptr<MatrixState> state;
    {
        obs::ScopedSpan lookup(flight_, "session-lookup");
        lookup.annotate("session", std::to_string(req.session));
        state = sessions_.find(req.session);
        if (!state) lookup.annotate("result", "not-found");
    }
    if (!state) return make_error(ErrorCode::kNotFound, "unknown session id");
    std::lock_guard lock(state->exec_mu);
    const auto rows = static_cast<std::size_t>(state->kernel->rows());
    if (req.b.size() != rows) {
        return make_error(ErrorCode::kBadRequest,
                          "b has " + std::to_string(req.b.size()) + " elements, matrix has " +
                              std::to_string(rows) + " rows");
    }
    if (!state->bundle.coo().is_symmetric()) {
        return make_error(ErrorCode::kBadRequest, "CG solve needs a symmetric matrix");
    }
    if (!(req.tolerance > 0.0) || req.max_iterations == 0) {
        return make_error(ErrorCode::kBadRequest, "tolerance must be > 0 and iterations >= 1");
    }
    cg::Options copts;
    copts.tolerance = req.tolerance;
    copts.max_iterations = static_cast<int>(req.max_iterations);
    copts.record_iteration_seconds = true;
    cg::Result result;
    {
        obs::ScopedSpan exec(flight_, "solve-execute");
        exec.annotate("kernel", std::string(state->kernel->name()));
        const PhaseBridge bridge(flight_, *state, exec.context());
        {
            std::lock_guard run_lock(state->resources->run_mutex());
            result = cg::solve(*state->kernel, state->resources->pool(), req.b, copts);
        }
        exec.annotate("iterations", std::to_string(result.iterations));
        bridge.annotate(exec, obs::monotonic_ns());
    }
    obs::metrics::Histogram& iters = registry_.histogram(
        "symspmv_serve_cg_iteration_seconds",
        "Wall time of each CG iteration executed by the service", {});
    for (const double s : result.iteration_seconds) iters.observe(s);

    SolveResult res;
    res.x.assign(result.x.begin(), result.x.end());
    res.iterations = static_cast<std::uint32_t>(result.iterations);
    res.residual_norm = result.residual_norm;
    res.converged = result.converged ? 1 : 0;
    return make_frame(MsgType::kSolveResult, encode(res));
}

Frame Service::handle_close(const Frame& request) {
    const std::uint64_t id = decode_session_id(request.payload);
    if (!sessions_.close(id)) return make_error(ErrorCode::kNotFound, "unknown session id");
    return make_frame(MsgType::kSessionClosed, encode_session_id(id));
}

}  // namespace symspmv::serve
