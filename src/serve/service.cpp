#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "core/timer.hpp"
#include "engine/registry.hpp"
#include "matrix/binio.hpp"
#include "matrix/mmio.hpp"
#include "solver/cg.hpp"

namespace symspmv::serve {

namespace {

obs::metrics::MetricLabels type_label(MsgType type) {
    return {{"type", std::string(to_string(type))}};
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      store_(opts_.plan_cache_dir),
      sessions_(opts_.max_states),
      tune_queue_(64) {
    pool_.set_capacity(opts_.context_pool_capacity);
    obs::metrics::register_plan_store_metrics(registry_, store_);
    registry_.add_collector([this] {
        using obs::metrics::MetricKind;
        using obs::metrics::MetricPoint;
        const SessionManager::Stats s = sessions_.stats();
        const engine::ContextPool::Stats p = pool_.stats();
        std::vector<MetricPoint> points;
        const auto point = [&](const char* name, const char* help, MetricKind kind, double v) {
            points.push_back(MetricPoint{name, help, kind, {}, v});
        };
        point("symspmv_serve_sessions_open", "Open matrix sessions", MetricKind::kGauge,
              static_cast<double>(s.sessions_open));
        point("symspmv_serve_sessions_total", "Sessions ever opened", MetricKind::kCounter,
              static_cast<double>(s.sessions_total));
        point("symspmv_serve_matrix_states", "Resident interned matrix states",
              MetricKind::kGauge, static_cast<double>(s.states_resident));
        point("symspmv_serve_state_builds_total",
              "Matrix states built from scratch (bundle + plan resolution)",
              MetricKind::kCounter, static_cast<double>(s.states_built));
        point("symspmv_serve_state_reuse_total", "Warm matrix-state hits",
              MetricKind::kCounter, static_cast<double>(s.states_reused));
        point("symspmv_serve_state_evictions_total", "Matrix states evicted by the cap",
              MetricKind::kCounter, static_cast<double>(s.states_evicted));
        point("symspmv_serve_context_pool_resident", "Warm execution resources resident",
              MetricKind::kGauge, static_cast<double>(p.resident));
        point("symspmv_serve_context_pool_evictions_total",
              "Execution resources evicted by the LRU cap", MetricKind::kCounter,
              static_cast<double>(p.evictions));
        point("symspmv_serve_tune_queue_depth", "Matrix states awaiting background tuning",
              MetricKind::kGauge, static_cast<double>(tune_queue_.depth()));
        point("symspmv_serve_tunes_completed_total", "Background tunes completed",
              MetricKind::kCounter,
              static_cast<double>(tunes_completed_.load(std::memory_order_relaxed)));
        return points;
    });
    if (opts_.tune) {
        tuner_ = std::thread([this] { tune_loop(); });
    }
}

Service::~Service() {
    begin_drain();
    if (tuner_.joinable()) tuner_.join();
}

void Service::begin_drain() {
    draining_.store(true, std::memory_order_relaxed);
    tune_queue_.close();
}

std::string Service::metrics_text() const { return registry_.to_prometheus(); }

Frame Service::handle(const Frame& request) {
    const auto type = static_cast<MsgType>(request.type);
    registry_.counter("symspmv_serve_requests_total", "Requests handled, by message type",
                      type_label(type))
        .add(1);
    Timer timer;
    Frame reply;
    try {
        reply = dispatch(type, request);
    } catch (const ParseError& e) {
        reply = make_error(ErrorCode::kBadRequest, e.what());
    } catch (const InvalidArgument& e) {
        reply = make_error(ErrorCode::kBadRequest, e.what());
    } catch (const std::exception& e) {
        reply = make_error(ErrorCode::kInternal, e.what());
    }
    registry_
        .histogram("symspmv_serve_request_seconds",
                   "Request handling latency, by message type", type_label(type))
        .observe(timer.seconds());
    if (reply.type == static_cast<std::uint16_t>(MsgType::kError)) {
        registry_.counter("symspmv_serve_errors_total", "Error replies, by message type",
                          type_label(type))
            .add(1);
    }
    return reply;
}

Frame Service::dispatch(MsgType type, const Frame& request) {
    if (opts_.test_request_delay_ms > 0 &&
        (type == MsgType::kSpmv || type == MsgType::kSolve)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opts_.test_request_delay_ms));
    }
    switch (type) {
        case MsgType::kPing:
            return make_frame(MsgType::kPong);
        case MsgType::kGetMetrics:
            return make_frame(MsgType::kMetricsText, metrics_text());
        case MsgType::kOpenSmx:
        case MsgType::kOpenMatrixMarket:
        case MsgType::kOpenFingerprint:
            return handle_open(type, request);
        case MsgType::kSpmv:
            return handle_spmv(request);
        case MsgType::kSolve:
            return handle_solve(request);
        case MsgType::kCloseSession:
            return handle_close(request);
        default:
            return make_error(ErrorCode::kBadRequest,
                              "unsupported request type " + std::to_string(request.type));
    }
}

std::string Service::cache_path(const std::string& token) const {
    return opts_.matrix_cache_dir + "/" + token + ".smx";
}

Frame Service::handle_open(MsgType type, const Frame& request) {
    if (draining_.load(std::memory_order_relaxed)) {
        return make_error(ErrorCode::kShuttingDown, "daemon is draining");
    }
    const OpenRequest req = decode_open(request.payload);

    std::shared_ptr<MatrixState> state;
    bool built = false;
    if (type == MsgType::kOpenFingerprint) {
        const std::string& token = req.data;
        state = sessions_.find_state(token);
        if (!state && !opts_.matrix_cache_dir.empty()) {
            const std::string path = cache_path(token);
            if (std::filesystem::exists(path)) {
                Coo full = read_binary_file(path);
                const auto fp = autotune::fingerprint(full);
                if (autotune::to_string(fp) != token) {
                    return make_error(ErrorCode::kInternal,
                                      "matrix cache entry does not match its fingerprint");
                }
                state = sessions_.intern(token, [&] {
                    built = true;
                    return std::make_shared<MatrixState>(std::move(full), fp);
                });
            }
        }
        if (!state) {
            return make_error(ErrorCode::kNotFound,
                              "fingerprint not resident and not in the matrix cache");
        }
    } else {
        Coo full;
        if (type == MsgType::kOpenSmx) {
            std::istringstream in(req.data, std::ios::binary);
            full = read_binary(in);
        } else {
            std::istringstream in(req.data);
            full = read_matrix_market(in);
        }
        if (full.rows() <= 0 || full.nnz() <= 0) {
            return make_error(ErrorCode::kBadRequest, "matrix is empty");
        }
        const auto fp = autotune::fingerprint(full);
        const std::string token = autotune::to_string(fp);
        state = sessions_.intern(token, [&] {
            built = true;
            return std::make_shared<MatrixState>(std::move(full), fp);
        });
        if (built && !opts_.matrix_cache_dir.empty()) {
            try {
                std::filesystem::create_directories(opts_.matrix_cache_dir);
                write_binary_file(cache_path(state->token), state->bundle.coo());
            } catch (const std::exception& e) {
                // Cache persistence is best-effort; serving continues.
                std::cerr << "symspmv-serve: matrix cache write failed: " << e.what() << "\n";
            }
        }
    }

    if (sessions_.stats().sessions_open >= opts_.max_sessions) {
        return make_error(ErrorCode::kBusy, "session limit reached");
    }
    ensure_kernel(state, (req.flags & kOpenNoTune) != 0);

    SessionInfo info;
    info.session = sessions_.open_session(state);
    info.fingerprint = state->token;
    {
        std::lock_guard lock(state->exec_mu);
        info.rows = static_cast<std::uint32_t>(state->bundle.coo().rows());
        info.nnz = static_cast<std::uint64_t>(state->bundle.coo().nnz());
        info.kernel = state->kernel ? std::string(state->kernel->name()) : "";
        info.plan_from_cache = state->plan_from_cache ? 1 : 0;
    }
    info.tuning_pending = state->tuning_pending.load(std::memory_order_relaxed) ? 1 : 0;
    return make_frame(MsgType::kSessionInfo, encode(info));
}

autotune::TuneOptions Service::tune_options() const {
    autotune::TuneOptions t;
    t.thread_counts = {opts_.threads};
    t.pin_threads = opts_.pin_strategy != PinStrategy::kNone;
    t.max_trials = opts_.tune_budget;
    return t;
}

autotune::PlanKey Service::plan_key(const autotune::MatrixFingerprint& fp) const {
    const autotune::TuneOptions topts = tune_options();
    return autotune::PlanKey{fp, autotune::signature_for(topts),
                             autotune::search_space_hash(topts, {opts_.threads})};
}

autotune::Plan Service::default_plan(const MatrixState& state) const {
    autotune::Plan plan;
    plan.kernel = state.bundle.coo().is_symmetric() ? KernelKind::kSssIndexing
                                                    : KernelKind::kCsr;
    plan.threads = opts_.threads;
    return plan;
}

void Service::apply_plan_locked(MatrixState& state) {
    auto resources = pool_.acquire(state.plan.threads, opts_.pin_strategy);
    // Kernel construction dispatches pool jobs (partitioning, conversion):
    // serialize against requests running on the same shared resources.
    std::lock_guard run_lock(resources->run_mutex());
    state.kernel = autotune::build_plan(state.plan, state.bundle, resources->pool());
    state.resources = std::move(resources);
}

void Service::ensure_kernel(const std::shared_ptr<MatrixState>& state, bool no_tune) {
    std::lock_guard lock(state->exec_mu);
    if (state->kernel) return;
    if (auto plan = store_.load(plan_key(state->fp))) {
        state->plan = *plan;
        state->plan_from_cache = true;
    } else {
        state->plan = default_plan(*state);
        if (opts_.tune && !no_tune && !draining_.load(std::memory_order_relaxed)) {
            state->tuning_pending.store(true, std::memory_order_relaxed);
            if (!tune_queue_.try_push(state)) {
                // Tune backlog full: stay on the default plan, don't stall.
                state->tuning_pending.store(false, std::memory_order_relaxed);
            }
        }
    }
    apply_plan_locked(*state);
}

void Service::tune_loop() {
    while (auto item = tune_queue_.pop()) {
        const std::shared_ptr<MatrixState>& state = *item;
        if (draining_.load(std::memory_order_relaxed)) {
            state->tuning_pending.store(false, std::memory_order_relaxed);
            continue;
        }
        try {
            // The tuner measures on its own contexts (global ContextPool) and
            // re-checks the store itself, so a plan another process tuned
            // meanwhile is a zero-trial warm hit here.
            autotune::Tuner tuner(store_, tune_options());
            const autotune::TuneReport report = tuner.tune(state->bundle, opts_.threads);
            std::lock_guard lock(state->exec_mu);
            state->plan = report.plan;
            state->plan_from_cache = report.cache_hit;
            apply_plan_locked(*state);
        } catch (const std::exception& e) {
            std::cerr << "symspmv-serve: background tune failed: " << e.what() << "\n";
        }
        state->tuning_pending.store(false, std::memory_order_relaxed);
        tunes_completed_.fetch_add(1, std::memory_order_relaxed);
    }
}

Frame Service::handle_spmv(const Frame& request) {
    const SpmvRequest req = decode_spmv_request(request.payload);
    const auto state = sessions_.find(req.session);
    if (!state) return make_error(ErrorCode::kNotFound, "unknown session id");
    std::lock_guard lock(state->exec_mu);
    const auto rows = static_cast<std::size_t>(state->kernel->rows());
    if (req.x.size() != rows) {
        return make_error(ErrorCode::kBadRequest,
                          "x has " + std::to_string(req.x.size()) + " elements, matrix has " +
                              std::to_string(rows) + " rows");
    }
    SpmvResult res;
    res.y.assign(rows, 0.0);
    {
        std::lock_guard run_lock(state->resources->run_mutex());
        state->kernel->spmv(req.x, res.y);
    }
    return make_frame(MsgType::kSpmvResult, encode(res));
}

Frame Service::handle_solve(const Frame& request) {
    const SolveRequest req = decode_solve_request(request.payload);
    const auto state = sessions_.find(req.session);
    if (!state) return make_error(ErrorCode::kNotFound, "unknown session id");
    std::lock_guard lock(state->exec_mu);
    const auto rows = static_cast<std::size_t>(state->kernel->rows());
    if (req.b.size() != rows) {
        return make_error(ErrorCode::kBadRequest,
                          "b has " + std::to_string(req.b.size()) + " elements, matrix has " +
                              std::to_string(rows) + " rows");
    }
    if (!state->bundle.coo().is_symmetric()) {
        return make_error(ErrorCode::kBadRequest, "CG solve needs a symmetric matrix");
    }
    if (!(req.tolerance > 0.0) || req.max_iterations == 0) {
        return make_error(ErrorCode::kBadRequest, "tolerance must be > 0 and iterations >= 1");
    }
    cg::Options copts;
    copts.tolerance = req.tolerance;
    copts.max_iterations = static_cast<int>(req.max_iterations);
    copts.record_iteration_seconds = true;
    cg::Result result;
    {
        std::lock_guard run_lock(state->resources->run_mutex());
        result = cg::solve(*state->kernel, state->resources->pool(), req.b, copts);
    }
    obs::metrics::Histogram& iters = registry_.histogram(
        "symspmv_serve_cg_iteration_seconds",
        "Wall time of each CG iteration executed by the service", {});
    for (const double s : result.iteration_seconds) iters.observe(s);

    SolveResult res;
    res.x.assign(result.x.begin(), result.x.end());
    res.iterations = static_cast<std::uint32_t>(result.iterations);
    res.residual_norm = result.residual_norm;
    res.converged = result.converged ? 1 : 0;
    return make_frame(MsgType::kSolveResult, encode(res));
}

Frame Service::handle_close(const Frame& request) {
    const std::uint64_t id = decode_session_id(request.payload);
    if (!sessions_.close(id)) return make_error(ErrorCode::kNotFound, "unknown session id");
    return make_frame(MsgType::kSessionClosed, encode_session_id(id));
}

}  // namespace symspmv::serve
