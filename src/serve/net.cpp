#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace symspmv::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in make_tcp_addr(const std::string& host, int port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw NetError("invalid IPv4 address: " + host);
    }
    return addr;
}

sockaddr_un make_unix_addr(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw NetError("unix socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::shutdown_both() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

SocketBuf::SocketBuf(int fd) : fd_(fd) {
    in_.resize(kBufSize);
    out_.resize(kBufSize);
    setg(in_.data(), in_.data(), in_.data());
    setp(out_.data(), out_.data() + out_.size());
}

SocketBuf::int_type SocketBuf::underflow() {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
        n = ::recv(fd_, in_.data(), in_.size(), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_.data(), in_.data(), in_.data() + n);
    return traits_type::to_int_type(*gptr());
}

bool SocketBuf::flush_out() {
    const char* p = pbase();
    while (p < pptr()) {
        ssize_t n;
        do {
            n = ::send(fd_, p, static_cast<std::size_t>(pptr() - p), MSG_NOSIGNAL);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) return false;
        p += n;
    }
    setp(out_.data(), out_.data() + out_.size());
    return true;
}

SocketBuf::int_type SocketBuf::overflow(int_type ch) {
    if (!flush_out()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
        *pptr() = traits_type::to_char_type(ch);
        pbump(1);
    }
    return traits_type::not_eof(ch);
}

int SocketBuf::sync() { return flush_out() ? 0 : -1; }

SocketStream::SocketStream(Socket sock)
    : std::iostream(nullptr), sock_(std::move(sock)), buf_(sock_.fd()) {
    rdbuf(&buf_);
}

Socket listen_tcp(const std::string& host, int port, int backlog) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) throw_errno("socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = make_tcp_addr(host, port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        throw_errno("bind " + host + ":" + std::to_string(port));
    }
    if (::listen(sock.fd(), backlog) != 0) throw_errno("listen");
    return sock;
}

Socket listen_unix(const std::string& path, int backlog) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // stale socket file from a crash
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) throw_errno("socket");
    const sockaddr_un addr = make_unix_addr(path);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        throw_errno("bind " + path);
    }
    if (::listen(sock.fd(), backlog) != 0) throw_errno("listen");
    return sock;
}

Socket connect_tcp(const std::string& host, int port) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) throw_errno("socket");
    const sockaddr_in addr = make_tcp_addr(host, port);
    int rc;
    do {
        rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) throw_errno("connect " + host + ":" + std::to_string(port));
    return sock;
}

Socket connect_unix(const std::string& path) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) throw_errno("socket");
    const sockaddr_un addr = make_unix_addr(path);
    int rc;
    do {
        rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) throw_errno("connect " + path);
    return sock;
}

int local_port(const Socket& listener) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        throw_errno("getsockname");
    }
    return ntohs(addr.sin_port);
}

Socket accept_connection(const Socket& listener) {
    while (true) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) {
            return Socket();  // listener shut down: accept loop exits cleanly
        }
        throw_errno("accept");
    }
}

std::string peek_bytes(const Socket& sock, std::size_t n) {
    std::string buf(n, '\0');
    ssize_t got;
    do {
        got = ::recv(sock.fd(), buf.data(), buf.size(), MSG_PEEK);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return {};
    buf.resize(static_cast<std::size_t>(got));
    return buf;
}

}  // namespace symspmv::serve
