#include "serve/session.hpp"

#include <algorithm>
#include <limits>

namespace symspmv::serve {

std::shared_ptr<MatrixState> SessionManager::intern(
    const std::string& token, const std::function<std::shared_ptr<MatrixState>()>& build) {
    std::lock_guard lock(mu_);
    last_used_[token] = ++use_clock_;
    if (auto it = states_.find(token); it != states_.end()) {
        ++stats_.states_reused;
        return it->second;
    }
    obs::ScopedSpan span(flight_, "state-build");
    span.annotate("fingerprint", token);
    auto state = build();
    states_.emplace(token, state);
    ++stats_.states_built;
    evict_over_cap_locked();
    return state;
}

std::shared_ptr<MatrixState> SessionManager::find_state(const std::string& token) {
    std::lock_guard lock(mu_);
    const auto it = states_.find(token);
    if (it == states_.end()) return nullptr;
    last_used_[token] = ++use_clock_;
    ++stats_.states_reused;
    return it->second;
}

std::uint64_t SessionManager::open_session(std::shared_ptr<MatrixState> state) {
    std::lock_guard lock(mu_);
    const std::uint64_t id = next_session_++;
    sessions_.emplace(id, std::move(state));
    ++stats_.sessions_total;
    return id;
}

std::shared_ptr<MatrixState> SessionManager::find(std::uint64_t session) {
    std::lock_guard lock(mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return nullptr;
    last_used_[it->second->token] = ++use_clock_;
    return it->second;
}

bool SessionManager::close(std::uint64_t session) {
    std::lock_guard lock(mu_);
    const bool erased = sessions_.erase(session) > 0;
    if (erased) evict_over_cap_locked();
    return erased;
}

void SessionManager::evict_over_cap_locked() {
    if (max_states_ == 0) return;
    while (states_.size() > max_states_) {
        // The least-recently-used state with no live session; pinned states
        // (open sessions) are skipped — a cap smaller than the concurrent
        // session spread simply stays exceeded until sessions close.
        std::string victim;
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        for (const auto& [token, state] : states_) {
            const bool pinned = std::any_of(
                sessions_.begin(), sessions_.end(),
                [&](const auto& s) { return s.second.get() == state.get(); });
            if (pinned) continue;
            const auto it = last_used_.find(token);
            const std::uint64_t stamp = it == last_used_.end() ? 0 : it->second;
            if (stamp < oldest) {
                oldest = stamp;
                victim = token;
            }
        }
        if (victim.empty()) return;  // everything pinned
        states_.erase(victim);
        last_used_.erase(victim);
        ++stats_.states_evicted;
    }
}

SessionManager::Stats SessionManager::stats() const {
    std::lock_guard lock(mu_);
    Stats s = stats_;
    s.sessions_open = sessions_.size();
    s.states_resident = states_.size();
    return s;
}

}  // namespace symspmv::serve
