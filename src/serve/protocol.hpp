// symspmv-serve wire protocol: message types and payload codecs.
//
// One request frame yields exactly one reply frame (the protocol is
// synchronous per connection; a client pipelines by opening more
// connections).  Transport framing — magic, length prefix, checksum — lives
// in core/framing.hpp; this header defines what goes *inside* a frame:
// little-endian packed payloads with explicit element counts, decoded
// through a bounds-checked reader so a hostile payload is a ParseError (and
// therefore a kError{kBadRequest} reply), never an out-of-bounds read.
//
// The full protocol specification, including the session lifecycle and a
// worked byte-level example, is docs/SERVING.md.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "core/framing.hpp"

namespace symspmv::serve {

/// Frame types.  Requests are < 100, replies >= 100 — a peer can tell at a
/// glance which direction a captured frame was travelling.
enum class MsgType : std::uint16_t {
    // requests
    kPing = 1,
    kOpenSmx = 2,            // payload: OpenRequest, data = .smx bytes
    kOpenMatrixMarket = 3,   // payload: OpenRequest, data = MatrixMarket text
    kOpenFingerprint = 4,    // payload: OpenRequest, data = fingerprint token
    kSpmv = 5,               // payload: SpmvRequest
    kSolve = 6,              // payload: SolveRequest
    kCloseSession = 7,       // payload: u64 session id
    kGetMetrics = 8,         // empty payload
    kShutdown = 9,           // empty payload; asks the daemon to drain
    kDumpTrace = 10,         // empty payload; snapshot the flight recorder
    // replies
    kPong = 100,
    kSessionInfo = 101,
    kSpmvResult = 102,
    kSolveResult = 103,
    kSessionClosed = 104,
    kMetricsText = 105,  // payload: Prometheus 0.0.4 text
    kShutdownAck = 106,
    kError = 107,  // payload: ErrorReply
    kTraceDump = 108,  // payload: Chrome trace_event JSON
};

[[nodiscard]] std::string_view to_string(MsgType type);

/// Error codes carried by kError replies (the 4xx/5xx of the protocol).
enum class ErrorCode : std::uint32_t {
    kBadRequest = 1,    // malformed payload, wrong vector size, bad matrix
    kNotFound = 2,      // unknown session id or uncached fingerprint
    kBusy = 3,          // admission control shed the request (503-style)
    kShuttingDown = 4,  // daemon is draining; no new work accepted
    kInternal = 5,      // unexpected server-side failure
};

[[nodiscard]] std::string_view to_string(ErrorCode code);

/// OpenRequest flags.
inline constexpr std::uint32_t kOpenNoTune = 1u << 0;  // skip background tuning

struct OpenRequest {
    std::uint32_t flags = 0;
    std::string data;  // .smx bytes, MatrixMarket text, or fingerprint token
};

struct SessionInfo {
    std::uint64_t session = 0;
    std::string fingerprint;  // canonical token; reusable with kOpenFingerprint
    std::uint32_t rows = 0;
    std::uint64_t nnz = 0;
    std::string kernel;            // kernel currently serving this session
    std::uint8_t plan_from_cache = 0;  // plan replayed from the PlanStore
    std::uint8_t tuning_pending = 0;   // background tune-on-miss in flight
};

struct SpmvRequest {
    std::uint64_t session = 0;
    std::vector<double> x;
};

struct SpmvResult {
    std::vector<double> y;
};

struct SolveRequest {
    std::uint64_t session = 0;
    std::vector<double> b;
    double tolerance = 1e-8;
    std::uint32_t max_iterations = 1000;
};

struct SolveResult {
    std::vector<double> x;
    std::uint32_t iterations = 0;
    double residual_norm = 0.0;
    std::uint8_t converged = 0;
};

struct ErrorReply {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
};

// ---------------------------------------------------------------------------
// Payload codecs.  encode_* build a payload string; decode_* parse one and
// throw ParseError on any deviation (short buffer, trailing bytes, counts
// that don't match the remaining length).

[[nodiscard]] std::string encode(const OpenRequest& m);
[[nodiscard]] std::string encode(const SessionInfo& m);
[[nodiscard]] std::string encode(const SpmvRequest& m);
[[nodiscard]] std::string encode(const SpmvResult& m);
[[nodiscard]] std::string encode(const SolveRequest& m);
[[nodiscard]] std::string encode(const SolveResult& m);
[[nodiscard]] std::string encode(const ErrorReply& m);
[[nodiscard]] std::string encode_session_id(std::uint64_t session);

[[nodiscard]] OpenRequest decode_open(std::string_view payload);
[[nodiscard]] SessionInfo decode_session_info(std::string_view payload);
[[nodiscard]] SpmvRequest decode_spmv_request(std::string_view payload);
[[nodiscard]] SpmvResult decode_spmv_result(std::string_view payload);
[[nodiscard]] SolveRequest decode_solve_request(std::string_view payload);
[[nodiscard]] SolveResult decode_solve_result(std::string_view payload);
[[nodiscard]] ErrorReply decode_error(std::string_view payload);
[[nodiscard]] std::uint64_t decode_session_id(std::string_view payload);

/// Convenience: a complete reply/request frame.
[[nodiscard]] Frame make_frame(MsgType type, std::string payload = {});
[[nodiscard]] Frame make_error(ErrorCode code, std::string message);

// ---------------------------------------------------------------------------
// Bounds-checked little-endian readers/writers (exposed for the codec unit
// tests; the serve payloads above are built exclusively from these).

class PayloadWriter {
   public:
    template <typename T>
    void put(T v) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const char*>(&v);
        bytes_.append(p, sizeof(T));
    }

    void put_bytes(std::string_view s) {
        put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
        bytes_.append(s.data(), s.size());
    }

    void put_doubles(std::span<const double> v) {
        put<std::uint32_t>(static_cast<std::uint32_t>(v.size()));
        bytes_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(double));
    }

    [[nodiscard]] std::string take() { return std::move(bytes_); }

   private:
    std::string bytes_;
};

class PayloadReader {
   public:
    explicit PayloadReader(std::string_view payload) : data_(payload) {}

    template <typename T>
    [[nodiscard]] T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        if (data_.size() - pos_ < sizeof(T)) throw ParseError("payload: truncated field");
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    [[nodiscard]] std::string get_bytes() {
        const auto n = get<std::uint32_t>();
        if (data_.size() - pos_ < n) throw ParseError("payload: truncated byte string");
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    [[nodiscard]] std::vector<double> get_doubles() {
        const auto n = get<std::uint32_t>();
        if ((data_.size() - pos_) / sizeof(double) < n) {
            throw ParseError("payload: truncated vector");
        }
        std::vector<double> v(n);
        std::memcpy(v.data(), data_.data() + pos_, n * sizeof(double));
        pos_ += n * sizeof(double);
        return v;
    }

    /// Every decode ends with this: trailing bytes are a malformed payload,
    /// not padding.
    void expect_end() const {
        if (pos_ != data_.size()) throw ParseError("payload: trailing bytes");
    }

   private:
    std::string_view data_;
    std::size_t pos_ = 0;
};

}  // namespace symspmv::serve
