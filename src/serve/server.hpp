// The daemon shell around Service: listeners, connection readers, the
// bounded admission queue, the worker loop, and the graceful-drain sequence.
//
// Threading model:
//   - one accept thread per listener (TCP and/or unix-domain);
//   - one reader thread per connection, which parses frames and either
//     answers trivially (ping, metrics, shutdown, shed/drain errors) or
//     enqueues the request;
//   - a fixed pool of worker threads popping the queue, calling
//     Service::handle and writing the reply under the connection's write
//     lock.
//
// Admission control: the queue is bounded and try_push never blocks — a
// full queue is an immediate kError{kBusy} reply (load shedding), counted
// in symspmv_serve_shed_total.
//
// Drain (SIGTERM or a kShutdown frame): begin_shutdown() stops the
// listeners, closes the queue to new work and flips every later request to
// kError{kShuttingDown}; wait() then joins the workers — every request
// already admitted still gets its reply — before tearing down the
// connections.  begin_shutdown() is idempotent and safe from any thread,
// including a connection reader.
//
// HTTP on the same listener: a connection whose first bytes are "GET " is
// answered as a one-shot HTTP/1.1 exchange — /metrics returns the live
// Prometheus exposition (text/plain; version=0.0.4) — so a scraper needs no
// second port.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/net.hpp"
#include "serve/queue.hpp"
#include "serve/service.hpp"

namespace symspmv::serve {

struct ServerOptions {
    ServiceOptions service;
    /// TCP listener address; port < 0 disables TCP, port 0 lets the kernel
    /// pick (read it back with Server::port()).
    std::string host = "127.0.0.1";
    int port = -1;
    /// Unix-domain listener path ("" = disabled; the file is unlinked on
    /// clean shutdown).
    std::string unix_path;
    /// Admission queue depth; 0 sheds every compute request (test setting).
    std::size_t queue_capacity = 64;
    /// Worker threads executing requests.
    int workers = 2;
};

class Server {
   public:
    /// Binds the listeners and starts all threads; throws NetError when a
    /// listener cannot bind.
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    [[nodiscard]] Service& service() { return service_; }
    /// The bound TCP port (-1 when TCP is disabled).
    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] bool draining() const { return draining_.load(std::memory_order_relaxed); }

    /// Initiates the drain: stop accepting, stop admitting, finish what was
    /// admitted.  Idempotent; returns immediately (wait() blocks).
    void begin_shutdown();

    /// Blocks until begin_shutdown() fires, then completes the drain and
    /// joins every thread.  Call exactly once, from the owning thread.
    void wait();

    struct Stats {
        std::uint64_t connections_total = 0;
        std::uint64_t requests_shed = 0;
        std::uint64_t http_requests = 0;
    };
    [[nodiscard]] Stats stats() const;

   private:
    struct Conn {
        explicit Conn(Socket sock) : stream(std::move(sock)) {}
        SocketStream stream;
        std::mutex write_mu;  // reader (errors) and workers (replies) share it
    };
    struct Job {
        Frame request;
        std::shared_ptr<Conn> conn;
        /// Trace plumbing: the request's root span (opened by the reader,
        /// closed by whichever thread writes the reply) and the enqueue
        /// time the queue-wait span starts at.
        std::uint64_t root_span_id = 0;
        std::uint64_t root_start_ns = 0;
        std::uint64_t enqueue_ns = 0;
    };

    [[nodiscard]] bool waited_joined() const;
    void accept_loop(const Socket& listener);
    void connection_loop(const std::shared_ptr<Conn>& conn);
    void serve_http(Conn& conn);
    void worker_loop();
    void reply(Conn& conn, const Frame& frame);

    [[nodiscard]] obs::FlightRecorder& flight() { return service_.flight(); }
    /// Stamps the trace id on @p out, writes it, then closes the request:
    /// records the root span [root_start_ns, now], observes the
    /// phase="total" latency histogram and bumps the outcome counter
    /// (ok | busy | error | shutdown, classified from the reply frame).
    void finish_request(Conn& conn, const Frame& request, Frame out,
                        std::uint64_t root_span_id, std::uint64_t root_start_ns);

    ServerOptions opts_;
    Service service_;
    obs::metrics::Counter* shed_ = nullptr;  // owned by the service registry
    BoundedQueue<Job> queue_;

    Socket tcp_listener_;
    Socket unix_listener_;
    int port_ = -1;

    std::atomic<bool> draining_{false};
    std::mutex shutdown_mu_;
    std::condition_variable shutdown_cv_;

    mutable std::mutex conns_mu_;
    std::vector<std::weak_ptr<Conn>> conns_;
    std::vector<std::thread> conn_threads_;

    std::vector<std::thread> accept_threads_;
    std::vector<std::thread> workers_;

    std::atomic<std::uint64_t> connections_total_{0};
    std::atomic<std::uint64_t> http_requests_{0};
};

}  // namespace symspmv::serve
