#include "serve/server.hpp"

#include <filesystem>
#include <iostream>
#include <sstream>

namespace symspmv::serve {

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service), queue_(opts_.queue_capacity) {
    // Materialize the shed counter up front so /metrics shows it at zero
    // before the first overflow.
    shed_ = &service_.metrics().counter(
        "symspmv_serve_shed_total",
        "Requests rejected by admission control (kBusy replies)");
    if (opts_.port >= 0) {
        tcp_listener_ = listen_tcp(opts_.host, opts_.port);
        port_ = local_port(tcp_listener_);
        accept_threads_.emplace_back([this] { accept_loop(tcp_listener_); });
    }
    if (!opts_.unix_path.empty()) {
        unix_listener_ = listen_unix(opts_.unix_path);
        accept_threads_.emplace_back([this] { accept_loop(unix_listener_); });
    }
    for (int i = 0; i < opts_.workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Server::~Server() {
    begin_shutdown();
    if (!waited_joined()) wait();
}

bool Server::waited_joined() const {
    // All joinable thread vectors empty after a completed wait().
    return accept_threads_.empty() && workers_.empty();
}

void Server::begin_shutdown() {
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true)) return;
    service_.begin_drain();
    // Waking the accept loops: shutdown() makes blocked accept() fail.
    tcp_listener_.shutdown_both();
    unix_listener_.shutdown_both();
    // Stop admission; workers drain what was already accepted.
    queue_.close();
    {
        std::lock_guard lock(shutdown_mu_);
    }
    shutdown_cv_.notify_all();
}

void Server::wait() {
    {
        std::unique_lock lock(shutdown_mu_);
        shutdown_cv_.wait(lock, [this] { return draining_.load(std::memory_order_relaxed); });
    }
    for (auto& t : accept_threads_) t.join();
    accept_threads_.clear();
    // Queue is closed: workers finish every admitted request (replies
    // included) and exit.
    for (auto& t : workers_) t.join();
    workers_.clear();
    // Only now sever the connections — readers blocked in recv wake up and
    // exit; no admitted reply is lost.
    {
        std::lock_guard lock(conns_mu_);
        for (auto& weak : conns_) {
            if (auto conn = weak.lock()) conn->stream.socket().shutdown_both();
        }
    }
    for (auto& t : conn_threads_) t.join();
    conn_threads_.clear();
    tcp_listener_.close();
    unix_listener_.close();
    if (!opts_.unix_path.empty()) {
        std::error_code ec;
        std::filesystem::remove(opts_.unix_path, ec);
    }
}

Server::Stats Server::stats() const {
    Stats s;
    s.connections_total = connections_total_.load(std::memory_order_relaxed);
    s.http_requests = http_requests_.load(std::memory_order_relaxed);
    s.requests_shed = static_cast<std::uint64_t>(shed_->value());
    return s;
}

void Server::accept_loop(const Socket& listener) {
    while (true) {
        Socket sock = accept_connection(listener);
        if (!sock.valid()) return;
        if (draining_.load(std::memory_order_relaxed)) continue;  // drop late arrivals
        connections_total_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Conn>(std::move(sock));
        std::lock_guard lock(conns_mu_);
        conns_.push_back(conn);
        conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
    }
}

void Server::reply(Conn& conn, const Frame& frame) {
    std::lock_guard lock(conn.write_mu);
    write_frame(conn.stream, frame);
    conn.stream.flush();
}

void Server::connection_loop(const std::shared_ptr<Conn>& conn) {
    const std::string head = peek_bytes(conn->stream.socket(), 4);
    if (head == "GET ") {
        serve_http(*conn);
        return;
    }
    while (true) {
        std::optional<Frame> frame;
        try {
            frame = read_frame(conn->stream, service_.options().max_payload);
        } catch (const ParseError& e) {
            // Framing is lost: report and hang up, there is no resync.
            reply(*conn, make_error(ErrorCode::kBadRequest, e.what()));
            return;
        } catch (const std::exception& e) {
            reply(*conn, make_error(ErrorCode::kInternal, e.what()));
            return;
        }
        if (!frame) return;  // peer closed (or drain severed the socket)

        const auto type = static_cast<MsgType>(frame->type);
        // Control-plane types bypass the queue: liveness and metrics must
        // answer even when the compute queue is saturated or draining.
        if (type == MsgType::kShutdown) {
            // Initiate the drain before acking, so the ack is a guarantee:
            // by the time the client sees it, no new work is admitted.
            begin_shutdown();
            reply(*conn, make_frame(MsgType::kShutdownAck));
            continue;
        }
        if (type == MsgType::kPing) {
            reply(*conn, make_frame(MsgType::kPong));
            continue;
        }
        if (type == MsgType::kGetMetrics) {
            reply(*conn, make_frame(MsgType::kMetricsText, service_.metrics_text()));
            continue;
        }
        if (draining_.load(std::memory_order_relaxed)) {
            reply(*conn, make_error(ErrorCode::kShuttingDown, "daemon is draining"));
            continue;
        }
        if (!queue_.try_push(Job{std::move(*frame), conn})) {
            shed_->add(1);
            reply(*conn, make_error(ErrorCode::kBusy, "request queue is full"));
        }
    }
}

void Server::serve_http(Conn& conn) {
    http_requests_.fetch_add(1, std::memory_order_relaxed);
    std::string request_line;
    if (!std::getline(conn.stream, request_line)) return;
    std::string line;  // drain the header block
    while (std::getline(conn.stream, line) && line != "\r" && !line.empty()) {
    }
    std::istringstream parts(request_line);
    std::string method, path;
    parts >> method >> path;

    std::string status = "404 Not Found";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "not found; try /metrics\n";
    if (path == "/metrics") {
        status = "200 OK";
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = service_.metrics_text();
    }
    std::lock_guard lock(conn.write_mu);
    conn.stream << "HTTP/1.1 " << status << "\r\n"
                << "Content-Type: " << content_type << "\r\n"
                << "Content-Length: " << body.size() << "\r\n"
                << "Connection: close\r\n\r\n"
                << body;
    conn.stream.flush();
}

void Server::worker_loop() {
    while (auto job = queue_.pop()) {
        const Frame out = service_.handle(job->request);
        reply(*job->conn, out);
    }
}

}  // namespace symspmv::serve
