#include "serve/server.hpp"

#include <filesystem>
#include <sstream>

#include "obs/log.hpp"
#include "obs/span.hpp"

namespace symspmv::serve {

namespace {

constexpr const char* kOutcomeHelp =
    "Requests finished, by outcome (ok | busy | error | shutdown)";
constexpr const char* kPhaseHelp = "Request latency by lifecycle phase";

/// Classifies a reply frame for the outcome counter: shedding (busy) and
/// drain rejections (shutdown) are operational states, not failures.
std::string_view outcome_of(const Frame& reply) {
    if (reply.type != static_cast<std::uint16_t>(MsgType::kError)) return "ok";
    try {
        switch (decode_error(reply.payload).code) {
            case ErrorCode::kBusy: return "busy";
            case ErrorCode::kShuttingDown: return "shutdown";
            default: return "error";
        }
    } catch (const std::exception&) {
        return "error";
    }
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service), queue_(opts_.queue_capacity) {
    // Materialize the shed counter up front so /metrics shows it at zero
    // before the first overflow.
    shed_ = &service_.metrics().counter(
        "symspmv_serve_shed_total",
        "Requests rejected by admission control (kBusy replies)");
    // Same for the outcome counters and phase histograms: a scrape before
    // the first request already shows every series.
    for (const char* outcome : {"ok", "busy", "error", "shutdown"}) {
        service_.metrics().counter("symspmv_serve_requests_total", kOutcomeHelp,
                                   {{"outcome", outcome}});
    }
    for (const char* phase : {"queue", "total"}) {
        service_.metrics().histogram("symspmv_serve_request_seconds", kPhaseHelp,
                                     {{"phase", phase}});
    }
    if (opts_.port >= 0) {
        tcp_listener_ = listen_tcp(opts_.host, opts_.port);
        port_ = local_port(tcp_listener_);
        accept_threads_.emplace_back([this] { accept_loop(tcp_listener_); });
    }
    if (!opts_.unix_path.empty()) {
        unix_listener_ = listen_unix(opts_.unix_path);
        accept_threads_.emplace_back([this] { accept_loop(unix_listener_); });
    }
    for (int i = 0; i < opts_.workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Server::~Server() {
    begin_shutdown();
    if (!waited_joined()) wait();
}

bool Server::waited_joined() const {
    // All joinable thread vectors empty after a completed wait().
    return accept_threads_.empty() && workers_.empty();
}

void Server::begin_shutdown() {
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true)) return;
    service_.begin_drain();
    // Waking the accept loops: shutdown() makes blocked accept() fail.
    tcp_listener_.shutdown_both();
    unix_listener_.shutdown_both();
    // Stop admission; workers drain what was already accepted.
    queue_.close();
    {
        std::lock_guard lock(shutdown_mu_);
    }
    shutdown_cv_.notify_all();
}

void Server::wait() {
    {
        std::unique_lock lock(shutdown_mu_);
        shutdown_cv_.wait(lock, [this] { return draining_.load(std::memory_order_relaxed); });
    }
    for (auto& t : accept_threads_) t.join();
    accept_threads_.clear();
    // Queue is closed: workers finish every admitted request (replies
    // included) and exit.
    for (auto& t : workers_) t.join();
    workers_.clear();
    // Only now sever the connections — readers blocked in recv wake up and
    // exit; no admitted reply is lost.
    {
        std::lock_guard lock(conns_mu_);
        for (auto& weak : conns_) {
            if (auto conn = weak.lock()) conn->stream.socket().shutdown_both();
        }
    }
    for (auto& t : conn_threads_) t.join();
    conn_threads_.clear();
    tcp_listener_.close();
    unix_listener_.close();
    if (!opts_.unix_path.empty()) {
        std::error_code ec;
        std::filesystem::remove(opts_.unix_path, ec);
    }
}

Server::Stats Server::stats() const {
    Stats s;
    s.connections_total = connections_total_.load(std::memory_order_relaxed);
    s.http_requests = http_requests_.load(std::memory_order_relaxed);
    s.requests_shed = static_cast<std::uint64_t>(shed_->value());
    return s;
}

void Server::accept_loop(const Socket& listener) {
    while (true) {
        Socket sock = accept_connection(listener);
        if (!sock.valid()) return;
        if (draining_.load(std::memory_order_relaxed)) continue;  // drop late arrivals
        connections_total_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Conn>(std::move(sock));
        std::lock_guard lock(conns_mu_);
        conns_.push_back(conn);
        conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
    }
}

void Server::reply(Conn& conn, const Frame& frame) {
    std::lock_guard lock(conn.write_mu);
    write_frame(conn.stream, frame);
    conn.stream.flush();
}

void Server::connection_loop(const std::shared_ptr<Conn>& conn) {
    const std::string head = peek_bytes(conn->stream.socket(), 4);
    if (head == "GET ") {
        serve_http(*conn);
        return;
    }
    while (true) {
        const std::uint64_t read_start = obs::monotonic_ns();
        std::optional<Frame> frame;
        try {
            frame = read_frame(conn->stream, service_.options().max_payload);
        } catch (const ParseError& e) {
            // Framing is lost: report and hang up, there is no resync.
            reply(*conn, make_error(ErrorCode::kBadRequest, e.what()));
            return;
        } catch (const std::exception& e) {
            reply(*conn, make_error(ErrorCode::kInternal, e.what()));
            return;
        }
        if (!frame) return;  // peer closed (or drain severed the socket)

        // The request's root span starts here — after the frame is fully
        // read — so persistent-connection idle time between requests never
        // counts against phase="total".  The read itself (which does include
        // the wait for the first byte) is a separate preceding span.
        const std::uint64_t read_end = obs::monotonic_ns();
        const bool assigned = frame->trace_id == 0;
        if (assigned) frame->trace_id = obs::make_trace_id();
        const std::uint64_t root_id = obs::next_span_id();
        {
            obs::Span read_span;
            read_span.trace_id = frame->trace_id;
            read_span.span_id = obs::next_span_id();
            read_span.parent_id = root_id;
            read_span.name = "read-frame";
            read_span.start_ns = read_start;
            read_span.end_ns = read_end;
            read_span.annotations.emplace_back(
                "type", std::string(to_string(static_cast<MsgType>(frame->type))));
            read_span.annotations.emplace_back("bytes",
                                               std::to_string(frame->payload.size()));
            read_span.annotations.emplace_back("trace_source",
                                               assigned ? "server" : "client");
            flight().record(std::move(read_span));
        }

        const auto type = static_cast<MsgType>(frame->type);
        // Control-plane types bypass the queue: liveness, metrics and trace
        // dumps must answer even when the compute queue is saturated or
        // draining.
        if (type == MsgType::kShutdown) {
            // Initiate the drain before acking, so the ack is a guarantee:
            // by the time the client sees it, no new work is admitted.
            begin_shutdown();
            finish_request(*conn, *frame, make_frame(MsgType::kShutdownAck), root_id, read_end);
            continue;
        }
        if (type == MsgType::kPing) {
            finish_request(*conn, *frame, make_frame(MsgType::kPong), root_id, read_end);
            continue;
        }
        if (type == MsgType::kGetMetrics) {
            finish_request(*conn, *frame,
                           make_frame(MsgType::kMetricsText, service_.metrics_text()), root_id,
                           read_end);
            continue;
        }
        if (type == MsgType::kDumpTrace) {
            finish_request(*conn, *frame,
                           make_frame(MsgType::kTraceDump, flight().chrome_json()), root_id,
                           read_end);
            continue;
        }
        if (draining_.load(std::memory_order_relaxed)) {
            finish_request(*conn, *frame,
                           make_error(ErrorCode::kShuttingDown, "daemon is draining"), root_id,
                           read_end);
            continue;
        }
        // try_push takes the job by value, so the frame is consumed whether
        // admission succeeds or not — keep what the busy path needs.
        Frame header;
        header.type = frame->type;
        header.trace_id = frame->trace_id;
        if (!queue_.try_push(Job{std::move(*frame), conn, root_id, read_end,
                                 obs::monotonic_ns()})) {
            shed_->add(1);
            finish_request(*conn, header,
                           make_error(ErrorCode::kBusy, "request queue is full"), root_id,
                           read_end);
        }
    }
}

void Server::serve_http(Conn& conn) {
    http_requests_.fetch_add(1, std::memory_order_relaxed);
    std::string request_line;
    if (!std::getline(conn.stream, request_line)) return;
    std::string line;  // drain the header block
    while (std::getline(conn.stream, line) && line != "\r" && !line.empty()) {
    }
    std::istringstream parts(request_line);
    std::string method, path;
    parts >> method >> path;

    std::string status = "404 Not Found";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "not found; try /metrics\n";
    if (path == "/metrics") {
        status = "200 OK";
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = service_.metrics_text();
    }
    std::lock_guard lock(conn.write_mu);
    conn.stream << "HTTP/1.1 " << status << "\r\n"
                << "Content-Type: " << content_type << "\r\n"
                << "Content-Length: " << body.size() << "\r\n"
                << "Connection: close\r\n\r\n"
                << body;
    conn.stream.flush();
}

void Server::worker_loop() {
    while (auto job = queue_.pop()) {
        // Queue wait is its own span and histogram phase: under load it is
        // the part of total latency admission control owns.
        const std::uint64_t dequeue = obs::monotonic_ns();
        {
            obs::Span wait;
            wait.trace_id = job->request.trace_id;
            wait.span_id = obs::next_span_id();
            wait.parent_id = job->root_span_id;
            wait.name = "queue-wait";
            wait.start_ns = job->enqueue_ns;
            wait.end_ns = dequeue;
            flight().record(std::move(wait));
        }
        service_.metrics()
            .histogram("symspmv_serve_request_seconds", kPhaseHelp, {{"phase", "queue"}})
            .observe(static_cast<double>(dequeue - job->enqueue_ns) * 1e-9);
        Frame out;
        {
            // Make the root span the ambient parent so Service's handling
            // span (opened on this worker thread) attaches under it.
            obs::SpanContextScope scope({job->request.trace_id, job->root_span_id});
            out = service_.handle(job->request);
        }
        finish_request(*job->conn, job->request, std::move(out), job->root_span_id,
                       job->root_start_ns);
    }
}

void Server::finish_request(Conn& conn, const Frame& request, Frame out,
                            std::uint64_t root_span_id, std::uint64_t root_start_ns) {
    out.trace_id = request.trace_id;
    reply(conn, out);
    const std::uint64_t end = obs::monotonic_ns();
    const std::string_view outcome = outcome_of(out);
    {
        obs::Span root;
        root.trace_id = request.trace_id;
        root.span_id = root_span_id;
        root.name = "request";
        root.start_ns = root_start_ns;
        root.end_ns = end;
        root.annotations.emplace_back(
            "type", std::string(to_string(static_cast<MsgType>(request.type))));
        root.annotations.emplace_back("outcome", std::string(outcome));
        flight().record(std::move(root));
    }
    service_.metrics()
        .histogram("symspmv_serve_request_seconds", kPhaseHelp, {{"phase", "total"}})
        .observe(static_cast<double>(end - root_start_ns) * 1e-9);
    service_.metrics()
        .counter("symspmv_serve_requests_total", kOutcomeHelp,
                 {{"outcome", std::string(outcome)}})
        .add(1);
}

}  // namespace symspmv::serve
