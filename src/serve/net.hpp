// Thin POSIX socket layer for the serve daemon and client.
//
// Everything above this header speaks std::iostream: SocketStream wraps a
// connected socket in a buffered streambuf so the core frame codec
// (core/framing.hpp) reads and writes the wire directly.  Sends use
// MSG_NOSIGNAL — a peer that vanished mid-reply is an error return, never a
// SIGPIPE that kills the daemon.  Errors surface as NetError.
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <string>

namespace symspmv::serve {

/// Thrown when a socket operation fails (message includes errno text).
class NetError : public std::runtime_error {
   public:
    using std::runtime_error::runtime_error;
};

/// RAII file descriptor.  Move-only; closes on destruction.
class Socket {
   public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept;

    [[nodiscard]] int fd() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }

    void close();
    /// shutdown(SHUT_RDWR): wakes any thread blocked in recv on this fd —
    /// how the drain sequence unblocks connection readers.  Safe on a
    /// closed/invalid socket.
    void shutdown_both();

   private:
    int fd_ = -1;
};

/// Buffered std::streambuf over a connected socket.  Reads recv(); writes
/// send(MSG_NOSIGNAL).  A failed send sets the stream's failbit via the
/// usual streambuf contract.
class SocketBuf : public std::streambuf {
   public:
    explicit SocketBuf(int fd);

   protected:
    int_type underflow() override;
    int_type overflow(int_type ch) override;
    int sync() override;

   private:
    bool flush_out();

    static constexpr std::size_t kBufSize = 64 * 1024;
    int fd_;
    std::string in_;
    std::string out_;
};

/// A connected socket exposed as a std::iostream (what the frame codec
/// consumes).  Owns the fd.
class SocketStream : public std::iostream {
   public:
    explicit SocketStream(Socket sock);

    [[nodiscard]] Socket& socket() { return sock_; }

   private:
    Socket sock_;
    SocketBuf buf_;
};

// ---------------------------------------------------------------------------
// Listener / connector helpers.  All throw NetError on failure.

/// TCP listener on @p host:@p port (port 0 = kernel-assigned; read it back
/// with local_port).  SO_REUSEADDR is set.
[[nodiscard]] Socket listen_tcp(const std::string& host, int port, int backlog = 64);

/// Unix-domain listener at @p path (an existing socket file is replaced).
[[nodiscard]] Socket listen_unix(const std::string& path, int backlog = 64);

[[nodiscard]] Socket connect_tcp(const std::string& host, int port);
[[nodiscard]] Socket connect_unix(const std::string& path);

/// The port a TCP listener actually bound (resolves port 0).
[[nodiscard]] int local_port(const Socket& listener);

/// Blocking accept.  Returns an invalid Socket when the listener was shut
/// down or closed (the accept loop's exit signal), throws NetError on other
/// failures.
[[nodiscard]] Socket accept_connection(const Socket& listener);

/// MSG_PEEK up to @p n bytes without consuming them — how the server sniffs
/// "GET " to serve plain-HTTP /metrics on the binary listener.  Returns
/// fewer bytes at EOF.
[[nodiscard]] std::string peek_bytes(const Socket& sock, std::size_t n);

}  // namespace symspmv::serve
