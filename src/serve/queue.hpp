// Bounded MPMC request queue with non-blocking admission.
//
// The serve admission-control model: producers (connection readers) never
// block — try_push either accepts the item or reports the queue full, and
// the caller turns "full" into a kBusy reply (shed, don't stall).
// Consumers (workers) block in pop until an item arrives or the queue is
// closed and drained, which is exactly the SIGTERM story: close() stops
// admission immediately while the workers finish what was already accepted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace symspmv::serve {

template <typename T>
class BoundedQueue {
   public:
    /// @p capacity of 0 admits nothing (every try_push sheds) — the
    /// degenerate setting the overflow tests use.
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    /// Non-blocking admission: false when the queue is full or closed.
    [[nodiscard]] bool try_push(T item) {
        {
            std::lock_guard lock(mu_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; nullopt means "no more work ever" (worker exit signal).
    [[nodiscard]] std::optional<T> pop() {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /// Stops admission; already-queued items still drain through pop().
    void close() {
        {
            std::lock_guard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

    [[nodiscard]] std::size_t depth() const {
        std::lock_guard lock(mu_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

   private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace symspmv::serve
