// The serve request executor: decoded frames in, reply frames out.
//
// Service is the socket-free core of the daemon (server.hpp adds listeners,
// connection threads and the admission queue around it; the integration
// tests drive Service directly).  It owns the shared caches the ISSUE's
// warm-path contract is about:
//
//   - a SessionManager interning matrix states by fingerprint, so the
//     bundle build and plan resolution for a matrix happen once across all
//     clients and connections;
//   - a PlanStore (optionally disk-backed), so tuning survives restarts and
//     is shared across sessions — tune-on-miss runs on a background thread
//     and hot-swaps the session kernel when it lands, requests keep flowing
//     on the default kernel meanwhile;
//   - a private ContextPool with an LRU capacity cap, so request execution
//     reuses warm worker pools (ThreadPool::pools_created() stays flat once
//     the configured shapes exist) and a long-lived process cannot
//     accumulate pools without bound;
//   - a metrics Registry whose Prometheus exposition the server publishes
//     as /metrics: request counts and latency histograms per message type,
//     plan-store and session collectors, tune accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "autotune/store.hpp"
#include "autotune/tuner.hpp"
#include "core/framing.hpp"
#include "core/topology.hpp"
#include "engine/resources.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/session.hpp"

namespace symspmv::serve {

struct ServiceOptions {
    /// Workers per execution context (the pool kernels run on).
    int threads = 2;
    /// Thread layout on the machine; kPerSocket pairs naturally with
    /// by-socket request placement on multi-socket hosts.
    PinStrategy pin_strategy = PinStrategy::kNone;
    /// Plan cache directory ("" = in-memory only, tuning lost on restart).
    std::string plan_cache_dir;
    /// .smx matrix cache directory ("" = off).  Uploaded matrices are
    /// persisted here under their fingerprint token, and kOpenFingerprint
    /// requests fall back to it when the state is not resident.
    std::string matrix_cache_dir;
    /// Background tune-on-miss: opens return immediately on the default
    /// kernel; a background thread tunes and hot-swaps the session kernel.
    bool tune = false;
    /// Trial budget per background tune (0 = unbounded).
    int tune_budget = 6;
    /// Resident matrix-state cap (LRU eviction of session-free states).
    std::size_t max_states = 32;
    /// Open-session cap; opens beyond it are shed with kBusy.
    std::size_t max_sessions = 1024;
    /// Frame payload ceiling (bounds upload and vector sizes).
    std::size_t max_payload = kDefaultMaxFramePayload;
    /// LRU capacity of the private ContextPool (0 = unbounded).
    std::size_t context_pool_capacity = 8;
    /// Test seam: sleep this long inside every compute request, so the
    /// overflow and drain tests can hold a worker busy deterministically.
    int test_request_delay_ms = 0;
    /// Slow-request capture threshold for compute requests (kSpmv/kSolve),
    /// in milliseconds.  0 = automatic: the rolling p99 of the
    /// solve-phase latency histogram, once it has slow_auto_min_count
    /// samples.  Captures need slow_log_path set.
    double slow_ms = 0.0;
    /// JSONL sidecar slow captures append to ("" = capture off).
    std::string slow_log_path;
    /// Samples the solve-phase histogram needs before the automatic p99
    /// threshold arms (prevents the first warm-up requests from tripping
    /// a quantile estimated from nothing).
    std::uint64_t slow_auto_min_count = 64;
    /// Flight recorder spans land in; nullptr = the process-global
    /// obs::global_flight() (tests inject a private recorder).
    obs::FlightRecorder* flight = nullptr;
};

class Service {
   public:
    explicit Service(ServiceOptions opts);
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /// Executes one request frame and returns its reply frame.  Never
    /// throws: malformed payloads, unknown sessions and internal failures
    /// all come back as kError frames.  Thread-safe; calls for the same
    /// matrix state serialize on the state's execution lock.
    [[nodiscard]] Frame handle(const Frame& request);

    /// The live Prometheus exposition (what /metrics serves).
    [[nodiscard]] std::string metrics_text() const;

    /// Stops the background tuner and rejects queued tunes; already-running
    /// measurement finishes.  Part of the graceful-drain sequence.
    void begin_drain();

    [[nodiscard]] const ServiceOptions& options() const { return opts_; }
    [[nodiscard]] obs::metrics::Registry& metrics() { return registry_; }
    [[nodiscard]] SessionManager& sessions() { return sessions_; }
    [[nodiscard]] autotune::PlanStore& plan_store() { return store_; }
    [[nodiscard]] engine::ContextPool& context_pool() { return pool_; }

    /// Completed background tunes (test observability).
    [[nodiscard]] std::uint64_t tunes_completed() const {
        return tunes_completed_.load(std::memory_order_relaxed);
    }

    /// The recorder this service's spans land in (never nullptr).
    [[nodiscard]] obs::FlightRecorder& flight() { return *flight_; }

    /// Slow requests captured to the JSONL sidecar so far.
    [[nodiscard]] std::uint64_t slow_captured() const {
        return slow_log_ ? slow_log_->captured() : 0;
    }

   private:
    Frame dispatch(MsgType type, const Frame& request);
    Frame handle_open(MsgType type, const Frame& request);
    Frame handle_spmv(const Frame& request);
    Frame handle_solve(const Frame& request);
    Frame handle_close(const Frame& request);

    [[nodiscard]] autotune::TuneOptions tune_options() const;
    [[nodiscard]] autotune::PlanKey plan_key(const autotune::MatrixFingerprint& fp) const;
    [[nodiscard]] autotune::Plan default_plan(const MatrixState& state) const;

    /// Builds the state's kernel if absent: plan-store warm path first,
    /// default plan + optional background tune enqueue otherwise.
    void ensure_kernel(const std::shared_ptr<MatrixState>& state, bool no_tune);
    /// (Re)builds kernel + resources from state->plan; exec_mu must be held.
    void apply_plan_locked(MatrixState& state);
    void tune_loop();

    [[nodiscard]] std::string cache_path(const std::string& token) const;

    /// Dumps the span tree of @p trace_id to the slow log when @p seconds
    /// exceeds the configured (or rolling-p99) threshold.  Compute
    /// requests only; the caller must have ended its handling span first
    /// so the capture includes it.
    void maybe_capture_slow(MsgType type, std::uint64_t trace_id, double seconds);

    ServiceOptions opts_;
    obs::FlightRecorder* flight_;
    std::unique_ptr<obs::SlowLog> slow_log_;
    engine::ContextPool pool_;
    autotune::PlanStore store_;
    SessionManager sessions_;
    obs::metrics::Registry registry_;
    BoundedQueue<std::shared_ptr<MatrixState>> tune_queue_;
    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> tunes_completed_{0};
    std::thread tuner_;  // joined in ~Service
};

}  // namespace symspmv::serve
