// Matrix sessions: the unit of amortization the service is built around.
//
// A *matrix state* is everything derivable from one input matrix — the
// MatrixBundle, the (possibly tuned) plan, the built kernel, the pooled
// ExecutionResources it runs on — interned by fingerprint so that any
// number of clients opening the same matrix share one state: the bundle is
// built once, the plan is resolved once, and every later open is a pure
// cache hit (the §V.C amortization argument applied across clients instead
// of across iterations).  A *session* is a client-visible u64 handle onto a
// state; closing a session never tears the state down — states stay warm
// for the next client and are only evicted LRU when the configured cap is
// exceeded and no session references them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "autotune/fingerprint.hpp"
#include "autotune/plan.hpp"
#include "engine/bundle.hpp"
#include "engine/resources.hpp"
#include "obs/flight.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::serve {

/// Everything one matrix costs to prepare, built once and shared.
struct MatrixState {
    explicit MatrixState(Coo full, autotune::MatrixFingerprint fingerprint)
        : fp(fingerprint), token(autotune::to_string(fp)), bundle(std::move(full)) {}

    const autotune::MatrixFingerprint fp;
    const std::string token;
    engine::MatrixBundle bundle;

    /// Guards everything below *and* serializes kernel execution: SpM×V
    /// kernels carry per-call state (local vectors, phase accounting), so
    /// two requests against one state must not overlap.  Lock order when
    /// both are needed: exec_mu first, then resources->run_mutex().
    std::mutex exec_mu;
    std::shared_ptr<engine::ExecutionResources> resources;
    autotune::Plan plan;
    KernelPtr kernel;
    bool plan_from_cache = false;
    std::atomic<bool> tuning_pending{false};
};

/// Fingerprint-interned states plus the session-id indirection.
/// Thread-safe.
class SessionManager {
   public:
    /// @p max_states caps resident states; 0 = unbounded.  Eviction is LRU
    /// over states with no open session.
    explicit SessionManager(std::size_t max_states) : max_states_(max_states) {}

    /// Recorder state-build spans land in (nullptr = no spans).  Set once
    /// at service construction, before requests flow.
    void set_flight_recorder(obs::FlightRecorder* recorder) { flight_ = recorder; }

    /// The state for @p token, built by @p build on first sight.  @p build
    /// runs under the manager lock — keep it cheap (the bundle converts
    /// lazily; the expensive kernel build happens later under the state's
    /// own exec_mu, where it cannot stall unrelated sessions).
    [[nodiscard]] std::shared_ptr<MatrixState> intern(
        const std::string& token, const std::function<std::shared_ptr<MatrixState>()>& build);

    /// Looks up an already-interned state (nullptr when absent) — the
    /// kOpenFingerprint fast path before falling back to the .smx cache.
    [[nodiscard]] std::shared_ptr<MatrixState> find_state(const std::string& token);

    /// Registers a new client-visible session onto @p state.
    [[nodiscard]] std::uint64_t open_session(std::shared_ptr<MatrixState> state);

    /// The state behind a session id (nullptr for unknown/closed ids).
    [[nodiscard]] std::shared_ptr<MatrixState> find(std::uint64_t session);

    /// Closes a session; returns false for unknown ids.  The state stays
    /// resident (warm) unless evicted later by the cap.
    bool close(std::uint64_t session);

    struct Stats {
        std::size_t sessions_open = 0;
        std::size_t states_resident = 0;
        std::uint64_t states_built = 0;    // intern() invocations of build
        std::uint64_t states_reused = 0;   // intern()/find hits on a warm state
        std::uint64_t states_evicted = 0;  // cap-driven LRU drops
        std::uint64_t sessions_total = 0;  // open_session() calls ever
    };
    [[nodiscard]] Stats stats() const;

   private:
    void evict_over_cap_locked();

    obs::FlightRecorder* flight_ = nullptr;
    const std::size_t max_states_;
    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<MatrixState>> states_;
    std::map<std::string, std::uint64_t> last_used_;  // token -> recency stamp
    std::map<std::uint64_t, std::shared_ptr<MatrixState>> sessions_;
    std::uint64_t next_session_ = 1;
    std::uint64_t use_clock_ = 0;
    Stats stats_;
};

}  // namespace symspmv::serve
