// Client-side API for the serve protocol: one connection, synchronous
// request/reply, typed helpers over the payload codecs.
//
// Error model: transport failures (connection refused, peer hung up,
// corrupt framing) throw NetError/ParseError; a well-formed kError reply
// from the daemon throws RemoteError carrying the protocol ErrorCode, so a
// caller can distinguish "the queue was full" (kBusy — retry later) from
// "bad request" without string matching.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace symspmv::serve {

/// A kError reply from the daemon, surfaced as an exception.
class RemoteError : public std::runtime_error {
   public:
    RemoteError(ErrorCode code, const std::string& message)
        : std::runtime_error(std::string(to_string(code)) + ": " + message), code_(code) {}

    [[nodiscard]] ErrorCode code() const { return code_; }

   private:
    ErrorCode code_;
};

class Client {
   public:
    [[nodiscard]] static Client connect_to_tcp(const std::string& host, int port) {
        return Client(connect_tcp(host, port));
    }
    [[nodiscard]] static Client connect_to_unix(const std::string& path) {
        return Client(connect_unix(path));
    }

    explicit Client(Socket sock) : stream_(std::move(sock)) {}

    /// One raw round trip: writes @p request, returns the reply frame.
    /// Throws NetError if the daemon hung up, ParseError on corrupt framing.
    /// kError replies are returned as-is (the typed helpers throw them).
    ///
    /// Tracing: a request whose trace_id is 0 is stamped with
    /// set_next_trace_id()'s pending id, or a freshly minted one — every
    /// request leaves with a client-side trace id, recoverable afterwards
    /// via last_trace_id().
    [[nodiscard]] Frame call(const Frame& request);

    /// Stamps @p id on the next request only (0 cancels a pending stamp).
    /// Lets a caller correlate a specific request with a later trace dump.
    void set_next_trace_id(std::uint64_t id) { next_trace_id_ = id; }
    /// The trace id the most recent request carried (0 before any call).
    [[nodiscard]] std::uint64_t last_trace_id() const { return last_trace_id_; }

    // Typed helpers — each throws RemoteError on a kError reply.
    void ping();
    [[nodiscard]] SessionInfo open_smx(std::string smx_bytes, std::uint32_t flags = 0);
    [[nodiscard]] SessionInfo open_matrix_market(std::string mtx_text, std::uint32_t flags = 0);
    [[nodiscard]] SessionInfo open_fingerprint(const std::string& token,
                                               std::uint32_t flags = 0);
    [[nodiscard]] std::vector<double> spmv(std::uint64_t session, std::span<const double> x);
    [[nodiscard]] SolveResult solve(std::uint64_t session, std::span<const double> b,
                                    double tolerance = 1e-8,
                                    std::uint32_t max_iterations = 1000);
    void close_session(std::uint64_t session);
    [[nodiscard]] std::string metrics();
    /// The daemon's flight recorder as a Chrome trace_event JSON document
    /// (load it in chrome://tracing or Perfetto).
    [[nodiscard]] std::string dump_trace();
    /// Asks the daemon to drain and waits for the acknowledgement.
    void shutdown_server();

   private:
    [[nodiscard]] Frame call_checked(const Frame& request, MsgType expected_reply);
    [[nodiscard]] SessionInfo open(MsgType type, std::string data, std::uint32_t flags);

    SocketStream stream_;
    std::uint64_t next_trace_id_ = 0;
    std::uint64_t last_trace_id_ = 0;
};

}  // namespace symspmv::serve
