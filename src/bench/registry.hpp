// Compatibility shim: the kernel registry moved to the engine layer
// (engine/registry.hpp), where kernel construction belongs; the bench layer
// now depends on the engine, not the other way round.  Include the engine
// header directly in new code.
#pragma once

#include "engine/registry.hpp"  // IWYU pragma: export
