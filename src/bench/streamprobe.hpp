// STREAM-like sustained memory bandwidth probe.
//
// Table II of the paper reports sustained bandwidth "obtained with the
// STREAM benchmark"; this probe reproduces the triad kernel
// (a[i] = b[i] + s * c[i]) over arrays much larger than the caches so the
// bench reports can contextualize the measured SpM×V rates.
#pragma once

#include <cstddef>

#include "core/thread_pool.hpp"

namespace symspmv::bench {

struct StreamResult {
    double triad_gbs = 0.0;  // best-of-k triad bandwidth in GB/s
    double copy_gbs = 0.0;   // best-of-k copy bandwidth in GB/s
};

/// Runs the probe with `pool.size()` threads over arrays of @p elements
/// doubles each (default ~8 MiB per array), repeating @p repetitions times
/// and keeping the best rate, as STREAM does.
StreamResult stream_probe(ThreadPool& pool, std::size_t elements = 1u << 20,
                          int repetitions = 5);

}  // namespace symspmv::bench
