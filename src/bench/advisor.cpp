#include "bench/advisor.hpp"

#include <algorithm>

#include "csx/detect.hpp"
#include "matrix/properties.hpp"

namespace symspmv::bench {

FormatFeatures extract_features(const Coo& matrix) {
    FormatFeatures f;
    const MatrixProperties props = analyze(matrix);
    f.symmetric = props.numerically_symmetric;
    f.relative_bandwidth =
        props.rows > 0 ? props.avg_bandwidth / static_cast<double>(props.rows) : 0.0;
    f.nnz_per_row = props.nnz_per_row;
    f.row_skew = props.nnz_per_row > 0.0
                     ? static_cast<double>(props.max_row_nnz) / props.nnz_per_row
                     : 1.0;

    // Pattern coverage from the CSX detector statistics over the triangle
    // that would actually be encoded (cheap: statistics only, no encode).
    const Coo target = f.symmetric ? matrix.strict_lower() : matrix;
    if (target.nnz() > 0) {
        const csx::Detector detector(target.entries(), csx::CsxConfig{});
        std::int64_t covered = 0;
        for (const csx::PatternStats& s : detector.collect_stats()) {
            if (!csx::is_delta(s.pattern.type)) covered = std::max(covered, s.covered);
        }
        // Best single pattern's coverage is a conservative lower bound on
        // what the multi-pattern encoder reaches.
        f.pattern_coverage = static_cast<double>(covered) / static_cast<double>(target.nnz());
    }
    return f;
}

Advice advise(const FormatFeatures& f) {
    if (!f.symmetric) {
        if (f.pattern_coverage > 0.5) {
            return {KernelKind::kBcsr,
                    "unsymmetric with dense substructure: register blocking pays"};
        }
        return {KernelKind::kCsr, "unsymmetric and irregular: CSR is the safe baseline"};
    }
    if (f.relative_bandwidth > 0.1) {
        // The §V.B corner cases: mirrored writes land far away, the
        // conflict index grows, and "no symmetric format did achieve
        // performance improvement over CSR".
        return {KernelKind::kCsr,
                "symmetric but high bandwidth (corner case of §V.B): reorder with RCM "
                "before considering a symmetric format"};
    }
    if (f.pattern_coverage > 0.5) {
        return {KernelKind::kCsxSym,
                "symmetric, low bandwidth, substructure-rich: CSX-Sym's compression "
                "margin over SSS applies (Table I / Fig. 11)"};
    }
    return {KernelKind::kSssIndexing,
            "symmetric and low bandwidth but few substructures: SSS with local-vectors "
            "indexing takes the symmetry win without CSX preprocessing"};
}

Advice advise(const Coo& matrix) { return advise(extract_features(matrix)); }

}  // namespace symspmv::bench
