// Measurement framework (§V.A): N consecutive SpM×V operations with random
// input vectors, swapping the input and output vectors at every iteration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/profiling.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::bench {

struct MeasureOptions {
    int iterations = 128;       // the paper's 128 consecutive operations
    int warmup = 2;             // untimed warmup iterations
    std::uint64_t seed = 2013;  // RNG seed for the input vector
    /// When set, the kernel records per-thread multiply/barrier/reduction
    /// times into it over the timed iterations (warmup excluded); the
    /// profiler is reset at the start of the timed window and detached
    /// afterwards.  Must have at least as many slots as the kernel threads.
    PhaseProfiler* profiler = nullptr;
};

struct Measurement {
    double seconds_per_op = 0.0;   // median over iterations
    double gflops = 0.0;           // 2*nnz / median seconds
    SpmvPhases phase_totals;       // summed over timed iterations
    Summary per_op;                // full per-iteration distribution
};

/// Runs the §V.A measurement loop on @p kernel.  Kernels exposing a
/// persistent parallel region (SpmvKernel::region_pool() != nullptr) are
/// measured inside one ThreadPool::run_many() region — one worker wake for
/// the whole loop, per-op times from worker-0 timestamps at the end-of-op
/// barrier — so dispatch latency is paid once instead of per operation;
/// serial kernels keep the plain timed loop.  On the region path
/// phase_totals.reduction_seconds is the pure reduction time (barrier waits
/// are booked separately in the profiler), where the legacy path folded
/// barrier waits into it.
Measurement measure(SpmvKernel& kernel, const MeasureOptions& opts = {});

/// Plain fixed-width table printer for the bench binaries.  When a CSV
/// sink is passed (typically via the benches' --csv flag) every header/row
/// is mirrored there as comma-separated values, so bench output can feed
/// plotting scripts without reparsing the aligned text.  The sink is
/// per-instance — concurrent printers with different sinks never
/// cross-contaminate each other's output.
class TablePrinter {
   public:
    /// @p widths: column widths; text is left-aligned, numbers right-aligned.
    /// @p csv_sink: optional CSV mirror; must outlive the printer.
    TablePrinter(std::ostream& out, std::vector<int> widths, std::ostream* csv_sink = nullptr);

    void header(const std::vector<std::string>& cells);
    void row(const std::vector<std::string>& cells);
    void rule();

    static std::string fmt(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

   private:
    void csv_line(const std::vector<std::string>& cells);

    std::ostream& out_;
    std::vector<int> widths_;
    std::ostream* csv_sink_ = nullptr;
};

}  // namespace symspmv::bench
