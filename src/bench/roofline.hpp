// Roofline model (Williams et al. [5] in the paper's references).
//
// The paper's whole premise (§I) is that SpM×V has a "very low flop:byte
// ratio", so its attainable performance is bandwidth * intensity, far below
// the compute peak — and compression raises intensity by shrinking bytes.
// This module makes that argument quantitative: probe the machine's two
// ceilings, compute each kernel's operational intensity from its real
// footprint, and compare attainable vs measured Gflop/s.
#pragma once

#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::bench {

/// The two ceilings of the roofline plot.
struct RooflineModel {
    double peak_gflops = 0.0;      // compute ceiling
    double bandwidth_gbs = 0.0;    // memory ceiling (triad-sustained)

    /// Attainable Gflop/s at @p intensity flops/byte:
    /// min(peak, bandwidth * intensity).
    [[nodiscard]] double attainable_gflops(double intensity) const;

    /// Intensity where the two ceilings meet (the "ridge point").
    [[nodiscard]] double ridge_intensity() const {
        return bandwidth_gbs > 0.0 ? peak_gflops / bandwidth_gbs : 0.0;
    }
};

/// Measures the FP compute ceiling with an unrolled multiply-add loop on
/// every pool worker (seconds-scale; cache-resident, no memory traffic).
double probe_peak_gflops(ThreadPool& pool);

/// Builds the model from the FMA probe and the STREAM-like triad probe.
RooflineModel probe_roofline(ThreadPool& pool);

/// Bytes one SpM×V of @p kernel streams: the format's own footprint
/// (values + indices + reduction side structures) plus the input and
/// output vectors.  The compulsory-traffic estimate the paper's size
/// equations feed.
[[nodiscard]] std::size_t streamed_bytes(const SpmvKernel& kernel);

/// Operational intensity of @p kernel in flops/byte: 2*nnz / streamed.
[[nodiscard]] double operational_intensity(const SpmvKernel& kernel);

}  // namespace symspmv::bench
