#include "bench/streamprobe.hpp"

#include <algorithm>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"

namespace symspmv::bench {

StreamResult stream_probe(ThreadPool& pool, std::size_t elements, int repetitions) {
    aligned_vector<double> a(elements, 1.0), b(elements, 2.0), c(elements, 0.5);
    const auto parts = split_even(static_cast<index_t>(elements), pool.size());
    const double scalar = 3.0;

    StreamResult result;
    for (int rep = 0; rep < repetitions; ++rep) {
        Timer t;
        pool.run([&](int tid) {
            const RowRange r = parts[static_cast<std::size_t>(tid)];
            double* __restrict av = a.data();
            const double* __restrict bv = b.data();
            const double* __restrict cv = c.data();
            for (index_t i = r.begin; i < r.end; ++i) av[i] = bv[i] + scalar * cv[i];
        });
        const double triad_s = t.seconds();
        // Triad moves 3 doubles per element (2 loads + 1 store).
        const double triad_gbs =
            static_cast<double>(elements) * 3.0 * sizeof(double) / triad_s * 1e-9;
        result.triad_gbs = std::max(result.triad_gbs, triad_gbs);

        t.reset();
        pool.run([&](int tid) {
            const RowRange r = parts[static_cast<std::size_t>(tid)];
            double* __restrict cv = c.data();
            const double* __restrict av = a.data();
            for (index_t i = r.begin; i < r.end; ++i) cv[i] = av[i];
        });
        const double copy_s = t.seconds();
        const double copy_gbs =
            static_cast<double>(elements) * 2.0 * sizeof(double) / copy_s * 1e-9;
        result.copy_gbs = std::max(result.copy_gbs, copy_gbs);
    }
    return result;
}

}  // namespace symspmv::bench
