#include "bench/roofline.hpp"

#include <algorithm>
#include <atomic>

#include "bench/streamprobe.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::bench {

double RooflineModel::attainable_gflops(double intensity) const {
    return std::min(peak_gflops, bandwidth_gbs * intensity);
}

namespace {

/// Per-thread multiply-add loop with eight independent accumulator chains
/// (enough ILP to keep any current FP pipeline full).  Returns flops done.
double fma_burst(std::int64_t iterations, double seed) {
    double a0 = seed + 0.1, a1 = seed + 0.2, a2 = seed + 0.3, a3 = seed + 0.4;
    double a4 = seed + 0.5, a5 = seed + 0.6, a6 = seed + 0.7, a7 = seed + 0.8;
    const double m = 1.0000001;
    const double c = 1e-9;
    for (std::int64_t i = 0; i < iterations; ++i) {
        a0 = a0 * m + c;
        a1 = a1 * m + c;
        a2 = a2 * m + c;
        a3 = a3 * m + c;
        a4 = a4 * m + c;
        a5 = a5 * m + c;
        a6 = a6 * m + c;
        a7 = a7 * m + c;
    }
    // Fold the chains so the loop cannot be discarded.
    return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
}

}  // namespace

double probe_peak_gflops(ThreadPool& pool) {
    constexpr std::int64_t kIterations = 4'000'000;  // 64 Mflop per worker
    std::atomic<double> sink{0.0};
    // Warmup round settles frequency scaling.
    pool.run([&](int tid) { sink.store(fma_burst(kIterations / 8, tid)); });
    Timer t;
    pool.run([&](int tid) { sink.store(fma_burst(kIterations, 1.0 + tid)); });
    const double seconds = t.seconds();
    SYMSPMV_CHECK(seconds > 0.0);
    const double flops = 16.0 * static_cast<double>(kIterations) *
                         static_cast<double>(pool.size());  // 2 flops x 8 chains
    return flops / seconds / 1e9;
}

RooflineModel probe_roofline(ThreadPool& pool) {
    RooflineModel model;
    model.peak_gflops = probe_peak_gflops(pool);
    model.bandwidth_gbs = stream_probe(pool).triad_gbs;
    return model;
}

std::size_t streamed_bytes(const SpmvKernel& kernel) {
    return kernel.footprint_bytes() +
           2 * static_cast<std::size_t>(kernel.rows()) * kValueBytes;
}

double operational_intensity(const SpmvKernel& kernel) {
    return static_cast<double>(kernel.flops()) / static_cast<double>(streamed_bytes(kernel));
}

}  // namespace symspmv::bench
