#include "bench/harness.hpp"

#include <iomanip>
#include <optional>
#include <ostream>
#include <random>
#include <sstream>

#include "core/allocator.hpp"
#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace symspmv::bench {

namespace {

/// §V.A measurement loop for kernels exposing a persistent parallel region:
/// warmup and all timed iterations run under one ThreadPool::run_many()
/// dispatch each, so the loop pays one worker wake instead of one per op.
/// Per-op times come from worker-0 timestamps taken INSIDE the region at
/// the end-of-op barrier; op 0 absorbs the single dispatch wake, which the
/// median is robust to.
Measurement measure_in_region(SpmvKernel& kernel, ThreadPool& pool, value_t* buf_a,
                              value_t* buf_b, std::size_t n, const MeasureOptions& opts) {
    value_t* bufs[2] = {buf_a, buf_b};
    // The x/y swap of §V.A becomes buffer parity: op k reads bufs[k & 1]
    // and writes bufs[(k + 1) & 1], chaining the product through both
    // buffers so the compiler cannot hoist anything.
    if (opts.warmup > 0) {
        pool.run_many(opts.warmup, [&](int tid, int it) {
            kernel.spmv_region(tid, {bufs[it & 1], n}, {bufs[(it + 1) & 1], n});
            // End-of-op barrier: op it+1 reads the vector every worker just
            // wrote, so no worker may start it early.
            pool.barrier();
        });
    }
    const int parity = opts.warmup & 1;

    // Profile only the timed window.  Without a caller profiler, attach an
    // internal one anyway: the region path derives phase_totals (and the
    // per-op stamps' phase context) from profiler accumulators rather than
    // kernel.last_phases(), which a region never updates.
    PhaseProfiler* prev = kernel.profiler();
    std::optional<PhaseProfiler> own;
    PhaseProfiler* prof = opts.profiler;
    if (prof != nullptr) {
        prof->reset();
    } else {
        own.emplace(pool.size());
        prof = &*own;
    }
    kernel.set_profiler(prof);

    std::vector<double> stamps(static_cast<std::size_t>(opts.iterations) + 1, 0.0);
    Timer clock;  // stamps[0] == 0.0 == dispatch time
    pool.run_many(opts.iterations, [&](int tid, int it) {
        if (tid == 0) prof->begin_op();
        const int k = parity + it;
        kernel.spmv_region(tid, {bufs[k & 1], n}, {bufs[(k + 1) & 1], n});
        pool.barrier(*prof, tid);
        if (tid == 0) stamps[static_cast<std::size_t>(it) + 1] = clock.seconds();
    });
    kernel.set_profiler(prev);

    Measurement m;
    std::vector<double> per_op(static_cast<std::size_t>(opts.iterations));
    for (std::size_t i = 0; i < per_op.size(); ++i) per_op[i] = stamps[i + 1] - stamps[i];
    // Worker 0's accumulated phase times over the window.  Unlike the
    // legacy path (which books everything outside the multiply — barrier
    // included — as reduction), this is the pure reduction time; barrier
    // waits are visible separately through the profiler.
    m.phase_totals.multiply_seconds = prof->seconds(0, Phase::kMultiply);
    m.phase_totals.reduction_seconds = prof->seconds(0, Phase::kReduction);
    m.per_op = summarize(per_op);
    m.seconds_per_op = m.per_op.median;
    if (m.seconds_per_op > 0.0) {
        m.gflops = static_cast<double>(kernel.flops()) / m.seconds_per_op * 1e-9;
    }
    return m;
}

}  // namespace

Measurement measure(SpmvKernel& kernel, const MeasureOptions& opts) {
    SYMSPMV_CHECK_MSG(opts.iterations >= 1, "measure: need at least one iteration");
    const auto n = static_cast<std::size_t>(kernel.rows());
    aligned_vector<value_t> a(n), b(n, 0.0);
    std::mt19937_64 rng(opts.seed);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    for (auto& v : a) v = dist(rng);

    if (ThreadPool* pool = kernel.region_pool(); pool != nullptr) {
        return measure_in_region(kernel, *pool, a.data(), b.data(), n, opts);
    }

    // x and y swap every iteration (§V.A), so the product chains through
    // both buffers and the compiler cannot hoist anything.
    value_t* x = a.data();
    value_t* y = b.data();
    auto swap_xy = [&] { std::swap(x, y); };

    for (int i = 0; i < opts.warmup; ++i) {
        kernel.spmv({x, n}, {y, n});
        swap_xy();
    }

    // Profile only the timed window: warmup effects would otherwise skew
    // the per-thread imbalance statistics.
    if (opts.profiler != nullptr) {
        opts.profiler->reset();
        kernel.set_profiler(opts.profiler);
    }

    Measurement m;
    std::vector<double> per_op;
    per_op.reserve(static_cast<std::size_t>(opts.iterations));
    for (int i = 0; i < opts.iterations; ++i) {
        if (opts.profiler != nullptr) opts.profiler->begin_op();
        Timer t;
        kernel.spmv({x, n}, {y, n});
        per_op.push_back(t.seconds());
        m.phase_totals.multiply_seconds += kernel.last_phases().multiply_seconds;
        m.phase_totals.reduction_seconds += kernel.last_phases().reduction_seconds;
        swap_xy();
    }
    if (opts.profiler != nullptr) kernel.set_profiler(nullptr);
    m.per_op = summarize(per_op);
    m.seconds_per_op = m.per_op.median;
    if (m.seconds_per_op > 0.0) {
        m.gflops = static_cast<double>(kernel.flops()) / m.seconds_per_op * 1e-9;
    }
    return m;
}

TablePrinter::TablePrinter(std::ostream& out, std::vector<int> widths, std::ostream* csv_sink)
    : out_(out), widths_(std::move(widths)), csv_sink_(csv_sink) {}

void TablePrinter::header(const std::vector<std::string>& cells) {
    row(cells);
    rule();
}

void TablePrinter::csv_line(const std::vector<std::string>& cells) {
    if (csv_sink_ == nullptr) return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Trim the padding spaces fmt/pct never produce but labels might.
        std::string cell = cells[i];
        if (cell.find(',') != std::string::npos) cell = '"' + cell + '"';
        *csv_sink_ << cell;
        if (i + 1 < cells.size()) *csv_sink_ << ',';
    }
    *csv_sink_ << '\n';
}

void TablePrinter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
        out_ << (i == 0 ? std::left : std::right) << std::setw(widths_[i]) << cells[i];
        if (i + 1 < cells.size()) out_ << "  ";
    }
    out_ << '\n';
    csv_line(cells);
}

void TablePrinter::rule() {
    int total = 0;
    for (int w : widths_) total += w + 2;
    for (int i = 0; i < total; ++i) out_ << '-';
    out_ << '\n';
}

std::string TablePrinter::fmt(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
    return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace symspmv::bench
