#include "bench/harness.hpp"

#include <iomanip>
#include <ostream>
#include <random>
#include <sstream>

#include "core/allocator.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::bench {

Measurement measure(SpmvKernel& kernel, const MeasureOptions& opts) {
    SYMSPMV_CHECK_MSG(opts.iterations >= 1, "measure: need at least one iteration");
    const auto n = static_cast<std::size_t>(kernel.rows());
    aligned_vector<value_t> a(n), b(n, 0.0);
    std::mt19937_64 rng(opts.seed);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    for (auto& v : a) v = dist(rng);

    // x and y swap every iteration (§V.A), so the product chains through
    // both buffers and the compiler cannot hoist anything.
    value_t* x = a.data();
    value_t* y = b.data();
    auto swap_xy = [&] { std::swap(x, y); };

    for (int i = 0; i < opts.warmup; ++i) {
        kernel.spmv({x, n}, {y, n});
        swap_xy();
    }

    // Profile only the timed window: warmup effects would otherwise skew
    // the per-thread imbalance statistics.
    if (opts.profiler != nullptr) {
        opts.profiler->reset();
        kernel.set_profiler(opts.profiler);
    }

    Measurement m;
    std::vector<double> per_op;
    per_op.reserve(static_cast<std::size_t>(opts.iterations));
    for (int i = 0; i < opts.iterations; ++i) {
        if (opts.profiler != nullptr) opts.profiler->begin_op();
        Timer t;
        kernel.spmv({x, n}, {y, n});
        per_op.push_back(t.seconds());
        m.phase_totals.multiply_seconds += kernel.last_phases().multiply_seconds;
        m.phase_totals.reduction_seconds += kernel.last_phases().reduction_seconds;
        swap_xy();
    }
    if (opts.profiler != nullptr) kernel.set_profiler(nullptr);
    m.per_op = summarize(per_op);
    m.seconds_per_op = m.per_op.median;
    if (m.seconds_per_op > 0.0) {
        m.gflops = static_cast<double>(kernel.flops()) / m.seconds_per_op * 1e-9;
    }
    return m;
}

TablePrinter::TablePrinter(std::ostream& out, std::vector<int> widths, std::ostream* csv_sink)
    : out_(out), widths_(std::move(widths)), csv_sink_(csv_sink) {}

void TablePrinter::header(const std::vector<std::string>& cells) {
    row(cells);
    rule();
}

void TablePrinter::csv_line(const std::vector<std::string>& cells) {
    if (csv_sink_ == nullptr) return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Trim the padding spaces fmt/pct never produce but labels might.
        std::string cell = cells[i];
        if (cell.find(',') != std::string::npos) cell = '"' + cell + '"';
        *csv_sink_ << cell;
        if (i + 1 < cells.size()) *csv_sink_ << ',';
    }
    *csv_sink_ << '\n';
}

void TablePrinter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
        out_ << (i == 0 ? std::left : std::right) << std::setw(widths_[i]) << cells[i];
        if (i + 1 < cells.size()) out_ << "  ";
    }
    out_ << '\n';
    csv_line(cells);
}

void TablePrinter::rule() {
    int total = 0;
    for (int w : widths_) total += w + 2;
    for (int i = 0; i < total; ++i) out_ << '-';
    out_ << '\n';
}

std::string TablePrinter::fmt(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
    return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace symspmv::bench
