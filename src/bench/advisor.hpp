// Format advisor: the paper's §V.B/§V.D analysis turned into a selection
// rule (OSKI's [26] auto-selection spirit).
//
// The evaluation identifies exactly which structural features decide the
// winning format:
//   - symmetry            -> the symmetric formats apply at all,
//   - relative bandwidth  -> high-bandwidth matrices are the corner cases
//                            where "no symmetric format beat CSR" (§V.B),
//   - dense substructure  -> CSX-Sym's extra compression only pays when
//                            patterns cover most non-zeros (Fig. 12),
//   - row-length skew     -> ELL-family formats drown in padding.
// advise() encodes those rules and explains itself; the advisor_eval bench
// checks the advice against measurement per suite matrix.
#pragma once

#include <string>

#include "engine/registry.hpp"
#include "matrix/coo.hpp"

namespace symspmv::bench {

/// The structural features the §V analysis conditions on.
struct FormatFeatures {
    bool symmetric = false;
    double relative_bandwidth = 0.0;  // avg |i-j| / rows  (corner-case signal)
    double pattern_coverage = 0.0;    // fraction of nnz in CSX-Sym substructures
    double row_skew = 0.0;            // max row nnz / mean row nnz
    double nnz_per_row = 0.0;
};

/// One-pass feature extraction (runs the CSX detector statistics on the
/// lower triangle when the matrix is symmetric).
FormatFeatures extract_features(const Coo& matrix);

struct Advice {
    KernelKind kernel = KernelKind::kCsr;
    std::string rationale;
};

/// The decision rule.  Thresholds follow the paper's suite: the four
/// corner cases have relative bandwidth above ~0.1 while the regular
/// matrices sit well below it; pattern coverage above ~0.5 is where the
/// CSX-Sym compression margin over SSS materializes (Table I).
Advice advise(const FormatFeatures& features);

/// Convenience: extract + advise.
Advice advise(const Coo& matrix);

}  // namespace symspmv::bench
