#include "bench/registry.hpp"

#include "bcsr/bcsr_kernels.hpp"
#include "core/error.hpp"
#include "csb/csb_kernels.hpp"
#include "csx/jit.hpp"
#include "csx/kernels.hpp"
#include "matrix/csr.hpp"
#include "matrix/sss.hpp"
#include "spmv/alt_kernels.hpp"
#include "spmv/baseline_kernels.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/sss_kernels.hpp"

namespace symspmv {

std::string_view to_string(KernelKind kind) {
    switch (kind) {
        case KernelKind::kCsrSerial:
            return "CSR-serial";
        case KernelKind::kCsr:
            return "CSR";
        case KernelKind::kSssSerial:
            return "SSS-serial";
        case KernelKind::kSssNaive:
            return "SSS-naive";
        case KernelKind::kSssEffective:
            return "SSS-eff";
        case KernelKind::kSssIndexing:
            return "SSS-idx";
        case KernelKind::kCsx:
            return "CSX";
        case KernelKind::kCsxSym:
            return "CSX-Sym";
        case KernelKind::kCsb:
            return "CSB";
        case KernelKind::kCsbSym:
            return "CSB-Sym";
        case KernelKind::kBcsr:
            return "BCSR";
        case KernelKind::kSssAtomic:
            return "SSS-atomic";
        case KernelKind::kSssColor:
            return "SSS-color";
        case KernelKind::kCsrDu:
            return "CSR-DU";
        case KernelKind::kEll:
            return "ELL";
        case KernelKind::kHyb:
            return "HYB";
        case KernelKind::kDia:
            return "DIA";
        case KernelKind::kJds:
            return "JDS";
        case KernelKind::kVbl:
            return "VBL";
        case KernelKind::kCsxJit:
            return "CSX-jit";
        case KernelKind::kCsxSymJit:
            return "CSX-Sym-jit";
    }
    return "?";
}

KernelKind parse_kernel_kind(std::string_view name) {
    for (KernelKind kind : all_kernel_kinds()) {
        if (to_string(kind) == name) return kind;
    }
    throw InvalidArgument("unknown kernel kind: " + std::string(name));
}

const std::vector<KernelKind>& all_kernel_kinds() {
    static const std::vector<KernelKind> kinds = [] {
        std::vector<KernelKind> k = {
            KernelKind::kCsrSerial, KernelKind::kCsr,          KernelKind::kSssSerial,
            KernelKind::kSssNaive,  KernelKind::kSssEffective, KernelKind::kSssIndexing,
            KernelKind::kCsx,       KernelKind::kCsxSym,       KernelKind::kCsb,
            KernelKind::kCsbSym,    KernelKind::kBcsr,         KernelKind::kSssAtomic,
            KernelKind::kSssColor,  KernelKind::kCsrDu,        KernelKind::kEll,
            KernelKind::kHyb,       KernelKind::kDia,          KernelKind::kJds,
            KernelKind::kVbl,
        };
        // The JIT backends need a system C compiler at runtime.
        if (csx::JitModule::compiler_available()) {
            k.push_back(KernelKind::kCsxJit);
            k.push_back(KernelKind::kCsxSymJit);
        }
        return k;
    }();
    return kinds;
}

const std::vector<KernelKind>& figure_kernel_kinds() {
    static const std::vector<KernelKind> kinds = {
        KernelKind::kCsr,
        KernelKind::kCsx,
        KernelKind::kSssIndexing,
        KernelKind::kCsxSym,
    };
    return kinds;
}

KernelPtr make_kernel(KernelKind kind, const Coo& full, ThreadPool& pool,
                      const csx::CsxConfig& cfg) {
    switch (kind) {
        case KernelKind::kCsrSerial:
            return std::make_unique<CsrSerialKernel>(Csr(full));
        case KernelKind::kCsr:
            return std::make_unique<CsrMtKernel>(Csr(full), pool);
        case KernelKind::kSssSerial:
            return std::make_unique<SssSerialKernel>(Sss(full));
        case KernelKind::kSssNaive:
            return std::make_unique<SssMtKernel>(Sss(full), pool, ReductionMethod::kNaive);
        case KernelKind::kSssEffective:
            return std::make_unique<SssMtKernel>(Sss(full), pool,
                                                 ReductionMethod::kEffectiveRanges);
        case KernelKind::kSssIndexing:
            return std::make_unique<SssMtKernel>(Sss(full), pool, ReductionMethod::kIndexing);
        case KernelKind::kCsx:
            return std::make_unique<csx::CsxMtKernel>(Csr(full), cfg, pool);
        case KernelKind::kCsxSym:
            return std::make_unique<csx::CsxSymKernel>(Sss(full), cfg, pool);
        case KernelKind::kCsb:
            return std::make_unique<csb::CsbMtKernel>(csb::CsbMatrix(full), pool);
        case KernelKind::kCsbSym:
            return std::make_unique<csb::CsbSymKernel>(csb::CsbSymMatrix(full), pool);
        case KernelKind::kBcsr:
            return std::make_unique<bcsr::BcsrMtKernel>(
                bcsr::BcsrMatrix(full, bcsr::choose_block_size(full)), pool);
        case KernelKind::kSssAtomic:
            return std::make_unique<SssAtomicKernel>(Sss(full), pool);
        case KernelKind::kSssColor:
            return std::make_unique<SssColorKernel>(Sss(full), pool);
        case KernelKind::kCsrDu:
            return std::make_unique<csx::CsxMtKernel>(Csr(full), csx::delta_only_config(), pool,
                                                      "CSR-DU");
        case KernelKind::kEll:
            return std::make_unique<EllpackMtKernel>(Ellpack(full), pool);
        case KernelKind::kHyb:
            return std::make_unique<HybMtKernel>(Hyb(full), pool);
        case KernelKind::kDia:
            return std::make_unique<DiaMtKernel>(Dia(full), pool);
        case KernelKind::kJds:
            return std::make_unique<JdsMtKernel>(Jds(full), pool);
        case KernelKind::kVbl:
            return std::make_unique<VblMtKernel>(Vbl(full), pool);
        case KernelKind::kCsxJit:
            return std::make_unique<csx::CsxJitKernel>(Csr(full), cfg, pool);
        case KernelKind::kCsxSymJit:
            return std::make_unique<csx::CsxSymJitKernel>(Sss(full), cfg, pool);
    }
    throw InvalidArgument("unknown kernel kind");
}

}  // namespace symspmv
