// Address-trace generator for the multithreaded symmetric SpM×V (§V.B).
//
// Lays the SSS arrays, the vectors and the per-thread local vectors out in
// a simulated address space and replays the memory accesses of the
// multiply and reduction phases through a Cache, with the per-thread
// streams interleaved in small blocks to model the shared last-level
// cache of the paper's SMP platform.
//
// The experiment the paper's §V.B argument implies:
//   multiply -> reduction(method) -> multiply again
// and compare the *second* multiply's miss count across reduction methods:
// a reduction that streams big local-vector ranges (naive, effective
// ranges) evicts the matrix/vector lines the next multiply needs, while
// the indexed reduction touches too little to disturb them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cachesim/cache.hpp"
#include "core/partition.hpp"
#include "matrix/sss.hpp"
#include "spmv/reduction.hpp"
#include "spmv/sss_kernels.hpp"

namespace symspmv::cachesim {

/// Miss counts of one multiply -> reduce -> multiply experiment.
struct InterferenceResult {
    std::int64_t first_multiply = 0;   // cold-ish misses (same for all methods)
    std::int64_t reduction = 0;        // misses of the reduction itself
    std::int64_t second_multiply = 0;  // the §V.B quantity: pollution damage
};

class SpmvTrace {
   public:
    /// @p parts: one row range per simulated thread.
    SpmvTrace(const Sss& matrix, std::span<const RowRange> parts);

    /// Replays one multiply phase (all threads, block-interleaved).
    void replay_multiply(Cache& cache, ReductionMethod method) const;

    /// Replays one reduction phase for @p method.
    void replay_reduction(Cache& cache, ReductionMethod method) const;

    /// The full §V.B experiment on a freshly flushed cache.
    InterferenceResult run_interference(Cache& cache, ReductionMethod method) const;

    /// Total simulated bytes (arrays + vectors + local vectors).
    [[nodiscard]] std::size_t footprint_bytes() const { return total_bytes_; }

   private:
    struct Layout {
        addr_t rowptr = 0;
        addr_t colind = 0;
        addr_t values = 0;
        addr_t dvalues = 0;
        addr_t x = 0;
        addr_t y = 0;
        std::vector<addr_t> locals;   // per thread
        addr_t index = 0;             // reduction-index entry array
    };

    void multiply_rows(Cache& cache, int tid, index_t row_begin, index_t row_end,
                       ReductionMethod method) const;

    const Sss& matrix_;
    std::vector<RowRange> parts_;
    std::vector<RowRange> reduce_parts_;
    ReductionIndex index_;
    Layout layout_;
    std::size_t total_bytes_ = 0;
};

}  // namespace symspmv::cachesim
