#include "cachesim/spmv_trace.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv::cachesim {

namespace {

/// Rows per turn when interleaving the per-thread streams (coarse model of
/// concurrent execution sharing one cache).
constexpr index_t kInterleaveRows = 32;

/// Reduction-index entries per interleave turn.
constexpr std::size_t kInterleaveEntries = 256;

addr_t page_align(addr_t a) { return (a + 4095) & ~addr_t{4095}; }

}  // namespace

SpmvTrace::SpmvTrace(const Sss& matrix, std::span<const RowRange> parts)
    : matrix_(matrix),
      parts_(parts.begin(), parts.end()),
      reduce_parts_(split_even(matrix.rows(), static_cast<int>(parts.size()))),
      index_(matrix, parts) {
    addr_t cursor = 0;
    const auto place = [&](std::size_t bytes) {
        const addr_t base = cursor;
        cursor = page_align(cursor + bytes);
        return base;
    };
    const auto n = static_cast<std::size_t>(matrix.rows());
    layout_.rowptr = place((n + 1) * kIndexBytes);
    layout_.colind = place(matrix.colind().size() * kIndexBytes);
    layout_.values = place(matrix.values().size() * kValueBytes);
    layout_.dvalues = place(n * kValueBytes);
    layout_.x = place(n * kValueBytes);
    layout_.y = place(n * kValueBytes);
    layout_.locals.reserve(parts_.size());
    for (const RowRange& part : parts_) {
        // naive keeps full-length locals; the others only [0, begin).  The
        // larger layout is reserved so all methods share one address map
        // (unused pages cost nothing in the model).
        (void)part;
        layout_.locals.push_back(place(n * kValueBytes));
    }
    layout_.index = place(index_.entries().size() * sizeof(ReductionEntry));
    total_bytes_ = cursor;
}

void SpmvTrace::multiply_rows(Cache& cache, int tid, index_t row_begin, index_t row_end,
                              ReductionMethod method) const {
    const auto rowptr = matrix_.rowptr();
    const auto colind = matrix_.colind();
    const index_t start = parts_[static_cast<std::size_t>(tid)].begin;
    const addr_t local = layout_.locals[static_cast<std::size_t>(tid)];
    for (index_t r = row_begin; r < row_end; ++r) {
        cache.access(layout_.rowptr + static_cast<addr_t>(r) * kIndexBytes);
        cache.access(layout_.dvalues + static_cast<addr_t>(r) * kValueBytes);
        cache.access(layout_.x + static_cast<addr_t>(r) * kValueBytes);
        const addr_t own_row =
            (method == ReductionMethod::kNaive ? local : layout_.y) +
            static_cast<addr_t>(r) * kValueBytes;
        cache.access(own_row);
        for (index_t j = rowptr[static_cast<std::size_t>(r)];
             j < rowptr[static_cast<std::size_t>(r) + 1]; ++j) {
            const index_t c = colind[static_cast<std::size_t>(j)];
            cache.access(layout_.colind + static_cast<addr_t>(j) * kIndexBytes);
            cache.access(layout_.values + static_cast<addr_t>(j) * kValueBytes);
            cache.access(layout_.x + static_cast<addr_t>(c) * kValueBytes);
            // Mirrored write target per method (§III).
            addr_t mirror = local;
            if (method != ReductionMethod::kNaive && c >= start) mirror = layout_.y;
            cache.access(mirror + static_cast<addr_t>(c) * kValueBytes);
        }
    }
}

void SpmvTrace::replay_multiply(Cache& cache, ReductionMethod method) const {
    // Round-robin over threads, kInterleaveRows rows per turn.
    std::vector<index_t> next(parts_.size());
    for (std::size_t t = 0; t < parts_.size(); ++t) next[t] = parts_[t].begin;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t t = 0; t < parts_.size(); ++t) {
            if (next[t] >= parts_[t].end) continue;
            const index_t hi = std::min<index_t>(next[t] + kInterleaveRows, parts_[t].end);
            multiply_rows(cache, static_cast<int>(t), next[t], hi, method);
            next[t] = hi;
            progress = true;
        }
    }
}

void SpmvTrace::replay_reduction(Cache& cache, ReductionMethod method) const {
    const auto n = matrix_.rows();
    switch (method) {
        case ReductionMethod::kNaive: {
            // Every thread scans all p locals over its reduction rows.
            std::vector<index_t> next(reduce_parts_.size());
            for (std::size_t t = 0; t < reduce_parts_.size(); ++t) {
                next[t] = reduce_parts_[t].begin;
            }
            bool progress = true;
            while (progress) {
                progress = false;
                for (std::size_t t = 0; t < reduce_parts_.size(); ++t) {
                    if (next[t] >= reduce_parts_[t].end) continue;
                    const index_t hi =
                        std::min<index_t>(next[t] + kInterleaveRows, reduce_parts_[t].end);
                    for (index_t r = next[t]; r < hi; ++r) {
                        cache.access(layout_.y + static_cast<addr_t>(r) * kValueBytes);
                        for (const addr_t local : layout_.locals) {
                            cache.access(local + static_cast<addr_t>(r) * kValueBytes);
                        }
                    }
                    next[t] = hi;
                    progress = true;
                }
            }
            break;
        }
        case ReductionMethod::kEffectiveRanges: {
            // Same scan restricted to each local's effective region.
            for (index_t r = 0; r < n; ++r) {
                bool touched = false;
                for (std::size_t i = 1; i < parts_.size(); ++i) {
                    if (r < parts_[i].begin) {
                        cache.access(layout_.locals[i] + static_cast<addr_t>(r) * kValueBytes);
                        touched = true;
                    }
                }
                if (touched) cache.access(layout_.y + static_cast<addr_t>(r) * kValueBytes);
            }
            break;
        }
        case ReductionMethod::kIndexing: {
            const auto entries = index_.entries();
            const auto chunks = index_.chunk_ptr();
            std::vector<std::size_t> next(chunks.begin(), chunks.end() - 1);
            bool progress = true;
            while (progress) {
                progress = false;
                for (std::size_t t = 0; t + 1 < chunks.size(); ++t) {
                    if (next[t] >= chunks[t + 1]) continue;
                    const std::size_t hi = std::min(next[t] + kInterleaveEntries, chunks[t + 1]);
                    for (std::size_t k = next[t]; k < hi; ++k) {
                        const ReductionEntry e = entries[k];
                        cache.access(layout_.index + k * sizeof(ReductionEntry));
                        cache.access(layout_.locals[static_cast<std::size_t>(e.vid)] +
                                     static_cast<addr_t>(e.idx) * kValueBytes);
                        cache.access(layout_.y + static_cast<addr_t>(e.idx) * kValueBytes);
                    }
                    next[t] = hi;
                    progress = true;
                }
            }
            break;
        }
    }
}

InterferenceResult SpmvTrace::run_interference(Cache& cache, ReductionMethod method) const {
    InterferenceResult out;
    cache.flush();
    replay_multiply(cache, method);
    out.first_multiply = cache.misses();
    cache.reset_counters();
    replay_reduction(cache, method);
    out.reduction = cache.misses();
    cache.reset_counters();
    replay_multiply(cache, method);
    out.second_multiply = cache.misses();
    return out;
}

}  // namespace symspmv::cachesim
