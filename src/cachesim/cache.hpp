// Set-associative LRU cache model.
//
// The paper attributes part of the local-vectors-indexing win to cache
// effects: "the high working set overhead of the alternative methods ...
// is likely to spill out useful data from the cache, incurring an
// increased overhead to the multiplication phase of the next iteration"
// (§V.B).  That claim is hardware-dependent on a real machine; this model
// makes it machine-independent: replay the kernel's address stream through
// a configurable cache and count the misses each phase suffers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace symspmv::cachesim {

/// Addresses are abstract byte offsets in a flat simulated address space.
using addr_t = std::uint64_t;

struct CacheConfig {
    std::size_t size_bytes = 256 * 1024;  // Gainestown per-core L2
    std::size_t line_bytes = 64;
    int ways = 8;
};

/// Preset configurations of the paper's two platforms (Table II).
CacheConfig dunnington_l2();   // 3 MiB / 12-way, shared per 2 cores
CacheConfig dunnington_l3();   // 16 MiB / 16-way
CacheConfig gainestown_l2();   // 256 KiB / 8-way
CacheConfig gainestown_l3();   // 8 MiB / 16-way

class Cache {
   public:
    explicit Cache(const CacheConfig& cfg);

    /// Touches the line containing @p addr; returns true on hit.  Misses
    /// fill the line (LRU eviction).
    bool access(addr_t addr);

    /// Touches every line of [addr, addr + bytes); returns the hits.
    std::int64_t access_range(addr_t addr, std::size_t bytes);

    [[nodiscard]] std::int64_t hits() const { return hits_; }
    [[nodiscard]] std::int64_t misses() const { return misses_; }
    [[nodiscard]] std::int64_t accesses() const { return hits_ + misses_; }

    /// Resets the counters, keeping the cache contents (so a phase can be
    /// measured against the state the previous phase left behind).
    void reset_counters();

    /// Empties the cache entirely.
    void flush();

    [[nodiscard]] const CacheConfig& config() const { return cfg_; }
    [[nodiscard]] std::size_t sets() const { return sets_; }

   private:
    CacheConfig cfg_;
    std::size_t sets_ = 0;
    int line_shift_ = 0;
    // Per set: `ways` tags ordered most-recent-first (tag 0 = empty).
    std::vector<addr_t> tags_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

}  // namespace symspmv::cachesim
