#include "cachesim/cache.hpp"

#include <algorithm>
#include <bit>

namespace symspmv::cachesim {

CacheConfig dunnington_l2() { return {3 * 1024 * 1024, 64, 12}; }
CacheConfig dunnington_l3() { return {16 * 1024 * 1024, 64, 16}; }
CacheConfig gainestown_l2() { return {256 * 1024, 64, 8}; }
CacheConfig gainestown_l3() { return {8 * 1024 * 1024, 64, 16}; }

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
    SYMSPMV_CHECK_MSG(cfg.ways >= 1 && cfg.line_bytes >= 8 &&
                          std::has_single_bit(cfg.line_bytes),
                      "cache: line size must be a power of two");
    const std::size_t lines = cfg.size_bytes / cfg.line_bytes;
    SYMSPMV_CHECK_MSG(lines % static_cast<std::size_t>(cfg.ways) == 0,
                      "cache: size must be a multiple of ways*line");
    sets_ = lines / static_cast<std::size_t>(cfg.ways);
    SYMSPMV_CHECK_MSG(std::has_single_bit(sets_), "cache: set count must be a power of two");
    line_shift_ = std::countr_zero(cfg.line_bytes);
    tags_.assign(lines, 0);
}

bool Cache::access(addr_t addr) {
    // Tag 0 marks an empty way, so line tags are offset by 1.
    const addr_t line = (addr >> line_shift_) + 1;
    const std::size_t set = static_cast<std::size_t>(line - 1) & (sets_ - 1);
    addr_t* ways = tags_.data() + set * static_cast<std::size_t>(cfg_.ways);
    for (int w = 0; w < cfg_.ways; ++w) {
        if (ways[w] == line) {
            // Move to front (most recently used).
            std::rotate(ways, ways + w, ways + w + 1);
            ++hits_;
            return true;
        }
    }
    // Miss: evict the LRU way (the last), insert at front.
    std::rotate(ways, ways + cfg_.ways - 1, ways + cfg_.ways);
    ways[0] = line;
    ++misses_;
    return false;
}

std::int64_t Cache::access_range(addr_t addr, std::size_t bytes) {
    std::int64_t range_hits = 0;
    const addr_t first = addr >> line_shift_;
    const addr_t last = (addr + bytes - 1) >> line_shift_;
    for (addr_t line = first; line <= last; ++line) {
        if (access(line << line_shift_)) ++range_hits;
    }
    return range_hits;
}

void Cache::reset_counters() {
    hits_ = 0;
    misses_ = 0;
}

void Cache::flush() {
    std::ranges::fill(tags_, 0);
    reset_counters();
}

}  // namespace symspmv::cachesim
