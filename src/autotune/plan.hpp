// An execution plan: everything the engine needs to rebuild "the kernel
// that won the timed search" without searching again.
//
// A plan is deliberately small and declarative — kernel kind, thread count,
// row-partition policy and the CSX encoding toggle — so it can be persisted
// as a few lines of text and replayed on any process that sees the same
// matrix and hardware signature.  build_plan() is the replay: it turns a
// plan back into a runnable kernel through the engine's KernelFactory.
#pragma once

#include <string>

#include "csx/detect.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/registry.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::autotune {

struct Plan {
    KernelKind kernel = KernelKind::kCsr;
    int threads = 1;
    engine::PartitionPolicy partition = engine::PartitionPolicy::kByNnz;
    /// CSX substructure detection on/off; false degenerates the CSX-family
    /// kinds to delta-only encoding (cheaper preprocessing, less
    /// compression).  Ignored by non-CSX kinds.
    bool csx_patterns = true;
    /// Software-prefetch distance for the kernels that support it (the SSS
    /// reduction family gathers x[colind[j + d]], CSX-Sym hints its values
    /// stream); 0 = off.  Ignored by the other kinds.
    int prefetch_distance = 0;
    /// The winner's measured median seconds per operation at tune time
    /// (diagnostic; not part of the plan's identity).
    double expected_seconds_per_op = 0.0;
};

/// True when two plans make the same decisions (the measurement diagnostic
/// is excluded — a reloaded plan must compare equal to the freshly tuned
/// one even if the stored timing differs in the last ulp).
[[nodiscard]] bool same_decision(const Plan& a, const Plan& b);

/// The CSX configuration implied by the plan's toggles.
[[nodiscard]] csx::CsxConfig csx_config(const Plan& plan);

/// Replays @p plan over @p bundle: builds its kernel kind with its CSX
/// config and partition policy on @p pool.  The pool's size decides the
/// actual thread count; callers that honor plan.threads should pass a pool
/// of that size (ExecutionContext(plan.threads)).
[[nodiscard]] KernelPtr build_plan(const Plan& plan, const engine::MatrixBundle& bundle,
                                   ThreadPool& pool);

/// Human-readable one-liner: "CSX-Sym x8 by-nnz patterns=on".
[[nodiscard]] std::string to_string(const Plan& plan);

}  // namespace symspmv::autotune
