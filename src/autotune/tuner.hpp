// Empirical plan search (OSKI-style autotuning, PAPERS.md).
//
// The static advisor (bench/advisor.hpp) predicts a winner from structural
// features; the tuner *measures*.  It enumerates candidate plans — kernel
// kind x thread count x partition policy x CSX encoding toggle — seeds the
// search order with the advisor's prediction as a prior, times each
// candidate through the §V.A harness with a cheap screening pass that
// prunes clearly-losing candidates before the full measurement, and
// persists the winner in the plan store.  The second tune() for the same
// (matrix, machine, search space) is a cache hit: zero timed trials, the
// stored plan replayed instantly — the §V.C amortization argument turned
// into an API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autotune/plan.hpp"
#include "autotune/store.hpp"
#include "engine/bundle.hpp"

namespace symspmv::autotune {

struct TuneOptions {
    /// Thread counts to search; empty = powers of two up to the machine's
    /// hardware concurrency (inclusive).
    std::vector<int> thread_counts;
    bool pin_threads = false;
    engine::PlacementPolicy placement = engine::PlacementPolicy::kNone;
    /// Kernel kinds to consider; empty = every multithreaded registry kind
    /// (default_tuning_kinds()).  Symmetric-only kinds are dropped
    /// automatically for unsymmetric input.
    std::vector<KernelKind> kernels;
    /// Also try the even-rows partition for the row-partitioned kernels.
    bool try_even_rows = true;
    /// Also try delta-only CSX encoding for the CSX-Sym kind.
    bool try_delta_only_csx = true;
    /// Software-prefetch distances to try for the prefetch-capable kinds
    /// (the SSS reduction family and CSX-Sym); non-positive entries are
    /// ignored, and every capable kind is always also tried at 0 (off).
    std::vector<int> prefetch_distances = {16};
    /// The two-stage measurement: every candidate gets a short screening
    /// run; only candidates within prune_ratio of the best screening median
    /// are re-measured at refine_iterations.
    int screening_iterations = 3;
    int refine_iterations = 12;
    double prune_ratio = 1.5;
    /// Trial budget (candidates actually timed); 0 = unbounded.  Tiny
    /// budgets keep the CI smoke cycle fast.
    int max_trials = 0;
    std::uint64_t seed = 2013;  // input-vector seed for the timed runs
};

/// One timed candidate of a search, for reporting.
struct TrialRecord {
    Plan plan;
    double screening_seconds_per_op = 0.0;
    double refined_seconds_per_op = 0.0;  // 0 when pruned after screening
    double multiply_imbalance = 0.0;      // PhaseProfiler max/mean - 1
    bool pruned = false;
};

/// Outcome of one tune() call.
struct TuneReport {
    Plan plan;
    bool cache_hit = false;
    int trials = 0;          // timed candidates; 0 on the warm path
    double tune_seconds = 0.0;
    std::string prior_rationale;       // the advisor's explanation (cold only)
    std::vector<TrialRecord> records;  // search trace (cold only)
};

/// Every multithreaded registry kind (the JIT backends are excluded: their
/// runtime compilation cost belongs to a deliberate opt-in, not a sweep).
[[nodiscard]] const std::vector<KernelKind>& default_tuning_kinds();

/// The hardware signature a tuner with @p opts tunes for.
[[nodiscard]] HardwareSignature signature_for(const TuneOptions& opts);

/// Hash of the candidate space (thread counts, kinds, toggles) — the third
/// component of the plan-store key.
[[nodiscard]] std::uint64_t search_space_hash(const TuneOptions& opts,
                                              const std::vector<int>& thread_counts);

class Tuner {
   public:
    /// @p store outlives the tuner.
    explicit Tuner(PlanStore& store, TuneOptions opts = {});

    /// Best plan for @p bundle on this machine, searching every configured
    /// thread count.  Warm path (store hit) performs zero timed trials.
    [[nodiscard]] TuneReport tune(const engine::MatrixBundle& bundle);

    /// Same with the thread count fixed to @p threads — the
    /// KernelFactory::make_tuned() path, where the pool already exists.
    [[nodiscard]] TuneReport tune(const engine::MatrixBundle& bundle, int threads);

    [[nodiscard]] const TuneOptions& options() const { return opts_; }
    [[nodiscard]] PlanStore& store() { return store_; }

    /// Timed trials across every tune() on this tuner (the observable the
    /// warm-cache property is asserted on).
    [[nodiscard]] long trials_total() const { return trials_total_; }

   private:
    TuneReport run(const engine::MatrixBundle& bundle, std::vector<int> thread_counts);

    PlanStore& store_;
    TuneOptions opts_;
    long trials_total_ = 0;
};

}  // namespace symspmv::autotune
