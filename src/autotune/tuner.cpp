#include "autotune/tuner.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "bench/advisor.hpp"
#include "bench/harness.hpp"
#include "core/error.hpp"
#include "core/profiling.hpp"
#include "core/timer.hpp"
#include "engine/context.hpp"

namespace symspmv::autotune {

namespace {

/// Kinds that exploit symmetry and therefore need symmetric input.
bool requires_symmetric(KernelKind kind) {
    switch (kind) {
        case KernelKind::kSssSerial:
        case KernelKind::kSssNaive:
        case KernelKind::kSssEffective:
        case KernelKind::kSssIndexing:
        case KernelKind::kSssAtomic:
        case KernelKind::kSssColor:
        case KernelKind::kSssRace:
        case KernelKind::kCsxSym:
        case KernelKind::kCsbSym:
        case KernelKind::kCsxSymJit:
            return true;
        default:
            return false;
    }
}

/// Kinds whose row partition the factory can re-split (even-rows candidates).
bool row_partitioned(KernelKind kind) {
    switch (kind) {
        case KernelKind::kCsr:
        case KernelKind::kSssNaive:
        case KernelKind::kSssEffective:
        case KernelKind::kSssIndexing:
            return true;
        default:
            return false;
    }
}

/// Kinds that honor Plan::prefetch_distance.
bool prefetch_capable(KernelKind kind) {
    switch (kind) {
        case KernelKind::kSssNaive:
        case KernelKind::kSssEffective:
        case KernelKind::kSssIndexing:
        case KernelKind::kCsxSym:
            return true;
        default:
            return false;
    }
}

std::vector<int> default_thread_counts() {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 1;
    std::vector<int> counts;
    for (int t = 1; t < hw; t *= 2) counts.push_back(t);
    counts.push_back(hw);
    return counts;
}

std::vector<KernelKind> resolve_kinds(const TuneOptions& opts) {
    return opts.kernels.empty() ? default_tuning_kinds() : opts.kernels;
}

}  // namespace

const std::vector<KernelKind>& default_tuning_kinds() {
    static const std::vector<KernelKind> kinds = [] {
        std::vector<KernelKind> k;
        for (KernelKind kind : all_kernel_kinds()) {
            if (kind == KernelKind::kCsrSerial || kind == KernelKind::kSssSerial) continue;
            if (kind == KernelKind::kCsxJit || kind == KernelKind::kCsxSymJit) continue;
            k.push_back(kind);
        }
        return k;
    }();
    return kinds;
}

HardwareSignature signature_for(const TuneOptions& opts) {
    return local_hardware_signature(opts.pin_threads, opts.placement);
}

std::uint64_t search_space_hash(const TuneOptions& opts,
                                const std::vector<int>& thread_counts) {
    std::uint64_t h = fnv1a(nullptr, 0);
    auto mix_int = [&h](long v) { h = fnv1a(&v, sizeof(v), h); };
    std::vector<int> threads = thread_counts;
    std::sort(threads.begin(), threads.end());  // order-independent identity
    for (int t : threads) mix_int(t);
    mix_int(-1);  // separator: {1,2}+{} never hashes like {1}+{2}
    for (KernelKind kind : resolve_kinds(opts)) mix_int(static_cast<long>(kind));
    mix_int(-1);
    mix_int(opts.try_even_rows ? 1 : 0);
    mix_int(opts.try_delta_only_csx ? 1 : 0);
    mix_int(-1);
    std::vector<int> distances = opts.prefetch_distances;
    std::erase_if(distances, [](int d) { return d <= 0; });
    std::sort(distances.begin(), distances.end());
    for (int d : distances) mix_int(d);
    return h;
}

Tuner::Tuner(PlanStore& store, TuneOptions opts) : store_(store), opts_(std::move(opts)) {}

TuneReport Tuner::tune(const engine::MatrixBundle& bundle) {
    return run(bundle,
               opts_.thread_counts.empty() ? default_thread_counts() : opts_.thread_counts);
}

TuneReport Tuner::tune(const engine::MatrixBundle& bundle, int threads) {
    SYMSPMV_CHECK_MSG(threads >= 1, "tune: need at least one thread");
    return run(bundle, {threads});
}

TuneReport Tuner::run(const engine::MatrixBundle& bundle, std::vector<int> thread_counts) {
    const Timer wall;
    TuneReport report;
    const PlanKey key{fingerprint(bundle.coo()), signature_for(opts_),
                      search_space_hash(opts_, thread_counts)};
    if (auto cached = store_.load(key)) {
        report.plan = *cached;
        report.cache_hit = true;
        report.tune_seconds = wall.seconds();
        return report;
    }

    // Candidate enumeration.  Larger thread counts go first — they are the
    // likelier winners, and an early good median makes the screening prune
    // bite sooner.
    std::sort(thread_counts.begin(), thread_counts.end(), std::greater<>());
    std::vector<KernelKind> kinds = resolve_kinds(opts_);
    if (!bundle.properties().numerically_symmetric) {
        std::erase_if(kinds, requires_symmetric);
    }
    SYMSPMV_CHECK_MSG(!kinds.empty(), "tune: no applicable kernel kinds for this matrix");
    std::vector<Plan> candidates;
    // Prefetch-capable kinds fan out over the configured distances (plus
    // always 0 = off — the base push); the rest stay at 0.
    const auto push = [&](Plan plan) {
        candidates.push_back(plan);
        if (!prefetch_capable(plan.kernel)) return;
        for (int d : opts_.prefetch_distances) {
            if (d <= 0) continue;
            Plan variant = plan;
            variant.prefetch_distance = d;
            candidates.push_back(variant);
        }
    };
    for (int threads : thread_counts) {
        for (KernelKind kind : kinds) {
            push({kind, threads, engine::PartitionPolicy::kByNnz, true});
            if (opts_.try_even_rows && row_partitioned(kind)) {
                push({kind, threads, engine::PartitionPolicy::kEvenRows, true});
            }
            if (opts_.try_delta_only_csx && kind == KernelKind::kCsxSym) {
                push({kind, threads, engine::PartitionPolicy::kByNnz, false});
            }
        }
    }

    // The advisor's prediction is the search prior: its kind is tried first,
    // so under a trial budget the empirically-strong region is covered
    // before the long tail.
    const bench::Advice advice = bench::advise(bundle.coo());
    report.prior_rationale = advice.rationale;
    std::stable_partition(candidates.begin(), candidates.end(),
                          [&](const Plan& p) { return p.kernel == advice.kernel; });

    constexpr double kInf = std::numeric_limits<double>::infinity();
    double best_screening = kInf;
    double best_refined = kInf;
    Plan winner;
    bool have_winner = false;
    for (const Plan& candidate : candidates) {
        if (opts_.max_trials > 0 && report.trials >= opts_.max_trials) break;
        TrialRecord record;
        record.plan = candidate;
        try {
            // The context draws its worker pool from the process-wide
            // ContextPool, so re-trying a thread count across candidates
            // (or across tune() calls) reuses one warm pool instead of
            // spawning threads per trial.
            engine::ExecutionContext ctx(
                engine::ContextOptions{.threads = candidate.threads,
                                       .pin_threads = opts_.pin_threads,
                                       .placement = opts_.placement,
                                       .partition = candidate.partition});
            const KernelPtr kernel = build_plan(candidate, bundle, ctx.pool());
            PhaseProfiler profiler(candidate.threads);
            bench::MeasureOptions screening;
            screening.iterations = opts_.screening_iterations;
            screening.warmup = 1;
            screening.seed = opts_.seed;
            screening.profiler = &profiler;
            const bench::Measurement coarse = bench::measure(*kernel, screening);
            ++report.trials;
            ++trials_total_;
            record.screening_seconds_per_op = coarse.seconds_per_op;
            record.multiply_imbalance = profiler.stats(Phase::kMultiply).imbalance;
            if (coarse.seconds_per_op > opts_.prune_ratio * best_screening) {
                record.pruned = true;  // clearly losing: skip the full measurement
            } else {
                best_screening = std::min(best_screening, coarse.seconds_per_op);
                bench::MeasureOptions refine;
                refine.iterations = opts_.refine_iterations;
                refine.warmup = 1;
                refine.seed = opts_.seed;
                const bench::Measurement fine = bench::measure(*kernel, refine);
                record.refined_seconds_per_op = fine.seconds_per_op;
                if (!have_winner || fine.seconds_per_op < best_refined) {
                    best_refined = fine.seconds_per_op;
                    winner = candidate;
                    winner.expected_seconds_per_op = fine.seconds_per_op;
                    have_winner = true;
                }
            }
        } catch (const std::exception&) {
            // A candidate this input cannot build (format constraint, memory
            // blow-up) loses by definition; the search moves on.
            record.pruned = true;
        }
        report.records.push_back(std::move(record));
    }
    SYMSPMV_CHECK_MSG(have_winner, "tune: no candidate could be measured");

    report.plan = winner;
    store_.save(key, winner);
    report.tune_seconds = wall.seconds();
    return report;
}

}  // namespace symspmv::autotune
