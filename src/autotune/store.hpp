// Persistent, fingerprint-keyed plan cache.
//
// One plan file per (matrix fingerprint, hardware signature, search space)
// key, written atomically (core/atomic_file.hpp) as a small versioned text
// record that embeds the full key it was tuned for.  Loading is defensive
// by construction: a truncated, garbage, wrong-version or wrong-key file is
// reported as a clean cache miss — the tuner then re-tunes and overwrites —
// never as a crash or a silently wrong plan.  An in-memory layer in front
// of the disk makes repeated lookups in one process free and doubles as the
// whole store when no cache directory is configured.
//
// Thread-safe: the store is the cross-client plan cache of the serve
// subsystem, where several sessions look up and tune concurrently.  The map
// and counters sit behind one store mutex, and each key additionally owns a
// write-serialization mutex held across the (memory update + atomic file
// replace) pair, so two threads tuning the same fingerprint cannot
// interleave their plan-file writes — the disk and the memory layer always
// land on the same winner.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "autotune/fingerprint.hpp"
#include "autotune/plan.hpp"

namespace symspmv::autotune {

/// Bumped whenever the plan file layout changes; older files load as a miss.
/// v2 added the "sum" integrity line: the embedded key already revalidates
/// the matrix/hardware/search lines, and the checksum extends that cover to
/// the decision fields, so byte-level corruption anywhere is a clean miss.
/// v3 added the "prefetch" decision line (software-prefetch distance); v2
/// files predate the knob and must re-tune rather than silently replay with
/// prefetch off on machines where the search would have enabled it.
inline constexpr int kPlanFormatVersion = 3;

/// The full cache key: which matrix, which machine, which candidate space.
/// The search space participates so that e.g. a thread-count-restricted
/// make_tuned() and a full search never overwrite each other's winners.
struct PlanKey {
    MatrixFingerprint fingerprint;
    HardwareSignature hardware;
    std::uint64_t search_hash = 0;
};

class PlanStore {
   public:
    /// @p dir: the cache directory, created on first save().  Empty means
    /// in-memory only — plans live for the store's lifetime, nothing is
    /// persisted.
    explicit PlanStore(std::string dir = "");

    /// Cache lookup.  Disk entries are revalidated against @p key (the file
    /// embeds the key it was written for); any mismatch or parse failure is
    /// a miss.
    [[nodiscard]] std::optional<Plan> load(const PlanKey& key);

    /// Inserts into the memory layer and, when disk-backed, persists
    /// atomically (temp file + rename).
    void save(const PlanKey& key, const Plan& plan);

    /// Observability: how this store has been used.  Surfaced through the
    /// metrics registry by obs::register_plan_store_metrics.
    struct Counters {
        int hits = 0;         // load() returned a plan (memory or disk)
        int misses = 0;       // load() found nothing usable
        int disk_hits = 0;    // subset of hits satisfied by a plan file
        int saves = 0;        // save() calls
        /// Subset of misses where a plan file existed but failed strict
        /// parsing or embedded-key revalidation — the "cache is present but
        /// stale/corrupt" signal, distinct from a cold miss.
        int revalidation_rejects = 0;
    };
    /// A consistent snapshot (by value: the counters move concurrently).
    [[nodiscard]] Counters counters() const;

    [[nodiscard]] const std::string& directory() const { return dir_; }
    [[nodiscard]] bool persistent() const { return !dir_.empty(); }

    /// The plan file a key maps to ("" when in-memory only).
    [[nodiscard]] std::string path_for(const PlanKey& key) const;

    /// Serialization, exposed for the robustness tests.
    static void serialize(std::ostream& out, const PlanKey& key, const Plan& plan);
    /// Strict parse + key validation; std::nullopt on any deviation.
    [[nodiscard]] static std::optional<Plan> parse(std::istream& in, const PlanKey& key);

   private:
    [[nodiscard]] static std::string key_id(const PlanKey& key);

    /// The per-key write lock (created on first use; stable address).
    [[nodiscard]] std::mutex& key_mutex_locked(const std::string& id);

    std::string dir_;
    mutable std::mutex mu_;  // guards memory_, counters_ and key_locks_
    std::map<std::string, Plan> memory_;
    std::map<std::string, std::unique_ptr<std::mutex>> key_locks_;
    Counters counters_;
};

}  // namespace symspmv::autotune
