// KernelFactory::make_tuned — the engine's entry into the autotune
// subsystem.  Lives in symspmv_autotune (not symspmv_engine) so the engine
// library stays below the bench layer; the declaration in engine/factory.hpp
// documents the link requirement.
#include "autotune/tuner.hpp"
#include "engine/factory.hpp"

namespace symspmv::engine {

KernelPtr KernelFactory::make_tuned(autotune::Tuner& tuner,
                                    autotune::TuneReport* report) const {
    // Threads are fixed to this factory's pool: the caller already owns the
    // execution resources, so the search covers kernel kind, partition
    // policy and the CSX toggles for exactly this pool size.
    autotune::TuneReport result = tuner.tune(bundle_, pool_.size());
    if (report != nullptr) *report = result;
    // The plan replays on the factory's own pool; its partition policy and
    // CSX config override the factory defaults — the plan decides.
    return autotune::build_plan(result.plan, bundle_, pool_);
}

}  // namespace symspmv::engine
