#include "autotune/plan.hpp"

#include <sstream>

#include "engine/factory.hpp"

namespace symspmv::autotune {

bool same_decision(const Plan& a, const Plan& b) {
    return a.kernel == b.kernel && a.threads == b.threads && a.partition == b.partition &&
           a.csx_patterns == b.csx_patterns && a.prefetch_distance == b.prefetch_distance;
}

csx::CsxConfig csx_config(const Plan& plan) {
    return plan.csx_patterns ? csx::CsxConfig{} : csx::delta_only_config();
}

KernelPtr build_plan(const Plan& plan, const engine::MatrixBundle& bundle, ThreadPool& pool) {
    engine::KernelFactory factory(bundle, pool, csx_config(plan), plan.partition);
    factory.set_prefetch_distance(plan.prefetch_distance);
    return factory.make(plan.kernel);
}

std::string to_string(const Plan& plan) {
    std::ostringstream os;
    os << symspmv::to_string(plan.kernel) << " x" << plan.threads << ' '
       << engine::to_string(plan.partition) << " patterns=" << (plan.csx_patterns ? "on" : "off")
       << " prefetch=" << plan.prefetch_distance;
    return os.str();
}

}  // namespace symspmv::autotune
