// Stable identities for the plan cache: what was tuned, and where.
//
// A plan is only reusable when both the matrix and the machine match.  The
// MatrixFingerprint hashes the canonical COO form (dimensions, non-zero
// pattern and values) so that any structural or numerical change retunes,
// while the insertion order of the triplets — which canonicalization
// erases — does not.  The HardwareSignature captures the execution
// environment the timings were taken in: logical core count, the
// pinning/placement policies in force, and the compiler/build flags the
// kernels were compiled with (OSKI keys its tuned transformations the same
// way: per matrix, per machine, per build).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.hpp"
#include "engine/context.hpp"
#include "matrix/coo.hpp"

namespace symspmv::autotune {

/// FNV-1a 64-bit over raw bytes — the one stable hash every autotune key
/// uses (endianness-stable across the little-endian targets we build for).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                  std::uint64_t seed = 1469598103934665603ULL);

/// Structural + numerical identity of one canonical COO matrix.
struct MatrixFingerprint {
    index_t rows = 0;
    index_t cols = 0;
    std::int64_t nnz = 0;
    std::uint64_t pattern_hash = 0;  // over the (row, col) sequence
    std::uint64_t value_hash = 0;    // over the value bit patterns

    friend bool operator==(const MatrixFingerprint&, const MatrixFingerprint&) = default;
};

/// Fingerprints @p matrix (must be canonical — sorted, duplicates combined —
/// so permuted insertion orders of the same matrix hash identically).
[[nodiscard]] MatrixFingerprint fingerprint(const Coo& matrix);

/// Compact single-token rendering ("RxCxNNZ-pattern-value" in hex).
[[nodiscard]] std::string to_string(const MatrixFingerprint& fp);

/// Combined 64-bit digest (used in plan-store filenames).
[[nodiscard]] std::uint64_t digest(const MatrixFingerprint& fp);

/// The execution environment a plan's timings are valid for.
struct HardwareSignature {
    int hardware_threads = 0;  // logical CPUs of the machine
    bool pin_threads = false;
    engine::PlacementPolicy placement = engine::PlacementPolicy::kNone;
    std::string compiler;  // e.g. "gcc-13.2"
    std::string build;     // "opt" (NDEBUG) or "debug"

    friend bool operator==(const HardwareSignature&, const HardwareSignature&) = default;
};

/// Signature of this process: hardware_concurrency plus the caller's
/// pinning/placement policies and the compile-time toolchain identity.
[[nodiscard]] HardwareSignature local_hardware_signature(
    bool pin_threads = false,
    engine::PlacementPolicy placement = engine::PlacementPolicy::kNone);

/// Single-token rendering ("16c-pin-none-gcc-13.2-opt" style).
[[nodiscard]] std::string to_string(const HardwareSignature& hw);

/// Combined 64-bit digest (used in plan-store filenames).
[[nodiscard]] std::uint64_t digest(const HardwareSignature& hw);

}  // namespace symspmv::autotune
