#include "autotune/store.hpp"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/atomic_file.hpp"
#include "core/error.hpp"

namespace symspmv::autotune {

namespace {

std::string hex(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

/// Reads "<keyword> <token>" and returns the token; nullopt unless the
/// keyword matches exactly (the strictness is what turns every malformed
/// file into a miss instead of a misparse).
std::optional<std::string> read_field(std::istream& in, std::string_view keyword) {
    std::string key, value;
    if (!(in >> key >> value)) return std::nullopt;
    if (key != keyword) return std::nullopt;
    return value;
}

}  // namespace

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {}

std::string PlanStore::key_id(const PlanKey& key) {
    return hex(digest(key.fingerprint)) + "-" + hex(digest(key.hardware)) + "-" +
           hex(key.search_hash);
}

std::string PlanStore::path_for(const PlanKey& key) const {
    if (dir_.empty()) return "";
    return dir_ + "/" + key_id(key) + ".plan";
}

void PlanStore::serialize(std::ostream& out, const PlanKey& key, const Plan& plan) {
    out << "symspmv-plan " << kPlanFormatVersion << '\n'
        << "matrix " << to_string(key.fingerprint) << '\n'
        << "hardware " << to_string(key.hardware) << '\n'
        << "search " << hex(key.search_hash) << '\n'
        << "kernel " << symspmv::to_string(plan.kernel) << '\n'
        << "threads " << plan.threads << '\n'
        << "partition " << engine::to_string(plan.partition) << '\n'
        << "csx-patterns " << (plan.csx_patterns ? 1 : 0) << '\n'
        << "seconds " << plan.expected_seconds_per_op << '\n'
        << "end symspmv-plan\n";  // trailer: truncation anywhere is detectable
}

std::optional<Plan> PlanStore::parse(std::istream& in, const PlanKey& key) {
    const auto version = read_field(in, "symspmv-plan");
    if (!version || *version != std::to_string(kPlanFormatVersion)) return std::nullopt;

    // The embedded key must be the requested one.  This rejects files for a
    // different matrix or machine that ended up under this name (filename
    // digest collision, a cache directory copied across machines, ...).
    const auto matrix = read_field(in, "matrix");
    if (!matrix || *matrix != to_string(key.fingerprint)) return std::nullopt;
    const auto hardware = read_field(in, "hardware");
    if (!hardware || *hardware != to_string(key.hardware)) return std::nullopt;
    const auto search = read_field(in, "search");
    if (!search || *search != hex(key.search_hash)) return std::nullopt;

    const auto kernel = read_field(in, "kernel");
    const auto threads = read_field(in, "threads");
    const auto partition = read_field(in, "partition");
    const auto patterns = read_field(in, "csx-patterns");
    const auto seconds = read_field(in, "seconds");
    if (!kernel || !threads || !partition || !patterns || !seconds) return std::nullopt;
    // Even the last data field could survive a truncation (a clipped seconds
    // value still parses as a number); the trailer cannot.
    const auto trailer = read_field(in, "end");
    if (!trailer || *trailer != "symspmv-plan") return std::nullopt;

    Plan plan;
    try {
        // parse_kernel_kind also rejects kinds this process cannot build
        // (the JIT backends without a system compiler): such plans re-tune.
        plan.kernel = parse_kernel_kind(*kernel);
        plan.threads = std::stoi(*threads);
        plan.partition = engine::parse_partition_policy(*partition);
        plan.expected_seconds_per_op = std::stod(*seconds);
    } catch (const std::exception&) {
        return std::nullopt;
    }
    if (plan.threads < 1) return std::nullopt;
    if (*patterns != "0" && *patterns != "1") return std::nullopt;
    plan.csx_patterns = *patterns == "1";
    return plan;
}

std::optional<Plan> PlanStore::load(const PlanKey& key) {
    const std::string id = key_id(key);
    if (const auto it = memory_.find(id); it != memory_.end()) {
        ++counters_.hits;
        return it->second;
    }
    if (!dir_.empty()) {
        std::ifstream in(path_for(key));
        if (in) {
            if (auto plan = parse(in, key)) {
                ++counters_.hits;
                ++counters_.disk_hits;
                memory_.emplace(id, *plan);
                return plan;
            }
        }
    }
    ++counters_.misses;
    return std::nullopt;
}

void PlanStore::save(const PlanKey& key, const Plan& plan) {
    ++counters_.saves;
    memory_[key_id(key)] = plan;
    if (dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    SYMSPMV_CHECK_MSG(!ec, "plan store: cannot create directory '" + dir_ + "'");
    write_file_atomic(path_for(key), [&](std::ostream& out) { serialize(out, key, plan); });
}

}  // namespace symspmv::autotune
