#include "autotune/store.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/atomic_file.hpp"
#include "core/error.hpp"
#include "core/hash.hpp"

namespace symspmv::autotune {

namespace {

std::string hex(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

/// Reads "<keyword> <token>" and returns the token; nullopt unless the
/// keyword matches exactly (the strictness is what turns every malformed
/// file into a miss instead of a misparse).
std::optional<std::string> read_field(std::istream& in, std::string_view keyword) {
    std::string key, value;
    if (!(in >> key >> value)) return std::nullopt;
    if (key != keyword) return std::nullopt;
    return value;
}

/// Strict full-token numeric parse.  std::stoi/std::stod would accept
/// trailing garbage ("4x" -> 4) and throw on non-numeric or out-of-range
/// input; the cache contract is that every malformed field is a clean miss,
/// so parse with std::from_chars and demand the whole token is consumed.
template <typename T>
std::optional<T> parse_number(const std::string& token) {
    T value{};
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
}

/// Checksum over the decision fields (the key fields are revalidated
/// against the requested key instead, which is strictly stronger).
std::uint64_t decision_checksum(const std::string& kernel, const std::string& threads,
                                const std::string& partition, const std::string& patterns,
                                const std::string& prefetch, const std::string& seconds) {
    std::uint64_t h = fnv1a64(kernel);
    h = fnv1a64(threads, h);
    h = fnv1a64(partition, h);
    h = fnv1a64(patterns, h);
    h = fnv1a64(prefetch, h);
    h = fnv1a64(seconds, h);
    return h;
}

}  // namespace

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {}

std::string PlanStore::key_id(const PlanKey& key) {
    return hex(digest(key.fingerprint)) + "-" + hex(digest(key.hardware)) + "-" +
           hex(key.search_hash);
}

std::string PlanStore::path_for(const PlanKey& key) const {
    if (dir_.empty()) return "";
    return dir_ + "/" + key_id(key) + ".plan";
}

void PlanStore::serialize(std::ostream& out, const PlanKey& key, const Plan& plan) {
    // The decision fields are written from explicit tokens so the checksum
    // is computed over exactly the bytes parse() will read back.  to_chars
    // renders the shortest round-trip form of the measured seconds (the
    // default ostream formatting would quietly drop precision).
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), plan.expected_seconds_per_op);
    SYMSPMV_CHECK_MSG(ec == std::errc{}, "plan store: cannot format seconds");
    const std::string kernel{symspmv::to_string(plan.kernel)};
    const std::string threads = std::to_string(plan.threads);
    const std::string partition{engine::to_string(plan.partition)};
    const std::string patterns = plan.csx_patterns ? "1" : "0";
    const std::string prefetch = std::to_string(plan.prefetch_distance);
    const std::string seconds(buf, ptr);
    out << "symspmv-plan " << kPlanFormatVersion << '\n'
        << "matrix " << to_string(key.fingerprint) << '\n'
        << "hardware " << to_string(key.hardware) << '\n'
        << "search " << hex(key.search_hash) << '\n'
        << "kernel " << kernel << '\n'
        << "threads " << threads << '\n'
        << "partition " << partition << '\n'
        << "csx-patterns " << patterns << '\n'
        << "prefetch " << prefetch << '\n'
        << "seconds " << seconds << '\n'
        << "sum "
        << hex(decision_checksum(kernel, threads, partition, patterns, prefetch, seconds))
        << '\n'
        << "end symspmv-plan\n";  // trailer: truncation anywhere is detectable
}

std::optional<Plan> PlanStore::parse(std::istream& in, const PlanKey& key) {
    const auto version = read_field(in, "symspmv-plan");
    if (!version || *version != std::to_string(kPlanFormatVersion)) return std::nullopt;

    // The embedded key must be the requested one.  This rejects files for a
    // different matrix or machine that ended up under this name (filename
    // digest collision, a cache directory copied across machines, ...).
    const auto matrix = read_field(in, "matrix");
    if (!matrix || *matrix != to_string(key.fingerprint)) return std::nullopt;
    const auto hardware = read_field(in, "hardware");
    if (!hardware || *hardware != to_string(key.hardware)) return std::nullopt;
    const auto search = read_field(in, "search");
    if (!search || *search != hex(key.search_hash)) return std::nullopt;

    const auto kernel = read_field(in, "kernel");
    const auto threads = read_field(in, "threads");
    const auto partition = read_field(in, "partition");
    const auto patterns = read_field(in, "csx-patterns");
    const auto prefetch = read_field(in, "prefetch");
    const auto seconds = read_field(in, "seconds");
    if (!kernel || !threads || !partition || !patterns || !prefetch || !seconds) {
        return std::nullopt;
    }
    const auto sum = read_field(in, "sum");
    if (!sum || *sum != hex(decision_checksum(*kernel, *threads, *partition, *patterns,
                                              *prefetch, *seconds))) {
        return std::nullopt;
    }
    // Even the last data field could survive a truncation (a clipped seconds
    // value still parses as a number); the trailer cannot.
    const auto trailer = read_field(in, "end");
    if (!trailer || *trailer != "symspmv-plan") return std::nullopt;

    const auto parsed_threads = parse_number<int>(*threads);
    const auto parsed_prefetch = parse_number<int>(*prefetch);
    const auto parsed_seconds = parse_number<double>(*seconds);
    if (!parsed_threads || !parsed_prefetch || !parsed_seconds) return std::nullopt;

    Plan plan;
    try {
        // parse_kernel_kind also rejects kinds this process cannot build
        // (the JIT backends without a system compiler): such plans re-tune.
        plan.kernel = parse_kernel_kind(*kernel);
        plan.partition = engine::parse_partition_policy(*partition);
    } catch (const InvalidArgument&) {
        return std::nullopt;
    }
    plan.threads = *parsed_threads;
    plan.prefetch_distance = *parsed_prefetch;
    plan.expected_seconds_per_op = *parsed_seconds;
    if (plan.threads < 1 || plan.prefetch_distance < 0) return std::nullopt;
    if (*patterns != "0" && *patterns != "1") return std::nullopt;
    plan.csx_patterns = *patterns == "1";
    return plan;
}

PlanStore::Counters PlanStore::counters() const {
    std::lock_guard lock(mu_);
    return counters_;
}

std::mutex& PlanStore::key_mutex_locked(const std::string& id) {
    auto& slot = key_locks_[id];
    if (!slot) slot = std::make_unique<std::mutex>();
    return *slot;
}

std::optional<Plan> PlanStore::load(const PlanKey& key) {
    const std::string id = key_id(key);
    std::mutex* key_mu = nullptr;
    {
        std::lock_guard lock(mu_);
        if (const auto it = memory_.find(id); it != memory_.end()) {
            ++counters_.hits;
            return it->second;
        }
        if (dir_.empty()) {
            ++counters_.misses;
            return std::nullopt;
        }
        key_mu = &key_mutex_locked(id);
    }
    // The disk probe runs under the per-key lock (not the store lock, so
    // other keys keep flowing): a concurrent save() of this key finishes its
    // rename before we read, so we see either the old complete file or the
    // new complete file, and the memory layer we then update agrees with it.
    std::lock_guard key_lock(*key_mu);
    std::ifstream in(path_for(key));
    std::optional<Plan> plan;
    bool rejected = false;
    if (in) {
        plan = parse(in, key);
        rejected = !plan.has_value();
    }
    std::lock_guard lock(mu_);
    if (const auto it = memory_.find(id); it != memory_.end()) {
        // A save() or a parallel load() beat us to the memory layer.
        ++counters_.hits;
        return it->second;
    }
    if (plan) {
        ++counters_.hits;
        ++counters_.disk_hits;
        memory_.emplace(id, *plan);
        return plan;
    }
    // A file was there but strict parse/revalidation refused it.
    if (rejected) ++counters_.revalidation_rejects;
    ++counters_.misses;
    return std::nullopt;
}

void PlanStore::save(const PlanKey& key, const Plan& plan) {
    const std::string id = key_id(key);
    std::mutex* key_mu = nullptr;
    {
        std::lock_guard lock(mu_);
        ++counters_.saves;
        if (dir_.empty()) {
            memory_[id] = plan;
            return;
        }
        key_mu = &key_mutex_locked(id);
    }
    // Memory update and file replace happen together under the per-key lock:
    // two threads tuning the same fingerprint serialize here, so the plan
    // file and the memory layer always agree on one winner instead of
    // interleaving (memory from thread A, disk from thread B).
    std::lock_guard key_lock(*key_mu);
    {
        std::lock_guard lock(mu_);
        memory_[id] = plan;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    SYMSPMV_CHECK_MSG(!ec, "plan store: cannot create directory '" + dir_ + "'");
    write_file_atomic(path_for(key), [&](std::ostream& out) { serialize(out, key, plan); });
}

}  // namespace symspmv::autotune
