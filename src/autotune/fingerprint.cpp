#include "autotune/fingerprint.hpp"

#include <cstring>
#include <sstream>
#include <thread>

#include "core/error.hpp"
#include "core/hash.hpp"

namespace symspmv::autotune {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
    return fnv1a64(data, bytes, seed);
}

namespace {

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) { return fnv1a(&v, sizeof(v), h); }

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
    return fnv1a(s.data(), s.size(), h);
}

std::string hex(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

std::string compiler_id() {
#if defined(__clang__)
    return "clang-" + std::to_string(__clang_major__) + "." + std::to_string(__clang_minor__);
#elif defined(__GNUC__)
    return "gcc-" + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__);
#else
    return "unknown";
#endif
}

std::string build_id() {
#ifdef NDEBUG
    return "opt";
#else
    return "debug";
#endif
}

}  // namespace

MatrixFingerprint fingerprint(const Coo& matrix) {
    SYMSPMV_CHECK_MSG(matrix.is_canonical(),
                      "fingerprint: matrix must be canonical (call canonicalize() first)");
    MatrixFingerprint fp;
    fp.rows = matrix.rows();
    fp.cols = matrix.cols();
    fp.nnz = static_cast<std::int64_t>(matrix.nnz());
    std::uint64_t pattern = fnv1a(nullptr, 0);
    std::uint64_t values = fnv1a(nullptr, 0);
    for (const Triplet& t : matrix.entries()) {
        const index_t rc[2] = {t.row, t.col};
        pattern = fnv1a(rc, sizeof(rc), pattern);
        // Bit pattern, not arithmetic value: distinguishes -0.0 from 0.0 and
        // never depends on rounding of a textual rendering.
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(t.val));
        std::memcpy(&bits, &t.val, sizeof(bits));
        values = mix_u64(values, bits);
    }
    fp.pattern_hash = pattern;
    fp.value_hash = values;
    return fp;
}

std::string to_string(const MatrixFingerprint& fp) {
    std::ostringstream os;
    os << fp.rows << 'x' << fp.cols << 'x' << fp.nnz << '-' << hex(fp.pattern_hash) << '-'
       << hex(fp.value_hash);
    return os.str();
}

std::uint64_t digest(const MatrixFingerprint& fp) {
    std::uint64_t h = fnv1a(nullptr, 0);
    h = mix_u64(h, static_cast<std::uint64_t>(fp.rows));
    h = mix_u64(h, static_cast<std::uint64_t>(fp.cols));
    h = mix_u64(h, static_cast<std::uint64_t>(fp.nnz));
    h = mix_u64(h, fp.pattern_hash);
    h = mix_u64(h, fp.value_hash);
    return h;
}

HardwareSignature local_hardware_signature(bool pin_threads, engine::PlacementPolicy placement) {
    HardwareSignature hw;
    hw.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (hw.hardware_threads <= 0) hw.hardware_threads = 1;
    hw.pin_threads = pin_threads;
    hw.placement = placement;
    hw.compiler = compiler_id();
    hw.build = build_id();
    return hw;
}

std::string to_string(const HardwareSignature& hw) {
    std::ostringstream os;
    os << hw.hardware_threads << 'c' << (hw.pin_threads ? "-pin" : "-nopin") << '-'
       << engine::to_string(hw.placement) << '-' << hw.compiler << '-' << hw.build;
    return os.str();
}

std::uint64_t digest(const HardwareSignature& hw) {
    const std::string s = to_string(hw);
    return hash_string(fnv1a(nullptr, 0), s);
}

}  // namespace symspmv::autotune
