#include "bcsr/bcsr.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/error.hpp"

namespace symspmv::bcsr {

const std::vector<BlockShape>& candidate_shapes() {
    static const std::vector<BlockShape> shapes = {
        {1, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3},
        {2, 4}, {4, 2}, {4, 4}, {3, 6}, {6, 3}, {6, 6}, {8, 8},
    };
    return shapes;
}

namespace {

/// Counts the occupied r×c tiles of @p coo, optionally restricted to every
/// stride-th block row (sampling).  Also returns the nnz covered by the
/// scanned block rows so sampled fill ratios stay unbiased.
struct TileCount {
    std::int64_t tiles = 0;
    std::int64_t covered_nnz = 0;
};

TileCount count_tiles(const Coo& coo, BlockShape shape, int stride) {
    TileCount out;
    // Entries are row-major sorted, so each block row's entries are
    // contiguous; the distinct block columns within one block row are found
    // with a hash set (entries within it are NOT column sorted across its r
    // source rows).
    const auto entries = coo.entries();
    std::unordered_set<index_t> cols_seen;
    std::size_t pos = 0;
    index_t block_row = 0;
    while (pos < entries.size()) {
        const index_t bi = entries[pos].row / shape.r;
        if (bi != block_row) block_row = bi;
        const index_t row_end = (block_row + 1) * shape.r;
        const bool sampled = (block_row % stride) == 0;
        cols_seen.clear();
        while (pos < entries.size() && entries[pos].row < row_end) {
            if (sampled) {
                cols_seen.insert(entries[pos].col / shape.c);
                ++out.covered_nnz;
            }
            ++pos;
        }
        if (sampled) out.tiles += static_cast<std::int64_t>(cols_seen.size());
        ++block_row;
    }
    return out;
}

}  // namespace

double fill_ratio(const Coo& coo, BlockShape shape) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "fill_ratio requires a canonical COO matrix");
    if (coo.nnz() == 0) return 1.0;
    const TileCount tc = count_tiles(coo, shape, 1);
    return static_cast<double>(tc.tiles) * shape.r * shape.c / static_cast<double>(coo.nnz());
}

std::size_t predicted_bytes(const Coo& coo, BlockShape shape) {
    const TileCount tc = count_tiles(coo, shape, 1);
    const std::size_t block_rows = static_cast<std::size_t>((coo.rows() + shape.r - 1) / shape.r);
    return static_cast<std::size_t>(tc.tiles) *
               (static_cast<std::size_t>(shape.r) * static_cast<std::size_t>(shape.c) *
                    kValueBytes +
                kIndexBytes) +
           (block_rows + 1) * kIndexBytes;
}

BlockShape choose_block_size(const Coo& coo, double sample_fraction) {
    SYMSPMV_CHECK_MSG(sample_fraction > 0.0 && sample_fraction <= 1.0,
                      "sample_fraction must be in (0, 1]");
    const int stride = std::max(1, static_cast<int>(1.0 / sample_fraction));
    BlockShape best{1, 1};
    double best_cost = std::numeric_limits<double>::infinity();
    for (const BlockShape shape : candidate_shapes()) {
        const TileCount tc = count_tiles(coo, shape, stride);
        if (tc.covered_nnz == 0) continue;
        // Bytes streamed per structural non-zero under this shape: the
        // memory-bound cost model (value fill + amortised block index).
        const double bytes_per_nnz =
            (static_cast<double>(tc.tiles) *
             (static_cast<double>(shape.r) * shape.c * kValueBytes + kIndexBytes)) /
            static_cast<double>(tc.covered_nnz);
        if (bytes_per_nnz < best_cost) {
            best_cost = bytes_per_nnz;
            best = shape;
        }
    }
    return best;
}

BcsrMatrix::BcsrMatrix(const Coo& coo, BlockShape shape) : shape_(shape) {
    SYMSPMV_CHECK_MSG(coo.is_canonical(), "BcsrMatrix requires a canonical COO matrix");
    SYMSPMV_CHECK_MSG(shape.r >= 1 && shape.c >= 1, "block shape must be positive");
    n_rows_ = coo.rows();
    n_cols_ = coo.cols();
    nnz_ = coo.nnz();
    n_block_rows_ = (n_rows_ + shape.r - 1) / shape.r;
    browptr_.assign(static_cast<std::size_t>(n_block_rows_) + 1, 0);

    const auto entries = coo.entries();
    // Two passes per block row: collect + sort the distinct block columns,
    // then scatter values into the dense blocks.
    std::vector<index_t> bcols;
    std::size_t row_begin = 0;
    for (index_t bi = 0; bi < n_block_rows_; ++bi) {
        const index_t row_end_idx = (bi + 1) * shape.r;
        std::size_t row_end = row_begin;
        while (row_end < entries.size() && entries[row_end].row < row_end_idx) ++row_end;

        bcols.clear();
        for (std::size_t k = row_begin; k < row_end; ++k) {
            bcols.push_back(entries[k].col / shape.c);
        }
        std::ranges::sort(bcols);
        const auto dup = std::ranges::unique(bcols);
        bcols.erase(dup.begin(), dup.end());

        const std::size_t first_block = bcolind_.size();
        bcolind_.insert(bcolind_.end(), bcols.begin(), bcols.end());
        values_.resize(values_.size() +
                           bcols.size() * static_cast<std::size_t>(shape.r) *
                               static_cast<std::size_t>(shape.c),
                       value_t{0});
        for (std::size_t k = row_begin; k < row_end; ++k) {
            const Triplet& t = entries[k];
            const index_t bc = t.col / shape.c;
            const auto it = std::ranges::lower_bound(bcols, bc);
            const std::size_t b = first_block + static_cast<std::size_t>(it - bcols.begin());
            const std::size_t off = b * static_cast<std::size_t>(shape.r) * shape.c +
                                    static_cast<std::size_t>(t.row - bi * shape.r) * shape.c +
                                    static_cast<std::size_t>(t.col - bc * shape.c);
            values_[off] = t.val;
        }
        browptr_[static_cast<std::size_t>(bi) + 1] = static_cast<index_t>(bcolind_.size());
        row_begin = row_end;
    }
    SYMSPMV_CHECK(row_begin == entries.size());
}

std::size_t BcsrMatrix::size_bytes() const {
    return values_.size() * kValueBytes + bcolind_.size() * kIndexBytes +
           browptr_.size() * kIndexBytes;
}

void BcsrMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
    SYMSPMV_CHECK(static_cast<index_t>(x.size()) == n_cols_ &&
                  static_cast<index_t>(y.size()) == n_rows_);
    spmv_block_rows(0, n_block_rows_, x, y);
}

void BcsrMatrix::spmv_block_rows(index_t bbegin, index_t bend, std::span<const value_t> x,
                                 std::span<value_t> y) const {
    const int r = shape_.r;
    const int c = shape_.c;
    const value_t* __restrict xv = x.data();
    value_t* __restrict yv = y.data();
    const value_t* __restrict vals = values_.data();
    // Accumulate each block row in a small register-resident buffer; tail
    // rows (when n is not a multiple of r) write only the valid entries.
    value_t acc[8];  // r <= 8 for all candidate shapes
    SYMSPMV_CHECK_MSG(r <= 8, "BCSR kernels support r <= 8");
    for (index_t bi = bbegin; bi < bend; ++bi) {
        for (int i = 0; i < r; ++i) acc[i] = value_t{0};
        for (index_t b = browptr_[static_cast<std::size_t>(bi)];
             b < browptr_[static_cast<std::size_t>(bi) + 1]; ++b) {
            const index_t col0 = bcolind_[static_cast<std::size_t>(b)] * c;
            const value_t* __restrict blk =
                vals + static_cast<std::size_t>(b) * static_cast<std::size_t>(r) * c;
            // The last block column may stick out past n_cols; its fill is
            // zero but x must not be read out of bounds there.
            const int cols = static_cast<int>(std::min<index_t>(c, n_cols_ - col0));
            for (int i = 0; i < r; ++i) {
                value_t s = value_t{0};
                for (int j = 0; j < cols; ++j) {
                    s += blk[i * c + j] * xv[col0 + j];
                }
                acc[i] += s;
            }
        }
        const index_t row0 = bi * r;
        const index_t row_hi = std::min<index_t>(row0 + r, n_rows_);
        for (index_t row = row0; row < row_hi; ++row) {
            yv[row] = acc[row - row0];
        }
    }
}

}  // namespace symspmv::bcsr
