// Blocked Compressed Sparse Row (BCSR) — the register-blocking baseline of
// Im & Yelick / OSKI ([22]-[26] in the paper's related work).
//
// The matrix is tiled with a fixed r×c grid aligned to (0,0).  Every tile
// that contains at least one non-zero is stored as a dense r×c value block
// (missing elements become explicit zeros — the "fill"), so a block row
// needs one column index per block instead of one per element.  The win is
// index compression and unrolled inner loops; the cost is the fill ratio
//   fill(r,c) = stored_elements / nnz >= 1.
//
// choose_block_size() implements an OSKI-style autotuner specialised for the
// memory-bound regime this paper targets: since SpM×V time is proportional
// to the bytes streamed, it picks the (r, c) minimising the exact storage
// footprint (values incl. fill + block column indices + block row pointers).
#pragma once

#include <span>
#include <vector>

#include "core/allocator.hpp"
#include "core/types.hpp"
#include "matrix/coo.hpp"

namespace symspmv::bcsr {

/// A block dimension pair (r rows by c columns).
struct BlockShape {
    int r = 1;
    int c = 1;

    friend bool operator==(const BlockShape&, const BlockShape&) = default;
};

/// The candidate shapes the autotuner considers (OSKI's classic 1..4 square
/// and rectangular register-block sizes, plus 6 and 8 wide for FEM blocks).
[[nodiscard]] const std::vector<BlockShape>& candidate_shapes();

/// Exact fill ratio of @p coo under an aligned r×c grid (1.0 = no fill).
[[nodiscard]] double fill_ratio(const Coo& coo, BlockShape shape);

/// Predicted storage bytes of the BCSR representation (values + fill +
/// block indices + block row pointers); the autotuner's objective.
[[nodiscard]] std::size_t predicted_bytes(const Coo& coo, BlockShape shape);

/// Picks the candidate shape with the smallest predicted footprint.
/// Sampling: with sample_fraction < 1, only that fraction of block rows is
/// scanned (deterministic stride), which is how OSKI keeps tuning cheap.
[[nodiscard]] BlockShape choose_block_size(const Coo& coo, double sample_fraction = 1.0);

/// BCSR matrix with fixed r×c blocks.
class BcsrMatrix {
   public:
    BcsrMatrix() = default;

    /// Builds from a canonical COO with the given block shape.
    BcsrMatrix(const Coo& coo, BlockShape shape);

    [[nodiscard]] index_t rows() const { return n_rows_; }
    [[nodiscard]] index_t cols() const { return n_cols_; }

    /// Structural non-zeros of the source matrix (excluding fill).
    [[nodiscard]] std::int64_t nnz() const { return nnz_; }

    /// Stored elements including explicit zero fill.
    [[nodiscard]] std::int64_t stored_elements() const {
        return static_cast<std::int64_t>(values_.size());
    }

    [[nodiscard]] BlockShape shape() const { return shape_; }
    [[nodiscard]] index_t block_rows() const { return n_block_rows_; }
    [[nodiscard]] std::int64_t blocks() const { return static_cast<std::int64_t>(bcolind_.size()); }

    /// Realised fill ratio: stored_elements / nnz.
    [[nodiscard]] double fill() const {
        return nnz_ == 0 ? 1.0 : static_cast<double>(stored_elements()) / static_cast<double>(nnz_);
    }

    /// Block row I owns blocks [browptr()[I], browptr()[I+1]); block b
    /// starts column bcolind()[b]*c and its r*c values are row-major at
    /// values()[b*r*c].
    [[nodiscard]] std::span<const index_t> browptr() const { return browptr_; }
    [[nodiscard]] std::span<const index_t> bcolind() const { return bcolind_; }
    [[nodiscard]] std::span<const value_t> values() const { return values_; }

    /// Storage footprint in bytes.
    [[nodiscard]] std::size_t size_bytes() const;

    /// y = A * x, serial.
    void spmv(std::span<const value_t> x, std::span<value_t> y) const;

    /// y = A * x restricted to block rows [bbegin, bend); the building block
    /// of the multithreaded kernel (block rows never share output rows).
    void spmv_block_rows(index_t bbegin, index_t bend, std::span<const value_t> x,
                         std::span<value_t> y) const;

   private:
    index_t n_rows_ = 0;
    index_t n_cols_ = 0;
    std::int64_t nnz_ = 0;
    BlockShape shape_;
    index_t n_block_rows_ = 0;
    aligned_vector<index_t> browptr_;
    aligned_vector<index_t> bcolind_;
    aligned_vector<value_t> values_;
};

}  // namespace symspmv::bcsr
