// SpM×V kernels over the BCSR format (register-blocking baseline, §VI).
#pragma once

#include <string_view>
#include <vector>

#include "bcsr/bcsr.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::bcsr {

/// Serial BCSR kernel.
class BcsrSerialKernel final : public SpmvKernel {
   public:
    explicit BcsrSerialKernel(BcsrMatrix matrix);

    [[nodiscard]] std::string_view name() const override { return "BCSR-serial"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const BcsrMatrix& matrix() const { return matrix_; }

   private:
    BcsrMatrix matrix_;
};

/// Multithreaded BCSR kernel: block rows are partitioned by stored-element
/// count; block rows never share output rows, so no reduction phase exists.
class BcsrMtKernel final : public SpmvKernel {
   public:
    /// @p pool outlives the kernel; its size fixes the thread count.
    BcsrMtKernel(BcsrMatrix matrix, ThreadPool& pool);

    [[nodiscard]] std::string_view name() const override { return "BCSR"; }
    [[nodiscard]] index_t rows() const override { return matrix_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return matrix_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return matrix_.size_bytes(); }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override;

    [[nodiscard]] const BcsrMatrix& matrix() const { return matrix_; }

    /// Block-row (not element-row) ranges assigned to each thread.
    [[nodiscard]] std::span<const RowRange> block_partitions() const { return parts_; }

   private:
    BcsrMatrix matrix_;
    ThreadPool& pool_;
    std::vector<RowRange> parts_;
};

}  // namespace symspmv::bcsr
