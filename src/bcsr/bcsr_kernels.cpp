#include "bcsr/bcsr_kernels.hpp"

#include <limits>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace symspmv::bcsr {

BcsrSerialKernel::BcsrSerialKernel(BcsrMatrix matrix) : matrix_(std::move(matrix)) {}

void BcsrSerialKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    Timer t;
    matrix_.spmv(x, y);
    phases_ = {t.seconds(), 0.0};
}

namespace {

/// Block-row partitions with approximately equal stored-element counts
/// (fill included, since fill is streamed just like real values).
std::vector<RowRange> split_block_rows(const BcsrMatrix& m, int p) {
    const std::size_t per_block =
        static_cast<std::size_t>(m.shape().r) * static_cast<std::size_t>(m.shape().c);
    std::vector<index_t> prefix(static_cast<std::size_t>(m.block_rows()) + 1, 0);
    for (index_t bi = 0; bi < m.block_rows(); ++bi) {
        const std::int64_t blocks_in_row = m.browptr()[static_cast<std::size_t>(bi) + 1] -
                                           m.browptr()[static_cast<std::size_t>(bi)];
        const std::int64_t cum = prefix[static_cast<std::size_t>(bi)] +
                                 blocks_in_row * static_cast<std::int64_t>(per_block);
        SYMSPMV_CHECK_MSG(cum <= std::numeric_limits<index_t>::max(),
                          "BCSR matrix exceeds 2^31 stored elements");
        prefix[static_cast<std::size_t>(bi) + 1] = static_cast<index_t>(cum);
    }
    return split_by_nnz(prefix, p);
}

}  // namespace

BcsrMtKernel::BcsrMtKernel(BcsrMatrix matrix, ThreadPool& pool)
    : matrix_(std::move(matrix)), pool_(pool), parts_(split_block_rows(matrix_, pool.size())) {}

void BcsrMtKernel::spmv(std::span<const value_t> x, std::span<value_t> y) {
    SYMSPMV_CHECK_MSG(static_cast<index_t>(x.size()) == matrix_.cols(), "spmv: x size mismatch");
    SYMSPMV_CHECK_MSG(static_cast<index_t>(y.size()) == matrix_.rows(), "spmv: y size mismatch");
    Timer total;
    pool_.run([&](int tid) {
        const RowRange part = parts_[static_cast<std::size_t>(tid)];
        matrix_.spmv_block_rows(part.begin, part.end, x, y);
    });
    phases_ = {total.seconds(), 0.0};
}

}  // namespace symspmv::bcsr
