#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "autotune/store.hpp"
#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "engine/bundle.hpp"

namespace symspmv::obs::metrics {

// ---------------------------------------------------------------------------
// Counter

namespace {

/// Round-robin shard assignment, fixed per thread on first touch.  Distinct
/// threads spread across shards; a thread always hits the same cache line.
int this_thread_shard() {
    static std::atomic<unsigned> next{0};
    thread_local const int shard =
        static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards);
    return shard;
}

}  // namespace

void Counter::add(std::int64_t n) noexcept {
    shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::int64_t Counter::value() const noexcept {
    std::int64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
}

void Gauge::add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::bucket_index(double seconds) noexcept {
    if (!(seconds >= 1e-9)) return 0;  // < 1 ns, zero, negative, NaN
    // ilogb(x) = floor(log2(x)) exactly, so a value sitting precisely on a
    // power-of-two boundary opens its own bucket (half-open intervals).
    const int exp = std::ilogb(seconds * 1e9);
    return std::min(exp + 1, kBuckets - 1);
}

double Histogram::upper_bound(int i) noexcept {
    if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
    return std::ldexp(1e-9, i);  // 2^i ns
}

void Histogram::observe(double seconds) noexcept {
    buckets_[static_cast<std::size_t>(bucket_index(seconds))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + seconds, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot s;
    for (int i = 0; i < kBuckets; ++i) {
        s.buckets[static_cast<std::size_t>(i)] =
            buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    // count/sum may trail the bucket array under concurrent observe(); keep
    // the snapshot internally consistent by recomputing count from buckets.
    s.count = 0;
    for (const std::uint64_t b : s.buckets) s.count += b;
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
}

double Histogram::Snapshot::quantile(double q) const {
    SYMSPMV_CHECK_MSG(q > 0.0 && q <= 1.0, "histogram quantile must be in (0, 1]");
    if (count == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));  // 1-based sample rank
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
        if (cumulative + in_bucket < rank) {
            cumulative += in_bucket;
            continue;
        }
        const double lo = i == 0 ? 0.0 : upper_bound(i - 1);
        double hi = upper_bound(i);
        if (std::isinf(hi)) return lo;  // overflow bucket: report its floor
        // Position of the rank inside this bucket, in (0, 1].
        const double frac = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
        return lo + (hi - lo) * frac;
    }
    return upper_bound(kBuckets - 2);  // unreachable: ranks are <= count
}

// ---------------------------------------------------------------------------
// Registry

namespace {

std::string_view kind_name(MetricKind k) {
    switch (k) {
        case MetricKind::kCounter: return "counter";
        case MetricKind::kGauge: return "gauge";
        case MetricKind::kHistogram: return "histogram";
    }
    return "?";
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(std::string_view v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '"') {
            out += "\\\"";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/// HELP text escaping: backslash and newline only (quotes are legal there).
std::string escape_help(std::string_view v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

void sort_labels(MetricLabels& labels) {
    std::sort(labels.begin(), labels.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
}

/// Shortest round-trip double rendering, matching Json's number style.
std::string fmt_double(double v) {
    Json j(v);
    return j.dump();
}

}  // namespace

std::string render_labels(const MetricLabels& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ",";
        first = false;
        out += k;
        out += "=\"";
        out += escape_label_value(v);
        out += "\"";
    }
    out += "}";
    return out;
}

Registry::Instrument& Registry::find_or_create(std::string_view name, std::string_view help,
                                               MetricLabels&& labels, MetricKind kind) {
    sort_labels(labels);
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ins : instruments_) {
        if (ins->name == name) {
            if (ins->kind != kind) {
                throw InvalidArgument("metric '" + std::string(name) +
                                      "' already registered with a different kind");
            }
            if (ins->labels == labels) return *ins;
        }
    }
    auto ins = std::make_unique<Instrument>();
    ins->name = std::string(name);
    ins->help = std::string(help);
    ins->kind = kind;
    ins->labels = std::move(labels);
    switch (kind) {
        case MetricKind::kCounter: ins->counter.reset(new Counter()); break;
        case MetricKind::kGauge: ins->gauge.reset(new Gauge()); break;
        case MetricKind::kHistogram: ins->histogram.reset(new Histogram()); break;
    }
    instruments_.push_back(std::move(ins));
    return *instruments_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help, MetricLabels labels) {
    return *find_or_create(name, help, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help, MetricLabels labels) {
    return *find_or_create(name, help, std::move(labels), MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               MetricLabels labels) {
    return *find_or_create(name, help, std::move(labels), MetricKind::kHistogram).histogram;
}

void Registry::add_collector(std::function<std::vector<MetricPoint>()> collector) {
    const std::lock_guard<std::mutex> lock(mu_);
    collectors_.push_back(std::move(collector));
}

Json Registry::to_json() const {
    // Snapshot under the lock, render outside it (collectors may themselves
    // take locks; keep the critical section to pointer copies).
    std::vector<const Instrument*> instruments;
    std::vector<std::function<std::vector<MetricPoint>()>> collectors;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        instruments.reserve(instruments_.size());
        for (const auto& ins : instruments_) instruments.push_back(ins.get());
        collectors = collectors_;
    }
    Json arr = Json::array();
    const auto labels_json = [](const MetricLabels& labels) {
        Json obj = Json::object();
        for (const auto& [k, v] : labels) obj.set(k, v);
        return obj;
    };
    for (const Instrument* ins : instruments) {
        Json m = Json::object();
        m.set("name", ins->name);
        m.set("kind", kind_name(ins->kind));
        m.set("labels", labels_json(ins->labels));
        switch (ins->kind) {
            case MetricKind::kCounter: m.set("value", ins->counter->value()); break;
            case MetricKind::kGauge: m.set("value", ins->gauge->value()); break;
            case MetricKind::kHistogram: {
                const Histogram::Snapshot s = ins->histogram->snapshot();
                m.set("count", s.count);
                m.set("sum", s.sum);
                m.set("p50", s.count > 0 ? s.quantile(0.50) : Json());
                m.set("p95", s.count > 0 ? s.quantile(0.95) : Json());
                m.set("p99", s.count > 0 ? s.quantile(0.99) : Json());
                Json buckets = Json::array();
                for (int i = 0; i < Histogram::kBuckets; ++i) {
                    const std::uint64_t c = s.buckets[static_cast<std::size_t>(i)];
                    if (c == 0) continue;  // sparse: only occupied buckets
                    Json b = Json::object();
                    const double ub = Histogram::upper_bound(i);
                    b.set("le", std::isinf(ub) ? Json() : Json(ub));
                    b.set("count", c);
                    buckets.push_back(std::move(b));
                }
                m.set("buckets", std::move(buckets));
                break;
            }
        }
        arr.push_back(std::move(m));
    }
    for (const auto& collect : collectors) {
        for (const MetricPoint& p : collect()) {
            Json m = Json::object();
            m.set("name", p.name);
            m.set("kind", kind_name(p.kind));
            m.set("labels", labels_json(p.labels));
            m.set("value", p.value);
            arr.push_back(std::move(m));
        }
    }
    Json doc = Json::object();
    doc.set("metrics", std::move(arr));
    return doc;
}

std::string Registry::to_prometheus() const {
    std::vector<const Instrument*> instruments;
    std::vector<std::function<std::vector<MetricPoint>()>> collectors;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        instruments.reserve(instruments_.size());
        for (const auto& ins : instruments_) instruments.push_back(ins.get());
        collectors = collectors_;
    }
    std::ostringstream out;
    // One HELP/TYPE header per metric name; series with the same name but
    // different labels follow their first header.
    std::vector<std::string> announced;
    const auto announce = [&](const std::string& name, const std::string& help,
                              MetricKind kind) {
        if (std::find(announced.begin(), announced.end(), name) != announced.end()) return;
        announced.push_back(name);
        if (!help.empty()) out << "# HELP " << name << " " << escape_help(help) << "\n";
        out << "# TYPE " << name << " " << kind_name(kind) << "\n";
    };
    for (const Instrument* ins : instruments) {
        announce(ins->name, ins->help, ins->kind);
        const std::string labels = render_labels(ins->labels);
        switch (ins->kind) {
            case MetricKind::kCounter:
                out << ins->name << labels << " " << ins->counter->value() << "\n";
                break;
            case MetricKind::kGauge:
                out << ins->name << labels << " " << fmt_double(ins->gauge->value()) << "\n";
                break;
            case MetricKind::kHistogram: {
                const Histogram::Snapshot s = ins->histogram->snapshot();
                std::uint64_t cumulative = 0;
                for (int i = 0; i < Histogram::kBuckets; ++i) {
                    const std::uint64_t c = s.buckets[static_cast<std::size_t>(i)];
                    cumulative += c;
                    const double ub = Histogram::upper_bound(i);
                    if (c == 0 && !std::isinf(ub)) continue;  // sparse exposition
                    MetricLabels with_le = ins->labels;
                    with_le.emplace_back("le",
                                         std::isinf(ub) ? std::string("+Inf") : fmt_double(ub));
                    out << ins->name << "_bucket" << render_labels(with_le) << " "
                        << cumulative << "\n";
                }
                out << ins->name << "_sum" << labels << " " << fmt_double(s.sum) << "\n";
                out << ins->name << "_count" << labels << " " << s.count << "\n";
                break;
            }
        }
    }
    for (const auto& collect : collectors) {
        for (const MetricPoint& p : collect()) {
            announce(p.name, p.help, p.kind);
            out << p.name << render_labels(p.labels) << " " << fmt_double(p.value) << "\n";
        }
    }
    return out.str();
}

Registry& global_metrics() {
    static Registry registry;
    return registry;
}

// ---------------------------------------------------------------------------
// Collector adapters

void register_pool_metrics(Registry& reg, const ThreadPool& pool, MetricLabels labels) {
    sort_labels(labels);
    reg.add_collector([&pool, labels]() {
        const ThreadPool::Stats s = pool.stats();
        return std::vector<MetricPoint>{
            {"symspmv_pool_jobs_total", "Jobs dispatched to the worker pool",
             MetricKind::kCounter, labels, static_cast<double>(s.jobs_dispatched)},
            {"symspmv_pool_barrier_crossings_total",
             "In-job barrier crossings (one per worker per phase transition)",
             MetricKind::kCounter, labels, static_cast<double>(s.barrier_crossings)},
            {"symspmv_pool_barrier_wait_seconds_total",
             "Seconds workers spent waiting at profiled barriers",
             MetricKind::kCounter, labels, s.barrier_wait_seconds},
            {"symspmv_pool_threads", "Worker threads in the pool", MetricKind::kGauge, labels,
             static_cast<double>(s.threads)},
        };
    });
}

void register_plan_store_metrics(Registry& reg, const autotune::PlanStore& store,
                                 MetricLabels labels) {
    sort_labels(labels);
    reg.add_collector([&store, labels]() {
        const autotune::PlanStore::Counters c = store.counters();
        return std::vector<MetricPoint>{
            {"symspmv_plan_cache_hits_total", "Plan-cache lookups answered from memory or disk",
             MetricKind::kCounter, labels, static_cast<double>(c.hits)},
            {"symspmv_plan_cache_misses_total", "Plan-cache lookups that found nothing usable",
             MetricKind::kCounter, labels, static_cast<double>(c.misses)},
            {"symspmv_plan_cache_disk_hits_total", "Plan-cache hits satisfied by a plan file",
             MetricKind::kCounter, labels, static_cast<double>(c.disk_hits)},
            {"symspmv_plan_cache_revalidation_rejects_total",
             "Plan files present on disk but rejected by key revalidation or parsing",
             MetricKind::kCounter, labels, static_cast<double>(c.revalidation_rejects)},
            {"symspmv_plan_cache_saves_total", "Plans saved", MetricKind::kCounter, labels,
             static_cast<double>(c.saves)},
        };
    });
}

void register_bundle_metrics(Registry& reg, const engine::MatrixBundle& bundle,
                             MetricLabels labels) {
    sort_labels(labels);
    reg.add_collector([&bundle, labels]() {
        const engine::BundleBuildCounts c = bundle.build_counts();
        const auto point = [&](const char* repr, int builds) {
            MetricLabels with_repr = labels;
            with_repr.emplace_back("representation", repr);
            sort_labels(with_repr);
            return MetricPoint{"symspmv_bundle_builds_total",
                               "COO-to-derived-representation conversions performed",
                               MetricKind::kCounter, std::move(with_repr),
                               static_cast<double>(builds)};
        };
        return std::vector<MetricPoint>{point("csr", c.csr), point("sss", c.sss),
                                        point("lower_csr", c.lower_csr),
                                        point("properties", c.properties)};
    });
}

}  // namespace symspmv::obs::metrics
