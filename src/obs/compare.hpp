// Statistical comparison of two RunRecord sets — "did this change make
// SpM×V slower?" answered with a confidence interval instead of a shrug.
//
// Timing data from a shared machine is noisy; a naive "current < baseline"
// check flags noise as regression and real regressions as noise.  This
// module groups both JSONL sets into (matrix, kernel, threads) cells,
// bootstrap-resamples the median GFLOP/s of each side, and declares a
// regression only when BOTH tests agree: the relative median change exceeds
// the configured noise floor AND the two bootstrap confidence intervals are
// disjoint.  Cells with fewer samples than the min-sample guard are
// reported but never gate (one sample has no dispersion estimate — unless
// the guard is explicitly lowered to 1, where the noise floor alone
// decides).
//
// tools/bench_compare is the CLI wrapper; the CI perf-gate job runs it
// against the committed BENCH_baseline.jsonl (refresh workflow:
// docs/REPRODUCING.md).  All resampling is deterministically seeded, so a
// re-run of the same two files produces byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/run_record.hpp"

namespace symspmv::obs {

struct CompareOptions {
    /// Relative median change treated as noise (0.05 = 5%).  The gate only
    /// fires beyond it, in addition to the CI test.
    double noise_floor = 0.05;
    /// Cells where either side has fewer samples than this are marked
    /// insufficient and never fail the gate.  Set to 1 to let single-sample
    /// cells gate on the noise floor alone (the CI degenerates to a point).
    int min_samples = 3;
    /// Bootstrap resamples per side per cell.
    int resamples = 2000;
    /// Two-sided confidence level of the bootstrap intervals.
    double confidence = 0.95;
    /// Base RNG seed; each cell derives its own stream from it, so report
    /// content does not depend on cell iteration order.
    std::uint64_t seed = 2013;
};

/// One (matrix, kernel, threads) comparison cell.
struct CellDiff {
    std::string matrix;
    std::string kernel;
    int threads = 0;

    enum class Verdict {
        kOk,            // change within noise or CIs overlap
        kImproved,      // significantly faster
        kRegressed,     // significantly slower — gates
        kInsufficient,  // min-sample guard tripped
        kBaselineOnly,  // cell disappeared from the current set
        kCurrentOnly,   // new cell with no baseline
    };
    Verdict verdict = Verdict::kOk;

    int baseline_samples = 0;
    int current_samples = 0;
    double baseline_median = 0.0;  // GFLOP/s
    double current_median = 0.0;
    double relative_change = 0.0;  // (current - baseline) / baseline
    double baseline_ci[2] = {0.0, 0.0};  // bootstrap CI on the median
    double current_ci[2] = {0.0, 0.0};
};

[[nodiscard]] std::string_view to_string(CellDiff::Verdict v);

struct CompareReport {
    std::vector<CellDiff> cells;  // sorted by (matrix, kernel, threads)
    int regressions = 0;
    int improvements = 0;
    int insufficient = 0;
    CompareOptions options;

    /// The gate: true when no cell regressed significantly.
    [[nodiscard]] bool pass() const { return regressions == 0; }
};

/// Reads one RunRecord JSONL file (blank lines skipped).  Throws ParseError
/// on any malformed line — a truncated baseline must fail loudly, not gate
/// against half the data — and InvalidArgument when the file cannot be read.
[[nodiscard]] std::vector<RunRecord> load_run_records(const std::string& path);

/// Groups, bootstraps, and judges.  Deterministic for fixed inputs/options.
[[nodiscard]] CompareReport compare_runs(const std::vector<RunRecord>& baseline,
                                         const std::vector<RunRecord>& current,
                                         const CompareOptions& opts = {});

/// Markdown diff table: one row per cell, regressed cells named explicitly,
/// summary verdict first.  @p baseline_name/@p current_name label the two
/// sides (file paths, git revisions, ...).
[[nodiscard]] std::string render_markdown(const CompareReport& report,
                                          const std::string& baseline_name,
                                          const std::string& current_name);

/// Bootstrap CI on the median of @p sample: resamples with replacement,
/// takes the empirical (1-confidence)/2 quantiles of the resampled medians.
/// Exposed for the statistical tests.  @p sample must be non-empty.
void bootstrap_median_ci(const std::vector<double>& sample, int resamples, double confidence,
                         std::uint64_t seed, double out_ci[2]);

}  // namespace symspmv::obs
