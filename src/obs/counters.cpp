#include "obs/counters.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "engine/context.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace symspmv::obs {

std::string_view to_string(Counter c) {
    switch (c) {
        case Counter::kCycles: return "cycles";
        case Counter::kInstructions: return "instructions";
        case Counter::kLlcLoads: return "llc_loads";
        case Counter::kLlcMisses: return "llc_misses";
        case Counter::kStalledCycles: return "stalled_cycles";
    }
    return "?";
}

CounterSample& CounterSample::operator+=(const CounterSample& other) {
    for (int i = 0; i < kCounterCount; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (valid[idx] && other.valid[idx]) {
            value[idx] += other.value[idx];
        } else {
            valid[idx] = false;
            value[idx] = 0;
        }
    }
    return *this;
}

bool CounterGroup::force_disabled() {
    const char* env = std::getenv("SYMSPMV_NO_PERF");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

int CounterGroup::max_events() {
    const char* env = std::getenv("SYMSPMV_PERF_MAX_EVENTS");
    if (env == nullptr || env[0] == '\0') return kCounterCount;
    int n = 0;
    for (const char* p = env; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') return kCounterCount;  // garbage: ignore the cap
        n = n * 10 + (*p - '0');
        if (n > kCounterCount) return kCounterCount;
    }
    return n;
}

int CounterGroup::open_fds() const {
    int n = 0;
    for (const int fd : fd_) {
        if (fd >= 0) ++n;
    }
    return n;
}

CounterGroup::CounterGroup(CounterGroup&& other) noexcept
    : fd_(other.fd_), reason_(std::move(other.reason_)) {
    other.fd_.fill(-1);
    other.reason_.clear();
}

CounterGroup& CounterGroup::operator=(CounterGroup&& other) noexcept {
    if (this != &other) {
        close_all();
        fd_ = other.fd_;
        reason_ = std::move(other.reason_);
        other.fd_.fill(-1);
        other.reason_.clear();
    }
    return *this;
}

CounterGroup::~CounterGroup() { close_all();
}

bool CounterGroup::available() const {
    for (const int fd : fd_) {
        if (fd >= 0) return true;
    }
    return false;
}

#if defined(__linux__)

namespace {

struct EventSpec {
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t llc_cache_config(std::uint64_t result) {
    return PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) | (result << 16);
}

// Slot order must match enum Counter.
constexpr EventSpec kEvents[kCounterCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE, llc_cache_config(PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE, llc_cache_config(PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

/// The perf read layout with TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING.
struct ReadFormat {
    std::uint64_t value = 0;
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
};

}  // namespace

void CounterGroup::close_all() {
    for (int& fd : fd_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
}

bool CounterGroup::open_on_this_thread() {
    close_all();
    reason_.clear();
    if (force_disabled()) {
        reason_ = "disabled by SYMSPMV_NO_PERF";
        return false;
    }
    // Partial-open contract (audited + regression-tested): every fd the
    // kernel hands us is stored into its fd_ slot *immediately*, so a later
    // event failing — EMFILE, an event the hardware lacks, seccomp — leaves
    // the already-open fds owned by this group and reclaimed by close_all()
    // on destruction or reopen.  Nothing is ever held in a local between
    // open and publication; there is no window in which an early return or
    // a failed later open could orphan a descriptor.
    const int limit = max_events();
    int first_failed = -1;
    int first_errno = 0;
    for (int i = 0; i < limit; ++i) {
        perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = kEvents[i].type;
        attr.config = kEvents[i].config;
        attr.disabled = 1;
        // User-space only: paranoid level 2 (the common default) still
        // allows self-measurement without CAP_PERFMON, and the SpM×V loop
        // is user-space work anyway.
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
        // pid=0, cpu=-1: this thread, on whatever CPU it runs.
        const long fd = ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, PERF_FLAG_FD_CLOEXEC);
        fd_[static_cast<std::size_t>(i)] = static_cast<int>(fd);  // -1 on failure
        if (fd < 0 && first_failed < 0) {
            first_failed = i;
            first_errno = errno;
        }
    }
    // Record WHY the fallback happened, not just that it did — the old
    // silent path left every "LLC misses n/a" report unexplainable.
    if (first_failed >= 0) {
        reason_ = "perf_event_open('";
        reason_ += to_string(static_cast<Counter>(first_failed));
        reason_ += "') failed: ";
        reason_ += std::strerror(first_errno);
    } else if (limit < kCounterCount) {
        reason_ = "events capped at " + std::to_string(limit) + " by SYMSPMV_PERF_MAX_EVENTS";
    }
    return available();
}

void CounterGroup::enable() {
    for (const int fd : fd_) {
        if (fd >= 0) {
            ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
            ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
        }
    }
}

void CounterGroup::disable() {
    for (const int fd : fd_) {
        if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    }
}

CounterSample CounterGroup::read() const {
    CounterSample s;
    for (int i = 0; i < kCounterCount; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const int fd = fd_[idx];
        if (fd < 0) continue;
        ReadFormat rf;
        if (::read(fd, &rf, sizeof(rf)) != static_cast<ssize_t>(sizeof(rf))) continue;
        if (rf.time_running == 0) continue;  // never scheduled: no data
        double v = static_cast<double>(rf.value);
        if (rf.time_running < rf.time_enabled) {
            // Multiplexed: extrapolate to the full enabled window.
            v *= static_cast<double>(rf.time_enabled) / static_cast<double>(rf.time_running);
        }
        s.value[idx] = static_cast<std::int64_t>(v);
        s.valid[idx] = true;
    }
    return s;
}

#else  // !__linux__: perf events do not exist; everything is a no-op.

void CounterGroup::close_all() { fd_.fill(-1); }

bool CounterGroup::open_on_this_thread() {
    close_all();
    reason_ = "perf events unsupported on this platform";
    return false;
}

void CounterGroup::enable() {}

void CounterGroup::disable() {}

CounterSample CounterGroup::read() const { return {}; }

#endif

ThreadCounters::ThreadCounters(ThreadPool& pool, bool include_caller)
    : workers_(pool.size()) {
    groups_.resize(static_cast<std::size_t>(workers_) + (include_caller ? 1 : 0));
    // Each worker opens its own group: perf events attach to the opening
    // thread, and the slots are disjoint, so this job is race-free.
    pool.run([this](int tid) { groups_[static_cast<std::size_t>(tid)].open_on_this_thread(); });
    if (include_caller) groups_.back().open_on_this_thread();
}

ThreadCounters::ThreadCounters(engine::ExecutionContext& ctx, bool include_caller)
    : workers_(ctx.threads()) {
    groups_.resize(static_cast<std::size_t>(workers_) + (include_caller ? 1 : 0));
    ctx.for_each_worker(
        [this](int tid) { groups_[static_cast<std::size_t>(tid)].open_on_this_thread(); });
    if (include_caller) groups_.back().open_on_this_thread();
}

void ThreadCounters::enable() {
    for (CounterGroup& g : groups_) g.enable();
}

void ThreadCounters::disable() {
    for (CounterGroup& g : groups_) g.disable();
}

const CounterGroup& ThreadCounters::worker(int tid) const {
    SYMSPMV_CHECK_MSG(tid >= 0 && tid < workers_, "ThreadCounters: tid out of range");
    return groups_[static_cast<std::size_t>(tid)];
}

bool ThreadCounters::available() const {
    for (const CounterGroup& g : groups_) {
        if (g.available()) return true;
    }
    return false;
}

std::string ThreadCounters::unavailable_reason() const {
    for (const CounterGroup& g : groups_) {
        if (!g.unavailable_reason().empty()) return g.unavailable_reason();
    }
    return {};
}

CounterSample ThreadCounters::aggregate() const {
    if (groups_.empty()) return {};
    CounterSample total = groups_.front().read();
    for (std::size_t i = 1; i < groups_.size(); ++i) total += groups_[i].read();
    return total;
}

}  // namespace symspmv::obs
