// Hardware performance counters for the SpM×V phases, via perf_event_open.
//
// The paper's argument is a memory-bandwidth argument: symmetric/compressed
// formats win because they move fewer bytes, which shows up as fewer LLC
// misses and fewer stalled cycles, not just lower wall-clock (§I, Figs.
// 11-13; Schubert/Hager/Fehske make the same case for SpM×V generally).
// This module measures exactly that: cycles, instructions, last-level-cache
// loads/misses and backend-stalled cycles, per worker thread, over the
// timed measurement window.
//
// Counters are opened *on the thread they measure* (perf events with pid=0
// attach to the calling thread), which is why ThreadCounters opens one
// CounterGroup per pool worker by running the open on each worker —
// ExecutionContext::for_each_worker is the engine seam for that.
//
// Graceful degradation is a hard requirement: CI containers and hardened
// kernels (perf_event_paranoid >= 3, seccomp) reject perf_event_open, and
// some microarchitectures lack the stalled-cycles event.  Every open
// failure simply marks that counter invalid; readings of invalid counters
// serialize as JSON null (run_record.hpp), never as zeroes pretending to be
// data.  Setting SYMSPMV_NO_PERF=1 forces the unavailable path (used by the
// tests and to keep CI runs deterministic).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/thread_pool.hpp"

namespace symspmv::engine {
class ExecutionContext;
}

namespace symspmv::obs {

/// The fixed counter set of one CounterGroup, in slot order.
enum class Counter {
    kCycles = 0,         // PERF_COUNT_HW_CPU_CYCLES
    kInstructions = 1,   // PERF_COUNT_HW_INSTRUCTIONS
    kLlcLoads = 2,       // last-level cache read accesses
    kLlcMisses = 3,      // last-level cache read misses
    kStalledCycles = 4,  // PERF_COUNT_HW_STALLED_CYCLES_BACKEND
};

inline constexpr int kCounterCount = 5;

/// Stable snake_case names used as RunRecord JSON keys ("cycles",
/// "llc_misses", ...).
[[nodiscard]] std::string_view to_string(Counter c);

/// One reading of the counter set.  A slot is valid only when its event
/// was opened and actually scheduled; invalid slots hold 0 and must be
/// reported as "no data" (JSON null), not as a measurement.
struct CounterSample {
    std::array<std::int64_t, kCounterCount> value{};
    std::array<bool, kCounterCount> valid{};

    [[nodiscard]] std::optional<std::int64_t> get(Counter c) const {
        const auto i = static_cast<std::size_t>(c);
        return valid[i] ? std::optional<std::int64_t>(value[i]) : std::nullopt;
    }

    [[nodiscard]] bool any_valid() const {
        for (const bool v : valid) {
            if (v) return true;
        }
        return false;
    }

    /// Per-slot sum; the result slot is valid only when both inputs are
    /// (summing a measured thread with an unmeasured one would undercount).
    CounterSample& operator+=(const CounterSample& other);

    friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

/// The five events of one thread.  Construction never throws: events that
/// cannot be opened are skipped and read back as invalid.  Multiplexed
/// events (more events than hardware counters) are scaled by
/// time_enabled/time_running, the standard perf extrapolation.
class CounterGroup {
   public:
    /// Closed group; open_on_this_thread() arms it.
    CounterGroup() = default;
    ~CounterGroup();

    CounterGroup(CounterGroup&& other) noexcept;
    CounterGroup& operator=(CounterGroup&& other) noexcept;
    CounterGroup(const CounterGroup&) = delete;
    CounterGroup& operator=(const CounterGroup&) = delete;

    /// Opens the events for the calling thread (and only it).  Call from
    /// the thread to be measured; returns available().
    bool open_on_this_thread();

    /// True when at least one event is open.
    [[nodiscard]] bool available() const;

    /// Why the last open_on_this_thread() fell short, or empty when every
    /// event opened: "disabled by SYMSPMV_NO_PERF", the failing event's name
    /// plus errno text (permission, missing hardware event), the
    /// SYMSPMV_PERF_MAX_EVENTS cap, or platform unsupported.  The silent
    /// fallback used to discard this; RunRecords and bench_report footnotes
    /// now carry it so an "LLC misses n/a" column is explainable.
    [[nodiscard]] const std::string& unavailable_reason() const { return reason_; }

    /// Zeroes and starts all open events (no-op when unavailable).
    void enable();

    /// Stops all open events.
    void disable();

    /// Current values (valid between disable() and the next enable(), or
    /// while running).  Unavailable events are invalid slots.
    [[nodiscard]] CounterSample read() const;

    /// True when SYMSPMV_NO_PERF=1 forces the unavailable path.
    [[nodiscard]] static bool force_disabled();

    /// Cap on how many events one group opens, from SYMSPMV_PERF_MAX_EVENTS
    /// (default: all of them).  Two uses: machines with few programmable
    /// PMU slots can avoid multiplexing, and the tests inject the
    /// partial-open path ("some events open, a later one fails")
    /// deterministically — the fd-leak regression test relies on it.
    [[nodiscard]] static int max_events();

    /// Open event fds this group currently owns (exposed so the leak test
    /// can reconcile against /proc/self/fd).
    [[nodiscard]] int open_fds() const;

   private:
    void close_all();

    std::array<int, kCounterCount> fd_{-1, -1, -1, -1, -1};
    std::string reason_;
};

/// Per-thread counter groups for a worker pool: one group opened on each
/// worker (so the events attach to it) and optionally one on the calling
/// thread, which executes the serial kernels.  The engine-level entry point
/// is the ExecutionContext overload — an ExecutionContext is how the rest
/// of the system names "the threads this run executes on".
class ThreadCounters {
   public:
    explicit ThreadCounters(ThreadPool& pool, bool include_caller = true);
    explicit ThreadCounters(engine::ExecutionContext& ctx, bool include_caller = true);

    /// Zero + start / stop every group (workers and caller).
    void enable();
    void disable();

    /// The group of worker @p tid.
    [[nodiscard]] const CounterGroup& worker(int tid) const;

    [[nodiscard]] int workers() const { return workers_; }

    /// True when at least one thread has at least one open event.
    [[nodiscard]] bool available() const;

    /// First non-empty per-group unavailable reason, or empty when every
    /// event opened on every thread — the RunRecord counters_note source.
    [[nodiscard]] std::string unavailable_reason() const;

    /// Sum over all threads (workers + caller).  A counter is valid only
    /// when every thread measured it, so partial availability cannot
    /// masquerade as a whole-run total.
    [[nodiscard]] CounterSample aggregate() const;

   private:
    std::vector<CounterGroup> groups_;  // [0, workers_) = workers, then caller
    int workers_ = 0;
};

}  // namespace symspmv::obs
