// Flight recorder: the always-on ring buffer completed spans land in.
//
// A tracing system that must be switched on before the incident is useless
// for the question it exists to answer ("why was *that* request slow?").
// The FlightRecorder is therefore always on and bounded: completed spans go
// into fixed-capacity rings sharded by thread hash, each shard guarded by
// its own mutex so concurrent request threads rarely contend, and the
// oldest spans are overwritten when a ring wraps (counted, never
// reallocated).  Recording is one short critical section moving a Span into
// a pre-sized slot — cheap enough to leave on under load.
//
// Reading it back:
//   - trace(id): every retained span of one request, the slow-capture path.
//   - chrome_json(): the whole recorder as a Chrome trace_event document
//     (built by the same chrome_trace_document the offline TraceWriter
//     uses), served over the wire as kDumpTrace / `symspmv_client
//     --dump-trace`.
//   - SlowLog: appends one JSONL record per captured slow request
//     (docs/FORMATS.md documents the schema).
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/profiling.hpp"
#include "obs/span.hpp"

namespace symspmv::obs {

class FlightRecorder {
   public:
    /// Total retained spans by default; SYMSPMV_FLIGHT_CAPACITY overrides
    /// the process-global recorder's size (global_flight()).
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Records a completed span; thread-safe, never allocates the ring.
    void record(Span span);

    /// Every retained span, ordered by start time.
    [[nodiscard]] std::vector<Span> snapshot() const;

    /// The retained spans of one trace, ordered by start time.
    [[nodiscard]] std::vector<Span> trace(std::uint64_t trace_id) const;

    /// Spans ever recorded / overwritten by ring wraparound.
    [[nodiscard]] std::uint64_t recorded_total() const;
    [[nodiscard]] std::uint64_t dropped_total() const;

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// The retained spans as a Chrome trace_event JSON document.  Span
    /// relationships ride in each event's args (trace/span/parent ids plus
    /// annotations); tracks are worker tids, with request-thread spans on
    /// the TraceWriter::kCallerTid track.
    [[nodiscard]] std::string chrome_json() const;

    /// Drops every retained span (counters keep running) — a test seam.
    void clear();

   private:
    struct Shard {
        mutable std::mutex mu;
        std::vector<Span> ring;   // capacity slots, recycled in place
        std::uint64_t written = 0;  // lifetime writes; ring[written % size]
    };

    static constexpr std::size_t kShards = 16;

    [[nodiscard]] Shard& shard_for_this_thread();

    std::size_t capacity_;        // total across shards
    std::size_t shard_capacity_;  // per shard
    mutable std::array<Shard, kShards> shards_;
};

/// The process-wide always-on recorder (capacity from
/// SYMSPMV_FLIGHT_CAPACITY, default kDefaultCapacity).
[[nodiscard]] FlightRecorder& global_flight();

/// PhaseTraceSink bridging kernel phase intervals into the flight recorder
/// as children of one request's execute span.  The pool workers reporting
/// phases are not the thread that owns the request, so the parent context
/// is captured explicitly at attach time.  Span volume is bounded by
/// max_spans (a CG solve reports phases per iteration x thread); once the
/// cap is hit further intervals are counted, not recorded.
class FlightPhaseSink final : public PhaseTraceSink {
   public:
    static constexpr std::size_t kDefaultMaxSpans = 512;

    FlightPhaseSink(FlightRecorder* recorder, SpanContext parent,
                    std::size_t max_spans = kDefaultMaxSpans);

    void phase_recorded(int tid, Phase phase, double seconds) override;

    [[nodiscard]] std::uint64_t recorded() const;
    [[nodiscard]] std::uint64_t suppressed() const;

   private:
    FlightRecorder* recorder_;
    SpanContext parent_;
    std::size_t max_spans_;
    mutable std::mutex mu_;
    std::uint64_t recorded_ = 0;
    std::uint64_t suppressed_ = 0;
};

/// Append-only JSONL sidecar for slow-request captures.  One capture = one
/// line: the trace id, the measured and threshold seconds, what tripped the
/// threshold, and the span tree pulled from the flight recorder.
class SlowLog {
   public:
    explicit SlowLog(std::string path);

    SlowLog(const SlowLog&) = delete;
    SlowLog& operator=(const SlowLog&) = delete;

    /// Appends one record; returns false (and counts nothing) on write
    /// failure.  @p trigger names the threshold source ("absolute" for
    /// --slow-ms, "p99" for the rolling quantile).
    bool capture(std::uint64_t trace_id, double seconds, double threshold_seconds,
                 std::string_view trigger, const std::vector<Span>& spans);

    [[nodiscard]] std::uint64_t captured() const;
    [[nodiscard]] const std::string& path() const { return path_; }

   private:
    std::string path_;
    mutable std::mutex mu_;
    std::ofstream out_;
    std::uint64_t captured_ = 0;
};

}  // namespace symspmv::obs
