#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <ostream>

#include "core/atomic_file.hpp"
#include "obs/json.hpp"

namespace symspmv::obs {

TraceWriter::TraceWriter(std::string path) : path_(std::move(path)) {}

TraceWriter::~TraceWriter() {
    try {
        flush();
    } catch (...) {
        // Destructor: a failed trace write must not terminate the run.
    }
}

void TraceWriter::span(std::string_view name, std::string_view category, int tid,
                       double start_seconds, double duration_seconds) {
    TraceEvent e;
    e.name = std::string(name);
    e.category = std::string(category);
    e.tid = tid;
    e.start_us = start_seconds * 1e6;
    e.duration_us = duration_seconds * 1e6;
    event(std::move(e));
}

void TraceWriter::event(TraceEvent e) {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(e));
}

void TraceWriter::phase_recorded(int tid, Phase phase, double seconds) {
    // The profiler reports a phase at its end; reconstruct the start, clamped
    // to the writer's epoch so a phase straddling construction (or a replayed
    // recording) never produces a negative timestamp.
    const double start = std::max(0.0, now_seconds() - seconds);
    span(to_string(phase), "spmv", tid, start, seconds);
}

std::size_t TraceWriter::events() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

Json chrome_trace_document(const std::vector<TraceEvent>& snapshot) {
    Json doc = Json::object();
    Json events = Json::array();
    // Metadata ("ph":"M") events first, so the viewers label tracks by role
    // instead of bare tid numbers: one process_name, then one thread_name
    // per distinct track seen in the spans.
    {
        Json proc = Json::object();
        proc.set("name", "process_name");
        proc.set("ph", "M");
        proc.set("pid", 1);
        Json pargs = Json::object();
        pargs.set("name", "symspmv");
        proc.set("args", std::move(pargs));
        events.push_back(std::move(proc));

        std::vector<int> tids;
        for (const TraceEvent& e : snapshot) tids.push_back(e.tid);
        std::sort(tids.begin(), tids.end());
        tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
        for (const int tid : tids) {
            Json meta = Json::object();
            meta.set("name", "thread_name");
            meta.set("ph", "M");
            meta.set("pid", 1);
            meta.set("tid", tid);
            Json args = Json::object();
            args.set("name", tid == TraceWriter::kCallerTid ? std::string("caller")
                                                            : "worker " + std::to_string(tid));
            meta.set("args", std::move(args));
            events.push_back(std::move(meta));
        }
    }
    for (const TraceEvent& e : snapshot) {
        Json ev = Json::object();
        ev.set("name", e.name);
        ev.set("cat", e.category);
        ev.set("ph", "X");  // complete event: timestamp + duration
        ev.set("pid", 1);
        ev.set("tid", e.tid);
        ev.set("ts", e.start_us);
        ev.set("dur", e.duration_us);
        if (!e.args.empty()) {
            Json args = Json::object();
            for (const auto& [key, value] : e.args) args.set(key, value);
            ev.set("args", std::move(args));
        }
        events.push_back(std::move(ev));
    }
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

void TraceWriter::flush() {
    std::vector<TraceEvent> snapshot;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        snapshot = events_;
    }
    const Json doc = chrome_trace_document(snapshot);
    write_file_atomic(path_, [&](std::ostream& out) { out << doc.dump() << '\n'; });
}

TraceWriter* global_trace() {
    // Leaked-on-purpose singleton would never flush; a static unique_ptr
    // destroys (and therefore flushes) the writer during normal exit.
    static const std::unique_ptr<TraceWriter> writer = [] {
        const char* env = std::getenv("SYMSPMV_TRACE");
        if (env == nullptr || env[0] == '\0' || env[0] == '0') {
            return std::unique_ptr<TraceWriter>();
        }
        const char* file = std::getenv("SYMSPMV_TRACE_FILE");
        return std::make_unique<TraceWriter>(file != nullptr && file[0] != '\0'
                                                 ? std::string(file)
                                                 : std::string("symspmv_trace.json"));
    }();
    return writer.get();
}

}  // namespace symspmv::obs
