// Trace spans in Chrome trace_event format (chrome://tracing, Perfetto).
//
// Phase timers and counters say how much; a trace says when.  The two-phase
// SpM×V model makes the distinction matter: a slow reduction and a reduction
// that starts late because one multiply partition straggled produce the same
// totals but different traces.  TraceWriter collects complete-event spans
// ("ph":"X") and writes the standard {"traceEvents": [...]} document, which
// the trace viewers consume directly (docs/OBSERVABILITY.md has the
// click-path).
//
// Two sources feed it:
//   - PhaseProfiler: TraceWriter implements PhaseTraceSink, so attaching it
//     with profiler.set_trace_sink(writer) turns every recorded
//     multiply/barrier/reduction interval into a span on the worker's track.
//   - TraceSpan: RAII for caller-side phases the kernels never see —
//     preprocessing (format conversion, CSX encoding), matrix loading,
//     whole solves.
//
// Process-wide switch: SYMSPMV_TRACE=1 turns global_trace() on (file name
// from SYMSPMV_TRACE_FILE, default symspmv_trace.json, flushed at exit);
// anything holding a TraceWriter* treats nullptr as "tracing off", so the
// instrumentation costs one branch when disabled.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/profiling.hpp"
#include "core/timer.hpp"

namespace symspmv::obs {

class Json;

/// One complete-event span on the writer's session clock.
struct TraceEvent {
    std::string name;
    std::string category;
    int tid = 0;          // worker id, or TraceWriter::kCallerTid
    double start_us = 0;  // microseconds since the writer's epoch
    double duration_us = 0;
    /// Rendered as the event's "args" object (span/trace ids, annotations).
    std::vector<std::pair<std::string, std::string>> args;
};

/// The standard {"traceEvents": [...]} document for @p events: process/
/// thread-name metadata first, then one "ph":"X" complete event per span.
/// Shared by TraceWriter::flush and the flight recorder's export
/// (obs/flight.hpp), so every trace this library emits looks the same to
/// chrome://tracing and Perfetto.
[[nodiscard]] Json chrome_trace_document(const std::vector<TraceEvent>& events);

class TraceWriter final : public PhaseTraceSink {
   public:
    /// Track id used for spans recorded on the calling (non-pool) thread.
    static constexpr int kCallerTid = 1000;

    /// Spans accumulate in memory; flush() (or destruction) writes @p path.
    explicit TraceWriter(std::string path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /// Seconds since this writer was constructed (the session clock all
    /// span timestamps are on).
    [[nodiscard]] double now_seconds() const { return epoch_.seconds(); }

    /// Records one span; thread-safe.
    void span(std::string_view name, std::string_view category, int tid, double start_seconds,
              double duration_seconds);

    /// Records a fully-populated event (the args-carrying path); thread-safe.
    void event(TraceEvent e);

    /// PhaseTraceSink: a kernel phase interval ending now on worker @p tid.
    void phase_recorded(int tid, Phase phase, double seconds) override;

    /// Writes the trace_event JSON document (atomically, temp + rename).
    /// Safe to call repeatedly; each call rewrites the file with everything
    /// recorded so far.
    void flush();

    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] std::size_t events() const;

   private:
    std::string path_;
    Timer epoch_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
};

/// RAII span: times its own scope on @p writer's session clock.  A null
/// writer makes it a no-op, so call sites pass global_trace() unguarded.
class TraceSpan {
   public:
    TraceSpan(TraceWriter* writer, std::string name, int tid = TraceWriter::kCallerTid)
        : writer_(writer), name_(std::move(name)), tid_(tid),
          start_(writer != nullptr ? writer->now_seconds() : 0.0) {}

    ~TraceSpan() {
        if (writer_ != nullptr) {
            writer_->span(name_, "setup", tid_, start_, writer_->now_seconds() - start_);
        }
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

   private:
    TraceWriter* writer_;
    std::string name_;
    int tid_;
    double start_;
};

/// The process-wide writer, or nullptr when SYMSPMV_TRACE is not set to a
/// truthy value.  Created on first call, flushed at process exit.
[[nodiscard]] TraceWriter* global_trace();

}  // namespace symspmv::obs
