// Request-scoped spans — the tracing atom of the serve stack.
//
// The offline half of observability (trace.hpp) answers "when did each
// kernel phase run in this bench process"; a server needs the per-request
// cut of the same question: for *this* solve, how long did the wire read,
// the admission-queue wait, the plan-cache lookup and the multiply/barrier/
// reduction phases each take?  A Span is the unit of that answer: a named
// interval on the process monotonic clock with a trace id (one per
// request, stamped by the client into the SFR1 frame or assigned by the
// server), a span id, a parent span id, and key=value annotations.
// Completed spans are recorded into a FlightRecorder (obs/flight.hpp);
// nothing here blocks or allocates beyond the span's own strings.
//
// Parenting is ambient by default: each thread carries a current
// SpanContext, ScopedSpan installs itself as that context for its scope,
// so nested ScopedSpans chain without threading ids through call
// signatures.  Work that hops threads (reader -> admission queue -> worker,
// request -> pool workers) passes the parent context explicitly — either
// via the explicit-parent ScopedSpan constructor or by installing a
// SpanContextScope at the top of the borrowed thread's slice.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace symspmv::obs {

class FlightRecorder;

/// One completed interval of a request.  Times are std::chrono::steady_clock
/// nanoseconds (monotonic_ns()), comparable across threads of one process.
struct Span {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  ///< 0 = root of its trace.
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    /// Worker track for the Chrome export: pool worker id, or -1 for spans
    /// recorded on request/caller threads.
    int tid = -1;
    std::vector<std::pair<std::string, std::string>> annotations;

    [[nodiscard]] double seconds() const {
        return static_cast<double>(end_ns - start_ns) * 1e-9;
    }
};

/// Nanoseconds on the process monotonic clock.
[[nodiscard]] std::uint64_t monotonic_ns();

/// Process-unique span id; never 0.
[[nodiscard]] std::uint64_t next_span_id();

/// A fresh trace id: wall clock + monotonic clock + a process counter,
/// mixed so concurrent processes (many clients against one server) do not
/// collide in practice; never 0.
[[nodiscard]] std::uint64_t make_trace_id();

/// Trace ids render as zero-padded hex ("0x0123456789abcdef") everywhere —
/// logs, slow-capture JSONL, Chrome trace args — so one grep correlates
/// all three.
[[nodiscard]] std::string format_trace_id(std::uint64_t id);

/// Parses format_trace_id output (with or without the 0x); returns 0 on
/// malformed input.
[[nodiscard]] std::uint64_t parse_trace_id(const std::string& text);

/// The (trace, span) pair a child span hangs off.
struct SpanContext {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;

    [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// This thread's ambient context ({0,0} when none is installed).
[[nodiscard]] SpanContext current_span_context();

/// Installs @p ctx as the thread's ambient context for the scope — the
/// cross-thread handoff: a worker thread adopting a request installs the
/// request's root context before calling into the service.
class SpanContextScope {
   public:
    explicit SpanContextScope(SpanContext ctx);
    ~SpanContextScope();

    SpanContextScope(const SpanContextScope&) = delete;
    SpanContextScope& operator=(const SpanContextScope&) = delete;

   private:
    SpanContext saved_;
};

/// RAII span: starts at construction, records into @p recorder at end()
/// (or destruction), and is the ambient context for its scope so nested
/// ScopedSpans become its children.
///
/// Parent resolution: the ambient context if one is installed; otherwise
/// the span roots a fresh trace (make_trace_id()).  The explicit-parent
/// constructor overrides both — the cross-thread case.
class ScopedSpan {
   public:
    /// A null @p recorder makes the span a no-op shell (ids still minted,
    /// nothing recorded) so call sites need no guard.
    ScopedSpan(FlightRecorder* recorder, std::string name);
    ScopedSpan(FlightRecorder* recorder, std::string name, SpanContext parent);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    void annotate(std::string key, std::string value);

    /// The context children hang off ({trace_id, this span's id}).
    [[nodiscard]] SpanContext context() const {
        return {span_.trace_id, span_.span_id};
    }

    [[nodiscard]] std::uint64_t trace_id() const { return span_.trace_id; }

    /// Stamps end time and records the span; idempotent (the destructor
    /// calls it for the common case).  End early when the interesting
    /// interval closes before scope exit — e.g. before snapshotting the
    /// flight recorder so the span is part of its own trace's capture.
    void end();

   private:
    FlightRecorder* recorder_;
    Span span_;
    bool ended_ = false;
    SpanContext saved_;  // ambient context restored at destruction
};

}  // namespace symspmv::obs
