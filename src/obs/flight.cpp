#include "obs/flight.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace symspmv::obs {

namespace {

Json span_to_json(const Span& s) {
    Json obj = Json::object();
    obj.set("span_id", static_cast<std::int64_t>(s.span_id));
    obj.set("parent_id", static_cast<std::int64_t>(s.parent_id));
    obj.set("name", s.name);
    obj.set("start_ns", static_cast<std::int64_t>(s.start_ns));
    obj.set("end_ns", static_cast<std::int64_t>(s.end_ns));
    obj.set("tid", s.tid);
    Json notes = Json::object();
    for (const auto& [key, value] : s.annotations) notes.set(key, value);
    obj.set("annotations", std::move(notes));
    return obj;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, kShards)),
      shard_capacity_(capacity_ / kShards + (capacity_ % kShards != 0 ? 1 : 0)) {
    for (Shard& shard : shards_) shard.ring.resize(shard_capacity_);
    capacity_ = shard_capacity_ * kShards;
}

FlightRecorder::Shard& FlightRecorder::shard_for_this_thread() {
    const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
}

void FlightRecorder::record(Span span) {
    Shard& shard = shard_for_this_thread();
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring[shard.written % shard_capacity_] = std::move(span);
    ++shard.written;
}

std::vector<Span> FlightRecorder::snapshot() const {
    std::vector<Span> out;
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mu);
        const std::uint64_t kept = std::min<std::uint64_t>(shard.written, shard_capacity_);
        for (std::uint64_t i = 0; i < kept; ++i) {
            out.push_back(shard.ring[(shard.written - kept + i) % shard_capacity_]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Span& a, const Span& b) { return a.start_ns < b.start_ns; });
    return out;
}

std::vector<Span> FlightRecorder::trace(std::uint64_t trace_id) const {
    std::vector<Span> all = snapshot();
    std::erase_if(all, [trace_id](const Span& s) { return s.trace_id != trace_id; });
    return all;
}

std::uint64_t FlightRecorder::recorded_total() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.written;
    }
    return total;
}

std::uint64_t FlightRecorder::dropped_total() const {
    std::uint64_t dropped = 0;
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.written > shard_capacity_) dropped += shard.written - shard_capacity_;
    }
    return dropped;
}

std::string FlightRecorder::chrome_json() const {
    const std::vector<Span> spans = snapshot();
    std::vector<TraceEvent> events;
    events.reserve(spans.size());
    for (const Span& s : spans) {
        TraceEvent e;
        e.name = s.name;
        e.category = "request";
        e.tid = s.tid >= 0 ? s.tid : TraceWriter::kCallerTid;
        e.start_us = static_cast<double>(s.start_ns) * 1e-3;
        e.duration_us = static_cast<double>(s.end_ns - s.start_ns) * 1e-3;
        e.args.emplace_back("trace_id", format_trace_id(s.trace_id));
        e.args.emplace_back("span_id", std::to_string(s.span_id));
        e.args.emplace_back("parent_id", std::to_string(s.parent_id));
        for (const auto& [key, value] : s.annotations) e.args.emplace_back(key, value);
        events.push_back(std::move(e));
    }
    return chrome_trace_document(events).dump();
}

void FlightRecorder::clear() {
    for (Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mu);
        // Keep `written` so recorded/dropped counters stay lifetime totals,
        // but blank the retained spans.
        for (Span& s : shard.ring) s = Span{};
    }
}

namespace {

std::size_t flight_capacity_from_env() {
    std::size_t capacity = FlightRecorder::kDefaultCapacity;
    if (const char* env = std::getenv("SYMSPMV_FLIGHT_CAPACITY");
        env != nullptr && env[0] != '\0') {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) capacity = static_cast<std::size_t>(parsed);
    }
    return capacity;
}

}  // namespace

FlightRecorder& global_flight() {
    static FlightRecorder recorder(flight_capacity_from_env());
    return recorder;
}

FlightPhaseSink::FlightPhaseSink(FlightRecorder* recorder, SpanContext parent,
                                 std::size_t max_spans)
    : recorder_(recorder), parent_(parent), max_spans_(max_spans) {}

void FlightPhaseSink::phase_recorded(int tid, Phase phase, double seconds) {
    if (recorder_ == nullptr) return;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (recorded_ >= max_spans_) {
            ++suppressed_;
            return;
        }
        ++recorded_;
    }
    // The profiler reports a phase at its end; reconstruct the start.
    const std::uint64_t end = monotonic_ns();
    const auto dur = static_cast<std::uint64_t>(seconds * 1e9);
    Span span;
    span.trace_id = parent_.trace_id;
    span.span_id = next_span_id();
    span.parent_id = parent_.span_id;
    span.name = std::string(to_string(phase));
    span.start_ns = end > dur ? end - dur : 0;
    span.end_ns = end;
    span.tid = tid;
    recorder_->record(std::move(span));
}

std::uint64_t FlightPhaseSink::recorded() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
}

std::uint64_t FlightPhaseSink::suppressed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return suppressed_;
}

SlowLog::SlowLog(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::app) {}

bool SlowLog::capture(std::uint64_t trace_id, double seconds, double threshold_seconds,
                      std::string_view trigger, const std::vector<Span>& spans) {
    Json record = Json::object();
    record.set("schema", 1);
    record.set("trace_id", format_trace_id(trace_id));
    record.set("seconds", seconds);
    record.set("threshold_seconds", threshold_seconds);
    record.set("trigger", std::string(trigger));
    Json tree = Json::array();
    for (const Span& s : spans) tree.push_back(span_to_json(s));
    record.set("spans", std::move(tree));

    const std::lock_guard<std::mutex> lock(mu_);
    if (!out_.is_open()) return false;
    out_ << record.dump() << '\n';
    out_.flush();
    if (!out_) return false;
    ++captured_;
    return true;
}

std::uint64_t SlowLog::captured() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return captured_;
}

}  // namespace symspmv::obs
