#include "obs/span.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <string_view>

#include "core/hash.hpp"
#include "obs/flight.hpp"

namespace symspmv::obs {

namespace {

thread_local SpanContext t_context;

std::atomic<std::uint64_t>& span_counter() {
    static std::atomic<std::uint64_t> counter{0};
    return counter;
}

}  // namespace

std::uint64_t monotonic_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t next_span_id() {
    // fetch_add from 1 so 0 stays the reserved "no parent" sentinel.
    return span_counter().fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t make_trace_id() {
    // Hash wall clock, monotonic clock and a process counter together: the
    // wall clock separates processes, the counter separates ids minted in
    // the same tick.  Collisions across machines are tolerable (trace ids
    // scope flight-recorder lookups, not storage keys).
    struct {
        std::int64_t wall;
        std::uint64_t mono;
        std::uint64_t seq;
    } seed{std::chrono::system_clock::now().time_since_epoch().count(), monotonic_ns(),
           span_counter().fetch_add(1, std::memory_order_relaxed)};
    const std::uint64_t id = fnv1a64(&seed, sizeof(seed));
    return id != 0 ? id : 1;
}

std::string format_trace_id(std::uint64_t id) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out = "0x0000000000000000";
    for (int i = 0; i < 16; ++i) {
        out[static_cast<std::size_t>(17 - i)] = kHex[(id >> (4 * i)) & 0xF];
    }
    return out;
}

std::uint64_t parse_trace_id(const std::string& text) {
    std::string_view sv = text;
    if (sv.starts_with("0x") || sv.starts_with("0X")) sv.remove_prefix(2);
    if (sv.empty() || sv.size() > 16) return 0;
    std::uint64_t id = 0;
    const auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), id, 16);
    if (ec != std::errc{} || ptr != sv.data() + sv.size()) return 0;
    return id;
}

SpanContext current_span_context() { return t_context; }

SpanContextScope::SpanContextScope(SpanContext ctx) : saved_(t_context) { t_context = ctx; }

SpanContextScope::~SpanContextScope() { t_context = saved_; }

ScopedSpan::ScopedSpan(FlightRecorder* recorder, std::string name)
    : ScopedSpan(recorder, std::move(name),
                 t_context.valid() ? t_context : SpanContext{make_trace_id(), 0}) {}

ScopedSpan::ScopedSpan(FlightRecorder* recorder, std::string name, SpanContext parent)
    : recorder_(recorder), saved_(t_context) {
    span_.trace_id = parent.valid() ? parent.trace_id : make_trace_id();
    span_.span_id = next_span_id();
    span_.parent_id = parent.span_id;
    span_.name = std::move(name);
    span_.start_ns = monotonic_ns();
    t_context = context();
}

ScopedSpan::~ScopedSpan() {
    end();
    t_context = saved_;
}

void ScopedSpan::annotate(std::string key, std::string value) {
    if (ended_) return;
    span_.annotations.emplace_back(std::move(key), std::move(value));
}

void ScopedSpan::end() {
    if (ended_) return;
    ended_ = true;
    span_.end_ns = monotonic_ns();
    if (recorder_ != nullptr) recorder_->record(span_);
}

}  // namespace symspmv::obs
