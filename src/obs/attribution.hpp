// Roofline attribution — turning one RunRecord into a diagnosis.
//
// The paper's §V.A premise (shared by Schubert/Hager/Fehske's SpM×V limit
// analysis) is that symmetric SpM×V is governed by the memory-bandwidth
// ceiling: a kernel is "as fast as the hardware allows" exactly when its
// effective bandwidth sits at the machine's sustained ceiling.  A raw
// GFLOP/s regression therefore has two fundamentally different causes —
// the kernel fell away from the bandwidth roof (memory side), or it burns
// its time synchronizing (barrier/reduction side) — and fixing one does
// nothing for the other.
//
// attribute() joins the three data sources a RunRecord already carries:
//   1. the bytes-moved model (bytes_per_op; the compulsory-traffic estimate
//      from bench::streamed_bytes),
//   2. the measured LLC counters (llc_misses x 64 B = traffic actually paid
//      for, when perf_event was available),
//   3. the per-phase split (slowest-thread multiply/barrier/reduction),
// with the machine ceilings from bench::probe_roofline, and emits a
// bandwidth-ceiling fraction plus a memory-bound vs sync-bound verdict.
// bench_report attaches the result to every record it writes.
#pragma once

#include <optional>
#include <string_view>

#include "bench/roofline.hpp"
#include "obs/json.hpp"
#include "obs/run_record.hpp"

namespace symspmv::obs {

/// The diagnosis verdict, in decreasing order of actionability.
enum class BoundVerdict {
    /// Phase split dominated by barrier wait + reduction: threads idle at
    /// synchronization points, not in the memory system.  More bandwidth
    /// will not help; better load balance or reduction indexing will.
    kSyncBound,
    /// Effective bandwidth at >= the memory-bound threshold of the sustained
    /// ceiling: the kernel streams as fast as the machine moves bytes.  Only
    /// moving fewer bytes (compression, symmetry) makes it faster.
    kMemoryBound,
    /// Neither near the roof nor sync-heavy — latency-bound gathers, poor
    /// prefetch, or a working set that fits in cache.  The roofline model's
    /// compulsory-traffic assumption is weakest here; trust the counters.
    kBelowRoofline,
};

[[nodiscard]] std::string_view to_string(BoundVerdict v);

/// Tunable decision thresholds (defaults documented in OBSERVABILITY.md).
struct AttributionThresholds {
    /// Fraction of per-op time in barrier + reduction above which the run
    /// is sync-bound regardless of bandwidth.
    double sync_fraction = 0.30;
    /// Bandwidth-ceiling fraction at or above which the run is memory-bound.
    double bandwidth_fraction = 0.50;
};

struct RooflineAttribution {
    // --- the model side ---
    double intensity_flops_per_byte = 0.0;  // 2*nnz / bytes_per_op
    double attainable_gflops = 0.0;         // min(peak, bw_ceiling * intensity)
    double roofline_fraction = 0.0;         // measured gflops / attainable

    // --- the bandwidth side ---
    double bandwidth_ceiling_gbs = 0.0;   // the machine's sustained ceiling
    double bandwidth_fraction = 0.0;      // effective bandwidth / ceiling
    /// Measured traffic per op from the LLC miss counter (misses x 64 B /
    /// iterations); nullopt when the counter was unavailable.  Comparing it
    /// with bytes_per_op calibrates the model: >> 1 means the compulsory
    /// -traffic assumption undercounts (cache thrashing), << 1 means the
    /// working set is cache-resident and the roofline does not bind.
    std::optional<double> measured_bytes_per_op;

    // --- the synchronization side ---
    double sync_fraction = 0.0;  // (barrier + reduction) / seconds_per_op

    BoundVerdict verdict = BoundVerdict::kBelowRoofline;
};

/// Joins @p rec with the machine ceilings.  Pure arithmetic — no probing;
/// callers measure the roofline once (bench::probe_roofline) and attribute
/// any number of records against it.
[[nodiscard]] RooflineAttribution attribute(const RunRecord& rec,
                                            const bench::RooflineModel& roofline,
                                            const AttributionThresholds& thresholds = {});

/// {"intensity", "attainable_gflops", "roofline_fraction", ...,
///  "measured_bytes_per_op": number|null, "verdict": "memory-bound"|...}.
[[nodiscard]] Json to_json(const RooflineAttribution& a);

}  // namespace symspmv::obs
