#include "obs/compare.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <tuple>

#include "core/error.hpp"
#include "core/hash.hpp"
#include "core/stats.hpp"

namespace symspmv::obs {

std::string_view to_string(CellDiff::Verdict v) {
    switch (v) {
        case CellDiff::Verdict::kOk: return "ok";
        case CellDiff::Verdict::kImproved: return "improved";
        case CellDiff::Verdict::kRegressed: return "REGRESSED";
        case CellDiff::Verdict::kInsufficient: return "insufficient samples";
        case CellDiff::Verdict::kBaselineOnly: return "missing in current";
        case CellDiff::Verdict::kCurrentOnly: return "new cell";
    }
    return "?";
}

std::vector<RunRecord> load_run_records(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw InvalidArgument("bench_compare: cannot open '" + path + "'");
    std::vector<RunRecord> records;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        try {
            records.push_back(parse_run_record(line));
        } catch (const ParseError& e) {
            throw ParseError(path + ":" + std::to_string(lineno) + ": " + e.what());
        }
    }
    return records;
}

namespace {

double median_of(std::vector<double> v) {
    return summarize(v).median;
}

}  // namespace

void bootstrap_median_ci(const std::vector<double>& sample, int resamples, double confidence,
                         std::uint64_t seed, double out_ci[2]) {
    SYMSPMV_CHECK_MSG(!sample.empty(), "bootstrap: empty sample");
    SYMSPMV_CHECK_MSG(confidence > 0.0 && confidence < 1.0, "bootstrap: confidence in (0,1)");
    if (sample.size() == 1 || resamples <= 0) {
        // Degenerate: no dispersion information.  The point interval makes
        // single-sample cells gate purely on the noise floor (when the
        // min-sample guard was lowered to admit them).
        out_ci[0] = median_of(sample);
        out_ci[1] = out_ci[0];
        return;
    }
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, sample.size() - 1);
    std::vector<double> medians(static_cast<std::size_t>(resamples));
    std::vector<double> draw(sample.size());
    for (auto& m : medians) {
        for (auto& d : draw) d = sample[pick(rng)];
        m = median_of(draw);
    }
    std::sort(medians.begin(), medians.end());
    const double alpha = (1.0 - confidence) / 2.0;
    const auto at = [&](double q) {
        const auto idx = static_cast<std::size_t>(
            std::clamp(q * static_cast<double>(medians.size() - 1), 0.0,
                       static_cast<double>(medians.size() - 1)));
        return medians[idx];
    };
    out_ci[0] = at(alpha);
    out_ci[1] = at(1.0 - alpha);
}

CompareReport compare_runs(const std::vector<RunRecord>& baseline,
                           const std::vector<RunRecord>& current,
                           const CompareOptions& opts) {
    using Key = std::tuple<std::string, std::string, int>;
    std::map<Key, std::vector<double>> base_cells, cur_cells;
    for (const RunRecord& r : baseline) {
        base_cells[{r.matrix, r.kernel, r.threads}].push_back(r.gflops);
    }
    for (const RunRecord& r : current) {
        cur_cells[{r.matrix, r.kernel, r.threads}].push_back(r.gflops);
    }

    CompareReport report;
    report.options = opts;

    std::map<Key, char> keys;  // union, already sorted
    for (const auto& [k, v] : base_cells) keys[k] = 0;
    for (const auto& [k, v] : cur_cells) keys[k] = 0;

    for (const auto& [key, unused] : keys) {
        CellDiff cell;
        cell.matrix = std::get<0>(key);
        cell.kernel = std::get<1>(key);
        cell.threads = std::get<2>(key);

        const auto bit = base_cells.find(key);
        const auto cit = cur_cells.find(key);
        if (bit == base_cells.end() || cit == cur_cells.end()) {
            cell.verdict = bit == base_cells.end() ? CellDiff::Verdict::kCurrentOnly
                                                   : CellDiff::Verdict::kBaselineOnly;
            if (bit != base_cells.end()) {
                cell.baseline_samples = static_cast<int>(bit->second.size());
                cell.baseline_median = median_of(bit->second);
            }
            if (cit != cur_cells.end()) {
                cell.current_samples = static_cast<int>(cit->second.size());
                cell.current_median = median_of(cit->second);
            }
            report.cells.push_back(std::move(cell));
            continue;
        }

        const std::vector<double>& base = bit->second;
        const std::vector<double>& cur = cit->second;
        cell.baseline_samples = static_cast<int>(base.size());
        cell.current_samples = static_cast<int>(cur.size());
        cell.baseline_median = median_of(base);
        cell.current_median = median_of(cur);
        if (cell.baseline_median != 0.0) {
            cell.relative_change =
                (cell.current_median - cell.baseline_median) / cell.baseline_median;
        }

        // Per-cell deterministic seed: stable regardless of iteration order
        // or which other cells are present.
        const std::uint64_t cell_seed =
            fnv1a64(cell.matrix + "|" + cell.kernel + "|" + std::to_string(cell.threads),
                    opts.seed);
        bootstrap_median_ci(base, opts.resamples, opts.confidence, cell_seed,
                            cell.baseline_ci);
        bootstrap_median_ci(cur, opts.resamples, opts.confidence, cell_seed ^ 0x9e3779b97f4a7c15ULL,
                            cell.current_ci);

        if (cell.baseline_samples < opts.min_samples ||
            cell.current_samples < opts.min_samples) {
            cell.verdict = CellDiff::Verdict::kInsufficient;
            ++report.insufficient;
        } else if (cell.relative_change < -opts.noise_floor &&
                   cell.current_ci[1] < cell.baseline_ci[0]) {
            cell.verdict = CellDiff::Verdict::kRegressed;
            ++report.regressions;
        } else if (cell.relative_change > opts.noise_floor &&
                   cell.current_ci[0] > cell.baseline_ci[1]) {
            cell.verdict = CellDiff::Verdict::kImproved;
            ++report.improvements;
        } else {
            cell.verdict = CellDiff::Verdict::kOk;
        }
        report.cells.push_back(std::move(cell));
    }
    return report;
}

namespace {

std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string ci_text(const double ci[2]) {
    return "[" + fmt(ci[0]) + ", " + fmt(ci[1]) + "]";
}

}  // namespace

std::string render_markdown(const CompareReport& report, const std::string& baseline_name,
                            const std::string& current_name) {
    std::ostringstream out;
    out << "# bench_compare — " << current_name << " vs " << baseline_name << "\n\n";
    out << (report.pass() ? "**PASS**" : "**FAIL**") << ": " << report.regressions
        << " regression(s), " << report.improvements << " improvement(s), "
        << report.insufficient << " cell(s) below the " << report.options.min_samples
        << "-sample guard.  Noise floor " << fmt(report.options.noise_floor * 100.0, 1)
        << "%, " << fmt(report.options.confidence * 100.0, 0)
        << "% bootstrap CIs on median GFLOP/s (" << report.options.resamples
        << " resamples, seed " << report.options.seed << ").\n\n";

    if (!report.pass()) {
        out << "Regressed cells:\n\n";
        for (const CellDiff& c : report.cells) {
            if (c.verdict != CellDiff::Verdict::kRegressed) continue;
            out << "- **" << c.matrix << " × " << c.kernel << " × p" << c.threads << "**: "
                << fmt(c.baseline_median) << " → " << fmt(c.current_median) << " GFLOP/s ("
                << fmt(c.relative_change * 100.0, 1) << "%), CI " << ci_text(c.baseline_ci)
                << " → " << ci_text(c.current_ci) << "\n";
        }
        out << "\n";
    }

    out << "| matrix | kernel | p | base GFLOP/s | cur GFLOP/s | Δ% | base CI | cur CI | "
           "n | verdict |\n"
        << "|---|---|---:|---:|---:|---:|---|---|---:|---|\n";
    for (const CellDiff& c : report.cells) {
        const bool both = c.verdict != CellDiff::Verdict::kBaselineOnly &&
                          c.verdict != CellDiff::Verdict::kCurrentOnly;
        out << "| " << c.matrix << " | " << c.kernel << " | " << c.threads << " | "
            << (c.baseline_samples > 0 ? fmt(c.baseline_median) : std::string("—")) << " | "
            << (c.current_samples > 0 ? fmt(c.current_median) : std::string("—")) << " | "
            << (both ? fmt(c.relative_change * 100.0, 1) : std::string("—")) << " | "
            << (both ? ci_text(c.baseline_ci) : std::string("—")) << " | "
            << (both ? ci_text(c.current_ci) : std::string("—")) << " | "
            << c.baseline_samples << "/" << c.current_samples << " | " << to_string(c.verdict)
            << " |\n";
    }
    return out.str();
}

}  // namespace symspmv::obs
