#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "core/error.hpp"

namespace symspmv::obs {

bool Json::as_bool() const {
    if (const bool* b = std::get_if<bool>(&v_)) return *b;
    throw ParseError("json: not a boolean");
}

std::int64_t Json::as_int() const {
    if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return *i;
    throw ParseError("json: not an integer");
}

double Json::as_double() const {
    if (const double* d = std::get_if<double>(&v_)) return *d;
    if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
    throw ParseError("json: not a number");
}

const std::string& Json::as_string() const {
    if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
    throw ParseError("json: not a string");
}

const JsonArray& Json::as_array() const {
    if (const JsonArray* a = std::get_if<JsonArray>(&v_)) return *a;
    throw ParseError("json: not an array");
}

const JsonObject& Json::as_object() const {
    if (const JsonObject* o = std::get_if<JsonObject>(&v_)) return *o;
    throw ParseError("json: not an object");
}

const Json* Json::get(std::string_view key) const {
    for (const auto& [k, v] : as_object()) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Json& Json::at(std::string_view key) const {
    if (const Json* v = get(key)) return *v;
    throw ParseError("json: missing key '" + std::string(key) + "'");
}

Json& Json::set(std::string_view key, Json value) {
    if (JsonObject* o = std::get_if<JsonObject>(&v_)) {
        o->emplace_back(std::string(key), std::move(value));
        return *this;
    }
    throw ParseError("json: set() on a non-object");
}

Json& Json::push_back(Json value) {
    if (JsonArray* a = std::get_if<JsonArray>(&v_)) {
        a->push_back(std::move(value));
        return *this;
    }
    throw ParseError("json: push_back() on a non-array");
}

// ---------------------------------------------------------------------------
// dump

namespace {

void dump_string(const std::string& s, std::string& out) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += c;  // UTF-8 bytes pass through verbatim
                }
        }
    }
    out += '"';
}

void dump_double(double d, std::string& out) {
    // JSON has no NaN/Inf; the observability layer maps them to null (a
    // missing measurement, which is what they mean here).
    if (!std::isfinite(d)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    out.append(buf, ptr);
}

}  // namespace

std::string Json::dump() const {
    std::string out;
    struct Visitor {
        std::string& out;
        void operator()(std::nullptr_t) const { out += "null"; }
        void operator()(bool b) const { out += b ? "true" : "false"; }
        void operator()(std::int64_t i) const { out += std::to_string(i); }
        void operator()(double d) const { dump_double(d, out); }
        void operator()(const std::string& s) const { dump_string(s, out); }
        void operator()(const JsonArray& a) const {
            out += '[';
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (i > 0) out += ',';
                out += a[i].dump();
            }
            out += ']';
        }
        void operator()(const JsonObject& o) const {
            out += '{';
            for (std::size_t i = 0; i < o.size(); ++i) {
                if (i > 0) out += ',';
                dump_string(o[i].first, out);
                out += ':';
                out += o[i].second.dump();
            }
            out += '}';
        }
    };
    std::visit(Visitor{out}, v_);
    return out;
}

// ---------------------------------------------------------------------------
// parse

namespace {

class Parser {
   public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

   private:
    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Json parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (consume_literal("true")) return Json(true);
                fail("bad literal");
            case 'f':
                if (consume_literal("false")) return Json(false);
                fail("bad literal");
            case 'n':
                if (consume_literal("null")) return Json(nullptr);
                fail("bad literal");
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.set(key, parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json parse_array() {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    unsigned parse_hex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
            else fail("bad \\u escape");
        }
        return cp;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    unsigned cp = parse_hex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
                        if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("unpaired surrogate");
                        }
                        pos_ += 2;
                        const unsigned lo = parse_hex4();
                        if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        fail("unpaired surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-") fail("bad number");
        // Integers stay integers (counters are int64 and must round-trip
        // exactly); anything with a fraction or exponent parses as double.
        if (tok.find_first_of(".eE") == std::string_view::npos) {
            std::int64_t i = 0;
            const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
            if (ec == std::errc{} && ptr == tok.data() + tok.size()) return Json(i);
        }
        double d = 0.0;
        const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc{} || ptr != tok.data() + tok.size()) fail("bad number");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace symspmv::obs
