#include "obs/attribution.hpp"

#include <algorithm>

namespace symspmv::obs {

namespace {

/// The LLC line size assumed when converting miss counts into bytes.  64 B
/// covers every x86 and most ARM server parts; if a future target differs,
/// the calibration ratio is off by a constant, not wrong in kind.
constexpr double kCacheLineBytes = 64.0;

}  // namespace

std::string_view to_string(BoundVerdict v) {
    switch (v) {
        case BoundVerdict::kSyncBound: return "sync-bound";
        case BoundVerdict::kMemoryBound: return "memory-bound";
        case BoundVerdict::kBelowRoofline: return "below-roofline";
    }
    return "?";
}

RooflineAttribution attribute(const RunRecord& rec, const bench::RooflineModel& roofline,
                              const AttributionThresholds& thresholds) {
    RooflineAttribution a;
    a.bandwidth_ceiling_gbs = roofline.bandwidth_gbs;

    if (rec.bytes_per_op > 0) {
        a.intensity_flops_per_byte =
            2.0 * static_cast<double>(rec.nnz) / static_cast<double>(rec.bytes_per_op);
    }
    a.attainable_gflops = roofline.attainable_gflops(a.intensity_flops_per_byte);
    if (a.attainable_gflops > 0.0) {
        a.roofline_fraction = rec.gflops / a.attainable_gflops;
    }
    if (roofline.bandwidth_gbs > 0.0) {
        a.bandwidth_fraction = rec.bandwidth_gbs / roofline.bandwidth_gbs;
    }
    if (const auto misses = rec.counters.get(Counter::kLlcMisses);
        misses && rec.iterations > 0) {
        a.measured_bytes_per_op = static_cast<double>(*misses) * kCacheLineBytes /
                                  static_cast<double>(rec.iterations);
    }
    if (rec.seconds_per_op > 0.0) {
        a.sync_fraction =
            std::clamp((rec.barrier_seconds + rec.reduction_seconds) / rec.seconds_per_op,
                       0.0, 1.0);
    }

    // Sync dominance is checked first: a sync-bound run can *also* show a
    // high bandwidth fraction (the stragglers still stream), but the time
    // is lost at the barrier, so that is the actionable diagnosis.
    if (a.sync_fraction >= thresholds.sync_fraction) {
        a.verdict = BoundVerdict::kSyncBound;
    } else if (a.bandwidth_fraction >= thresholds.bandwidth_fraction) {
        a.verdict = BoundVerdict::kMemoryBound;
    } else {
        a.verdict = BoundVerdict::kBelowRoofline;
    }
    return a;
}

Json to_json(const RooflineAttribution& a) {
    Json j = Json::object();
    j.set("intensity_flops_per_byte", a.intensity_flops_per_byte);
    j.set("attainable_gflops", a.attainable_gflops);
    j.set("roofline_fraction", a.roofline_fraction);
    j.set("bandwidth_ceiling_gbs", a.bandwidth_ceiling_gbs);
    j.set("bandwidth_fraction", a.bandwidth_fraction);
    j.set("measured_bytes_per_op",
          a.measured_bytes_per_op ? Json(*a.measured_bytes_per_op) : Json());
    j.set("sync_fraction", a.sync_fraction);
    j.set("verdict", to_string(a.verdict));
    return j;
}

}  // namespace symspmv::obs
