#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <sstream>

#include "obs/span.hpp"

namespace symspmv::obs {

std::string_view to_string(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
    }
    return "?";
}

namespace {

LogLevel level_from_env() {
    const char* env = std::getenv("SYMSPMV_LOG");
    if (env == nullptr) return LogLevel::kInfo;
    const std::string_view v = env;
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info" || v.empty()) return LogLevel::kInfo;
    if (v == "warn" || v == "warning") return LogLevel::kWarn;
    if (v == "error") return LogLevel::kError;
    return LogLevel::kInfo;
}

std::atomic<int>& level_word() {
    static std::atomic<int> level{static_cast<int>(level_from_env())};
    return level;
}

std::mutex g_mu;
std::ostream* g_out = nullptr;  // nullptr = std::cerr (resolved per line)

bool needs_quoting(std::string_view value) {
    if (value.empty()) return true;
    for (const char c : value) {
        if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' || c == '\t') return true;
    }
    return false;
}

void append_value(std::string& line, std::string_view value) {
    if (!needs_quoting(value)) {
        line.append(value);
        return;
    }
    line.push_back('"');
    for (const char c : value) {
        switch (c) {
            case '"': line.append("\\\""); break;
            case '\\': line.append("\\\\"); break;
            case '\n': line.append("\\n"); break;
            case '\t': line.append("\\t"); break;
            default: line.push_back(c);
        }
    }
    line.push_back('"');
}

std::string utc_timestamp() {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                  tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(ms));
    return buf;
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_word().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
    level_word().store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_stream(std::ostream* out) {
    const std::lock_guard<std::mutex> lock(g_mu);
    g_out = out;
}

bool log_enabled(LogLevel level) { return level >= log_level(); }

void log(LogLevel level, std::string_view msg, const LogFields& fields) {
    if (!log_enabled(level)) return;
    std::string line = utc_timestamp();
    line.push_back(' ');
    line.append(to_string(level));
    line.push_back(' ');
    append_value(line, msg);
    for (const auto& [key, value] : fields) {
        line.push_back(' ');
        line.append(key);
        line.push_back('=');
        append_value(line, value);
    }
    if (const SpanContext ctx = current_span_context(); ctx.valid()) {
        line.append(" trace=");
        line.append(format_trace_id(ctx.trace_id));
    }
    line.push_back('\n');
    const std::lock_guard<std::mutex> lock(g_mu);
    std::ostream& out = g_out != nullptr ? *g_out : std::cerr;
    out << line;
    out.flush();
}

}  // namespace symspmv::obs
