// Runtime metrics registry — the consumption half of the observability
// layer.
//
// RunRecords (run_record.hpp) capture one finished measurement; a
// long-running process (a solver service, a sweep, CI) additionally needs a
// *live* surface: how many jobs the pool dispatched, how often the plan
// cache hit, how CG iteration latency is distributed — queryable at any
// moment and exportable to the two formats monitoring stacks actually
// ingest (JSON for this repo's own tooling, Prometheus text exposition for
// scrapers).
//
// Three instrument kinds, all safe for concurrent update:
//   - Counter:  monotonic int64, per-thread sharded (each updating thread
//     owns a cache-line-padded slot, assigned round-robin on first use), so
//     a hot-path increment is one relaxed fetch_add on an uncontended line.
//   - Gauge:    a settable double (last-writer-wins; add() for deltas).
//   - Histogram: log2-bucketed latencies from 1 ns up, with count/sum and
//     deterministic p50/p95/p99 extraction by linear interpolation inside
//     the winning bucket (bucket math documented at bucket_index()).
//
// The layering rule of DESIGN.md §10 still holds: core/engine/autotune know
// nothing about obs.  Layers below obs expose their own plain counters
// (ThreadPool::stats, PlanStore::counters, MatrixBundle::build_counts) and
// the registry *collects* them at export time through registered collector
// callbacks — the Prometheus "collector" pattern — so instrumenting a seam
// costs the lower layer nothing but a struct.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace symspmv {
class ThreadPool;
}

namespace symspmv::autotune {
class PlanStore;
}

namespace symspmv::engine {
class MatrixBundle;
}

namespace symspmv::obs::metrics {

/// Label set of one instrument; kept sorted by key so exposition order is
/// deterministic (and Prometheus sees one consistent series identity).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonic counter.  add() is wait-free for practical purposes: each
/// thread updates its own cache-line-padded shard (round-robin assigned via
/// a thread_local on first touch), value() sums the shards.
class Counter {
   public:
    static constexpr int kShards = 16;

    void add(std::int64_t n = 1) noexcept;
    [[nodiscard]] std::int64_t value() const noexcept;

   private:
    friend class Registry;
    Counter() = default;
    struct alignas(64) Shard {
        std::atomic<std::int64_t> v{0};
    };
    Shard shards_[kShards];
};

/// Last-writer-wins double; for values that are *states*, not events.
class Gauge {
   public:
    void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
    void add(double d) noexcept;
    [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

   private:
    friend class Registry;
    Gauge() = default;

    std::atomic<double> v_{0.0};
};

/// Log2-bucketed latency histogram.
///
/// Bucket 0 holds everything below 1 ns (including zero and negatives, which
/// only arise from clock anomalies); bucket i >= 1 covers
/// [2^(i-1) ns, 2^i ns) — 44 buckets reach ~2.4 hours, far past any latency
/// this system produces; larger values clamp into the last bucket.
/// A value exactly on a boundary lands in the bucket whose *lower* bound it
/// is (half-open intervals), which the bucket-boundary tests pin down.
class Histogram {
   public:
    static constexpr int kBuckets = 44;

    void observe(double seconds) noexcept;

    /// Bucket arithmetic, exposed for the boundary tests and the exporters.
    [[nodiscard]] static int bucket_index(double seconds) noexcept;
    /// Upper bound of bucket @p i (the Prometheus "le" value); +inf for the
    /// last bucket.  The lower bound of bucket i is upper_bound(i-1), 0 for
    /// bucket 0.
    [[nodiscard]] static double upper_bound(int i) noexcept;

    struct Snapshot {
        std::uint64_t count = 0;
        double sum = 0.0;
        std::array<std::uint64_t, kBuckets> buckets{};

        /// Deterministic quantile: finds the bucket holding the q-th sample
        /// (rank ceil(q * count)) and interpolates linearly between its
        /// bounds by the rank's position inside the bucket.  Returns 0 on an
        /// empty histogram.  q must be in (0, 1].
        [[nodiscard]] double quantile(double q) const;
    };

    [[nodiscard]] Snapshot snapshot() const;

   private:
    friend class Registry;
    Histogram() = default;

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// One exported time series from a collector callback: scraped, not stored.
struct MetricPoint {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kGauge;  // collectors emit counters/gauges
    MetricLabels labels;
    double value = 0.0;
};

/// Named instruments plus collector callbacks, exported as JSON or
/// Prometheus text.  Instruments are identified by (name, labels): asking
/// twice returns the same instance, so call sites don't need to coordinate
/// registration.  Instrument references stay valid for the registry's
/// lifetime.  Thread-safe throughout.
class Registry {
   public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Returns the instrument registered under (@p name, @p labels),
    /// creating it on first use.  @p help is kept from the first call.
    /// Throws InvalidArgument when the name is already registered with a
    /// different kind — one name must be one Prometheus metric type.
    Counter& counter(std::string_view name, std::string_view help, MetricLabels labels = {});
    Gauge& gauge(std::string_view name, std::string_view help, MetricLabels labels = {});
    Histogram& histogram(std::string_view name, std::string_view help, MetricLabels labels = {});

    /// Registers a scrape-time callback producing counter/gauge points from
    /// state owned elsewhere (the lower layers' plain stat structs).  The
    /// callback must stay valid for the registry's lifetime and be safe to
    /// call from any thread.
    void add_collector(std::function<std::vector<MetricPoint>()> collector);

    /// JSON export: {"metrics": [{name, kind, labels, value | histogram}]}
    /// with histograms rendered as count/sum/p50/p95/p99 plus buckets.
    [[nodiscard]] Json to_json() const;

    /// Prometheus text exposition format (version 0.0.4): # HELP/# TYPE
    /// headers, escaped label values, labels in sorted-key order, histogram
    /// as cumulative _bucket{le=...} + _sum + _count.
    [[nodiscard]] std::string to_prometheus() const;

   private:
    struct Instrument {
        std::string name;
        std::string help;
        MetricKind kind;
        MetricLabels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument& find_or_create(std::string_view name, std::string_view help,
                               MetricLabels&& labels, MetricKind kind);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Instrument>> instruments_;  // registration order
    std::vector<std::function<std::vector<MetricPoint>()>> collectors_;
};

/// The process-wide registry (always available; exporting it is opt-in via
/// --metrics flags, so an unexported registry costs only its counters).
[[nodiscard]] Registry& global_metrics();

/// Renders one label set as it appears in the exposition: {k="v",...} with
/// keys sorted and values escaped; "" for no labels.  Exposed for tests.
[[nodiscard]] std::string render_labels(const MetricLabels& labels);

// ---------------------------------------------------------------------------
// Collector adapters for the instrumented seams below obs.  Each registers a
// scrape-time callback over the referenced object's own counters; the object
// must outlive the registry (or at least every later export).

/// symspmv_pool_jobs_total, symspmv_pool_barrier_crossings_total,
/// symspmv_pool_barrier_wait_seconds_total, symspmv_pool_threads.
void register_pool_metrics(Registry& reg, const ThreadPool& pool, MetricLabels labels = {});

/// symspmv_plan_cache_{hits,misses,revalidation_rejects,disk_hits,saves}_total.
void register_plan_store_metrics(Registry& reg, const autotune::PlanStore& store,
                                 MetricLabels labels = {});

/// symspmv_bundle_builds_total{representation=...}.
void register_bundle_metrics(Registry& reg, const engine::MatrixBundle& bundle,
                             MetricLabels labels = {});

}  // namespace symspmv::obs::metrics
