// Minimal JSON value: the one serialization currency of the observability
// layer (docs/OBSERVABILITY.md).
//
// RunRecords are appended as JSON Lines, the consolidated BENCH_symspmv.json
// is one document, and the trace layer emits Chrome trace_event JSON — all
// three need the same small thing: build a tree, dump it deterministically,
// and parse it back for the round-trip tests and the bench_report
// self-check.  Deliberately minimal (no SAX, no pointers, no allocator
// games); objects preserve insertion order so dumped output is stable and
// diffable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace symspmv::obs {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered key/value pairs — dump order is build order.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
   public:
    /// Null by default.
    Json() = default;
    Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
    Json(bool b) : v_(b) {}  // NOLINT(google-explicit-constructor)
    Json(double d) : v_(d) {}  // NOLINT(google-explicit-constructor)
    Json(std::int64_t i) : v_(i) {}  // NOLINT(google-explicit-constructor)
    Json(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
    Json(std::size_t u) : v_(static_cast<std::int64_t>(u)) {}  // NOLINT
    Json(std::string s) : v_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
    Json(std::string_view s) : v_(std::string(s)) {}  // NOLINT
    Json(const char* s) : v_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
    Json(JsonArray a) : v_(std::move(a)) {}  // NOLINT(google-explicit-constructor)
    Json(JsonObject o) : v_(std::move(o)) {}  // NOLINT(google-explicit-constructor)

    [[nodiscard]] static Json object() { return Json(JsonObject{}); }
    [[nodiscard]] static Json array() { return Json(JsonArray{}); }

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
    [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
    [[nodiscard]] bool is_number() const { return is_int() || std::holds_alternative<double>(v_); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

    /// Typed accessors; each throws ParseError when the value is not of the
    /// requested type (as_double also accepts integers).
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] double as_double() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const JsonArray& as_array() const;
    [[nodiscard]] const JsonObject& as_object() const;

    /// Object access: get() returns nullptr when the key is absent; at()
    /// throws ParseError.  Both throw when *this is not an object.
    [[nodiscard]] const Json* get(std::string_view key) const;
    [[nodiscard]] const Json& at(std::string_view key) const;

    /// Appends a key/value pair (object) or an element (array); *this must
    /// already hold the corresponding container.
    Json& set(std::string_view key, Json value);
    Json& push_back(Json value);

    /// Compact single-line rendering.  Doubles are emitted in shortest
    /// round-trip form (std::to_chars), so dump(parse(dump(x))) == dump(x).
    [[nodiscard]] std::string dump() const;

    /// Strict recursive-descent parser; throws ParseError on any malformed
    /// input, including trailing garbage after the document.
    [[nodiscard]] static Json parse(std::string_view text);

    friend bool operator==(const Json&, const Json&) = default;

   private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray, JsonObject>
        v_ = nullptr;
};

}  // namespace symspmv::obs
