#include "obs/run_record.hpp"

#include "autotune/fingerprint.hpp"
#include "bench/harness.hpp"
#include "bench/roofline.hpp"
#include "core/error.hpp"
#include "core/topology.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/profiler.hpp"
#include "spmv/kernel.hpp"

namespace symspmv::obs {

namespace {

Json counters_to_json(const CounterSample& s) {
    Json obj = Json::object();
    for (int i = 0; i < kCounterCount; ++i) {
        const auto c = static_cast<Counter>(i);
        if (const auto v = s.get(c)) {
            obj.set(to_string(c), *v);
        } else {
            obj.set(to_string(c), nullptr);  // unavailable, not zero
        }
    }
    return obj;
}

CounterSample counters_from_json(const Json& j) {
    CounterSample s;
    for (int i = 0; i < kCounterCount; ++i) {
        const auto c = static_cast<Counter>(i);
        const Json& v = j.at(to_string(c));
        if (!v.is_null()) {
            s.value[static_cast<std::size_t>(i)] = v.as_int();
            s.valid[static_cast<std::size_t>(i)] = true;
        }
    }
    return s;
}

}  // namespace

Json to_json(const RunRecord& rec) {
    Json j = Json::object();
    j.set("schema", rec.schema);
    j.set("matrix", rec.matrix);
    j.set("fingerprint", rec.fingerprint);
    j.set("rows", rec.rows);
    j.set("nnz", rec.nnz);
    j.set("kernel", rec.kernel);
    j.set("threads", rec.threads);
    j.set("partition", rec.partition);
    Json exec = Json::object();
    exec.set("placement", rec.placement);
    exec.set("pinning", rec.pinning);
    exec.set("topology", rec.topology);
    exec.set("oversubscribed", rec.oversubscribed);
    j.set("exec", std::move(exec));
    j.set("iterations", rec.iterations);
    j.set("seconds_per_op", rec.seconds_per_op);
    j.set("seconds_mean", rec.seconds_mean);
    j.set("seconds_min", rec.seconds_min);
    j.set("seconds_max", rec.seconds_max);
    Json phases = Json::object();
    phases.set("multiply", rec.multiply_seconds);
    phases.set("barrier", rec.barrier_seconds);
    phases.set("reduction", rec.reduction_seconds);
    phases.set("multiply_imbalance", rec.multiply_imbalance);
    j.set("phases", std::move(phases));
    Json derived = Json::object();
    derived.set("footprint_bytes", rec.footprint_bytes);
    derived.set("bytes_per_op", rec.bytes_per_op);
    derived.set("gflops", rec.gflops);
    derived.set("bandwidth_gbs", rec.bandwidth_gbs);
    j.set("derived", std::move(derived));
    j.set("counters", counters_to_json(rec.counters));
    j.set("counters_note", rec.counters_note);
    return j;
}

RunRecord run_record_from_json(const Json& j) {
    RunRecord rec;
    rec.schema = static_cast<int>(j.at("schema").as_int());
    // Schema 2 added the exec block, schema 3 the oversubscribed flag and
    // counters_note; older records (committed baselines) still parse with
    // those fields defaulted.
    if (rec.schema < 1 || rec.schema > kRunRecordSchema) {
        throw ParseError("run record: unsupported schema " + std::to_string(rec.schema));
    }
    rec.matrix = j.at("matrix").as_string();
    rec.fingerprint = j.at("fingerprint").as_string();
    rec.rows = j.at("rows").as_int();
    rec.nnz = j.at("nnz").as_int();
    rec.kernel = j.at("kernel").as_string();
    rec.threads = static_cast<int>(j.at("threads").as_int());
    rec.partition = j.at("partition").as_string();
    if (rec.schema >= 2) {
        const Json& exec = j.at("exec");
        rec.placement = exec.at("placement").as_string();
        rec.pinning = exec.at("pinning").as_string();
        rec.topology = exec.at("topology").as_string();
        if (rec.schema >= 3) rec.oversubscribed = exec.at("oversubscribed").as_bool();
    }
    if (rec.schema >= 3) rec.counters_note = j.at("counters_note").as_string();
    rec.iterations = static_cast<int>(j.at("iterations").as_int());
    rec.seconds_per_op = j.at("seconds_per_op").as_double();
    rec.seconds_mean = j.at("seconds_mean").as_double();
    rec.seconds_min = j.at("seconds_min").as_double();
    rec.seconds_max = j.at("seconds_max").as_double();
    const Json& phases = j.at("phases");
    rec.multiply_seconds = phases.at("multiply").as_double();
    rec.barrier_seconds = phases.at("barrier").as_double();
    rec.reduction_seconds = phases.at("reduction").as_double();
    rec.multiply_imbalance = phases.at("multiply_imbalance").as_double();
    const Json& derived = j.at("derived");
    rec.footprint_bytes = derived.at("footprint_bytes").as_int();
    rec.bytes_per_op = derived.at("bytes_per_op").as_int();
    rec.gflops = derived.at("gflops").as_double();
    rec.bandwidth_gbs = derived.at("bandwidth_gbs").as_double();
    rec.counters = counters_from_json(j.at("counters"));
    return rec;
}

std::string to_jsonl(const RunRecord& rec) { return to_json(rec).dump(); }

RunRecord parse_run_record(std::string_view line) {
    return run_record_from_json(Json::parse(line));
}

ExecConfig exec_config(const engine::ExecutionContext& ctx) {
    ExecConfig exec;
    exec.placement = std::string(engine::to_string(ctx.options().placement));
    exec.pinning = std::string(to_string(engine::effective_pin_strategy(ctx.options())));
    exec.topology = ctx.topology().summary();
    exec.logical_cpus = ctx.topology().logical_cpus();
    return exec;
}

RunRecord make_run_record(std::string matrix, const engine::MatrixBundle& bundle,
                          const SpmvKernel& kernel, const bench::Measurement& measurement,
                          int iterations, int threads, std::string_view partition,
                          const PhaseProfiler* profiler, const CounterSample* counters,
                          ExecConfig exec, std::string counters_note) {
    RunRecord rec;
    rec.matrix = std::move(matrix);
    rec.placement = std::move(exec.placement);
    rec.pinning = std::move(exec.pinning);
    rec.topology = std::move(exec.topology);
    rec.oversubscribed = exec.logical_cpus > 0 && threads > exec.logical_cpus;
    rec.counters_note = std::move(counters_note);
    const autotune::MatrixFingerprint fp = autotune::fingerprint(bundle.coo());
    rec.fingerprint = autotune::to_string(fp);
    rec.rows = kernel.rows();
    rec.nnz = kernel.nnz();
    rec.kernel = std::string(kernel.name());
    rec.threads = threads;
    rec.partition = std::string(partition);
    rec.iterations = iterations;
    rec.seconds_per_op = measurement.seconds_per_op;
    rec.seconds_mean = measurement.per_op.mean;
    rec.seconds_min = measurement.per_op.min;
    rec.seconds_max = measurement.per_op.max;
    if (profiler != nullptr) {
        rec.multiply_seconds = engine::per_op_max_seconds(*profiler, Phase::kMultiply);
        rec.barrier_seconds = engine::per_op_max_seconds(*profiler, Phase::kBarrier);
        rec.reduction_seconds = engine::per_op_max_seconds(*profiler, Phase::kReduction);
        rec.multiply_imbalance = profiler->stats(Phase::kMultiply).imbalance;
    }
    rec.footprint_bytes = static_cast<std::int64_t>(kernel.footprint_bytes());
    rec.bytes_per_op = static_cast<std::int64_t>(bench::streamed_bytes(kernel));
    rec.gflops = measurement.gflops;
    if (rec.seconds_per_op > 0.0) {
        rec.bandwidth_gbs =
            static_cast<double>(rec.bytes_per_op) / rec.seconds_per_op * 1e-9;
    }
    if (counters != nullptr) rec.counters = *counters;
    return rec;
}

RunSink::RunSink(const std::string& path, Mode mode)
    : path_(path),
      out_(path, mode == Mode::kTruncate ? std::ios::trunc : std::ios::app) {
    if (!out_) throw InvalidArgument("run sink: cannot open '" + path + "'");
}

void RunSink::write(const RunRecord& rec) {
    out_ << to_jsonl(rec) << '\n';
    out_.flush();
    if (!out_) throw InvalidArgument("run sink: write to '" + path_ + "' failed");
    ++written_;
}

}  // namespace symspmv::obs
