// Structured leveled logging for the long-lived daemon.
//
// A daemon's stderr is read by machines (journald, a log shipper) more
// often than by humans, so every line has one shape:
//
//   2026-08-07T12:34:56.789Z info message key=value key="two words"
//
// UTC timestamp, level, the message, then sorted-as-given key=value fields;
// values with spaces/quotes are double-quoted with minimal escaping.  When
// the calling thread has an ambient span context (obs/span.hpp) a
// trace=0x... field is appended automatically — the log line, the slow
// -capture JSONL record and the Chrome trace dump of one request all grep
// by the same id.
//
// The threshold comes from SYMSPMV_LOG (debug|info|warn|error; default
// info), read once; set_log_level()/set_log_stream() are test seams.
// log_enabled() guards any call site whose field rendering is not free.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace symspmv::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// The active threshold (SYMSPMV_LOG, read once; overridable for tests).
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

/// Redirects output (default std::cerr) — the test seam.  Not owned.
void set_log_stream(std::ostream* out);

[[nodiscard]] bool log_enabled(LogLevel level);

using LogFields = std::vector<std::pair<std::string, std::string>>;

/// Emits one line when @p level passes the threshold; thread-safe.
void log(LogLevel level, std::string_view msg, const LogFields& fields = {});

inline void log_debug(std::string_view msg, const LogFields& fields = {}) {
    log(LogLevel::kDebug, msg, fields);
}
inline void log_info(std::string_view msg, const LogFields& fields = {}) {
    log(LogLevel::kInfo, msg, fields);
}
inline void log_warn(std::string_view msg, const LogFields& fields = {}) {
    log(LogLevel::kWarn, msg, fields);
}
inline void log_error(std::string_view msg, const LogFields& fields = {}) {
    log(LogLevel::kError, msg, fields);
}

}  // namespace symspmv::obs
