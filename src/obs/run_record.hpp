// RunRecord — the machine-readable result of one measured SpM×V execution.
//
// Every quantitative claim in the paper is a relation between these fields:
// speedup vs threads (Figs. 9/11/12), phase split (Fig. 10), bandwidth vs
// footprint (Table I + §V.B), counters explaining both.  A RunRecord
// captures one (matrix, kernel, threads) execution completely — identity,
// timing distribution, per-phase breakdown with imbalance, hardware
// counters, derived GFLOP/s and effective bandwidth — and serializes to one
// JSON object.  RunSink appends records as JSON Lines; bench_report
// consolidates them into BENCH_symspmv.json, which is what CI archives and
// diffs PR over PR.  The schema is documented with a worked example in
// docs/OBSERVABILITY.md; parse + field-equality round-trip is tested in
// tests/obs_test.cpp.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace symspmv {
class SpmvKernel;
class PhaseProfiler;
}  // namespace symspmv

namespace symspmv::bench {
struct Measurement;
}

namespace symspmv::engine {
class ExecutionContext;
class MatrixBundle;
}  // namespace symspmv::engine

namespace symspmv::obs {

/// Bumped whenever a field changes meaning; parsers reject other versions
/// (same contract as the plan-file and .smx version fields).  Exception:
/// schemas 2 and 3 only *added* fields (2: the execution-configuration
/// block; 3: exec.oversubscribed + counters_note), so the parser still
/// accepts schema-1/2 records with those fields defaulted — committed
/// baselines keep loading across the bumps.
inline constexpr int kRunRecordSchema = 3;

struct RunRecord {
    int schema = kRunRecordSchema;

    // --- identity: what ran, on what, how wide ---
    std::string matrix;       // suite name or file path
    std::string fingerprint;  // autotune::MatrixFingerprint rendering
    std::int64_t rows = 0;
    std::int64_t nnz = 0;  // non-zeros of the represented full matrix
    std::string kernel;    // registry name ("SSS-idx", "CSX-Sym", ...)
    int threads = 1;
    std::string partition;  // row-partition policy name ("by-nnz", ...)

    // --- execution configuration (schema 2): how the run was placed on the
    //     machine; empty strings in records parsed from schema-1 files ---
    std::string placement;  // PlacementPolicy name ("none", "partitioned")
    std::string pinning;    // PinStrategy name ("none", "compact", ...)
    std::string topology;   // CpuTopology::summary() ("2s/2n/8c/2t")
    // Schema 3: more workers than online logical CPUs — barrier and
    // imbalance columns then measure scheduler contention, not the kernel,
    // and reports must tag the row instead of letting it read as a
    // regression (the committed p=16 rows once showed 113.8% "imbalance").
    bool oversubscribed = false;

    // --- measurement: the §V.A loop ---
    int iterations = 0;             // timed operations
    double seconds_per_op = 0.0;    // median
    double seconds_mean = 0.0;
    double seconds_min = 0.0;
    double seconds_max = 0.0;

    // --- phases: per-op seconds of the slowest thread (what wall-clock
    //     actually waits for), plus the multiply imbalance (max/mean - 1) ---
    double multiply_seconds = 0.0;
    double barrier_seconds = 0.0;
    double reduction_seconds = 0.0;
    double multiply_imbalance = 0.0;

    // --- derived: the bytes-moved model of docs/OBSERVABILITY.md ---
    std::int64_t footprint_bytes = 0;  // matrix representation + side structures
    std::int64_t bytes_per_op = 0;     // footprint + x and y vectors
    double gflops = 0.0;               // 2*nnz / seconds_per_op
    double bandwidth_gbs = 0.0;        // bytes_per_op / seconds_per_op

    // --- hardware counters: totals over the timed window (all threads);
    //     invalid slots serialize as JSON null ---
    CounterSample counters;
    // Schema 3: why counters are missing/partial ("disabled by
    // SYMSPMV_NO_PERF", "perf_event_open('cycles') failed: Permission
    // denied", ...); empty when every event opened.  The silent-fallback
    // fix: an all-null counters block is now always explainable.
    std::string counters_note;

    friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

/// One JSON object per record (the JSONL/BENCH_symspmv.json element).
[[nodiscard]] Json to_json(const RunRecord& rec);

/// Inverse of to_json; throws ParseError on wrong schema, missing fields or
/// mistyped values.
[[nodiscard]] RunRecord run_record_from_json(const Json& j);

/// Single-line rendering / strict parse of one JSONL line.
[[nodiscard]] std::string to_jsonl(const RunRecord& rec);
[[nodiscard]] RunRecord parse_run_record(std::string_view line);

/// The execution-configuration block of a record: names of the placement
/// policy and pin strategy the run used, plus the machine-topology summary.
/// Defaults mean "not recorded" (schema-1 compatibility value).
struct ExecConfig {
    std::string placement;
    std::string pinning;
    std::string topology;
    /// Online logical CPUs of the discovered topology; 0 = unknown.  Not
    /// serialized itself — make_run_record derives the record's
    /// oversubscribed flag from it (threads > logical_cpus).
    int logical_cpus = 0;
};

/// The ExecConfig describing @p ctx: placement from its options, pinning
/// from its effective pin strategy, topology from its resources.
[[nodiscard]] ExecConfig exec_config(const engine::ExecutionContext& ctx);

/// Assembles a RunRecord from one harness measurement: identity from the
/// bundle (fingerprinted through src/autotune), phases from the profiler
/// (slowest-thread per-op seconds; zero phases when null), counters from
/// the aggregated sample (null-valued when @p counters is null or has no
/// valid slot), derived metrics from the kernel's footprint and the
/// bytes-moved model, execution configuration from @p exec.
[[nodiscard]] RunRecord make_run_record(std::string matrix, const engine::MatrixBundle& bundle,
                                        const SpmvKernel& kernel,
                                        const bench::Measurement& measurement, int iterations,
                                        int threads, std::string_view partition,
                                        const PhaseProfiler* profiler,
                                        const CounterSample* counters, ExecConfig exec = {},
                                        std::string counters_note = {});

/// Appends RunRecords to a JSON Lines file, one object per line, flushed
/// after every record so a crashed run keeps everything it measured.
/// Every failure — open or write — throws InvalidArgument; records are
/// measurements, and silently dropping them corrupts every downstream
/// comparison (bench_compare gates on these files).
class RunSink {
   public:
    enum class Mode {
        kAppend,    // accumulate across runs (baseline building)
        kTruncate,  // start the file over (a fresh sweep)
    };

    /// Opens @p path in the given mode; throws InvalidArgument when it
    /// cannot.
    explicit RunSink(const std::string& path, Mode mode = Mode::kAppend);

    void write(const RunRecord& rec);

    [[nodiscard]] std::size_t written() const { return written_; }
    [[nodiscard]] const std::string& path() const { return path_; }

   private:
    std::string path_;
    std::ofstream out_;
    std::size_t written_ = 0;
};

}  // namespace symspmv::obs
