// Minimal command-line option parser shared by the benchmark binaries and
// the examples.  Flags are of the form --name value or --name=value; bare
// --name acts as a boolean.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace symspmv {

class Options {
   public:
    Options(int argc, const char* const* argv);

    /// True if --name was present (with or without a value).
    [[nodiscard]] bool has(std::string_view name) const;

    /// Value of --name, if present with a value.
    [[nodiscard]] std::optional<std::string> get(std::string_view name) const;

    [[nodiscard]] long get_int(std::string_view name, long fallback) const;
    [[nodiscard]] double get_double(std::string_view name, double fallback) const;
    [[nodiscard]] std::string get_string(std::string_view name, std::string_view fallback) const;

    /// Boolean flag with an explicit-value escape hatch: bare --name is
    /// true, --name=true/false (also 1/0, yes/no, on/off) parses the value,
    /// absence returns @p fallback.  Throws on any other value.
    [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

    /// Positional (non-flag) arguments in order.
    [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

    /// Program name (argv[0]).
    [[nodiscard]] const std::string& program() const { return program_; }

   private:
    struct Flag {
        std::string name;  // without leading dashes
        std::optional<std::string> value;
    };

    std::string program_;
    std::vector<Flag> flags_;
    std::vector<std::string> positional_;
};

}  // namespace symspmv
