#include "core/profiling.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace symspmv {

std::string_view to_string(Phase phase) {
    switch (phase) {
        case Phase::kMultiply:
            return "multiply";
        case Phase::kBarrier:
            return "barrier";
        case Phase::kReduction:
            return "reduction";
    }
    return "?";
}

PhaseProfiler::PhaseProfiler(int threads) {
    SYMSPMV_CHECK_MSG(threads >= 1, "PhaseProfiler: need at least one thread slot");
    slots_.resize(static_cast<std::size_t>(threads));
}

void PhaseProfiler::record(int tid, Phase phase, double seconds) {
    if (tid < 0 || tid >= threads()) return;
    Slot& slot = slots_[static_cast<std::size_t>(tid)];
    slot.seconds[static_cast<int>(phase)] += seconds;
    ++slot.samples[static_cast<int>(phase)];
    if (trace_ != nullptr) trace_->phase_recorded(tid, phase, seconds);
}

double PhaseProfiler::seconds(int tid, Phase phase) const {
    SYMSPMV_CHECK_MSG(tid >= 0 && tid < threads(), "PhaseProfiler: tid out of range");
    return slots_[static_cast<std::size_t>(tid)].seconds[static_cast<int>(phase)];
}

PhaseStats PhaseProfiler::stats(Phase phase) const {
    PhaseStats s;
    s.min_seconds = slots_.empty() ? 0.0 : slots_.front().seconds[static_cast<int>(phase)];
    for (const Slot& slot : slots_) {
        const double sec = slot.seconds[static_cast<int>(phase)];
        s.min_seconds = std::min(s.min_seconds, sec);
        s.max_seconds = std::max(s.max_seconds, sec);
        s.total_seconds += sec;
        s.samples += slot.samples[static_cast<int>(phase)];
    }
    if (!slots_.empty()) s.mean_seconds = s.total_seconds / static_cast<double>(slots_.size());
    if (s.mean_seconds > 0.0) s.imbalance = s.max_seconds / s.mean_seconds - 1.0;
    return s;
}

void PhaseProfiler::reset() {
    for (Slot& slot : slots_) slot = Slot{};
    ops_ = 0;
}

}  // namespace symspmv
