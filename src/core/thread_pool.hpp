// Persistent worker-thread pool with an in-job barrier.
//
// The paper parallelizes SpM×V with explicit native threading (Pthreads) and
// a two-phase structure: every thread multiplies its own partition, all
// threads synchronize, then every thread reduces its slice of the local
// vectors.  This pool reproduces that model: run() executes one job on all
// workers and barrier() lets a job synchronize its phases without returning
// to the caller (which would cost a full fork/join per phase).
//
// Dispatch is a persistent parallel region, not a sleep/wake handoff: workers
// wait on an atomic generation word with a bounded spin before parking
// (core/spin_wait.hpp), so back-to-back run() calls — the bench loop, every
// CG iteration — stay in user space.  run_many() goes further and executes N
// iterations of a job inside ONE region: the N-iteration loop pays one wake,
// not N, which is the fix for the self-inflicted §III.A synchronization wall
// the committed benches used to show.  The in-job barrier is the hybrid
// SpinBarrier with the same poison/unwind error path as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/profiling.hpp"
#include "core/spin_barrier.hpp"
#include "core/spin_wait.hpp"
#include "core/timer.hpp"

namespace symspmv {

class ThreadPool {
   public:
    /// Job executed by every worker; receives the worker id in [0, threads).
    using Job = std::function<void(int)>;

    /// Iterated job for run_many(); receives (worker id, iteration index).
    using IterJob = std::function<void(int, int)>;

    /// Creates @p threads persistent workers.  @p threads must be >= 1.
    /// With @p pin_threads, workers are bound per the compact strategy of
    /// core/topology (fill cores of socket 0 first, hyper-thread siblings
    /// last) — the paper "bound the threads to specific logical processors"
    /// (§V.A); pinning failures are ignored (some sandboxes forbid
    /// sched_setaffinity).
    explicit ThreadPool(int threads, bool pin_threads = false);

    /// Creates @p threads workers bound per an explicit pin map: worker i is
    /// bound to logical CPU pin_cpus[i].  An empty map means no pinning; a
    /// non-empty map must have one entry per worker.  This is the seam the
    /// topology-aware strategies (core/topology.hpp pin_map) feed.
    ThreadPool(int threads, const std::vector<int>& pin_cpus);

    /// Logical CPU worker @p tid was asked to bind to, or -1 when unpinned.
    [[nodiscard]] int pin_cpu(int tid) const {
        return pin_cpus_.empty() ? -1 : pin_cpus_[static_cast<std::size_t>(tid)];
    }

    /// Process-wide count of ThreadPool constructions.  Pool reuse tests
    /// assert this does not move while a sweep runs over pooled
    /// ExecutionResources — the "no pools spawned mid-sweep" contract.
    [[nodiscard]] static std::uint64_t pools_created() noexcept;

    /// True when worker @p tid was successfully pinned to a CPU.
    [[nodiscard]] bool pinned(int tid) const {
        return pinned_[static_cast<std::size_t>(tid)] != 0;
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /// Number of worker threads.
    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    /// Runs @p job on every worker and blocks until all of them finish.
    /// Exceptions thrown by a job are rethrown on the calling thread (the
    /// first one wins).  A throwing worker poisons the in-job barrier, so
    /// peers blocked in barrier() unwind instead of waiting forever for an
    /// arrival that will never come; workers that never reach a barrier
    /// still complete the job round normally.
    void run(const Job& job);

    /// Runs job(tid, i) for i in [0, iterations) on every worker inside one
    /// parallel region — one worker wake and one join for the whole loop.
    /// Iterations on one worker run in order; synchronization BETWEEN
    /// workers' iterations is the job's responsibility (call barrier() at
    /// whatever phase boundaries the loop body needs — e.g. end of op, so
    /// iteration i+1 never reads a vector iteration i is still writing).
    /// Error semantics match run(): a throwing iteration abandons that
    /// worker's remaining iterations, poisons the barrier so peers unwind at
    /// their next crossing, and the first exception is rethrown here.
    void run_many(int iterations, const IterJob& job);

    /// Synchronization point usable from inside a running job: every worker
    /// must call it the same number of times.  Unwinds the calling worker
    /// when a peer threw out of the job (see run()).
    void barrier() {
        barrier_.arrive_and_wait();
        barrier_crossings_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Profiled barrier: like barrier(), but records the time worker @p tid
    /// spent waiting for the others as Phase::kBarrier — the per-thread
    /// imbalance signal of the two-phase SpM×V model.
    void barrier(PhaseProfiler& profiler, int tid) {
        Timer t;
        barrier_.arrive_and_wait();
        const double waited = t.seconds();
        profiler.record(tid, Phase::kBarrier, waited);
        barrier_crossings_.fetch_add(1, std::memory_order_relaxed);
        barrier_wait_seconds_.fetch_add(waited, std::memory_order_relaxed);
    }

    /// Plain totals of how this pool has been used — the instrumentation
    /// seam the metrics registry (obs/metrics.hpp) collects from; core
    /// itself knows nothing about the registry.  barrier_wait_seconds only
    /// accumulates from the *profiled* barrier overload (the plain one
    /// deliberately stays timer-free), so it undercounts when kernels run
    /// unprofiled; barrier_crossings counts both.  jobs_dispatched counts
    /// worker wakes: one per run(), one per run_many() regardless of its
    /// iteration count — the quantity the persistent-region fix minimizes.
    struct Stats {
        std::uint64_t jobs_dispatched = 0;   // run()/run_many() dispatches
        std::uint64_t barrier_crossings = 0; // per worker, per barrier
        double barrier_wait_seconds = 0.0;   // profiled waits, summed over workers
        int threads = 0;
    };
    [[nodiscard]] Stats stats() const {
        return Stats{jobs_dispatched_.load(std::memory_order_relaxed),
                     barrier_crossings_.load(std::memory_order_relaxed),
                     barrier_wait_seconds_.load(std::memory_order_relaxed), size()};
    }

   private:
    void worker_loop(int tid, bool pin);
    void dispatch_and_wait();

    std::vector<int> pin_cpus_;  // empty = unpinned; else one CPU per worker
    std::vector<char> pinned_;
    SpinBarrier barrier_;

    // Usage totals for stats(); relaxed — they are observability data, not
    // synchronization.
    std::atomic<std::uint64_t> jobs_dispatched_{0};
    std::atomic<std::uint64_t> barrier_crossings_{0};
    std::atomic<double> barrier_wait_seconds_{0.0};

    // Dispatch state.  The caller publishes the job fields, then bumps
    // job_word_ (release) and notifies; workers spin-then-park on job_word_
    // (acquire), execute, and the last one out bumps done_word_ for the
    // caller.  The job pointers are plain fields: they are only written
    // while no region is active (active_ == 0) and read after the acquire
    // on job_word_.  dispatch_spin_ budgets the caller+worker handoff waits
    // for threads+1 runnable threads (the caller is awake on both edges);
    // the in-job barrier budgets for the workers alone.
    std::atomic<std::uint32_t> job_word_{0};
    std::atomic<std::uint32_t> done_word_{0};
    std::atomic<int> active_{0};
    std::atomic<bool> stop_{false};
    const Job* job_ = nullptr;
    const IterJob* iter_job_ = nullptr;
    int iterations_ = 0;
    int dispatch_spin_ = 0;

    std::mutex err_mu_;
    std::exception_ptr first_error_;

    // Declared last so destruction joins the workers before any of the
    // state they touch (pinned_, barrier_, the dispatch words) dies.
    std::vector<std::jthread> workers_;
};

}  // namespace symspmv
