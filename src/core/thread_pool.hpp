// Persistent worker-thread pool with an in-job barrier.
//
// The paper parallelizes SpM×V with explicit native threading (Pthreads) and
// a two-phase structure: every thread multiplies its own partition, all
// threads synchronize, then every thread reduces its slice of the local
// vectors.  This pool reproduces that model: run() executes one job on all
// workers and barrier() lets a job synchronize its phases without returning
// to the caller (which would cost a full fork/join per phase).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/barrier.hpp"
#include "core/profiling.hpp"
#include "core/timer.hpp"

namespace symspmv {

class ThreadPool {
   public:
    /// Job executed by every worker; receives the worker id in [0, threads).
    using Job = std::function<void(int)>;

    /// Creates @p threads persistent workers.  @p threads must be >= 1.
    /// With @p pin_threads, worker i is bound to logical CPU i modulo the
    /// machine's CPU count — the paper "bound the threads to specific
    /// logical processors" (§V.A); pinning failures are ignored (some
    /// sandboxes forbid sched_setaffinity).
    explicit ThreadPool(int threads, bool pin_threads = false);

    /// Creates @p threads workers bound per an explicit pin map: worker i is
    /// bound to logical CPU pin_cpus[i].  An empty map means no pinning; a
    /// non-empty map must have one entry per worker.  This is the seam the
    /// topology-aware strategies (core/topology.hpp pin_map) feed — the
    /// bool constructor above is the naive compatibility path.
    ThreadPool(int threads, const std::vector<int>& pin_cpus);

    /// Logical CPU worker @p tid was asked to bind to, or -1 when unpinned.
    [[nodiscard]] int pin_cpu(int tid) const {
        return pin_cpus_.empty() ? -1 : pin_cpus_[static_cast<std::size_t>(tid)];
    }

    /// Process-wide count of ThreadPool constructions.  Pool reuse tests
    /// assert this does not move while a sweep runs over pooled
    /// ExecutionResources — the "no pools spawned mid-sweep" contract.
    [[nodiscard]] static std::uint64_t pools_created() noexcept;

    /// True when worker @p tid was successfully pinned to a CPU.
    [[nodiscard]] bool pinned(int tid) const {
        return pinned_[static_cast<std::size_t>(tid)] != 0;
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /// Number of worker threads.
    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    /// Runs @p job on every worker and blocks until all of them finish.
    /// Exceptions thrown by a job are rethrown on the calling thread (the
    /// first one wins).  A throwing worker poisons the in-job barrier, so
    /// peers blocked in barrier() unwind instead of waiting forever for an
    /// arrival that will never come; workers that never reach a barrier
    /// still complete the job round normally.
    void run(const Job& job);

    /// Synchronization point usable from inside a running job: every worker
    /// must call it the same number of times.  Unwinds the calling worker
    /// when a peer threw out of the job (see run()).
    void barrier() {
        barrier_.arrive_and_wait();
        barrier_crossings_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Profiled barrier: like barrier(), but records the time worker @p tid
    /// spent waiting for the others as Phase::kBarrier — the per-thread
    /// imbalance signal of the two-phase SpM×V model.
    void barrier(PhaseProfiler& profiler, int tid) {
        Timer t;
        barrier_.arrive_and_wait();
        const double waited = t.seconds();
        profiler.record(tid, Phase::kBarrier, waited);
        barrier_crossings_.fetch_add(1, std::memory_order_relaxed);
        barrier_wait_seconds_.fetch_add(waited, std::memory_order_relaxed);
    }

    /// Plain totals of how this pool has been used — the instrumentation
    /// seam the metrics registry (obs/metrics.hpp) collects from; core
    /// itself knows nothing about the registry.  barrier_wait_seconds only
    /// accumulates from the *profiled* barrier overload (the plain one
    /// deliberately stays timer-free), so it undercounts when kernels run
    /// unprofiled; barrier_crossings counts both.
    struct Stats {
        std::uint64_t jobs_dispatched = 0;   // run() calls
        std::uint64_t barrier_crossings = 0; // per worker, per barrier
        double barrier_wait_seconds = 0.0;   // profiled waits, summed over workers
        int threads = 0;
    };
    [[nodiscard]] Stats stats() const {
        return Stats{jobs_dispatched_.load(std::memory_order_relaxed),
                     barrier_crossings_.load(std::memory_order_relaxed),
                     barrier_wait_seconds_.load(std::memory_order_relaxed), size()};
    }

   private:
    void worker_loop(int tid, bool pin);

    std::vector<int> pin_cpus_;  // empty = unpinned; else one CPU per worker
    std::vector<std::jthread> workers_;
    std::vector<char> pinned_;
    PoisonableBarrier barrier_;

    // Usage totals for stats(); relaxed — they are observability data, not
    // synchronization.
    std::atomic<std::uint64_t> jobs_dispatched_{0};
    std::atomic<std::uint64_t> barrier_crossings_{0};
    std::atomic<double> barrier_wait_seconds_{0.0};

    std::mutex mu_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    const Job* job_ = nullptr;
    std::uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr first_error_;
};

}  // namespace symspmv
