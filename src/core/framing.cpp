#include "core/framing.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/error.hpp"
#include "core/hash.hpp"

namespace symspmv {

namespace {

template <typename T>
void put(std::ostream& out, T v, std::uint64_t& hash) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
    hash = fnv1a64(&v, sizeof(T), hash);
}

template <typename T>
T take(std::istream& in, std::uint64_t& hash) {
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in) throw ParseError("frame: truncated header");
    hash = fnv1a64(&v, sizeof(T), hash);
    return v;
}

void write_frame_impl(std::ostream& out, const Frame& frame, std::uint16_t version) {
    SYMSPMV_CHECK_MSG(frame.payload.size() <= 0xFFFFFFFFull, "frame: payload too large");
    out.write(kFrameMagic, sizeof(kFrameMagic));
    std::uint64_t hash = kFnvOffsetBasis;
    put<std::uint16_t>(out, version, hash);
    put<std::uint16_t>(out, frame.type, hash);
    if (version >= kFrameVersion) put<std::uint64_t>(out, frame.trace_id, hash);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(frame.payload.size()), hash);
    out.write(frame.payload.data(), static_cast<std::streamsize>(frame.payload.size()));
    hash = fnv1a64(frame.payload.data(), frame.payload.size(), hash);
    out.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
}

}  // namespace

void write_frame(std::ostream& out, const Frame& frame) {
    write_frame_impl(out, frame, kFrameVersion);
}

std::string encode_frame(const Frame& frame) {
    std::ostringstream os(std::ios::binary);
    write_frame(os, frame);
    return os.str();
}

void write_frame_legacy(std::ostream& out, const Frame& frame) {
    write_frame_impl(out, frame, kFrameVersionLegacy);
}

std::string encode_frame_legacy(const Frame& frame) {
    std::ostringstream os(std::ios::binary);
    write_frame_legacy(os, frame);
    return os.str();
}

std::optional<Frame> read_frame(std::istream& in, std::size_t max_payload) {
    char magic[sizeof(kFrameMagic)];
    in.read(magic, sizeof(magic));
    if (!in) {
        // A clean close lands exactly on a frame boundary: zero bytes read.
        if (in.gcount() == 0 && in.eof()) return std::nullopt;
        throw ParseError("frame: truncated magic");
    }
    if (std::memcmp(magic, kFrameMagic, sizeof(magic)) != 0) {
        throw ParseError("frame: bad magic");
    }
    std::uint64_t hash = kFnvOffsetBasis;
    const auto version = take<std::uint16_t>(in, hash);
    if (version != kFrameVersion && version != kFrameVersionLegacy) {
        throw ParseError("frame: unsupported version " + std::to_string(version));
    }
    Frame frame;
    frame.type = take<std::uint16_t>(in, hash);
    // Version-1 peers predate the trace id; they decode with trace_id 0 and
    // the receiving server assigns one (obs/span.hpp).
    if (version >= kFrameVersion) frame.trace_id = take<std::uint64_t>(in, hash);
    const auto size = take<std::uint32_t>(in, hash);
    // Validate the length prefix before trusting it with an allocation.
    if (size > max_payload) {
        throw ParseError("frame: payload length " + std::to_string(size) +
                         " exceeds the limit of " + std::to_string(max_payload));
    }
    frame.payload.resize(size);
    if (size > 0) {
        in.read(frame.payload.data(), static_cast<std::streamsize>(size));
        if (!in) throw ParseError("frame: truncated payload");
        hash = fnv1a64(frame.payload.data(), frame.payload.size(), hash);
    }
    std::uint64_t stored = 0;
    in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in) throw ParseError("frame: truncated checksum");
    if (stored != hash) throw ParseError("frame: checksum mismatch");
    return frame;
}

}  // namespace symspmv
