#include "core/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "core/error.hpp"

namespace symspmv {

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
    // The counter keeps concurrent writers within one process apart; writers
    // in different processes are separated by the temp file being renamed
    // away before anyone else can finish writing the same name (last rename
    // wins, each rename installs a complete file).
    static std::atomic<unsigned> sequence{0};
    const std::string tmp = path + ".tmp" + std::to_string(sequence.fetch_add(1));
    try {
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            SYMSPMV_CHECK_MSG(static_cast<bool>(out),
                              "atomic write: cannot open '" + tmp + "'");
            writer(out);
            out.flush();
            SYMSPMV_CHECK_MSG(static_cast<bool>(out), "atomic write: write to '" + tmp + "' failed");
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
            throw InternalError("atomic write: rename to '" + path + "' failed");
        }
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
}

}  // namespace symspmv
