// CPU topology discovery and topology-aware pin maps.
//
// The paper's §V.A results depend on *where* threads run: its Gainestown
// numbers bind threads to specific logical processors and place pages with
// numactl, and Schubert/Hager/Fehske (PAPERS.md) show SpMV scaling is
// decided by NUMA placement plus intra-socket bandwidth contention.  The
// engine previously pinned "worker i -> logical CPU i", which on an SMT
// machine stacks two workers on one physical core before the second core is
// used, and on a multi-socket machine fills socket 0 completely before
// socket 1 sees a thread.  This module discovers the real shape of the
// machine — sockets, NUMA nodes, SMT siblings, cache sizes — from sysfs and
// turns it into named pin strategies.
//
// Discovery is injectable: every parser takes the sysfs root as a
// parameter, so tests feed fixture trees and non-Linux builds (or sandboxes
// that hide /sys) fall back to a flat single-socket topology that makes all
// strategies degenerate to the old behaviour.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace symspmv {

struct CpuTopology {
    /// One online logical CPU and its position in the machine hierarchy.
    struct Cpu {
        int id = 0;      // logical CPU number (sched_setaffinity target)
        int core = 0;    // physical core id, unique within the socket
        int socket = 0;  // physical package id
        int node = 0;    // NUMA node id
        /// 0 for the first logical CPU seen on its (socket, core), 1 for
        /// its first SMT sibling, and so on — the fill order key.
        int smt_rank = 0;

        friend bool operator==(const Cpu&, const Cpu&) = default;
    };

    std::vector<Cpu> cpus;  // sorted by id
    int sockets = 1;
    int nodes = 1;
    int smt = 1;  // logical CPUs per physical core (max over cores)

    // Cache sizes in bytes; 0 = unknown.  L1d/L2 are per-core, llc is the
    // largest cache level reported (shared, typically per socket).
    std::size_t l1d_bytes = 0;
    std::size_t l2_bytes = 0;
    std::size_t llc_bytes = 0;

    /// True when the hierarchy came from sysfs; false for the flat fallback.
    bool from_sysfs = false;

    [[nodiscard]] int logical_cpus() const { return static_cast<int>(cpus.size()); }

    /// Physical cores across the machine.
    [[nodiscard]] int physical_cores() const;

    /// Compact single-token rendering "2s/2n/8c/2t" (sockets, NUMA nodes,
    /// physical cores, SMT ways) for run records and bench headers.
    [[nodiscard]] std::string summary() const;
};

/// Reads the topology from @p sysfs_root (default the live /sys).  Missing
/// or unparsable trees yield flat_topology(hardware_concurrency) — the
/// portable fallback, also used on non-Linux builds.
[[nodiscard]] CpuTopology discover_topology(const std::string& sysfs_root = "/sys");

/// The machine-wide topology, discovered once and cached (sysfs does not
/// change under a running process).
[[nodiscard]] const CpuTopology& local_topology();

/// A UMA, SMT-free, single-socket topology with @p logical_cpus CPUs — the
/// portable fallback and the base for hand-built test topologies.
[[nodiscard]] CpuTopology flat_topology(int logical_cpus);

/// Builds an arbitrary fake topology for tests: @p sockets x @p
/// cores_per_socket x @p smt logical CPUs, one NUMA node per socket.
[[nodiscard]] CpuTopology fake_topology(int sockets, int cores_per_socket, int smt);

/// How worker threads are laid out over the machine.
enum class PinStrategy {
    kNone,       // do not bind threads at all
    kCompact,    // fill physical cores in socket order; SMT siblings last
    kScatter,    // round-robin sockets; physical cores first, siblings last
    kPerSocket,  // contiguous worker blocks per socket (pairs with kBySocket)
};

[[nodiscard]] std::string_view to_string(PinStrategy strategy);
[[nodiscard]] PinStrategy parse_pin_strategy(std::string_view name);

/// Maps worker i -> logical CPU id under @p strategy (empty for kNone).
/// When @p threads exceeds the online CPU count the map wraps around and a
/// one-time warning is printed — multiple workers then legitimately share a
/// CPU instead of binding to phantom ones (the p=16-on-8-CPUs fix).
[[nodiscard]] std::vector<int> pin_map(const CpuTopology& topo, int threads,
                                       PinStrategy strategy);

/// The socket each worker of @p map lands on (all zero for an empty map or
/// unknown CPUs) — the input of the by-socket partition policy.
[[nodiscard]] std::vector<int> socket_of_workers(const CpuTopology& topo,
                                                 const std::vector<int>& map, int threads);

}  // namespace symspmv
