// Error handling helpers.
//
// Library invariants are checked with SYMSPMV_CHECK (always on; throws) and
// SYMSPMV_DCHECK (debug only).  Following the C++ Core Guidelines (I.10), we
// signal precondition violations with exceptions rather than error codes so
// that construction failures cannot yield half-built matrices.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace symspmv {

/// Thrown when a matrix file or byte stream is malformed.
class ParseError : public std::runtime_error {
   public:
    using std::runtime_error::runtime_error;
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
   public:
    using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
   public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
    std::ostringstream os;
    os << "check failed: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw InternalError(os.str());
}
}  // namespace detail

}  // namespace symspmv

#define SYMSPMV_CHECK(expr)                                                          \
    do {                                                                             \
        if (!(expr)) ::symspmv::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    } while (0)

#define SYMSPMV_CHECK_MSG(expr, msg)                                                    \
    do {                                                                                \
        if (!(expr)) ::symspmv::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    } while (0)

#ifdef NDEBUG
#define SYMSPMV_DCHECK(expr) ((void)0)
#else
#define SYMSPMV_DCHECK(expr) SYMSPMV_CHECK(expr)
#endif
