// Small descriptive-statistics helpers for the measurement framework.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace symspmv {

/// Summary of a sample of measurements (seconds, bytes, ratios, ...).
struct Summary {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

/// Computes min/max/mean/median/sample-stddev of @p sample (must be non-empty).
inline Summary summarize(std::span<const double> sample) {
    SYMSPMV_CHECK_MSG(!sample.empty(), "summarize: empty sample");
    Summary s;
    s.count = sample.size();
    std::vector<double> sorted(sample.begin(), sample.end());
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();
    const std::size_t mid = sorted.size() / 2;
    s.median = (sorted.size() % 2 == 1) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
    double sum = 0.0;
    for (double v : sorted) sum += v;
    s.mean = sum / static_cast<double>(sorted.size());
    if (sorted.size() > 1) {
        double ss = 0.0;
        for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
        s.stddev = std::sqrt(ss / static_cast<double>(sorted.size() - 1));
    }
    return s;
}

}  // namespace symspmv
