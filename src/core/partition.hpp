// Row partitioning of a sparse matrix among threads.
//
// The paper assigns the matrix to threads row-wise, "ensuring an
// approximately equal number of non-zero elements per partition" (Fig. 3a).
// split_by_nnz implements that policy; split_even is the equal-rows policy
// used for the reduction phase of the naive method (Alg. 3, lines 12-15).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace symspmv {

/// Half-open row range [begin, end) owned by one thread.
struct RowRange {
    index_t begin = 0;
    index_t end = 0;

    [[nodiscard]] index_t rows() const { return end - begin; }
    friend bool operator==(const RowRange&, const RowRange&) = default;
};

/// Splits n rows into p contiguous ranges of (almost) equal row count.
/// The first n % p ranges get one extra row.
inline std::vector<RowRange> split_even(index_t n, int p) {
    SYMSPMV_CHECK_MSG(p >= 1 && n >= 0, "split_even: need p >= 1, n >= 0");
    std::vector<RowRange> out(static_cast<std::size_t>(p));
    const index_t base = n / p;
    const index_t extra = n % p;
    index_t begin = 0;
    for (int i = 0; i < p; ++i) {
        const index_t len = base + (i < extra ? 1 : 0);
        out[static_cast<std::size_t>(i)] = {begin, begin + len};
        begin += len;
    }
    return out;
}

/// Splits the row range [rows.begin, rows.end) into p contiguous ranges
/// with approximately equal non-zero counts, using the (global) CSR/SSS
/// row-pointer array as the nnz prefix sum.  The building block of both the
/// whole-matrix split and the per-socket hierarchical split.
inline std::vector<RowRange> split_by_nnz(std::span<const index_t> rowptr, int p,
                                          RowRange rows) {
    SYMSPMV_CHECK_MSG(p >= 1 && !rowptr.empty(), "split_by_nnz: need p >= 1 and rowptr");
    const index_t n = static_cast<index_t>(rowptr.size() - 1);
    SYMSPMV_CHECK_MSG(rows.begin >= 0 && rows.begin <= rows.end && rows.end <= n,
                      "split_by_nnz: row range out of bounds");
    const index_t base_nnz = rowptr[static_cast<std::size_t>(rows.begin)];
    const index_t total = rowptr[static_cast<std::size_t>(rows.end)] - base_nnz;
    std::vector<RowRange> out(static_cast<std::size_t>(p));
    index_t begin = rows.begin;
    for (int i = 0; i < p; ++i) {
        // Target cumulative nnz at the end of partition i (rounded evenly).
        const index_t target =
            base_nnz + static_cast<index_t>((static_cast<long long>(total) * (i + 1)) / p);
        const auto* it = std::lower_bound(rowptr.data() + begin,
                                          rowptr.data() + rows.end + 1, target);
        index_t end = static_cast<index_t>(it - rowptr.data());
        end = std::clamp(end, begin, rows.end);
        if (i == p - 1) end = rows.end;  // last partition always absorbs the tail
        out[static_cast<std::size_t>(i)] = {begin, end};
        begin = end;
    }
    return out;
}

/// Whole-matrix overload: splits all n rows into p nnz-balanced ranges.
inline std::vector<RowRange> split_by_nnz(std::span<const index_t> rowptr, int p) {
    SYMSPMV_CHECK_MSG(!rowptr.empty(), "split_by_nnz: need rowptr");
    return split_by_nnz(rowptr, p, RowRange{0, static_cast<index_t>(rowptr.size() - 1)});
}

/// Hierarchical nnz split for NUMA machines: @p group_of[i] names the group
/// (socket) worker i belongs to.  Rows are first split by nnz *between* the
/// groups (weighted by how many workers each has), then by nnz *within*
/// each group, so cross-socket traffic follows socket boundaries while
/// every worker still receives ~nnz/p non-zeros.  Group ids may be sparse;
/// workers of one group must be contiguous for the result to tile [0, n)
/// in worker order (the per-socket pin strategy guarantees that).
inline std::vector<RowRange> split_by_nnz_grouped(std::span<const index_t> rowptr,
                                                  std::span<const int> group_of) {
    const int p = static_cast<int>(group_of.size());
    SYMSPMV_CHECK_MSG(p >= 1 && !rowptr.empty(), "split_by_nnz_grouped: need workers + rowptr");
    // Contiguous runs of equal group id, in worker order.
    std::vector<std::pair<int, int>> runs;  // (first worker, count)
    for (int i = 0; i < p; ++i) {
        if (runs.empty() || group_of[static_cast<std::size_t>(i)] !=
                                group_of[static_cast<std::size_t>(runs.back().first)]) {
            runs.emplace_back(i, 1);
        } else {
            ++runs.back().second;
        }
    }
    // Outer split: weighted nnz targets at each group boundary (a group with
    // twice the workers receives twice the non-zeros).
    const index_t n = static_cast<index_t>(rowptr.size() - 1);
    const index_t total = rowptr[static_cast<std::size_t>(n)];
    std::vector<RowRange> out;
    out.reserve(static_cast<std::size_t>(p));
    index_t begin = 0;
    long long workers_before = 0;
    for (std::size_t g = 0; g < runs.size(); ++g) {
        workers_before += runs[g].second;
        index_t end;
        if (g + 1 == runs.size()) {
            end = n;
        } else {
            const index_t target =
                static_cast<index_t>((static_cast<long long>(total) * workers_before) / p);
            const auto* it =
                std::lower_bound(rowptr.data() + begin, rowptr.data() + n + 1, target);
            end = std::clamp(static_cast<index_t>(it - rowptr.data()), begin, n);
        }
        const auto inner = split_by_nnz(rowptr, runs[g].second, RowRange{begin, end});
        out.insert(out.end(), inner.begin(), inner.end());
        begin = end;
    }
    return out;
}

}  // namespace symspmv
