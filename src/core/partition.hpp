// Row partitioning of a sparse matrix among threads.
//
// The paper assigns the matrix to threads row-wise, "ensuring an
// approximately equal number of non-zero elements per partition" (Fig. 3a).
// split_by_nnz implements that policy; split_even is the equal-rows policy
// used for the reduction phase of the naive method (Alg. 3, lines 12-15).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace symspmv {

/// Half-open row range [begin, end) owned by one thread.
struct RowRange {
    index_t begin = 0;
    index_t end = 0;

    [[nodiscard]] index_t rows() const { return end - begin; }
    friend bool operator==(const RowRange&, const RowRange&) = default;
};

/// Splits n rows into p contiguous ranges of (almost) equal row count.
/// The first n % p ranges get one extra row.
inline std::vector<RowRange> split_even(index_t n, int p) {
    SYMSPMV_CHECK_MSG(p >= 1 && n >= 0, "split_even: need p >= 1, n >= 0");
    std::vector<RowRange> out(static_cast<std::size_t>(p));
    const index_t base = n / p;
    const index_t extra = n % p;
    index_t begin = 0;
    for (int i = 0; i < p; ++i) {
        const index_t len = base + (i < extra ? 1 : 0);
        out[static_cast<std::size_t>(i)] = {begin, begin + len};
        begin += len;
    }
    return out;
}

/// Splits rows into p contiguous ranges with approximately equal non-zero
/// counts, using the CSR/SSS row-pointer array as the nnz prefix sum.
/// @p rowptr has n+1 entries; range i targets nnz ~= total/p.
inline std::vector<RowRange> split_by_nnz(std::span<const index_t> rowptr, int p) {
    SYMSPMV_CHECK_MSG(p >= 1 && !rowptr.empty(), "split_by_nnz: need p >= 1 and rowptr");
    const index_t n = static_cast<index_t>(rowptr.size() - 1);
    const index_t total = rowptr[static_cast<std::size_t>(n)];
    std::vector<RowRange> out(static_cast<std::size_t>(p));
    index_t begin = 0;
    for (int i = 0; i < p; ++i) {
        // Target cumulative nnz at the end of partition i (rounded evenly).
        const index_t target =
            static_cast<index_t>((static_cast<long long>(total) * (i + 1)) / p);
        const auto* it = std::lower_bound(rowptr.data() + begin, rowptr.data() + n + 1, target);
        index_t end = static_cast<index_t>(it - rowptr.data());
        end = std::clamp(end, begin, n);
        if (i == p - 1) end = n;  // last partition always absorbs the tail
        out[static_cast<std::size_t>(i)] = {begin, end};
        begin = end;
    }
    return out;
}

}  // namespace symspmv
