// Shared byte hashing.
//
// FNV-1a 64-bit is the one stable hash the library uses wherever bytes need
// an identity: the autotune cache keys (autotune/fingerprint.hpp), the .smx
// integrity checksum (matrix/binio.cpp) and the plan-file checksum
// (autotune/store.cpp).  It lives in core so the matrix layer can use it
// without depending on autotune.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace symspmv {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over raw bytes (endianness-stable across the little-endian targets
/// we build for).  Chainable: pass a previous result as @p seed.
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                                           std::uint64_t seed = kFnvOffsetBasis) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s,
                                           std::uint64_t seed = kFnvOffsetBasis) {
    return fnv1a64(s.data(), s.size(), seed);
}

}  // namespace symspmv
