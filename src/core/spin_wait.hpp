// Hybrid spin-then-park waiting primitives.
//
// The paper's §III.A point is that synchronization cost dominates symmetric
// SpM×V at multicore granularities; a sleeping wait (mutex + condvar) costs a
// scheduler round trip per wake — microseconds — while one SpM×V op on a
// cache-resident matrix takes the same or less.  The cure is to spin briefly
// on an atomic word before parking: the common case (peer arrives within the
// op's own timescale) never leaves user space, and the uncommon case (peer
// descheduled, pool idle between requests) still yields the CPU instead of
// burning it.
//
// Parking uses C++20 std::atomic<uint32_t>::wait/notify_all, which libstdc++
// and libc++ implement on Linux as a futex — the portable spelling of the
// futex park path without raw syscalls.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>

namespace symspmv {

/// One spin-loop backoff step: a pause/yield hint to the CPU so a spinning
/// hyper-thread does not starve the sibling doing real work.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Spin budget forced via SYMSPMV_SPIN (a non-negative pause-iteration
/// count; 0 = park immediately), or -1 when unset/invalid.
inline int spin_budget_override() noexcept {
    static const int v = [] {
        const char* env = std::getenv("SYMSPMV_SPIN");
        if (env == nullptr || *env == '\0') return -1;
        char* end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end == nullptr || *end != '\0' || n < 0 || n > 100'000'000L) return -1;
        return static_cast<int>(n);
    }();
    return v;
}

/// How many pause iterations a wait involving @p threads concurrent spinners
/// should burn before parking.  Collapses to 0 (park immediately) when the
/// spinners would exceed the CPUs this process may run on — spinning while
/// oversubscribed only delays the thread that holds the CPU we are waiting
/// for.  SYMSPMV_SPIN overrides unconditionally.
inline int default_spin_budget(int threads) noexcept {
    const int forced = spin_budget_override();
    if (forced >= 0) return forced;
    const unsigned cpus = std::thread::hardware_concurrency();  // affinity-aware on Linux
    if (cpus != 0 && static_cast<unsigned>(threads) > cpus) return 0;
    return 16384;  // ~tens of microseconds: covers one SpM×V op, not a scheduler quantum
}

/// Blocks until @p word differs from @p old: spins for @p spin_budget pause
/// iterations (yielding periodically so an oversubscribed spinner cannot
/// monopolize its CPU), then parks on the word's futex.  The caller re-loads
/// the word itself; this only guarantees word != old on return, with acquire
/// ordering.
inline void spin_then_wait(const std::atomic<std::uint32_t>& word, std::uint32_t old,
                           int spin_budget) {
    for (int i = 0; i < spin_budget; ++i) {
        if (word.load(std::memory_order_acquire) != old) return;
        cpu_pause();
        if ((i & 1023) == 1023) std::this_thread::yield();
    }
    while (word.load(std::memory_order_acquire) == old) {
        word.wait(old, std::memory_order_acquire);
    }
}

}  // namespace symspmv
