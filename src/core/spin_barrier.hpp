// Sense-reversing spin barrier with the poison/unwind error path.
//
// Drop-in hot-path replacement for PoisonableBarrier (core/barrier.hpp): the
// same arrive_and_wait()/poison()/reset() contract and the same Poisoned
// marker thrown on every waiter once the barrier is broken, but the wait is
// a bounded spin on a single atomic word (pause/yield) that parks on the
// word's futex once the spin budget is exhausted (core/spin_wait.hpp).  The
// mutex+cv barrier stays in the tree as the reference implementation and the
// baseline bench/sync_cost compares against.
//
// State is one 32-bit word: bit 0 is the poison flag, bits 1..31 are the
// epoch ("sense"), bumped by the last arriver of each generation.  A waiter
// captures the word at entry and waits for it to change; an epoch bump means
// normal release, a poison-only change means unwind.  Epoch wrap-around after
// 2^31 generations is harmless: a waiter would have to sleep through exactly
// 2^31 full generations — which cannot happen, because no generation can
// complete without its own arrival.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/barrier.hpp"
#include "core/spin_wait.hpp"

namespace symspmv {

class SpinBarrier {
   public:
    /// Same marker type as the sleeping barrier so catch sites in the thread
    /// pool (and job code that must not swallow it) work with either.
    using Poisoned = PoisonableBarrier::Poisoned;

    /// Barrier for @p count threads.  @p spin_budget is the pause-iteration
    /// count to burn before parking; -1 picks default_spin_budget(count).
    explicit SpinBarrier(int count, int spin_budget = -1)
        : count_(count < 1 ? 1 : count),
          spin_budget_(spin_budget >= 0 ? spin_budget : default_spin_budget(count < 1 ? 1 : count)) {}

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /// Blocks until @p count threads have arrived in this generation, then
    /// releases them all.  Throws Poisoned instead of blocking (or waking
    /// normally) once poison() has been called in this generation.
    void arrive_and_wait() {
        const std::uint32_t entry = word_.load(std::memory_order_acquire);
        if ((entry & kPoisonBit) != 0) throw Poisoned{};
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
            arrived_.store(0, std::memory_order_relaxed);
            word_.fetch_add(kEpochStep, std::memory_order_acq_rel);
            word_.notify_all();
            return;
        }
        spin_then_wait(word_, entry, spin_budget_);
        const std::uint32_t now = word_.load(std::memory_order_acquire);
        // Same epoch but a changed word can only mean the poison bit: the
        // generation never completed, unwind.  An advanced epoch is a normal
        // release even if poison landed concurrently — the *next* arrival
        // throws at entry.
        if ((now | kPoisonBit) == (entry | kPoisonBit)) throw Poisoned{};
    }

    /// Marks the barrier broken and wakes every waiter, spinning or parked.
    /// Idempotent and safe from any thread, including one that never arrived.
    void poison() {
        word_.fetch_or(kPoisonBit, std::memory_order_acq_rel);
        word_.notify_all();
    }

    [[nodiscard]] bool poisoned() const {
        return (word_.load(std::memory_order_acquire) & kPoisonBit) != 0;
    }

    /// Re-arms a poisoned barrier.  The caller must guarantee that no thread
    /// is inside arrive_and_wait() (the pool calls this after every worker
    /// has finished the failed job round).
    void reset() {
        arrived_.store(0, std::memory_order_relaxed);
        word_.fetch_and(~kPoisonBit, std::memory_order_acq_rel);
    }

    [[nodiscard]] int count() const noexcept { return count_; }
    [[nodiscard]] int spin_budget() const noexcept { return spin_budget_; }

   private:
    static constexpr std::uint32_t kPoisonBit = 1u;
    static constexpr std::uint32_t kEpochStep = 2u;

    const int count_;
    const int spin_budget_;
    std::atomic<std::uint32_t> word_{0};
    std::atomic<int> arrived_{0};
};

}  // namespace symspmv
