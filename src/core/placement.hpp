// Page placement for NUMA machines (§V.A: the paper uses numactl plus a
// "low-level interleaved allocator" [16] for its Gainestown results).
//
// Linux assigns the physical page backing an allocation to the NUMA node
// of the *first thread that touches it*.  These helpers exploit that
// first-touch policy without libnuma: partition-touch places each thread's
// share of an array on that thread's node (right for the format arrays,
// which are read by their owning partition), and interleave-touch spreads
// pages round-robin (right for the x vector, which every thread gathers
// from).  On UMA machines both are harmless zero-fills.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/allocator.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"

namespace symspmv {

/// OS page granularity used for placement (the worst case; transparent
/// huge pages only coarsen it).
inline constexpr std::size_t kPageBytes = 4096;

/// Zero-fills @p bytes of @p data so that the pages backing element range
/// [parts[i].begin, parts[i].end) * elem_size are first touched by worker
/// i.  Call right after allocating a partitioned array and before filling
/// it from the building thread.
void first_touch_partitioned(void* data, std::size_t elem_size, std::span<const RowRange> parts,
                             ThreadPool& pool);

/// Zero-fills @p data page by page, pages dealt round-robin to the
/// workers — the interleaved-allocation stand-in.
void first_touch_interleaved(void* data, std::size_t bytes, ThreadPool& pool);

/// Typed convenience wrappers.
template <typename T>
void first_touch_partitioned(std::span<T> data, std::span<const RowRange> parts,
                             ThreadPool& pool) {
    first_touch_partitioned(data.data(), sizeof(T), parts, pool);
}

template <typename T>
void first_touch_interleaved(std::span<T> data, ThreadPool& pool) {
    first_touch_interleaved(data.data(), data.size_bytes(), pool);
}

/// Re-homes an already-built array: allocates fresh storage, lets each
/// worker copy its own element range [parts[i].begin, parts[i].end) — so
/// that worker's node first-touches the pages backing its share — and swaps
/// the result into @p arr.  This is how format arrays built single-threaded
/// (COO conversions run on the building thread) move onto their owning
/// partitions after the fact, without libnuma.  @p parts must tile
/// [0, arr.size()) with one range per worker.  On UMA machines the effect
/// is a parallel copy — correct, merely unnecessary.
///
/// The element copy is plain memcpy, so T must be trivially copyable.
void rehome_partitioned(void* dst, const void* src, std::size_t elem_size,
                        std::span<const RowRange> parts, ThreadPool& pool);

template <typename T>
void rehome_partitioned(aligned_vector<T>& arr, std::span<const RowRange> parts,
                        ThreadPool& pool) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "rehome copies raw bytes from worker threads");
    if (arr.empty()) return;
    // Order matters.  reserve() allocates without touching (large
    // allocations come from untouched mmap pages); the workers' zero-fill
    // into the reserved capacity is then the *first* touch and fixes each
    // page's home node.  resize()'s value-initialization afterwards writes
    // zeros from the calling thread, but by then the pages are already
    // placed — later touches never move a page.  The write into
    // reserved-but-unconstructed storage is the usual HPC first-touch idiom
    // and is benign for trivially copyable T.
    aligned_vector<T> replacement;
    replacement.reserve(arr.size());
    first_touch_partitioned(replacement.data(), sizeof(T), parts, pool);
    replacement.resize(arr.size());
    rehome_partitioned(replacement.data(), arr.data(), sizeof(T), parts, pool);
    arr.swap(replacement);
}

/// Interleaved re-home: fresh storage with pages dealt round-robin across
/// the workers, then a copy.  For shared read-mostly arrays like the x
/// vector.
template <typename T>
void rehome_interleaved(aligned_vector<T>& arr, ThreadPool& pool) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "rehome copies raw bytes from worker threads");
    if (arr.empty()) return;
    aligned_vector<T> replacement;
    replacement.reserve(arr.size());  // see rehome_partitioned for the order
    first_touch_interleaved(replacement.data(), arr.size() * sizeof(T), pool);
    replacement.resize(arr.size());
    std::memcpy(replacement.data(), arr.data(), arr.size() * sizeof(T));
    arr.swap(replacement);
}

/// Derives the nnz-space ranges owned by each row partition from the
/// row-pointer prefix sum: partition i owns elements
/// [rowptr[parts[i].begin], rowptr[parts[i].end)) of colind/values.  Feed
/// the result to rehome_partitioned for the nnz-indexed format arrays.
[[nodiscard]] std::vector<RowRange> nnz_ranges(std::span<const index_t> rowptr,
                                               std::span<const RowRange> parts);

}  // namespace symspmv
