// Page placement for NUMA machines (§V.A: the paper uses numactl plus a
// "low-level interleaved allocator" [16] for its Gainestown results).
//
// Linux assigns the physical page backing an allocation to the NUMA node
// of the *first thread that touches it*.  These helpers exploit that
// first-touch policy without libnuma: partition-touch places each thread's
// share of an array on that thread's node (right for the format arrays,
// which are read by their owning partition), and interleave-touch spreads
// pages round-robin (right for the x vector, which every thread gathers
// from).  On UMA machines both are harmless zero-fills.
#pragma once

#include <cstddef>
#include <span>

#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"

namespace symspmv {

/// OS page granularity used for placement (the worst case; transparent
/// huge pages only coarsen it).
inline constexpr std::size_t kPageBytes = 4096;

/// Zero-fills @p bytes of @p data so that the pages backing element range
/// [parts[i].begin, parts[i].end) * elem_size are first touched by worker
/// i.  Call right after allocating a partitioned array and before filling
/// it from the building thread.
void first_touch_partitioned(void* data, std::size_t elem_size, std::span<const RowRange> parts,
                             ThreadPool& pool);

/// Zero-fills @p data page by page, pages dealt round-robin to the
/// workers — the interleaved-allocation stand-in.
void first_touch_interleaved(void* data, std::size_t bytes, ThreadPool& pool);

/// Typed convenience wrappers.
template <typename T>
void first_touch_partitioned(std::span<T> data, std::span<const RowRange> parts,
                             ThreadPool& pool) {
    first_touch_partitioned(data.data(), sizeof(T), parts, pool);
}

template <typename T>
void first_touch_interleaved(std::span<T> data, ThreadPool& pool) {
    first_touch_interleaved(data.data(), data.size_bytes(), pool);
}

}  // namespace symspmv
